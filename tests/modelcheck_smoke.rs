//! Tier-1 gateway into the differential model checker: a short seeded
//! sweep across all four stacks runs on every plain `cargo test`, so no
//! change to UFS, the LLD, the VLD, or the disk simulator lands without
//! surviving at least a few randomized crash-and-recover episodes per
//! stack. The wide sweep lives in `crates/modelcheck` (see the
//! `modelcheck-smoke` CI job); `VLFS_SEED` re-bases this one too.

use modelcheck::{env_seed, sweep_all_stacks};

#[test]
fn differential_episodes_all_stacks() {
    let base = env_seed().unwrap_or(0x7E57_0001_CAFE_F00D);
    // Fans over the shared pool (VLFS_THREADS); outcomes arrive in
    // (stack, index) order, so the first failure reported is the same
    // one a sequential sweep would name.
    for outcome in sweep_all_stacks(base, 4, 32) {
        if let Err(repro) = outcome.result {
            panic!("{repro}");
        }
    }
}
