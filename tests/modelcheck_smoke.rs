//! Tier-1 gateway into the differential model checker: a short seeded
//! sweep across all four stacks runs on every plain `cargo test`, so no
//! change to UFS, the LLD, the VLD, or the disk simulator lands without
//! surviving at least a few randomized crash-and-recover episodes per
//! stack. The wide sweep lives in `crates/modelcheck` (see the
//! `modelcheck-smoke` CI job); `VLFS_SEED` re-bases this one too.

use modelcheck::{check_seed, env_seed, episode_seed, ALL_CONFIGS};

#[test]
fn differential_episodes_all_stacks() {
    let base = env_seed().unwrap_or(0x7E57_0001_CAFE_F00D);
    for cfg in ALL_CONFIGS {
        for i in 0..4 {
            let seed = episode_seed(base, cfg, i);
            if let Err(repro) = check_seed(cfg, seed, 32) {
                panic!("{repro}");
            }
        }
    }
}
