//! Cross-crate integration tests: full file-system stacks over full device
//! stacks, exercised end to end on simulated drives.

use vlfs::disksim::{BlockDevice, DiskSpec, RegularDisk, SimClock};
use vlfs::fscore::{FileSystem, HostModel};
use vlfs::lfs::{lfs_filesystem, LfsConfig};
use vlfs::ufs::{Ufs, UfsConfig};
use vlfs::vlog::{Vld, VldConfig};

fn regular(spec: DiskSpec) -> Box<dyn BlockDevice> {
    Box::new(RegularDisk::new(spec, SimClock::new(), 4096))
}

fn vld(spec: DiskSpec) -> Box<dyn BlockDevice> {
    Box::new(Vld::format(spec, SimClock::new(), VldConfig::default()))
}

/// All four (fs × device) stacks on both drive models.
fn all_stacks() -> Vec<(String, Ufs)> {
    let mut out = Vec::new();
    for (disk_name, spec) in [
        ("hp", DiskSpec::hp97560_sim()),
        ("st", DiskSpec::st19101_sim()),
    ] {
        for (dev_name, dev) in [
            ("regular", regular(spec.clone())),
            ("vld", vld(spec.clone())),
        ] {
            let fs =
                Ufs::format(dev, HostModel::instant(), UfsConfig::default()).expect("format ufs");
            out.push((format!("ufs/{dev_name}/{disk_name}"), fs));
        }
        for (dev_name, dev) in [
            ("regular", regular(spec.clone())),
            ("vld", vld(spec.clone())),
        ] {
            let fs = lfs_filesystem(dev, HostModel::instant(), LfsConfig::default())
                .expect("format lfs");
            out.push((format!("lfs/{dev_name}/{disk_name}"), fs));
        }
    }
    out
}

#[test]
fn mixed_workload_on_every_stack() {
    for (name, mut fs) in all_stacks() {
        // Create a tree of files of varied sizes, rewrite some, delete some,
        // then verify everything byte-for-byte after a cold restart of the
        // caches.
        let sizes = [100usize, 4096, 5000, 65536, 300_000];
        for (i, &sz) in sizes.iter().enumerate() {
            let f = fs.create(&format!("file{i}")).unwrap_or_else(|e| {
                panic!("{name}: create {i}: {e}");
            });
            let data: Vec<u8> = (0..sz).map(|b| (b as u8) ^ (i as u8)).collect();
            fs.write(f, 0, &data)
                .unwrap_or_else(|e| panic!("{name}: write {i}: {e}"));
        }
        // Rewrite the middle of file 3 with a recognisable pattern.
        let f3 = fs.open("file3").unwrap();
        fs.write(f3, 10_000, &vec![0xEE; 20_000]).unwrap();
        fs.delete("file1").unwrap();
        fs.sync().unwrap();
        fs.drop_caches();

        for (i, &sz) in sizes.iter().enumerate() {
            if i == 1 {
                assert!(fs.open("file1").is_err(), "{name}: deleted file came back");
                continue;
            }
            let f = fs.open(&format!("file{i}")).unwrap();
            let mut out = vec![0u8; sz];
            assert_eq!(
                fs.read(f, 0, &mut out).unwrap(),
                sz,
                "{name}: short read {i}"
            );
            for (off, &b) in out.iter().enumerate() {
                let expect = if i == 3 && (10_000..30_000).contains(&off) {
                    0xEE
                } else {
                    (off as u8) ^ (i as u8)
                };
                assert_eq!(b, expect, "{name}: file{i} byte {off}");
            }
        }
    }
}

#[test]
fn timing_is_deterministic_across_runs() {
    // The whole point of the virtual clock: identical runs cost identical
    // simulated time, bit for bit.
    let run = || {
        let mut fs = Ufs::format(
            vld(DiskSpec::st19101_sim()),
            HostModel::sparcstation_10(),
            UfsConfig::default(),
        )
        .expect("format");
        fs.set_sync_writes(true);
        let f = fs.create("d").unwrap();
        for i in 0..200u64 {
            let b = (i * 37) % 150;
            fs.write(f, b * 4096, &vec![i as u8; 4096]).unwrap();
        }
        fs.clock().now()
    };
    assert_eq!(run(), run());
}

#[test]
fn vld_is_transparent_to_ufs_contents() {
    // Same workload on regular vs VLD: identical file contents, different
    // physical layout, VLD faster for sync writes.
    let mut on_reg = Ufs::format(
        regular(DiskSpec::st19101_sim()),
        HostModel::instant(),
        UfsConfig::default(),
    )
    .expect("format");
    let mut on_vld = Ufs::format(
        vld(DiskSpec::st19101_sim()),
        HostModel::instant(),
        UfsConfig::default(),
    )
    .expect("format");
    for fs in [&mut on_reg, &mut on_vld] {
        fs.set_sync_writes(true);
        let f = fs.create("same").unwrap();
        for i in 0..100u64 {
            fs.write(f, (i * 13 % 64) * 4096, &vec![i as u8; 4096])
                .unwrap();
        }
    }
    let t_reg = on_reg.clock().now();
    let t_vld = on_vld.clock().now();
    assert!(t_vld < t_reg, "VLD {t_vld} should beat regular {t_reg}");
    let mut a = vec![0u8; 64 * 4096];
    let mut b = vec![0u8; 64 * 4096];
    let fa = on_reg.open("same").unwrap();
    let fb = on_vld.open("same").unwrap();
    on_reg.read(fa, 0, &mut a).unwrap();
    on_vld.read(fb, 0, &mut b).unwrap();
    assert_eq!(a, b);
}

#[test]
fn ufs_on_vld_survives_crash_and_remount() {
    // Full-stack crash test: UFS metadata + data through the VLD, power
    // failure, VLD scan recovery, UFS remount.
    let spec = DiskSpec::st19101_sim();
    let mut fs = Ufs::format(
        vld(spec.clone()),
        HostModel::instant(),
        UfsConfig::default(),
    )
    .expect("format");
    fs.set_sync_writes(true);
    let f = fs.create("precious").unwrap();
    fs.write(f, 0, b"do not lose me").unwrap();
    fs.sync().unwrap();

    // Crash the device under the file system.
    let dev = fs.into_device();
    // Downcast dance: we built it as a Vld above.
    let vld_box: Box<Vld> = unsafe {
        // SAFETY: constructed as Box<Vld> in this test; Box<dyn> -> Box<Vld>
        // via raw pointer round-trip.
        Box::from_raw(Box::into_raw(dev) as *mut Vld)
    };
    let disk = vld_box.crash();
    let o = spec.command_overhead_ns;
    let (recovered, report) = Vld::recover(disk, o, VldConfig::default()).expect("recover");
    assert!(!report.used_tail, "no shutdown happened");
    let mut fs = Ufs::mount(Box::new(recovered), HostModel::instant()).expect("mount");
    let f = fs.open("precious").unwrap();
    let mut out = vec![0u8; 14];
    assert_eq!(fs.read(f, 0, &mut out).unwrap(), 14);
    assert_eq!(&out, b"do not lose me");
}

#[test]
fn lfs_over_vld_full_lifecycle() {
    // The most exotic of the paper's Figure 5 stacks: log atop log.
    let mut fs = lfs_filesystem(
        vld(DiskSpec::st19101_sim()),
        HostModel::instant(),
        LfsConfig::default(),
    )
    .expect("format");
    for i in 0..100 {
        let f = fs.create(&format!("m{i}")).unwrap();
        fs.write(f, 0, &vec![i as u8; 3000]).unwrap();
    }
    fs.sync().unwrap();
    // Overwrite churn to exercise both the LFS cleaner and the VLD's
    // overwrite-detection free path.
    for i in 0..100 {
        let f = fs.open(&format!("m{i}")).unwrap();
        fs.write(f, 0, &vec![(i + 1) as u8; 3000]).unwrap();
    }
    fs.sync().unwrap();
    fs.idle(5_000_000_000);
    fs.drop_caches();
    for i in (0..100).step_by(9) {
        let f = fs.open(&format!("m{i}")).unwrap();
        let mut out = vec![0u8; 3000];
        assert_eq!(fs.read(f, 0, &mut out).unwrap(), 3000);
        assert!(out.iter().all(|&b| b == (i + 1) as u8), "file m{i}");
    }
}

#[test]
fn utilization_reporting_is_consistent() {
    let mut fs = Ufs::format(
        regular(DiskSpec::st19101_sim()),
        HostModel::instant(),
        UfsConfig::default(),
    )
    .expect("format");
    let u0 = fs.utilization();
    let free0 = fs.free_blocks();
    let f = fs.create("x").unwrap();
    fs.write(f, 0, &vec![0u8; 1 << 20]).unwrap();
    fs.sync().unwrap();
    assert!(fs.utilization() > u0);
    // 256 data blocks, plus an indirect block and the new directory block.
    let used = free0 - fs.free_blocks();
    assert!((256..=259).contains(&used), "used {used}");
    fs.delete("x").unwrap();
    // Everything returns except the root-directory block.
    assert!(free0 - fs.free_blocks() <= 1);
}

#[test]
fn vld_recovers_from_a_serialized_disk_image() {
    // Crash a VLD, serialise the raw disk to bytes (as a tool would to a
    // file), load it "in another process", and recover.
    use vlfs::disksim::Disk;
    let spec = DiskSpec::st19101_sim();
    let mut v = Vld::format(spec.clone(), SimClock::new(), VldConfig::default());
    for lb in 0..300u64 {
        v.write_block(lb, &vec![lb as u8; 4096]).unwrap();
    }
    let disk = v.crash();
    let mut image = Vec::new();
    disk.save_image(&mut image).unwrap();

    let loaded = Disk::load_image(
        {
            let mut s = spec.clone();
            s.command_overhead_ns = 0; // the VLD's internal disk convention
            s
        },
        SimClock::new(),
        &mut image.as_slice(),
    )
    .unwrap();
    let (mut v2, report) =
        Vld::recover(loaded, spec.command_overhead_ns, VldConfig::default()).unwrap();
    assert!(report.pieces_recovered > 0);
    for lb in (0..300u64).step_by(23) {
        let mut buf = vec![0u8; 4096];
        v2.read_block(lb, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == lb as u8), "block {lb}");
    }
}

#[test]
fn zoned_disk_supports_the_full_stack() {
    // A two-zone drive (denser outer tracks): the whole stack — geometry,
    // free map, eager allocation, UFS — must work across the zone boundary.
    use vlfs::disksim::{DiskSpec, Geometry, Zone};
    let mut spec = DiskSpec::st19101_sim();
    spec.geometry = Geometry::zoned(
        8,
        vec![
            Zone {
                first_cyl: 0,
                cylinders: 6,
                sectors_per_track: 256,
            },
            Zone {
                first_cyl: 6,
                cylinders: 8,
                sectors_per_track: 128,
            },
        ],
    );
    let dev = Box::new(RegularDisk::new(spec.clone(), SimClock::new(), 4096));
    let mut fs = Ufs::format(dev, HostModel::instant(), UfsConfig::default()).unwrap();
    let f = fs.create("zoned").unwrap();
    let data: Vec<u8> = (0..2_000_000u32).map(|i| i as u8).collect();
    fs.write(f, 0, &data).unwrap();
    fs.sync().unwrap();
    fs.drop_caches();
    let mut out = vec![0u8; data.len()];
    assert_eq!(fs.read(f, 0, &mut out).unwrap(), data.len());
    assert_eq!(out, data);

    // And the VLD on the same zoned drive.
    let mut vld = Vld::format(spec, SimClock::new(), VldConfig::default());
    for lb in 0..500u64 {
        vld.write_block(lb, &vec![lb as u8; 4096]).unwrap();
    }
    vld.idle(5_000_000_000); // compaction across zones
    for lb in (0..500u64).step_by(37) {
        let mut buf = vec![0u8; 4096];
        vld.read_block(lb, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == lb as u8), "zoned VLD block {lb}");
    }
}

#[test]
fn lfs_stack_crash_and_roll_forward() {
    // Full stack: files through UFS-over-LLD, sync, more writes, crash,
    // remount. Synced files must survive; the post-sync tail may be lost
    // but never torn.
    use vlfs::lfs::{LldConfig, LogDisk};
    let raw = regular(DiskSpec::st19101_sim());
    let mut fs = lfs_filesystem(raw, HostModel::instant(), LfsConfig::default()).unwrap();
    for i in 0..40 {
        let f = fs.create(&format!("durable{i}")).unwrap();
        fs.write(f, 0, &vec![i as u8; 8000]).unwrap();
    }
    fs.sync().unwrap();
    // Post-sync writes: not durable unless a segment happened to flush.
    for i in 0..10 {
        let f = fs.create(&format!("maybe{i}")).unwrap();
        fs.write(f, 0, &vec![0xEE; 4000]).unwrap();
    }
    // Crash: unwrap the stack down to the raw device.
    let dev = fs.into_device();
    let lld: Box<LogDisk> = unsafe {
        // SAFETY: constructed as Box<LogDisk> by lfs_filesystem.
        Box::from_raw(Box::into_raw(dev) as *mut LogDisk)
    };
    let raw = lld.crash();
    let lld = LogDisk::mount(raw, LldConfig::default()).unwrap();
    let mut fs = Ufs::mount(Box::new(lld), HostModel::instant()).unwrap();
    for i in 0..40 {
        let f = fs
            .open(&format!("durable{i}"))
            .unwrap_or_else(|e| panic!("synced file durable{i} lost: {e}"));
        let mut out = vec![0u8; 8000];
        assert_eq!(fs.read(f, 0, &mut out).unwrap(), 8000);
        assert!(out.iter().all(|&b| b == i as u8), "durable{i} corrupted");
    }
}
