//! Crash-point exploration across the paper's three stacks (Figure 5):
//! UFS on a regular disk, UFS on the virtual-log disk, and the UFS file
//! layer on the log-structured logical disk.
//!
//! The tier-1 tests sweep *every* crash point of the small mixed workload
//! exhaustively, with torn-write variants on the raw-disk stacks and the
//! recovery-path convergence checks enabled. The `#[ignore]`d tests run
//! the larger churn workload under seeded sampling — same invariants, more
//! state (name reuse, on-demand cleaning, bigger files).

use crashtest::{run_sweep, StackKind, SweepConfig, Workload};

#[test]
fn exhaustive_crash_sweep_ufs_regular() {
    let rep = run_sweep(&SweepConfig::exhaustive(StackKind::UfsRegular));
    assert!(rep.points_run as u64 > rep.total_ops, "torn variants missing");
    rep.assert_clean();
}

#[test]
fn exhaustive_crash_sweep_ufs_vld() {
    let rep = run_sweep(&SweepConfig::exhaustive(StackKind::UfsVld));
    assert!(rep.total_ops > 0);
    rep.assert_clean();
}

#[test]
fn exhaustive_crash_sweep_ufs_lfs() {
    let rep = run_sweep(&SweepConfig::exhaustive(StackKind::UfsLfs));
    assert!(rep.frontier_ops.len() == 3);
    rep.assert_clean();
}

fn churn_cfg(kind: StackKind, points: usize, seed: u64) -> SweepConfig {
    let mut cfg = SweepConfig::sampled(kind, points, seed);
    cfg.workload = Workload::churn(24);
    cfg
}

#[test]
#[ignore = "large sampled sweep; run explicitly"]
fn sampled_churn_sweep_ufs_regular() {
    run_sweep(&churn_cfg(StackKind::UfsRegular, 48, 0x5eed_0001)).assert_clean();
}

#[test]
#[ignore = "large sampled sweep; run explicitly"]
fn sampled_churn_sweep_ufs_vld() {
    run_sweep(&churn_cfg(StackKind::UfsVld, 48, 0x5eed_0002)).assert_clean();
}

#[test]
#[ignore = "large sampled sweep; run explicitly"]
fn sampled_churn_sweep_ufs_lfs() {
    run_sweep(&churn_cfg(StackKind::UfsLfs, 48, 0x5eed_0003)).assert_clean();
}
