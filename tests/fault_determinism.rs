//! Determinism of the fault layer: the same seed/plan against the same
//! workload must leave a byte-identical post-crash disk image, whatever
//! the cut point, torn-sector count, or stack. This is the property the
//! whole crash-point exploration harness rests on — if it ever breaks,
//! crash points stop being reproducible coordinates.

use proptest::prelude::*;

use crashtest::{apply, build, teardown, StackKind, Workload};
use vlfs::disksim::{FaultPlan, WriteFault};

/// Run the standard workload to the crash (or the end) and serialize the
/// surviving media.
fn image_after(kind: StackKind, plan: &FaultPlan) -> Vec<u8> {
    let w = Workload::small_mixed();
    let mut fs = build(kind, plan.clone()).expect("format under plan");
    let _ = apply(&mut fs, &w.ops); // a power cut aborts the script mid-way
    let st = teardown(kind, fs);
    let mut img = Vec::new();
    st.disk.save_image(&mut img).expect("image serializes");
    img
}

/// Device writes the format itself performs, per stack — cut points are
/// offset past this so `build` always succeeds.
fn format_ops(kind: StackKind) -> u64 {
    let fs = build(kind, FaultPlan::none()).expect("format");
    teardown(kind, fs).ops
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Torn power cuts on the raw-disk stacks: identical plan, identical
    /// image, twice over.
    #[test]
    fn torn_cut_images_are_reproducible(cut in 1u64..50, survivors in 0u32..8) {
        for kind in [StackKind::UfsRegular, StackKind::UfsLfs] {
            let plan = FaultPlan::torn_power_cut(format_ops(kind) + cut, survivors);
            prop_assert_eq!(
                image_after(kind, &plan),
                image_after(kind, &plan),
                "{:?}: same plan, different image",
                kind
            );
        }
    }

    /// Clean cuts at the VLD command boundary are just as reproducible.
    #[test]
    fn vld_cut_images_are_reproducible(cut in 0u64..50) {
        let plan = FaultPlan::power_cut_after(format_ops(StackKind::UfsVld) + cut);
        prop_assert_eq!(
            image_after(StackKind::UfsVld, &plan),
            image_after(StackKind::UfsVld, &plan)
        );
    }

    /// Corruption faults derive their byte flips from the seed alone:
    /// same seed twice = same image; different seeds diverge (the flip
    /// really happened and really is seed-driven). Power is cut right
    /// after the corrupt write so the corrupted state is what survives —
    /// otherwise the workload's later writes can paper over it.
    #[test]
    fn corruption_is_seed_deterministic(op in 1u64..30, seed in any::<u64>()) {
        let kind = StackKind::UfsRegular;
        let target = format_ops(kind) + op;
        let cut = WriteFault::PowerCut { survivors: 0 };
        let plan = FaultPlan::corrupt_write(target, seed).with(target + 1, cut);
        let a = image_after(kind, &plan);
        prop_assert_eq!(&a, &image_after(kind, &plan));
        let other = FaultPlan::corrupt_write(target, seed ^ 0x1234_5678).with(target + 1, cut);
        prop_assert_ne!(&a, &image_after(kind, &other));
    }
}
