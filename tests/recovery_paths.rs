//! The virtual log's two recovery paths and its transaction atomicity,
//! exercised at the integration level:
//!
//! * a corrupt firmware tail record (bad checksum) must push recovery onto
//!   the scan fallback, which finds the youngest log root by itself and
//!   rebuilds the *same* state the tail path would have;
//! * a multi-piece atomic transaction cut mid-commit (parts appended, no
//!   commit record) must be invisible after recovery — old contents
//!   survive, new contents do not.

use vlfs::disksim::{BlockDevice, Disk, DiskSpec, SimClock, SECTOR_BYTES};
use vlfs::vlog::{MapFlags, TxnInfo, Vld, VldConfig, PIECE_ENTRIES, TAIL_LBA};

fn spec() -> DiskSpec {
    DiskSpec::hp97560_sim()
}

fn block(fill: u8) -> Vec<u8> {
    vec![fill; 4096]
}

/// Deterministic setup: format, write a spread of blocks, shut down in an
/// orderly fashion. Two calls produce byte-identical disks.
fn shutdown_disk() -> Disk {
    let mut vld = Vld::format(spec(), SimClock::new(), VldConfig::default());
    for i in 0..40u64 {
        vld.write_block(i * 3, &block(i as u8)).unwrap();
    }
    for i in 0..10u64 {
        vld.write_block(i * 3, &block(0xA0 + i as u8)).unwrap(); // overwrites
    }
    vld.shutdown().unwrap();
    vld.crash()
}

fn recovered_map(vld: &Vld) -> Vec<Option<u64>> {
    (0..vld.num_blocks()).map(|lb| vld.vlog().translate(lb)).collect()
}

#[test]
fn corrupt_tail_checksum_falls_back_to_scan() {
    let o = spec().command_overhead_ns;

    // Reference: clean recovery rides the tail record.
    let (clean, rep) = Vld::recover(shutdown_disk(), o, VldConfig::default()).unwrap();
    assert!(rep.used_tail, "clean shutdown must leave a usable tail");
    assert_eq!(rep.scanned_sectors, 0);
    let want = recovered_map(&clean);

    // Same image, but flip a byte inside the tail record's root field: the
    // magic and version still parse, the checksum must not.
    let mut disk = shutdown_disk();
    let mut sector = vec![0u8; SECTOR_BYTES];
    disk.peek_sectors(TAIL_LBA, &mut sector).unwrap();
    sector[10] ^= 0xFF;
    disk.poke_sectors(TAIL_LBA, &sector).unwrap();

    let (mut scanned, rep) = Vld::recover(disk, o, VldConfig::default()).unwrap();
    assert!(!rep.used_tail, "corrupt tail checksum must be rejected");
    assert!(rep.scanned_sectors > 0, "scan fallback must actually scan");
    assert!(rep.pieces_recovered > 0);
    assert_eq!(
        recovered_map(&scanned),
        want,
        "scan fallback must converge on the tail path's map"
    );
    assert!(scanned.vlog().check_consistency().is_empty());

    // And the youngest data is there, not just the map shape.
    let mut buf = block(0);
    scanned.read_block(9, &mut buf).unwrap(); // lb 9 = i 3, overwritten pass
    assert!(buf.iter().all(|&b| b == 0xA3));
}

#[test]
fn uncommitted_transaction_is_invisible_after_crash() {
    let mut vld = Vld::format(spec(), SimClock::new(), VldConfig::default());
    let lb_a = 1u64;
    let lb_b = PIECE_ENTRIES as u64 + 1; // a different map piece
    vld.write_block(lb_a, &block(0x11)).unwrap();
    vld.write_block(lb_b, &block(0x22)).unwrap();

    // Start a two-piece atomic transaction by hand: eager-write both data
    // blocks and append the first piece as TXN_PART — then crash before
    // the commit record exists.
    let vlog = vld.vlog_mut();
    vlog.write_data_block_for_test(lb_a, &block(0xEE));
    vlog.write_data_block_for_test(lb_b, &block(0xEF));
    let piece_a = (lb_a as usize / PIECE_ENTRIES) as u32;
    vlog.append_piece_for_test(
        piece_a,
        MapFlags::TXN_PART,
        Some(TxnInfo { id: 0xDEAD, index: 0, total: 2 }),
    );

    let o = spec().command_overhead_ns;
    let (mut v2, rep) = Vld::recover(vld.crash(), o, VldConfig::default()).unwrap();
    assert!(!rep.used_tail);
    assert!(
        rep.uncommitted_skipped > 0,
        "recovery must skip the commit-less transaction part"
    );
    // No partial visibility: both blocks read back their pre-transaction
    // contents.
    let mut buf = block(0);
    v2.read_block(lb_a, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x11), "lb_a shows partial txn state");
    v2.read_block(lb_b, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x22), "lb_b shows partial txn state");
    assert!(v2.vlog().check_consistency().is_empty());
}

#[test]
fn committed_transaction_is_fully_visible_after_crash() {
    let mut vld = Vld::format(spec(), SimClock::new(), VldConfig::default());
    let lb_a = 1u64;
    let lb_b = PIECE_ENTRIES as u64 + 1;
    vld.write_block(lb_a, &block(0x11)).unwrap();
    vld.write_block(lb_b, &block(0x22)).unwrap();
    let a = block(0xEE);
    let b = block(0xEF);
    vld.write_atomic(&[(lb_a, &a[..]), (lb_b, &b[..])]).unwrap();

    let o = spec().command_overhead_ns;
    let (mut v2, _rep) = Vld::recover(vld.crash(), o, VldConfig::default()).unwrap();
    let mut buf = block(0);
    v2.read_block(lb_a, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0xEE));
    v2.read_block(lb_b, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0xEF));
    assert!(v2.vlog().check_consistency().is_empty());
}
