//! Property-based tests: random workloads model-checked against simple
//! in-memory reference models, including crash/recovery equivalence.

use proptest::prelude::*;
use std::collections::HashMap;

use vlfs::disksim::{BlockDevice, Disk, DiskSpec, SimClock};
use vlfs::fscore::{FileSystem, HostModel};
use vlfs::ufs::{Ufs, UfsConfig};
use vlfs::vlog::{AllocConfig, EagerAllocator, FreeMap, VirtualLog, Vld, VldConfig};

/// A small drive keeps the state space tight while still spanning several
/// cylinders and tracks.
fn small_spec() -> DiskSpec {
    DiskSpec::st19101(3)
}

/// One step of the virtual-log model check.
#[derive(Debug, Clone)]
enum VlogOp {
    /// Write `fill` to logical block `lb`.
    Write { lb: u64, fill: u8 },
    /// Atomic batch write.
    Batch { lbs: Vec<u64>, fill: u8 },
    /// Trim a logical block.
    Trim { lb: u64 },
    /// Grant idle time (compaction + checkpoint).
    Idle,
    /// Orderly shutdown, then recover.
    ShutdownRecover,
    /// Power failure, then recover (scan fallback).
    CrashRecover,
}

fn vlog_op(max_lb: u64) -> impl Strategy<Value = VlogOp> {
    prop_oneof![
        6 => (0..max_lb, any::<u8>()).prop_map(|(lb, fill)| VlogOp::Write { lb, fill }),
        2 => (proptest::collection::vec(0..max_lb, 1..6), any::<u8>())
            .prop_map(|(lbs, fill)| VlogOp::Batch { lbs, fill }),
        1 => (0..max_lb).prop_map(|lb| VlogOp::Trim { lb }),
        1 => Just(VlogOp::Idle),
        1 => Just(VlogOp::ShutdownRecover),
        1 => Just(VlogOp::CrashRecover),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The VLD behaves exactly like a HashMap of blocks, across writes,
    /// trims, batches, compaction, and both recovery paths.
    #[test]
    fn vld_matches_block_model(ops in proptest::collection::vec(vlog_op(96), 1..40)) {
        let spec = small_spec();
        let o = spec.command_overhead_ns;
        let cfg = VldConfig::default();
        let mut vld = Vld::format(spec, SimClock::new(), cfg);
        let max_lb = 96u64.min(vld.num_blocks());
        let mut model: HashMap<u64, u8> = HashMap::new();
        let block = |fill: u8| vec![fill; 4096];

        for op in ops {
            match op {
                VlogOp::Write { lb, fill } if lb < max_lb => {
                    vld.write_block(lb, &block(fill)).unwrap();
                    model.insert(lb, fill);
                }
                VlogOp::Batch { lbs, fill } => {
                    let data = block(fill);
                    let batch: Vec<(u64, &[u8])> = lbs
                        .iter()
                        .filter(|&&lb| lb < max_lb)
                        .map(|&lb| (lb, data.as_slice()))
                        .collect();
                    if !batch.is_empty() {
                        vld.write_atomic(&batch).unwrap();
                        for (lb, _) in batch {
                            model.insert(lb, fill);
                        }
                    }
                }
                VlogOp::Trim { lb } if lb < max_lb => {
                    vld.trim(lb).unwrap();
                    model.remove(&lb);
                }
                VlogOp::Idle => {
                    vld.idle(500_000_000);
                }
                VlogOp::ShutdownRecover => {
                    vld.shutdown().unwrap();
                    let disk = vld.crash();
                    let (v, report) = Vld::recover(disk, o, cfg).unwrap();
                    prop_assert!(report.used_tail);
                    vld = v;
                }
                VlogOp::CrashRecover => {
                    let disk = vld.crash();
                    let (v, report) = Vld::recover(disk, o, cfg).unwrap();
                    prop_assert!(!report.used_tail);
                    prop_assert!(report.scanned_sectors > 0);
                    vld = v;
                }
                _ => {}
            }
        }
        // Final audit: every model block reads back; unmapped blocks zero.
        let mut buf = vec![0u8; 4096];
        for lb in 0..max_lb {
            vld.read_block(lb, &mut buf).unwrap();
            match model.get(&lb) {
                Some(&fill) => prop_assert!(
                    buf.iter().all(|&b| b == fill),
                    "block {lb} expected fill {fill}"
                ),
                None => prop_assert!(
                    buf.iter().all(|&b| b == 0),
                    "unmapped block {lb} should read zero"
                ),
            }
        }
    }

    /// The eager allocator only ever returns genuinely free, in-bounds,
    /// aligned candidates, and its cost prediction matches the disk model.
    #[test]
    fn allocator_candidates_are_valid(
        occupied in proptest::collection::vec((0u32..3, 0u32..16, 0u32..32), 0..120),
        one_way in any::<bool>(),
    ) {
        let mut spec = small_spec();
        spec.command_overhead_ns = 0;
        let disk = Disk::new(spec.clone(), SimClock::new());
        let mut free = FreeMap::new(&spec.geometry);
        for (cyl, track, slot) in occupied {
            free.allocate(cyl, track, slot * 8, 8).unwrap();
        }
        let mut alloc = EagerAllocator::new(AllocConfig {
            one_way_sweep: one_way,
            ..AllocConfig::default()
        });
        if let Some(c) = alloc.find_block(&disk, &free) {
            prop_assert!(free.run_free(c.cyl, c.track, c.sector, 8));
            prop_assert_eq!(c.sector % 8, 0, "aligned");
            let cost = disk.position_cost(c.cyl, c.track, c.sector).unwrap();
            prop_assert_eq!(cost.locate_ns(), c.cost.locate_ns());
        }
        if let Some(c) = alloc.find_sector(&disk, &free) {
            prop_assert!(free.is_free(c.cyl, c.track, c.sector));
        }
    }

    /// Formula (1) equals the exact combinatorial recurrence everywhere.
    #[test]
    fn single_track_model_is_exact(n in 1u64..300, k_frac in 0.0f64..=1.0) {
        let k = (n as f64 * k_frac) as u64;
        let closed = vlfs::models::single_track::expected_skips_exact(n, k);
        let rec = vlfs::models::single_track::expected_skips_recurrence(n, k);
        prop_assert!((closed - rec).abs() < 1e-6, "n={n} k={k}: {closed} vs {rec}");
    }

    /// The cylinder model's closed form equals its defining double sum.
    #[test]
    fn cylinder_model_closed_form(
        p in 0.02f64..0.95,
        s in 1u64..40,
        t in 2u32..20,
    ) {
        let sum = vlfs::models::cylinder::expected_latency_sum(p, s, t, 3000);
        let closed = vlfs::models::cylinder::expected_latency(p, s, t);
        prop_assert!((sum - closed).abs() < 1e-4, "p={p} s={s} t={t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// UFS behaves like a map of named byte vectors under random small
    /// operations, including across sync + cache drops.
    #[test]
    fn ufs_matches_file_model(
        ops in proptest::collection::vec(
            (0u8..4, 0u8..6, 0u32..20_000, 0u16..5000), 1..30
        )
    ) {
        let dev = Box::new(vlfs::disksim::RegularDisk::new(
            small_spec(),
            SimClock::new(),
            4096,
        ));
        let mut fs = Ufs::format(dev, HostModel::instant(), UfsConfig::default()).unwrap();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for (kind, name_i, off, len) in ops {
            let name = format!("f{name_i}");
            match kind {
                0 => {
                    // create
                    let r = fs.create(&name);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(name) {
                        prop_assert!(r.is_ok());
                        e.insert(Vec::new());
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                1 => {
                    // write
                    if let Some(content) = model.get_mut(&name) {
                        let f = fs.open(&name).unwrap();
                        let data = vec![(off as u8) ^ (len as u8); len as usize];
                        fs.write(f, off as u64, &data).unwrap();
                        let end = off as usize + data.len();
                        if content.len() < end {
                            content.resize(end, 0);
                        }
                        content[off as usize..end].copy_from_slice(&data);
                    } else {
                        prop_assert!(fs.open(&name).is_err());
                    }
                }
                2 => {
                    // delete
                    let r = fs.delete(&name);
                    prop_assert_eq!(r.is_ok(), model.remove(&name).is_some());
                }
                _ => {
                    // sync + drop caches
                    fs.sync().unwrap();
                    fs.drop_caches();
                }
            }
        }
        fs.sync().unwrap();
        fs.drop_caches();
        for (name, content) in &model {
            let f = fs.open(name).unwrap();
            prop_assert_eq!(fs.file_size(f).unwrap(), content.len() as u64);
            let mut out = vec![0u8; content.len()];
            fs.read(f, 0, &mut out).unwrap();
            prop_assert_eq!(&out, content, "{} diverged", name);
        }
    }
}

/// Crash-atomicity: write_atomic batches are all-or-nothing even when the
/// crash lands between the data writes and the commit (simulated by
/// crashing immediately after — the commit is on disk, so "all").
#[test]
fn atomic_batches_never_tear() {
    let spec = small_spec();
    let o = spec.command_overhead_ns;
    let cfg = VldConfig::default();
    let mut vld = Vld::format(spec, SimClock::new(), cfg);
    // Base state.
    for lb in 0..60u64 {
        vld.write_block(lb, &vec![1u8; 4096]).unwrap();
    }
    // Committed transaction spanning pieces, then crash.
    let data = vec![2u8; 4096];
    let far = vld.num_blocks() - 2;
    let batch: Vec<(u64, &[u8])> = vec![(0, &data), (30, &data), (far, &data)];
    vld.write_atomic(&batch).unwrap();
    let disk = vld.crash();
    let (mut vld, _) = Vld::recover(disk, o, cfg).unwrap();
    let mut buf = vec![0u8; 4096];
    for &lb in &[0u64, 30, far] {
        vld.read_block(lb, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == 2),
            "committed batch must be visible"
        );
    }
    for &lb in &[1u64, 29, 59] {
        vld.read_block(lb, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1), "other blocks untouched");
    }
}

/// Uncommitted transaction parts are invisible after recovery: simulate a
/// torn transaction by writing parts through the internals without the
/// commit record.
#[test]
fn uncommitted_parts_are_invisible() {
    use vlfs::vlog::{MapFlags, TxnInfo};
    let spec = small_spec();
    let mut internal = spec.clone();
    internal.command_overhead_ns = 0;
    let mut vlog = VirtualLog::format(Disk::new(internal, SimClock::new()), AllocConfig::default());
    // Committed base.
    vlog.write(5, &vec![7u8; 4096]).unwrap();
    // Hand-craft a torn transaction: part without commit.
    vlog.write_data_block_for_test(5, &vec![9u8; 4096]);
    vlog.append_piece_for_test(
        0,
        MapFlags::TXN_PART,
        Some(TxnInfo {
            id: 99,
            index: 0,
            total: 2,
        }),
    );
    let disk = vlog.crash();
    let (mut vlog, report) = VirtualLog::recover(disk, AllocConfig::default()).unwrap();
    assert!(report.uncommitted_skipped >= 1, "part must be recognised");
    let mut buf = vec![0u8; 4096];
    vlog.read(5, &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == 7),
        "uncommitted overwrite must roll back to the committed value"
    );
}
