//! Quickstart: eager writing versus update-in-place, in thirty lines.
//!
//! Builds the same simulated Seagate drive twice — once as a regular
//! update-in-place disk, once as a Virtual Log Disk — and issues the same
//! random synchronous 4 KB writes to both, printing the per-write latency.
//!
//! Run with: `cargo run --release --example quickstart`

use vlfs::disksim::{BlockDevice, DiskSpec, RegularDisk, SimClock};
use vlfs::vlog::{Vld, VldConfig};

fn main() {
    let spec = DiskSpec::st19101_sim();
    println!(
        "drive: {} ({} cylinders, {} RPM, half rotation {:.1} ms)\n",
        spec.name,
        spec.geometry.cylinders(),
        spec.mech.rpm,
        vlfs::disksim::ns_to_ms(spec.half_rotation_ns()),
    );

    let mut regular = RegularDisk::new(spec.clone(), SimClock::new(), 4096);
    let mut vld = Vld::format(spec, SimClock::new(), VldConfig::default());

    // The same pseudo-random single-block update stream for both devices.
    let span = regular.num_blocks().min(vld.num_blocks()) / 2;
    let block = vec![0xDBu8; 4096];
    let (mut t_reg, mut t_vld) = (0u64, 0u64);
    let mut x = 88172645463325252u64;
    const N: u64 = 500;
    for _ in 0..N {
        // xorshift64
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let lb = x % span;
        t_reg += regular
            .write_block(lb, &block)
            .expect("in range")
            .total_ns();
        t_vld += vld.write_block(lb, &block).expect("in range").total_ns();
    }

    let reg_ms = t_reg as f64 / N as f64 / 1e6;
    let vld_ms = t_vld as f64 / N as f64 / 1e6;
    println!("random synchronous 4 KB writes, mean latency over {N} writes:");
    println!("  update-in-place : {reg_ms:.3} ms");
    println!("  virtual log disk: {vld_ms:.3} ms");
    println!("  speedup         : {:.1}x", reg_ms / vld_ms);
    println!(
        "\nvirtual log state: {} data writes, {} map appends, utilization {:.1}%",
        vld.vlog().stats().data_writes,
        vld.vlog().stats().map_writes,
        vld.vlog().utilization() * 100.0
    );
}
