//! A mail-server-style small-file workload on full file-system stacks.
//!
//! Mail spools are the classic synchronous-small-write victim: each
//! delivery creates a small file and must be durable before the SMTP
//! acknowledgement. This example delivers, re-reads, and expunges messages
//! on all four of the paper's system combinations (UFS/LFS × regular/VLD)
//! and prints per-phase times.
//!
//! Run with: `cargo run --release --example mail_server`

use vlfs::disksim::{BlockDevice, DiskSpec, RegularDisk, SimClock};
use vlfs::fscore::{FileSystem, HostModel};
use vlfs::lfs::{lfs_filesystem, LfsConfig};
use vlfs::ufs::{Ufs, UfsConfig};
use vlfs::vlog::{Vld, VldConfig};

const MESSAGES: u32 = 400;

fn stack(fs_kind: &str, dev_kind: &str) -> Ufs {
    let spec = DiskSpec::st19101_sim();
    let dev: Box<dyn BlockDevice> = match dev_kind {
        "regular" => Box::new(RegularDisk::new(spec, SimClock::new(), 4096)),
        _ => Box::new(Vld::format(spec, SimClock::new(), VldConfig::default())),
    };
    let host = HostModel::sparcstation_10();
    match fs_kind {
        "ufs" => Ufs::format(dev, host, UfsConfig::default()).expect("format"),
        _ => lfs_filesystem(dev, host, LfsConfig::default()).expect("format"),
    }
}

fn main() {
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "system", "deliver (s)", "scan (s)", "expunge (s)"
    );
    for (fs_kind, dev_kind) in [
        ("ufs", "regular"),
        ("ufs", "vld"),
        ("lfs", "regular"),
        ("lfs", "vld"),
    ] {
        let mut fs = stack(fs_kind, dev_kind);
        if fs_kind == "ufs" {
            fs.set_sync_writes(true); // durable before the SMTP ack
        }
        let clock = fs.clock();

        // Deliveries: create + write a ~2 KB message + (for LFS) sync.
        let body = vec![0x6Du8; 2048];
        let t0 = clock.now();
        for m in 0..MESSAGES {
            let f = fs.create(&format!("msg{m:06}")).expect("create");
            fs.write(f, 0, &body).expect("write");
        }
        fs.sync().expect("sync");
        let deliver = clock.now() - t0;

        // Mailbox scan: cold re-read of every message.
        fs.drop_caches();
        let t0 = clock.now();
        let mut buf = vec![0u8; 2048];
        for m in 0..MESSAGES {
            let f = fs.open(&format!("msg{m:06}")).expect("open");
            fs.read(f, 0, &mut buf).expect("read");
        }
        let scan = clock.now() - t0;

        // Expunge: delete the older half.
        let t0 = clock.now();
        for m in 0..MESSAGES / 2 {
            fs.delete(&format!("msg{m:06}")).expect("delete");
        }
        fs.sync().expect("sync");
        let expunge = clock.now() - t0;

        println!(
            "{:<18} {:>12.3} {:>12.3} {:>12.3}",
            format!("{fs_kind} on {dev_kind}"),
            deliver as f64 / 1e9,
            scan as f64 / 1e9,
            expunge as f64 / 1e9
        );
    }
    println!(
        "\n(UFS delivers synchronously; LFS buffers and logs — the paper's Figure 6 in miniature)"
    );
}
