//! Database-style transaction commits on the virtual log.
//!
//! The paper motivates eager writing with "recoverable virtual memory,
//! persistent object stores, and database applications" whose performance
//! hinges on small synchronous writes. This example models a TPC-B-ish
//! commit stream: each transaction dirties a few 4 KB pages scattered
//! across a database file and must make them durable *atomically* before
//! the next transaction starts.
//!
//! Three configurations are compared:
//!
//! 1. update-in-place pages, forced synchronously (classic no-log UFS);
//! 2. the same pages on a Virtual Log Disk, one atomic multi-block
//!    transaction each (the virtual log's commit record makes the batch
//!    all-or-nothing);
//! 3. after a simulated crash mid-stream, recovery shows the atomicity
//!    guarantee held.
//!
//! Run with: `cargo run --release --example database_commit`

use vlfs::disksim::{BlockDevice, DiskSpec, RegularDisk, SimClock};
use vlfs::vlog::{Vld, VldConfig};

/// Pages touched per transaction.
const PAGES_PER_TXN: usize = 4;
/// Transactions to run.
const TXNS: u64 = 300;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 16
}

fn main() {
    let spec = DiskSpec::st19101_sim();

    // --- 1. update-in-place commits ------------------------------------
    let mut reg = RegularDisk::new(spec.clone(), SimClock::new(), 4096);
    let db_pages = reg.num_blocks() / 2;
    let page = vec![0x11u8; 4096];
    let mut seed = 42u64;
    let mut t_reg = 0u64;
    for _ in 0..TXNS {
        for _ in 0..PAGES_PER_TXN {
            let p = lcg(&mut seed) % db_pages;
            t_reg += reg.write_block(p, &page).expect("in range").total_ns();
        }
    }

    // --- 2. atomic commits on the VLD -----------------------------------
    let mut vld = Vld::format(spec.clone(), SimClock::new(), VldConfig::default());
    let mut seed = 42u64;
    let mut t_vld = 0u64;
    for txn in 0..TXNS {
        let pages: Vec<u64> = (0..PAGES_PER_TXN)
            .map(|_| lcg(&mut seed) % db_pages)
            .collect();
        let payload = vec![txn as u8; 4096];
        let batch: Vec<(u64, &[u8])> = pages.iter().map(|&p| (p, payload.as_slice())).collect();
        t_vld += vld.write_atomic(&batch).expect("commit fits").total_ns();
    }

    let per_txn = |ns: u64| ns as f64 / TXNS as f64 / 1e6;
    println!("commit stream: {TXNS} transactions x {PAGES_PER_TXN} pages");
    println!("  update-in-place, per txn : {:.2} ms", per_txn(t_reg));
    println!("  VLD atomic txn, per txn  : {:.2} ms", per_txn(t_vld));
    println!(
        "  speedup                  : {:.1}x\n",
        per_txn(t_reg) / per_txn(t_vld)
    );

    // --- 3. crash + recovery: atomicity check ---------------------------
    // Write one more transaction and crash WITHOUT an orderly shutdown;
    // recovery must see either all or none of it (here: all, since the
    // commit record reached the disk).
    let marker_pages = [1u64, 1000, 2000, 3000];
    let payload = vec![0xEEu8; 4096];
    let batch: Vec<(u64, &[u8])> = marker_pages
        .iter()
        .map(|&p| (p, payload.as_slice()))
        .collect();
    vld.write_atomic(&batch).expect("commit fits");
    let disk = vld.crash();

    let o = spec.command_overhead_ns;
    let (mut recovered, report) =
        Vld::recover(disk, o, VldConfig::default()).expect("recovery succeeds");
    println!(
        "crash recovery: tail={} scan={} sectors, traversed {} log entries in {:.1} ms",
        report.used_tail,
        report.scanned_sectors,
        report.sectors_traversed,
        report.service.total_ms()
    );
    let mut buf = vec![0u8; 4096];
    for &p in &marker_pages {
        recovered.read_block(p, &mut buf).expect("in range");
        assert!(buf.iter().all(|&b| b == 0xEE), "page {p} lost after crash");
    }
    println!("last transaction intact after crash: atomic commit verified");
}
