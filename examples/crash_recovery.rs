//! Crash-recovery walkthrough: the virtual log's three boot paths.
//!
//! 1. **Orderly shutdown** — the firmware power-down sequence records the
//!    log tail at a fixed location; recovery boots from it and touches only
//!    the live log entries.
//! 2. **Power failure** — no tail record (it is cleared after every
//!    recovery, so it can never be trusted stale); recovery falls back to
//!    scanning the disk for self-identifying map entries, then runs the
//!    same tree traversal.
//! 3. **Torn transaction** — a crash between the parts of a multi-block
//!    atomic write; recovery recognises the missing commit record and keeps
//!    the pre-transaction state.
//!
//! Run with: `cargo run --release --example crash_recovery`

use vlfs::disksim::{BlockDevice, DiskSpec, SimClock};
use vlfs::vlog::{Vld, VldConfig};

fn check(vld: &mut Vld, lb: u64, want: u8) -> bool {
    let mut buf = vec![0u8; 4096];
    vld.read_block(lb, &mut buf).expect("in range");
    buf.iter().all(|&b| b == want)
}

fn main() {
    let spec = DiskSpec::st19101_sim();
    let o = spec.command_overhead_ns;
    let cfg = VldConfig::default();

    // ---------- path 1: orderly shutdown --------------------------------
    let mut vld = Vld::format(spec.clone(), SimClock::new(), cfg);
    for lb in 0..200u64 {
        vld.write_block(lb, &vec![lb as u8; 4096]).expect("write");
    }
    vld.shutdown().expect("park");
    let disk = vld.crash();
    let (mut vld, report) = Vld::recover(disk, o, cfg).expect("recover");
    println!(
        "orderly shutdown : tail record used = {}, scanned {} sectors, \
         traversed {} entries, {:.2} ms",
        report.used_tail,
        report.scanned_sectors,
        report.sectors_traversed,
        report.service.total_ms()
    );
    assert!(check(&mut vld, 199, 199));

    // ---------- path 2: power failure (scan fallback) --------------------
    for lb in 200..300u64 {
        vld.write_block(lb, &vec![lb as u8; 4096]).expect("write");
    }
    let disk = vld.crash(); // no shutdown!
    let (mut vld, report) = Vld::recover(disk, o, cfg).expect("recover");
    println!(
        "power failure    : tail record used = {}, scanned {} sectors, \
         traversed {} entries, {:.2} ms",
        report.used_tail,
        report.scanned_sectors,
        report.sectors_traversed,
        report.service.total_ms()
    );
    assert!(check(&mut vld, 150, 150), "old data survived");
    assert!(check(&mut vld, 299, 299u64 as u8), "new data survived");

    // ---------- path 3: torn transaction ---------------------------------
    // Commit a baseline atomically, then simulate a crash that loses the
    // in-memory state right after (the sim cannot tear a single sector, so
    // we demonstrate the *committed* path and the report's accounting of
    // uncommitted parts instead).
    let marker: Vec<u8> = vec![0xAB; 4096];
    let far = 2000u64;
    let batch: Vec<(u64, &[u8])> = vec![(5, marker.as_slice()), (far, marker.as_slice())];
    vld.write_atomic(&batch).expect("commit");
    let disk = vld.crash();
    let (mut vld, report) = Vld::recover(disk, o, cfg).expect("recover");
    println!(
        "after atomic txn : committed batch visible = {}, uncommitted parts skipped = {}",
        check(&mut vld, 5, 0xAB) && check(&mut vld, far, 0xAB),
        report.uncommitted_skipped
    );
    println!("\nall three recovery paths verified");
}
