//! Queue sorting vs eager writing — the paper's §5.2 argument, runnable.
//!
//! "The performance of this phase of the benchmark ... is a best case
//! scenario of what disk queue sorting can accomplish. In general, disk
//! queue sorting is likely to be even less effective when the disk queue
//! length is short compared to the working set size. The VLD based systems
//! need not suffer from these limitations."
//!
//! This example issues the same batch of random 4 KB writes four ways —
//! unsorted update-in-place, SSTF-sorted, elevator-sorted, and eager on a
//! VLD — and prints the per-write cost as the queue length shrinks.
//!
//! Run with: `cargo run --release --example queue_sorting`

use vlfs::disksim::sched::{plan, SchedPolicy};
use vlfs::disksim::{BlockDevice, Disk, DiskSpec, SimClock};
use vlfs::vlog::{Vld, VldConfig};

const TOTAL_WRITES: usize = 512;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 16
}

fn run_sorted(policy: SchedPolicy, queue_len: usize) -> f64 {
    let clock = SimClock::new();
    let mut disk = Disk::new(DiskSpec::st19101_sim(), clock.clone());
    let total = disk.spec().geometry.total_sectors();
    let buf = vec![0x51u8; 4096];
    let mut seed = 99u64;
    let t0 = clock.now();
    let mut done = 0;
    while done < TOTAL_WRITES {
        let n = queue_len.min(TOTAL_WRITES - done);
        let batch: Vec<(u64, u32)> = (0..n)
            .map(|_| ((lcg(&mut seed) % (total / 8)) * 8, 8))
            .collect();
        for i in plan(&disk, &batch, policy) {
            disk.write_sectors(batch[i].0, &buf).expect("in range");
        }
        done += n;
    }
    (clock.now() - t0) as f64 / TOTAL_WRITES as f64 / 1e6
}

fn run_eager() -> f64 {
    let clock = SimClock::new();
    let mut vld = Vld::format(DiskSpec::st19101_sim(), clock.clone(), VldConfig::default());
    let span = vld.num_blocks() / 2;
    let buf = vec![0x51u8; 4096];
    let mut seed = 99u64;
    let t0 = clock.now();
    for _ in 0..TOTAL_WRITES {
        vld.write_block(lcg(&mut seed) % span, &buf)
            .expect("in range");
    }
    (clock.now() - t0) as f64 / TOTAL_WRITES as f64 / 1e6
}

fn main() {
    println!("{TOTAL_WRITES} random 4 KB writes on the Seagate model, ms per write:\n");
    println!(
        "{:>12} {:>10} {:>10} {:>10}",
        "queue len", "FCFS", "SSTF", "elevator"
    );
    for queue_len in [1usize, 8, 32, 128] {
        println!(
            "{:>12} {:>10.2} {:>10.2} {:>10.2}",
            queue_len,
            run_sorted(SchedPolicy::Fcfs, queue_len),
            run_sorted(SchedPolicy::Sstf, queue_len),
            run_sorted(SchedPolicy::Elevator, queue_len),
        );
    }
    println!("\n{:>12} {:>10.2}", "eager (VLD)", run_eager());
    println!(
        "\nSorting needs deep queues to help; eager writing beats even the \
         deepest sorted queue with no queueing at all."
    );
}
