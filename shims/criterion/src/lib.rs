//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the bench
//! targets link against this minimal harness instead. It runs each
//! registered benchmark a fixed number of iterations, reports mean
//! wall-clock time per iteration to stdout, and performs no statistics,
//! warm-up tuning, or plotting. Good enough to keep `cargo bench` runnable
//! and the bench code compiling; not a measurement instrument.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted for compatibility;
/// this harness always runs setup per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark timing driver.
pub struct Bencher {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Builder-style knob kept for compatibility.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.prefix, name), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(name: &str, iterations: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iterations,
        total: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iterations > 0 {
        b.total / b.iterations as u32
    } else {
        Duration::ZERO
    };
    println!("bench {name:<40} {per_iter:>12?}/iter ({} iters)", b.iterations);
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u64;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        assert_eq!(count, 3);
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut c = Criterion::default().sample_size(4);
        let mut seen = Vec::new();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2], |v| seen.push(v.len()), BatchSize::LargeInput)
        });
        assert_eq!(seen, vec![2, 2, 2, 2]);
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut hits = 0;
        g.bench_function("inner", |b| b.iter(|| hits += 1));
        g.finish();
        assert_eq!(hits, 2);
    }
}
