//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest it uses: the `proptest!` /
//! `prop_assert*` / `prop_oneof!` macros, `Strategy` with `prop_map`,
//! `Just`, `any::<T>()`, ranges-as-strategies, and `collection::vec`.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases drawn
//! from a deterministic per-test seed (override with the `PROPTEST_SEED`
//! environment variable), so failures reproduce exactly. There is **no
//! shrinking** — a failing case reports the generated inputs verbatim.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration (field subset of the real `ProptestConfig`;
    /// construct with struct-update syntax: `ProptestConfig { cases: 48,
    /// ..ProptestConfig::default() }`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; ignored.
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
                fork: false,
            }
        }
    }

    /// A property-test failure (carried by `prop_assert!`'s early return).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            Self { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-test random source.
    #[derive(Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seed from the test's full path so every property gets its own
        /// stream, mixed with `PROPTEST_SEED` when set.
        pub fn for_test(test_path: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.trim().parse::<u64>() {
                    h ^= extra.rotate_left(17);
                }
            }
            Self(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// A recipe for generating random values (no shrinking).
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed alternatives (`prop_oneof!` backing).
    pub struct Union<V: Debug> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    }

    impl<V: Debug> Union<V> {
        pub fn new<S: Strategy<Value = V> + 'static>(weight: u32, strategy: S) -> Self {
            Self {
                arms: vec![(weight, Box::new(strategy))],
            }
        }

        #[allow(clippy::should_implement_trait)]
        pub fn or<S: Strategy<Value = V> + 'static>(mut self, weight: u32, strategy: S) -> Self {
            self.arms.push((weight, Box::new(strategy)));
            self
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof: all weights zero");
            let mut pick = rng.gen_range(0..total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + Debug {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_std {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_std!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (uniform over the whole type).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Length bounds for [`vec`] (from `usize` or `Range`/`RangeInclusive`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with random length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Random-length vectors of `element`-generated values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each contained `fn name(arg in strategy, ...) { body }` as a
/// property over `cases` random inputs. Optional leading
/// `#![proptest_config(expr)]` sets the config for every fn in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let formatted_inputs = || {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!(
                        "\n  {} = {:?}", stringify!($arg), $arg
                    ));)+
                    s
                };
                let inputs = formatted_inputs();
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::core::panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name), case + 1, cfg.cases, e, inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies with a
/// common `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($w0:expr => $s0:expr $(, $w:expr => $s:expr)* $(,)?) => {
        $crate::strategy::Union::new($w0 as u32, $s0)$(.or($w as u32, $s))*
    };
    ($s0:expr $(, $s:expr)* $(,)?) => {
        $crate::strategy::Union::new(1u32, $s0)$(.or(1u32, $s))*
    };
}

/// Assert inside a `proptest!` body; failure aborts only the current case
/// with a message (mirrors the real macro's early-return contract).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = ($left, $right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __left, __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = ($left, $right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
            __left, __right, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = ($left, $right);
        $crate::prop_assert!(
            __left != __right,
            "assertion failed: `left != right`\n  both: {:?}",
            __left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = ($left, $right);
        $crate::prop_assert!(
            __left != __right,
            "assertion failed: `left != right`\n  both: {:?}\n {}",
            __left, format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_stream() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..100, 3..8);
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn union_respects_weights_roughly() {
        use crate::strategy::Strategy;
        let s = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = TestRng::for_test("weights");
        let ones = (0..1000).filter(|_| s.generate(&mut rng) == 1).count();
        assert!(ones > 800, "ones = {ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, f in 0.0f64..=1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            v in crate::collection::vec((0u8..4, any::<bool>()), 1..10),
            y in (0u64..5).prop_map(|n| n * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&(k, _)| k < 4));
            prop_assert_eq!(y % 2, 0);
        }
    }
}
