//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses: a seeded
//! deterministic generator (`StdRng`), the `Rng` convenience methods
//! (`gen_range`, `gen_bool`, `gen`), and `seq::SliceRandom`
//! (`shuffle`/`choose`). Every generator is explicitly seeded in this
//! workspace — determinism is a feature (the simulator's results must
//! reproduce bit-for-bit) — so no OS entropy source is needed or provided.
//!
//! The generator is xoshiro256**, seeded via SplitMix64, which is the same
//! construction the real `rand_xoshiro` crate uses; statistical quality is
//! far beyond what workload generation and property tests need.

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        sm.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// SplitMix64: used to expand small seeds into full generator state.
struct SplitMix64 {
    state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Values `Rng::gen` can produce uniformly ("standard" distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` without modulo bias (Lemire-style
/// rejection via widening multiply).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }

    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator types (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Not cryptographic — nothing in this workspace needs that.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut r = rngs::StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rngs::StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_uniform_and_empty() {
        let mut r = rngs::StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let v = [1u8, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut r).unwrap()));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = rngs::StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
