#![warn(missing_docs)]
//! # vlfs — Virtual Log Based File Systems for a Programmable Disk
//!
//! A from-scratch Rust reproduction of Wang, Anderson & Patterson's OSDI '99
//! paper. The workspace re-exported here contains:
//!
//! * [`disksim`] — the mechanical disk simulator (HP97560 & Seagate ST19101
//!   models, virtual clock, service-time breakdowns);
//! * [`vlog`] (`vlog-core`) — the paper's contribution: eager writing, the
//!   virtual log (backward-chained, tree-linked indirection map with
//!   recyclable entries), crash recovery from the firmware tail record,
//!   atomic multi-block transactions, idle-time track compaction, and the
//!   [`vlog::Vld`] logical disk;
//! * [`ufs`] — the update-in-place baseline file system;
//! * [`lfs`] — the log-structured stack (segments, cleaner, NVRAM buffer);
//! * [`models`] (`vlog-models`) — the analytical models of §2;
//! * [`fscore`] — the shared file-system trait and host CPU model.
//!
//! ## Quick start
//!
//! ```
//! use disksim::{BlockDevice, DiskSpec, SimClock};
//! use vlfs::vlog::{Vld, VldConfig};
//!
//! // A Virtual Log Disk on a simulated 1998 Seagate drive.
//! let mut vld = Vld::format(DiskSpec::st19101_sim(), SimClock::new(), VldConfig::default());
//! let block = vec![42u8; vld.block_size()];
//!
//! // Small synchronous writes land near the head: far under a half
//! // rotation (3 ms on this drive), the update-in-place lower bound.
//! let t = vld.write_block(7, &block).unwrap();
//! assert!(t.total_ms() < 1.0);
//! ```
//!
//! See `examples/` for complete scenarios (database commits, a mail-server
//! workload, crash recovery) and the `vlfs-bench` crate for the harnesses
//! that regenerate every table and figure of the paper.

pub use disksim;
pub use fscore;
pub use lfs;
pub use ufs;
pub use vlog_core as vlog;
pub use vlog_models as models;
