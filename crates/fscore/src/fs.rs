//! The common file-system interface the benchmarks drive.
//!
//! Both file systems (update-in-place UFS and log-structured LFS) implement
//! [`FileSystem`] over any [`disksim::BlockDevice`], so every benchmark in
//! the paper's §5 runs unchanged across the four system combinations of its
//! Figure 5.

use crate::error::FsResult;
use disksim::SimClock;

/// Opaque file handle.
pub type FileId = u64;

/// A file system with simulated timing. All operations advance the shared
/// clock by host CPU cost plus any device time they incur.
pub trait FileSystem {
    /// Create an empty file. Fails with `Exists` if the name is taken.
    /// Names may be paths (`"a/b/c"`) on file systems with directory
    /// support.
    fn create(&mut self, name: &str) -> FsResult<FileId>;

    /// Create a directory. The default refuses: directory support is
    /// optional (the paper's benchmarks use a flat namespace).
    fn mkdir(&mut self, _path: &str) -> FsResult<()> {
        Err(crate::FsError::Invalid("directories not supported"))
    }

    /// Open an existing file by name.
    fn open(&mut self, name: &str) -> FsResult<FileId>;

    /// Write `data` at byte `offset`, extending the file as needed.
    ///
    /// With synchronous data writes enabled (see
    /// [`FileSystem::set_sync_writes`]) the call returns only after the
    /// data is on the device; otherwise data may linger in the cache until
    /// [`FileSystem::sync`], eviction, or (for LFS) a segment fill.
    fn write(&mut self, f: FileId, offset: u64, data: &[u8]) -> FsResult<()>;

    /// Read up to `out.len()` bytes at `offset`; returns bytes read
    /// (short at end of file).
    fn read(&mut self, f: FileId, offset: u64, out: &mut [u8]) -> FsResult<usize>;

    /// Remove a file and free its blocks.
    fn delete(&mut self, name: &str) -> FsResult<()>;

    /// Rename a file. Fails with `NotFound` if `from` does not exist and
    /// `Exists` if `to` is already taken. The default refuses: rename
    /// support is optional (the paper's benchmarks never rename).
    fn rename(&mut self, _from: &str, _to: &str) -> FsResult<()> {
        Err(crate::FsError::Invalid("rename not supported"))
    }

    /// Current size of a file in bytes.
    fn file_size(&mut self, f: FileId) -> FsResult<u64>;

    /// Flush all dirty state to the device ("sync").
    fn sync(&mut self) -> FsResult<()>;

    /// Drop clean cached data so subsequent reads hit the device — the
    /// benchmark "cache flush" between phases.
    fn drop_caches(&mut self);

    /// Make data writes synchronous (like `O_SYNC`) or delayed. Metadata
    /// update discipline is the file system's own affair (UFS: always
    /// synchronous; LFS: logged).
    fn set_sync_writes(&mut self, on: bool);

    /// Grant `ns` of idle wall-clock time. Background machinery (VLD
    /// compactor, LFS cleaner) may consume part of it; the remainder
    /// passes as pure idle. The clock advances by exactly `ns`.
    fn idle(&mut self, ns: u64);

    /// Handle to the simulation clock.
    fn clock(&self) -> SimClock;

    /// Fraction of data capacity in use, as `df` would report.
    fn utilization(&self) -> f64;

    /// Data blocks still allocatable.
    fn free_blocks(&self) -> u64;
}

/// Drive an idle grant through a device, then let the clock cover the rest.
/// Shared by file-system implementations of [`FileSystem::idle`].
pub fn grant_idle<D: disksim::BlockDevice + ?Sized>(device: &mut D, ns: u64) {
    let clock = device.clock();
    let end = clock.now() + ns;
    let used = device.idle(ns);
    debug_assert!(
        used <= ns + ns / 2,
        "device used {used} of {ns} idle budget"
    );
    clock.advance_to(end);
}

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::{BlockDevice, DiskSpec, RegularDisk};

    #[test]
    fn grant_idle_advances_exactly() {
        let mut d = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), 4096);
        let c = d.clock();
        grant_idle(&mut d, 1_000_000);
        assert_eq!(c.now(), 1_000_000);
    }
}
