#![warn(missing_docs)]
//! # fscore — shared file-system infrastructure
//!
//! The paper's experimental platform (its Figure 5) runs two file systems
//! (UFS and LFS) over two simulated devices (regular disk and VLD) and
//! times them on two hosts (SPARCstation-10 and UltraSPARC-170). This crate
//! holds everything those combinations share:
//!
//! * [`FileSystem`] — the common interface the benchmarks drive
//!   (create / read / write / delete / sync, with switchable synchronous
//!   data writes);
//! * [`HostModel`] — the host CPU cost model: the "other" component of the
//!   paper's Figure 9 latency breakdown, scaled between the two hosts;
//! * [`BufferCache`] — an LRU block cache with dirty tracking, used as the
//!   UFS buffer cache and as the LFS file cache (optionally treated as
//!   NVRAM).

pub mod cache;
pub mod error;
pub mod fs;
pub mod host;

pub use cache::BufferCache;
pub use error::{FsError, FsResult};
pub use fs::{FileId, FileSystem};
pub use host::HostModel;
