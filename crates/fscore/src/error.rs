//! File-system error types.

use disksim::DiskError;
use std::fmt;

/// Result alias for file-system operations.
pub type FsResult<T> = std::result::Result<T, FsError>;

/// Errors surfaced by the file systems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Propagated device error.
    Disk(DiskError),
    /// No free blocks (or inodes) left.
    NoSpace,
    /// Named file does not exist.
    NotFound,
    /// A file with that name already exists.
    Exists,
    /// File handle is stale or invalid.
    BadHandle,
    /// Offset/length out of supported range (e.g. beyond max file size).
    TooLarge,
    /// Malformed argument (e.g. empty name).
    Invalid(&'static str),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Disk(e) => write!(f, "device error: {e}"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NotFound => write!(f, "no such file"),
            FsError::Exists => write!(f, "file exists"),
            FsError::BadHandle => write!(f, "bad file handle"),
            FsError::TooLarge => write!(f, "file too large"),
            FsError::Invalid(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<DiskError> for FsError {
    fn from(e: DiskError) -> Self {
        match e {
            DiskError::NoSpace => FsError::NoSpace,
            other => FsError::Disk(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_nospace_maps_to_fs_nospace() {
        assert_eq!(FsError::from(DiskError::NoSpace), FsError::NoSpace);
        assert!(matches!(
            FsError::from(DiskError::TruncatedTransfer),
            FsError::Disk(_)
        ));
    }

    #[test]
    fn display_messages() {
        assert!(FsError::NotFound.to_string().contains("no such file"));
        assert!(FsError::Invalid("name").to_string().contains("name"));
    }
}
