//! The host CPU cost model — the "other" bar of the paper's Figure 9.
//!
//! The paper times real syscalls on a 50 MHz SPARCstation-10 and a 167 MHz
//! UltraSPARC-170; the host contribution shows up as the "other" component
//! of per-write latency, and shrinking it (by upgrading the host) is what
//! widens the VLD's advantage from 5.1× to 9.9× in Table 2. Here the host
//! is modelled as a fixed CPU cost per file-system call plus a per-block
//! processing cost, scaled by clock ratio between the two machines.
//!
//! The absolute values are calibrated so the simulated Figure 9 breakdown
//! resembles the paper's: roughly half a millisecond of host time per 4 KB
//! synchronous write on the SPARCstation-10.

use disksim::SimClock;

/// A host machine's CPU cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostModel {
    /// Machine name for reports.
    pub name: &'static str,
    /// CPU nanoseconds per file-system call (syscall entry, name lookup,
    /// buffer management, driver dispatch).
    pub per_call_ns: u64,
    /// CPU nanoseconds per 4 KB block moved (copying, checksums).
    pub per_block_ns: u64,
}

impl HostModel {
    /// The 50 MHz SPARCstation-10 of the paper.
    pub fn sparcstation_10() -> Self {
        Self {
            name: "SPARCstation-10",
            per_call_ns: 150_000,
            per_block_ns: 150_000,
        }
    }

    /// The 167 MHz UltraSPARC-170 — same costs scaled by the 50/167 clock
    /// ratio (the paper notes it "can easily cut the latency in half" and
    /// more).
    pub fn ultrasparc_170() -> Self {
        let s = Self::sparcstation_10();
        let scale = |ns: u64| ns * 50 / 167;
        Self {
            name: "UltraSPARC-170",
            per_call_ns: scale(s.per_call_ns),
            per_block_ns: scale(s.per_block_ns),
        }
    }

    /// An idealised infinitely fast host (for isolating device behaviour).
    pub fn instant() -> Self {
        Self {
            name: "instant",
            per_call_ns: 0,
            per_block_ns: 0,
        }
    }

    /// Total host cost of one call moving `blocks` blocks.
    #[inline]
    pub fn call_cost_ns(&self, blocks: u64) -> u64 {
        self.per_call_ns + blocks * self.per_block_ns
    }

    /// Charge one call against the simulation clock and return the cost.
    #[inline]
    pub fn charge(&self, clock: &SimClock, blocks: u64) -> u64 {
        let c = self.call_cost_ns(blocks);
        clock.advance(c);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ultra_is_faster_by_clock_ratio() {
        let s = HostModel::sparcstation_10();
        let u = HostModel::ultrasparc_170();
        assert!(u.per_call_ns * 3 <= s.per_call_ns);
        assert!(u.per_call_ns * 4 > s.per_call_ns);
    }

    #[test]
    fn charge_advances_clock() {
        let c = SimClock::new();
        let h = HostModel::sparcstation_10();
        let cost = h.charge(&c, 1);
        assert_eq!(c.now(), cost);
        assert_eq!(cost, h.per_call_ns + h.per_block_ns);
    }

    #[test]
    fn instant_host_is_free() {
        let c = SimClock::new();
        HostModel::instant().charge(&c, 10);
        assert_eq!(c.now(), 0);
    }
}
