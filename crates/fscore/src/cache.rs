//! An LRU block buffer cache with dirty tracking.
//!
//! UFS uses one as its buffer cache (metadata and optionally-delayed data
//! writes); the LFS file layer uses a 6.1 MB instance as the paper's
//! MinixUFS file cache, which some experiments declare to be NVRAM. The
//! cache itself is device-agnostic: the owning file system decides when a
//! dirty eviction or a `sync` reaches the device.
//!
//! Recency is tracked with two ordered tick indexes (clean and dirty), so
//! victim selection and the dirty census are O(log n) / O(1) instead of a
//! full-map scan — the cache sits on the per-block write path of every
//! benchmark, where a thousand-entry scan per eviction dominated. Ticks
//! are unique and monotonically increasing, so the victim each eviction
//! picks is exactly the one the old linear scan found.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One cached block.
///
/// Payloads are reference-counted so a cache hit can hand the block to the
/// caller without copying it: readers share the buffer, and the mutating
/// path ([`BufferCache::get_mut_dirty`]) copies-on-write only when a reader
/// still holds a handle.
#[derive(Debug, Clone)]
struct Buf {
    data: Arc<[u8]>,
    dirty: bool,
    lru: u64,
}

/// Fixed-capacity LRU cache of equal-sized blocks keyed by block number.
///
/// Cloning the cache is a snapshot: payloads are `Arc`-shared with the
/// clone, and the mutating path ([`BufferCache::get_mut_dirty`])
/// copies-on-write, so either side can keep running without disturbing the
/// other.
#[derive(Debug, Clone)]
pub struct BufferCache {
    capacity: usize,
    block_size: usize,
    map: HashMap<u64, Buf>,
    /// Clean blocks ordered by recency: lru tick -> block number.
    clean_lru: BTreeMap<u64, u64>,
    /// Dirty blocks ordered by recency: lru tick -> block number.
    dirty_lru: BTreeMap<u64, u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Create a cache holding at most `capacity` blocks of `block_size`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity or block size (configuration error).
    pub fn new(capacity: usize, block_size: usize) -> Self {
        assert!(capacity > 0 && block_size > 0);
        Self {
            capacity,
            block_size,
            map: HashMap::new(),
            clean_lru: BTreeMap::new(),
            dirty_lru: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Build a cache sized in bytes (e.g. the paper's 6.1 MB file cache).
    pub fn with_bytes(bytes: usize, block_size: usize) -> Self {
        Self::new((bytes / block_size).max(1), block_size)
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of dirty blocks.
    pub fn dirty_count(&self) -> usize {
        self.dirty_lru.len()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn bump(tick: &mut u64) -> u64 {
        *tick += 1;
        *tick
    }

    /// Move a block's recency-index entry from tick `old` to tick `new`,
    /// within the index matching its dirty state.
    fn retick(&mut self, block: u64, dirty: bool, old: u64, new: u64) {
        let index = if dirty {
            &mut self.dirty_lru
        } else {
            &mut self.clean_lru
        };
        index.remove(&old);
        index.insert(new, block);
    }

    /// Look up a block, refreshing its LRU position.
    pub fn get(&mut self, block: u64) -> Option<&[u8]> {
        let t = Self::bump(&mut self.tick);
        match self.map.get_mut(&block) {
            Some(b) => {
                let (old, dirty) = (b.lru, b.dirty);
                b.lru = t;
                self.hits += 1;
                self.retick(block, dirty, old, t);
                Some(&self.map[&block].data)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up a block, refreshing its LRU position, and return a shared
    /// handle to its payload. The zero-copy read path: cloning the `Arc`
    /// bumps a refcount instead of copying the block.
    pub fn get_rc(&mut self, block: u64) -> Option<Arc<[u8]>> {
        let t = Self::bump(&mut self.tick);
        match self.map.get_mut(&block) {
            Some(b) => {
                let (old, dirty) = (b.lru, b.dirty);
                b.lru = t;
                let data = Arc::clone(&b.data);
                self.hits += 1;
                self.retick(block, dirty, old, t);
                Some(data)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Check for presence without touching LRU or counters.
    pub fn contains(&self, block: u64) -> bool {
        self.map.contains_key(&block)
    }

    /// Mutably access a cached block, marking it dirty. Copies-on-write if
    /// a reader returned by [`BufferCache::get_rc`] still shares the
    /// payload, so outstanding handles keep seeing the pre-write bytes.
    pub fn get_mut_dirty(&mut self, block: u64) -> Option<&mut [u8]> {
        let t = Self::bump(&mut self.tick);
        let b = self.map.get_mut(&block)?;
        let (old, was_dirty) = (b.lru, b.dirty);
        b.lru = t;
        b.dirty = true;
        if was_dirty {
            self.dirty_lru.remove(&old);
        } else {
            self.clean_lru.remove(&old);
        }
        self.dirty_lru.insert(t, block);
        let b = self.map.get_mut(&block).expect("just found");
        if Arc::get_mut(&mut b.data).is_none() {
            b.data = Arc::from(&*b.data);
        }
        Some(Arc::get_mut(&mut b.data).expect("unshared after CoW"))
    }

    /// Insert (or replace) a block. Does **not** evict — call
    /// [`BufferCache::evict_lru`] first when [`BufferCache::is_full`].
    ///
    /// # Panics
    ///
    /// Panics if `data` is not block-sized (internal invariant).
    pub fn insert(&mut self, block: u64, data: impl Into<Arc<[u8]>>, dirty: bool) {
        let data: Arc<[u8]> = data.into();
        assert_eq!(data.len(), self.block_size, "cache blocks are fixed-size");
        let t = Self::bump(&mut self.tick);
        // Replacement keeps an existing buffer dirty if either copy was.
        let dirty = match self.map.get(&block) {
            Some(old) => {
                if old.dirty {
                    self.dirty_lru.remove(&old.lru);
                } else {
                    self.clean_lru.remove(&old.lru);
                }
                dirty || old.dirty
            }
            None => dirty,
        };
        if dirty {
            self.dirty_lru.insert(t, block);
        } else {
            self.clean_lru.insert(t, block);
        }
        self.map.insert(
            block,
            Buf {
                data,
                dirty,
                lru: t,
            },
        );
    }

    /// True when inserting a new block requires an eviction first.
    pub fn is_full(&self) -> bool {
        self.map.len() >= self.capacity
    }

    /// Remove the named recency-index entry and the map entry behind it.
    fn take(&mut self, tick: u64, dirty: bool) -> (u64, Arc<[u8]>, bool) {
        let block = if dirty {
            self.dirty_lru.remove(&tick)
        } else {
            self.clean_lru.remove(&tick)
        }
        .expect("index entry exists");
        let b = self.map.remove(&block).expect("indexed block exists");
        (block, b.data, b.dirty)
    }

    /// Remove and return the least-recently-used block:
    /// `(block, data, dirty)`. The caller must write dirty data back.
    pub fn evict_lru(&mut self) -> Option<(u64, Arc<[u8]>, bool)> {
        let clean = self.clean_lru.first_key_value().map(|(&t, _)| t);
        let dirty = self.dirty_lru.first_key_value().map(|(&t, _)| t);
        match (clean, dirty) {
            (Some(c), Some(d)) if c < d => Some(self.take(c, false)),
            (Some(_), Some(d)) => Some(self.take(d, true)),
            (Some(c), None) => Some(self.take(c, false)),
            (None, Some(d)) => Some(self.take(d, true)),
            (None, None) => None,
        }
    }

    /// Like [`BufferCache::evict_lru`], but prefers the least-recently-used
    /// *clean* block, falling back to a dirty one only when everything is
    /// dirty. Clean evictions cost no I/O.
    pub fn evict_lru_prefer_clean(&mut self) -> Option<(u64, Arc<[u8]>, bool)> {
        if let Some((&t, _)) = self.clean_lru.first_key_value() {
            return Some(self.take(t, false));
        }
        self.evict_lru()
    }

    /// Remove a specific block without writing it back.
    pub fn remove(&mut self, block: u64) -> Option<(Arc<[u8]>, bool)> {
        let b = self.map.remove(&block)?;
        if b.dirty {
            self.dirty_lru.remove(&b.lru);
        } else {
            self.clean_lru.remove(&b.lru);
        }
        Some((b.data, b.dirty))
    }

    /// Snapshot the dirty block numbers in ascending block order (the
    /// elevator order UFS flushes in) and mark them all clean. Payloads
    /// stay in the cache — read them with [`BufferCache::peek`] while
    /// writing back; returning keys instead of cloned data keeps the flush
    /// path free of per-block payload copies.
    pub fn take_dirty_sorted(&mut self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::with_capacity(self.dirty_lru.len());
        // Everything dirty is now clean; recency (the ticks) is unchanged.
        for (tick, block) in std::mem::take(&mut self.dirty_lru) {
            self.map
                .get_mut(&block)
                .expect("indexed block exists")
                .dirty = false;
            self.clean_lru.insert(tick, block);
            out.push(block);
        }
        out.sort_unstable();
        out
    }

    /// Borrow a block's payload without touching LRU or the hit counters.
    pub fn peek(&self, block: u64) -> Option<&[u8]> {
        self.map.get(&block).map(|b| &*b.data)
    }

    /// Re-mark a cached block dirty without touching its recency — the
    /// put-back path for blocks whose write-back failed or ran out of idle
    /// budget. Returns false if the block is no longer cached.
    pub fn mark_dirty(&mut self, block: u64) -> bool {
        match self.map.get_mut(&block) {
            Some(b) => {
                if !b.dirty {
                    b.dirty = true;
                    self.clean_lru.remove(&b.lru);
                    self.dirty_lru.insert(b.lru, block);
                }
                true
            }
            None => false,
        }
    }

    /// Drop every clean block (a benchmark "cache flush"); dirty blocks
    /// stay, since dropping them would lose data.
    pub fn drop_clean(&mut self) {
        for (_, block) in std::mem::take(&mut self.clean_lru) {
            self.map.remove(&block);
        }
    }

    /// Drop everything, dirty or not (simulated crash of a volatile cache).
    pub fn clear(&mut self) {
        self.map.clear();
        self.clean_lru.clear();
        self.dirty_lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize) -> BufferCache {
        BufferCache::new(cap, 4)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = cache(4);
        c.insert(7, vec![1, 2, 3, 4], false);
        assert_eq!(c.get(7), Some(&[1, 2, 3, 4][..]));
        assert_eq!(c.get(8), None);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(3);
        c.insert(1, vec![0; 4], false);
        c.insert(2, vec![0; 4], false);
        c.insert(3, vec![0; 4], false);
        // Touch 1 so 2 becomes LRU.
        c.get(1);
        assert!(c.is_full());
        let (victim, _, dirty) = c.evict_lru().unwrap();
        assert_eq!(victim, 2);
        assert!(!dirty);
    }

    #[test]
    fn dirty_tracking_and_flush_order() {
        let mut c = cache(8);
        c.insert(5, vec![0; 4], true);
        c.insert(2, vec![0; 4], false);
        c.insert(9, vec![0; 4], true);
        assert_eq!(c.dirty_count(), 2);
        let dirty = c.take_dirty_sorted();
        assert_eq!(dirty, vec![5, 9]);
        assert_eq!(c.dirty_count(), 0);
        assert_eq!(c.len(), 3, "flush keeps blocks cached, now clean");
        // Payloads stayed cached and are reachable without an LRU touch.
        let (hits, misses) = c.stats();
        assert!(c.peek(5).is_some());
        assert_eq!(c.stats(), (hits, misses), "peek must not touch counters");
        // Put-back restores dirtiness in place; unknown blocks report false.
        assert!(c.mark_dirty(9));
        assert_eq!(c.dirty_count(), 1);
        assert!(c.mark_dirty(9), "already-dirty is idempotent");
        assert_eq!(c.dirty_count(), 1);
        assert!(!c.mark_dirty(777));
    }

    #[test]
    fn get_mut_marks_dirty() {
        let mut c = cache(2);
        c.insert(1, vec![0; 4], false);
        c.get_mut_dirty(1).unwrap()[0] = 9;
        assert_eq!(c.dirty_count(), 1);
        assert_eq!(c.get(1).unwrap()[0], 9);
    }

    #[test]
    fn get_rc_shares_then_copies_on_write() {
        let mut c = cache(2);
        c.insert(1, vec![1, 2, 3, 4], false);
        let snap = c.get_rc(1).unwrap();
        assert_eq!(c.stats(), (1, 0), "get_rc counts as a hit");
        // Mutation must not be visible through the outstanding handle.
        c.get_mut_dirty(1).unwrap()[0] = 9;
        assert_eq!(&snap[..], &[1, 2, 3, 4]);
        assert_eq!(c.get(1).unwrap()[0], 9);
        drop(snap);
        // Unshared payloads mutate in place.
        c.get_mut_dirty(1).unwrap()[1] = 8;
        assert_eq!(c.peek(1).unwrap(), &[9, 8, 3, 4]);
    }

    #[test]
    fn replacement_keeps_dirty_bit() {
        let mut c = cache(2);
        c.insert(1, vec![1; 4], true);
        c.insert(1, vec![2; 4], false);
        assert_eq!(
            c.dirty_count(),
            1,
            "clean overwrite must not lose dirtiness"
        );
    }

    #[test]
    fn prefer_clean_falls_back_to_dirty() {
        let mut c = cache(2);
        c.insert(1, vec![1; 4], true);
        c.insert(2, vec![2; 4], true);
        // Everything dirty: the preferring eviction must still evict.
        let (victim, _, dirty) = c.evict_lru_prefer_clean().unwrap();
        assert_eq!(victim, 1, "LRU dirty victim");
        assert!(dirty);
        // Mixed: the clean block goes first even if more recently used.
        c.insert(3, vec![3; 4], false);
        c.get(3);
        let (victim, _, dirty) = c.evict_lru_prefer_clean().unwrap();
        assert_eq!(victim, 3);
        assert!(!dirty);
    }

    #[test]
    fn drop_clean_spares_dirty() {
        let mut c = cache(4);
        c.insert(1, vec![0; 4], true);
        c.insert(2, vec![0; 4], false);
        c.drop_clean();
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn with_bytes_sizing() {
        let c = BufferCache::with_bytes(6_400_000, 4096);
        assert_eq!(c.capacity(), 1562);
    }

    #[test]
    #[should_panic(expected = "fixed-size")]
    fn wrong_size_block_panics() {
        cache(2).insert(0, vec![0; 3], false);
    }

    /// The indexed implementation must agree with a straight linear-scan
    /// reference on every operation's observable result.
    #[test]
    fn indexed_lru_matches_linear_scan_reference() {
        // Reference state: (block -> (dirty, lru)).
        let mut reference: Vec<(u64, bool, u64)> = Vec::new();
        let mut c = cache(8);
        let mut tick = 0u64;
        let mut x: u64 = 0x12345;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..4000 {
            match rng() % 6 {
                0 | 1 => {
                    let blk = rng() % 12;
                    let dirty = rng() % 2 == 0;
                    tick += 1;
                    if !c.is_full() || c.contains(blk) {
                        c.insert(blk, vec![0; 4], dirty);
                        match reference.iter_mut().find(|(b, _, _)| *b == blk) {
                            Some(e) => {
                                e.1 |= dirty;
                                e.2 = tick;
                            }
                            None => reference.push((blk, dirty, tick)),
                        }
                    }
                }
                2 => {
                    let blk = rng() % 12;
                    tick += 1;
                    let hit = c.get(blk).is_some();
                    let r = reference.iter_mut().find(|(b, _, _)| *b == blk);
                    assert_eq!(hit, r.is_some());
                    if let Some(e) = r {
                        e.2 = tick;
                    }
                }
                3 => {
                    tick += 1;
                    let got = c.evict_lru().map(|(b, _, d)| (b, d));
                    let want = reference
                        .iter()
                        .min_by_key(|(_, _, l)| *l)
                        .map(|&(b, d, _)| (b, d));
                    assert_eq!(got, want);
                    if let Some((b, _)) = want {
                        reference.retain(|(rb, _, _)| *rb != b);
                    }
                }
                4 => {
                    tick += 1;
                    let got = c.evict_lru_prefer_clean().map(|(b, _, d)| (b, d));
                    let clean = reference
                        .iter()
                        .filter(|(_, d, _)| !d)
                        .min_by_key(|(_, _, l)| *l)
                        .map(|&(b, d, _)| (b, d));
                    let want = clean.or_else(|| {
                        reference
                            .iter()
                            .min_by_key(|(_, _, l)| *l)
                            .map(|&(b, d, _)| (b, d))
                    });
                    assert_eq!(got, want);
                    if let Some((b, _)) = want {
                        reference.retain(|(rb, _, _)| *rb != b);
                    }
                }
                _ => {
                    let want_dirty: usize =
                        reference.iter().filter(|(_, d, _)| *d).count();
                    assert_eq!(c.dirty_count(), want_dirty);
                    assert_eq!(c.len(), reference.len());
                }
            }
        }
    }
}
