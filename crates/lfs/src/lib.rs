#![warn(missing_docs)]
//! # lfs — a log-structured file system (file layer over a log-structured
//! logical disk)
//!
//! Mirrors the paper's LFS configuration (§4.3): the MIT Log-structured
//! Logical Disk design — a block device whose writes append to 512 KB
//! segments — with a conventional file layer above it holding a 6.1 MB
//! buffer cache. The file layer is the same code as the `ufs` crate (the
//! paper's MinixUFS is likewise an ordinary block-mapped file system); what
//! makes the stack "LFS" is the logical disk underneath:
//!
//! * all writes append to the log (no update-in-place),
//! * a `sync` flushes the partial segment per the 75 % threshold,
//! * a greedy cleaner reclaims segments on demand and during idle time,
//! * read-ahead in the file layer is disabled, "because blocks deemed
//!   contiguous by MinixUFS may not be so in the logical disk".
//!
//! [`lfs_filesystem`] assembles the stack over any raw device — a regular
//! disk or a VLD, giving the paper's "LFS on regular" and "LFS on VLD"
//! configurations.

pub mod lld;
pub mod seg;

pub use lld::{CleanerStats, LldConfig, LogDisk, LogDiskSnapshot};
pub use seg::{SegState, Summary, SEG_BLOCKS, SEG_DATA};

use disksim::BlockDevice;
use fscore::{FsResult, HostModel};
use ufs::{Ufs, UfsConfig};

/// Configuration for the assembled LFS stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LfsConfig {
    /// Logical-disk (segment/cleaner) settings.
    pub lld: LldConfig,
    /// File-layer buffer cache in bytes (paper: 6.1 MB, optionally NVRAM).
    pub cache_bytes: usize,
    /// Number of inodes in the file layer.
    pub inode_count: u32,
}

impl Default for LfsConfig {
    fn default() -> Self {
        Self {
            lld: LldConfig::default(),
            cache_bytes: (6.1 * 1024.0 * 1024.0) as usize,
            inode_count: 2048,
        }
    }
}

/// Build the complete LFS stack (file layer over log-structured logical
/// disk) on a raw device.
pub fn lfs_filesystem(raw: Box<dyn BlockDevice>, host: HostModel, cfg: LfsConfig) -> FsResult<Ufs> {
    let mut lld_cfg = cfg.lld;
    // The LLD and its cleaner run at user level: cleaning copies cost the
    // host CPU, not just the disk.
    if lld_cfg.cpu_per_block_ns == 0 {
        lld_cfg.cpu_per_block_ns = host.per_block_ns;
    }
    let lld = LogDisk::format(raw, lld_cfg)?;
    let ufs_cfg = UfsConfig {
        inode_count: cfg.inode_count,
        cache_bytes: cfg.cache_bytes,
        sync_data: false,
        // "The implementors of LLD has disabled read-ahead in MinixUFS".
        readahead_blocks: 0,
        // Deletes propagate to the log so dead segments become cleanable
        // (the file layer *can* see deletes, unlike the device driver).
        trim_on_delete: true,
        // The NVRAM discipline: buffer until full, then drain in bulk.
        flush_on_full: true,
    };
    Ufs::format(Box::new(lld), host, ufs_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::{DiskSpec, RegularDisk, SimClock};
    use fscore::FileSystem;

    fn fresh() -> Ufs {
        let raw = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), 4096);
        lfs_filesystem(Box::new(raw), HostModel::instant(), LfsConfig::default()).unwrap()
    }

    #[test]
    fn basic_file_operations_work_over_the_log() {
        let mut fs = fresh();
        let f = fs.create("log-file").unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        fs.write(f, 0, &data).unwrap();
        fs.sync().unwrap();
        fs.drop_caches();
        let mut out = vec![0u8; data.len()];
        assert_eq!(fs.read(f, 0, &mut out).unwrap(), data.len());
        assert_eq!(out, data);
    }

    #[test]
    fn creates_are_fast_on_the_log() {
        // LFS's point: synchronous metadata writes land in the segment
        // buffer, so creates cost only host CPU time, not disk mechanics.
        let raw = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), 4096);
        let mut lfs =
            lfs_filesystem(Box::new(raw), HostModel::instant(), LfsConfig::default()).unwrap();
        let c = lfs.clock();
        let t0 = c.now();
        for i in 0..100 {
            lfs.create(&format!("f{i}")).unwrap();
        }
        let lfs_time = c.now() - t0;

        let raw = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), 4096);
        let mut plain = ufs::Ufs::format(
            Box::new(raw),
            HostModel::instant(),
            ufs::UfsConfig::default(),
        )
        .unwrap();
        let c = plain.clock();
        let t0 = c.now();
        for i in 0..100 {
            plain.create(&format!("f{i}")).unwrap();
        }
        let ufs_time = c.now() - t0;
        assert!(
            lfs_time * 5 < ufs_time,
            "LFS creates ({lfs_time} ns) should crush update-in-place ({ufs_time} ns)"
        );
    }

    #[test]
    fn many_files_survive_sync_and_cache_drop() {
        let mut fs = fresh();
        for i in 0..200 {
            let f = fs.create(&format!("small{i}")).unwrap();
            fs.write(f, 0, &vec![i as u8; 1024]).unwrap();
        }
        fs.sync().unwrap();
        fs.drop_caches();
        for i in (0..200).step_by(17) {
            let f = fs.open(&format!("small{i}")).unwrap();
            let mut out = vec![0u8; 1024];
            assert_eq!(fs.read(f, 0, &mut out).unwrap(), 1024);
            assert!(out.iter().all(|&b| b == i as u8), "file {i}");
        }
    }

    #[test]
    fn overwrite_churn_exercises_cleaner_without_corruption() {
        let mut fs = fresh();
        let f = fs.create("churn").unwrap();
        let size: u64 = 8 << 20; // 8 MB file on a ~20 MB log
        let block = 4096u64;
        // Initial fill.
        let chunk = vec![0xAAu8; 256 * 1024];
        let mut off = 0;
        while off < size {
            fs.write(f, off, &chunk).unwrap();
            off += chunk.len() as u64;
        }
        fs.sync().unwrap();
        // Random overwrites forcing log turnover.
        let mut x = 12345u64;
        for i in 0..2000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 16) % (size / block);
            fs.write(f, b * block, &vec![i as u8; block as usize])
                .unwrap();
        }
        fs.sync().unwrap();
        fs.drop_caches();
        // Spot-check: every block is readable and block-uniform.
        for b in (0..size / block).step_by(97) {
            let mut out = vec![0u8; block as usize];
            fs.read(f, b * block, &mut out).unwrap();
            let first = out[0];
            assert!(out.iter().all(|&v| v == first), "block {b} torn");
        }
    }

    #[test]
    fn idle_time_cleans_segments() {
        let mut fs = fresh();
        let f = fs.create("x").unwrap();
        let chunk = vec![1u8; 512 * 1024];
        for i in 0..20u64 {
            fs.write(f, i * chunk.len() as u64, &chunk).unwrap();
        }
        fs.sync().unwrap();
        // Overwrite half to create dead blocks.
        for i in 0..10u64 {
            fs.write(f, i * 2 * chunk.len() as u64, &chunk).unwrap();
        }
        fs.sync().unwrap();
        fs.idle(10_000_000_000);
        // After generous idle time the cleaner should have met its target
        // or run out of work; either way the fs still functions.
        let g = fs.open("x").unwrap();
        let mut out = vec![0u8; 4096];
        assert_eq!(fs.read(g, 0, &mut out).unwrap(), 4096);
    }
}
