//! The log-structured logical disk (LLD).
//!
//! A port-in-spirit of the MIT Log-structured Logical Disk the paper used:
//! a block device whose writes append to an in-memory 512 KB segment,
//! flushed to the raw device as one large sequential write. Key behaviours
//! from §4.3:
//!
//! * **Partial-segment threshold** — on `sync`, a segment filled above the
//!   threshold (75 %) is sealed as if full; below it, the contents are
//!   written out but the memory copy stays open for more appends.
//! * **Greedy cleaner** — picks the least-utilised sealed segments, copies
//!   their live blocks to the log head, and frees them; invoked on demand
//!   when the log runs out of free segments, and opportunistically during
//!   idle time (the paper's modification to the original LLD).
//! * **Segment summaries** — the first block of each segment names the
//!   owner of every slot, and a checkpoint area at the end of the device
//!   persists the block map on `sync`, making volumes remountable.
//!
//! The LLD runs over any raw [`BlockDevice`] — a regular disk, or a VLD for
//! the paper's "LFS on VLD" configuration.

use crate::seg::{
    fnv64, seg_to_slot, slot_device_block, slot_to_seg, summary_block, SegState, Summary, NONE,
    SEG_BLOCKS, SEG_DATA,
};
use disksim::{BlockDevice, DeviceSnapshot, DiskStats, Result as DiskResult, ServiceTime, SimClock};
use fscore::{FsError, FsResult};

/// Segments kept back from the advertised capacity so the cleaner always
/// has room to work.
const RESERVE_SEGS: u64 = 4;

/// Checkpoint magic ("LCKP").
const CKPT_MAGIC: u32 = 0x4C43_4B50;

/// Tuning knobs for the logical disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LldConfig {
    /// Partial-segment threshold: a sync with fill at or above this
    /// fraction seals the segment (paper: 0.75).
    pub partial_threshold: f64,
    /// Idle cleaning keeps at least this many segments free.
    pub idle_clean_target: u32,
    /// Host CPU nanoseconds per block appended to the log. The paper's LLD
    /// (and its cleaner) run at user level on the host, so every block that
    /// moves through the log — a flushed file block or a cleaner copy —
    /// costs CPU as well as disk time.
    pub cpu_per_block_ns: u64,
}

impl Default for LldConfig {
    fn default() -> Self {
        Self {
            partial_threshold: 0.75,
            idle_clean_target: 8,
            cpu_per_block_ns: 0,
        }
    }
}

/// Cleaner activity counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CleanerStats {
    /// Segments reclaimed.
    pub segments_cleaned: u64,
    /// Live blocks copied forward.
    pub blocks_copied: u64,
    /// Cleanings forced in the write path (no free segment).
    pub on_demand: u64,
    /// Cleanings performed during granted idle time.
    pub during_idle: u64,
}

/// The in-memory open segment.
#[derive(Debug, Clone)]
struct OpenSeg {
    seg: u32,
    summary: Summary,
    data: Vec<u8>,
    /// Slots already written to the device by a partial flush.
    flushed: u32,
}

/// The log-structured logical disk.
pub struct LogDisk {
    dev: Box<dyn BlockDevice>,
    cfg: LldConfig,
    block_size: usize,
    nsegs: u32,
    logical_blocks: u64,
    /// Logical block → global data slot (NONE = unmapped).
    map: Vec<u32>,
    /// Global data slot → logical owner if live.
    rmap: Vec<u32>,
    seg_state: Vec<SegState>,
    /// Running count of `SegState::Free` entries in `seg_state`, kept in
    /// lockstep with every transition so `free_segments()` (called on the
    /// append hot path) is O(1) instead of O(nsegs).
    free_count: u32,
    seg_live: Vec<u32>,
    open: Option<OpenSeg>,
    /// Next segment to consider when acquiring a free one (log order).
    next_seg: u32,
    ckpt_start: u64,
    ckpt_blocks: u64,
    /// Re-entrancy guard: the cleaner's own appends must never trigger
    /// another on-demand clean.
    cleaning: bool,
    /// Monotonic flush-sequence counter (stamped into every summary).
    flush_seq: u64,
    /// Segments with no live blocks whose reuse must wait until the open
    /// segment (holding the overwrites/cleaner copies that killed them) is
    /// durable — otherwise a crash loses both copies.
    pending_free: Vec<u32>,
    /// Which checkpoint slot the next sync writes (alternating A/B, so a
    /// crash mid-checkpoint always leaves the other slot intact).
    ckpt_next_b: bool,
    /// Utilization-ordered index of the `Dirty` segments:
    /// `(live blocks, segment)`, kept in lockstep with `seg_state` /
    /// `seg_live` by [`LogDisk::set_seg_state`] / [`LogDisk::set_seg_live`].
    /// `first()` is the cleaner's victim — lowest live count, ties to the
    /// lowest segment number, exactly the old full-rescan `min_by_key`.
    dirty_index: std::collections::BTreeSet<(u32, u32)>,
    stats: CleanerStats,
    /// Metrics handle (disabled by default): cleaner counters, free-segment
    /// gauge and log utilisation.
    metrics: disksim::Metrics,
}

impl LogDisk {
    /// Compute (segments, logical blocks, checkpoint start/blocks) for a
    /// raw device of `dev_blocks` blocks.
    fn geometry(dev_blocks: u64, block_size: usize) -> FsResult<(u32, u64, u64, u64)> {
        let mut nsegs = dev_blocks / SEG_BLOCKS;
        for _ in 0..3 {
            let logical = (nsegs.saturating_sub(RESERVE_SEGS)) * SEG_DATA;
            let ckpt_bytes = 24 + 4 * logical;
            let ckpt_blocks = ckpt_bytes.div_ceil(block_size as u64);
            // Two checkpoint slots (A/B): syncs alternate between them, so
            // a power cut tearing one leaves the other valid.
            nsegs = dev_blocks.saturating_sub(2 * ckpt_blocks) / SEG_BLOCKS;
        }
        if nsegs < RESERVE_SEGS + 2 {
            return Err(FsError::Invalid("device too small for a log"));
        }
        let logical = (nsegs - RESERVE_SEGS) * SEG_DATA;
        let ckpt_blocks = (24 + 4 * logical).div_ceil(block_size as u64);
        Ok((nsegs as u32, logical, nsegs * SEG_BLOCKS, ckpt_blocks))
    }

    /// Format a fresh log on `dev`.
    pub fn format(dev: Box<dyn BlockDevice>, cfg: LldConfig) -> FsResult<LogDisk> {
        let block_size = dev.block_size();
        let (nsegs, logical, ckpt_start, ckpt_blocks) =
            Self::geometry(dev.num_blocks(), block_size)?;
        let mut lld = LogDisk {
            dev,
            cfg,
            block_size,
            nsegs,
            logical_blocks: logical,
            map: vec![NONE; logical as usize],
            rmap: vec![NONE; (nsegs as u64 * SEG_DATA) as usize],
            seg_state: vec![SegState::Free; nsegs as usize],
            free_count: nsegs,
            seg_live: vec![0; nsegs as usize],
            open: None,
            next_seg: 0,
            ckpt_start,
            ckpt_blocks,
            cleaning: false,
            flush_seq: 1,
            pending_free: Vec::new(),
            ckpt_next_b: false,
            dirty_index: std::collections::BTreeSet::new(),
            stats: CleanerStats::default(),
            metrics: disksim::Metrics::disabled(),
        };
        lld.write_checkpoint()?;
        Ok(lld)
    }

    /// Validate one checkpoint slot image; returns its flush sequence if
    /// the magic, checksum and geometry all check out.
    fn validate_checkpoint(raw: &[u8], logical: u64) -> Option<u64> {
        if u32::from_le_bytes(raw[0..4].try_into().expect("slice of 4")) != CKPT_MAGIC {
            return None;
        }
        let stored = u32::from_le_bytes(raw[4..8].try_into().expect("slice of 4"));
        let h = fnv64(&[&raw[0..4], &[0u8; 4], &raw[8..]]);
        if (h ^ (h >> 32)) as u32 != stored {
            return None;
        }
        if u64::from_le_bytes(raw[8..16].try_into().expect("slice of 8")) != logical {
            return None;
        }
        Some(u64::from_le_bytes(
            raw[16..24].try_into().expect("slice of 8"),
        ))
    }

    /// Mount an existing log from its checkpoint.
    pub fn mount(mut dev: Box<dyn BlockDevice>, cfg: LldConfig) -> FsResult<LogDisk> {
        // Checkpoint reads plus the whole-log summary roll-forward are
        // recovery work, attributed as such.
        let spans = dev.spans();
        let sp = if spans.is_enabled() {
            spans.open(disksim::SpanKind::Recovery, "lld.mount", dev.clock().now())
        } else {
            0
        };
        let block_size = dev.block_size();
        let (nsegs, logical, ckpt_start, ckpt_blocks) =
            Self::geometry(dev.num_blocks(), block_size)?;
        // Read both checkpoint slots and take the newest valid one. A power
        // cut tearing the slot being written leaves the other intact; if
        // *both* are unreadable (corrupted media), fall back to a full
        // summary scan — start from an empty map and let roll-forward
        // re-apply every valid summary ever flushed.
        let mut best: Option<(u64, bool, Vec<u8>)> = None;
        for slot in 0..2u64 {
            let mut raw = vec![0u8; (ckpt_blocks as usize) * block_size];
            if dev
                .read_blocks(ckpt_start + slot * ckpt_blocks, &mut raw)
                .is_err()
            {
                continue;
            }
            if let Some(seq) = Self::validate_checkpoint(&raw, logical) {
                if best.as_ref().is_none_or(|(s, _, _)| seq > *s) {
                    best = Some((seq, slot == 1, raw));
                }
            }
        }
        // The next checkpoint must not overwrite the copy we just trusted.
        let ckpt_next_b = match &best {
            Some((_, is_b, _)) => !*is_b,
            None => false,
        };
        let (ckpt_flush_seq, mut map) = match best {
            Some((seq, _, raw)) => {
                let mut map = Vec::with_capacity(logical as usize);
                for i in 0..logical as usize {
                    let off = 24 + i * 4;
                    map.push(u32::from_le_bytes(
                        raw[off..off + 4].try_into().expect("slice of 4"),
                    ));
                }
                (seq, map)
            }
            None => (0, vec![NONE; logical as usize]),
        };
        // Roll forward: apply every segment summary flushed after the
        // checkpoint, in flush order. Blocks written since the last sync
        // (and flushed, partially or fully) come back; only the never-
        // flushed in-memory tail is lost — the same guarantee as LFS.
        // Each candidate summary's data checksum is verified against the
        // slots it covers: a flush torn by a power cut (summary landed,
        // data didn't) fails the check and is discarded — safe, because
        // sync only acknowledges after the checkpoint, so torn flushes
        // hold exclusively unacknowledged state.
        let mut summaries: Vec<(u64, u32, Summary)> = Vec::new();
        let mut max_flush_seq = ckpt_flush_seq;
        for seg in 0..nsegs {
            let mut sbuf = vec![0u8; block_size];
            dev.read_block(summary_block(seg), &mut sbuf)?;
            if let Ok(sum) = Summary::decode(&sbuf) {
                max_flush_seq = max_flush_seq.max(sum.seq);
                if sum.seq > ckpt_flush_seq {
                    let mut data = vec![0u8; sum.fill as usize * block_size];
                    if sum.fill > 0 {
                        dev.read_blocks(summary_block(seg) + 1, &mut data)?;
                    }
                    if fnv64(&[&data]) == sum.data_csum {
                        summaries.push((sum.seq, seg, sum));
                    }
                }
            }
        }
        summaries.sort_by_key(|(seq, _, _)| *seq);
        // Working reverse map so stale mappings can be cleared as newer
        // summaries supersede them.
        let mut work_rmap = vec![NONE; (nsegs as u64 * SEG_DATA) as usize];
        for (lb, &slot) in map.iter().enumerate() {
            if slot != NONE && (slot as usize) < work_rmap.len() {
                work_rmap[slot as usize] = lb as u32;
            }
        }
        for (_, seg, sum) in &summaries {
            // A summary describes the segment's *complete* ownership as of
            // its flush. Any older mapping into this segment (from a stale
            // checkpoint, or an older summary now superseded by reuse) is
            // dead — clear it first, or a trimmed-then-reused segment would
            // leave a logical block aliased onto someone else's slot.
            for idx in 0..SEG_DATA as u32 {
                let slot = seg_to_slot(*seg, idx);
                let old = work_rmap[slot as usize];
                if old != NONE && map[old as usize] == slot as u32 {
                    map[old as usize] = NONE;
                }
                work_rmap[slot as usize] = NONE;
            }
            for idx in 0..sum.fill {
                let owner = sum.owners[idx as usize];
                if owner != NONE && (owner as u64) < logical {
                    let slot = seg_to_slot(*seg, idx) as u32;
                    let prev = map[owner as usize];
                    if prev != NONE {
                        work_rmap[prev as usize] = NONE;
                    }
                    map[owner as usize] = slot;
                    work_rmap[slot as usize] = owner;
                }
            }
        }
        // Derive everything else from the (settled) map.
        let mut rmap = vec![NONE; (nsegs as u64 * SEG_DATA) as usize];
        let mut seg_live = vec![0u32; nsegs as usize];
        for (lb, &slot) in map.iter().enumerate() {
            if slot != NONE {
                rmap[slot as usize] = lb as u32;
                let (seg, _) = slot_to_seg(slot as u64);
                seg_live[seg as usize] += 1;
            }
        }
        let seg_state: Vec<SegState> = seg_live
            .iter()
            .map(|&l| {
                if l > 0 {
                    SegState::Dirty
                } else {
                    SegState::Free
                }
            })
            .collect();
        let free_count = seg_state.iter().filter(|s| **s == SegState::Free).count() as u32;
        let dirty_index = seg_state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == SegState::Dirty)
            .map(|(i, _)| (seg_live[i], i as u32))
            .collect();
        if sp != 0 {
            spans.close(sp, dev.clock().now());
        }
        Ok(LogDisk {
            dev,
            cfg,
            block_size,
            nsegs,
            logical_blocks: logical,
            map,
            rmap,
            seg_state,
            free_count,
            seg_live,
            open: None,
            next_seg: 0,
            ckpt_start,
            ckpt_blocks,
            cleaning: false,
            flush_seq: max_flush_seq + 1,
            pending_free: Vec::new(),
            ckpt_next_b,
            dirty_index,
            stats: CleanerStats::default(),
            metrics: disksim::Metrics::disabled(),
        })
    }

    /// Cleaner activity so far.
    pub fn cleaner_stats(&self) -> CleanerStats {
        self.stats
    }

    /// Attach a metrics handle (pass `Metrics::disabled()` to detach). The
    /// log records cleaner counters (`lld.segments_cleaned`,
    /// `lld.blocks_copied`, on-demand vs. idle passes), a `lld.victim_live`
    /// histogram, and free-segment / utilisation gauges.
    pub fn set_metrics(&mut self, metrics: disksim::Metrics) {
        self.metrics = metrics;
        self.update_gauges();
    }

    /// Open a causal span on the device stack's shared handle (cold paths
    /// only: segment flushes, checkpoints, the cleaner). Returns the handle
    /// and the id to pass to [`LogDisk::close_span`]; id 0 when disabled.
    fn open_span(&self, kind: disksim::SpanKind, label: &'static str) -> (disksim::Spans, u32) {
        let spans = self.dev.spans();
        let sp = if spans.is_enabled() {
            spans.open(kind, label, self.dev.clock().now())
        } else {
            0
        };
        (spans, sp)
    }

    fn close_span(&self, spans: &disksim::Spans, sp: u32) {
        if sp != 0 {
            spans.close(sp, self.dev.clock().now());
        }
    }

    /// Refresh the slow-moving gauges; called from cold paths only (the
    /// cleaner and idle), never per append.
    fn update_gauges(&self) {
        if self.metrics.is_enabled() {
            self.metrics
                .gauge("lld.free_segments", self.free_count as i64);
            let live: u64 = self.seg_live.iter().map(|&l| l as u64).sum();
            let cap = self.nsegs as u64 * SEG_DATA;
            self.metrics
                .gauge("lld.utilization_pct", (live * 100 / cap.max(1)) as i64);
        }
    }

    /// Free (immediately writable) segments. O(1): the count is maintained
    /// across state transitions (the recount below validates it in debug
    /// builds only).
    pub fn free_segments(&self) -> u32 {
        debug_assert_eq!(
            self.free_count,
            self.seg_state
                .iter()
                .filter(|s| **s == SegState::Free)
                .count() as u32,
            "free_count out of sync with seg_state"
        );
        self.free_count
    }

    /// Total segments in the log.
    pub fn segments(&self) -> u32 {
        self.nsegs
    }

    /// The raw device below the log.
    pub fn raw_device(&self) -> &dyn BlockDevice {
        self.dev.as_ref()
    }

    /// Snapshot of the logical-block → data-slot map (crash-test harnesses
    /// compare these across recovery paths).
    pub fn map_snapshot(&self) -> Vec<u32> {
        self.map.clone()
    }

    /// The checkpoint region on the raw device: (first block, total blocks
    /// covering both slots). Crash tests corrupt it to force the
    /// summary-scan recovery path.
    pub fn checkpoint_region(&self) -> (u64, u64) {
        (self.ckpt_start, 2 * self.ckpt_blocks)
    }

    /// Simulate a crash: drop the in-memory log state (open segment, map)
    /// and hand back the raw device for remounting.
    pub fn crash(self) -> Box<dyn BlockDevice> {
        self.dev
    }

    /// Flush dirty state and write the checkpoint ("sync" semantics,
    /// including the partial-segment threshold behaviour).
    pub fn sync(&mut self) -> FsResult<()> {
        self.flush_partial()?;
        self.write_checkpoint()?;
        Ok(())
    }

    // ----- log mechanics -------------------------------------------------

    /// Transition one segment's state, keeping `free_count` and the
    /// dirty-segment index in lockstep. Every `seg_state` write (after
    /// construction) must go through here.
    fn set_seg_state(&mut self, seg: u32, new: SegState) {
        let old = self.seg_state[seg as usize];
        if old == new {
            return;
        }
        match old {
            SegState::Free => self.free_count -= 1,
            SegState::Dirty => {
                self.dirty_index.remove(&(self.seg_live[seg as usize], seg));
            }
            SegState::Open => {}
        }
        match new {
            SegState::Free => self.free_count += 1,
            SegState::Dirty => {
                self.dirty_index.insert((self.seg_live[seg as usize], seg));
            }
            SegState::Open => {}
        }
        self.seg_state[seg as usize] = new;
    }

    /// Adjust one segment's live-block count, re-keying the dirty index
    /// when the segment is in it. Every `seg_live` write (after
    /// construction) must go through here.
    fn set_seg_live(&mut self, seg: u32, live: u32) {
        if self.seg_state[seg as usize] == SegState::Dirty {
            self.dirty_index.remove(&(self.seg_live[seg as usize], seg));
            self.dirty_index.insert((live, seg));
        }
        self.seg_live[seg as usize] = live;
    }

    fn acquire_segment(&mut self) -> FsResult<u32> {
        for attempt in 0..2 {
            for i in 0..self.nsegs {
                let seg = (self.next_seg + i) % self.nsegs;
                if self.seg_state[seg as usize] == SegState::Free {
                    self.next_seg = (seg + 1) % self.nsegs;
                    return Ok(seg);
                }
            }
            // No free segment: the cleaner must run in the write path — the
            // very situation Figure 8's high-utilisation cliff measures.
            // The cleaner's own appends must never recurse into cleaning.
            if self.cleaning || attempt == 1 {
                if std::env::var("VLOG_TRACE").is_ok() {
                    eprintln!(
                        "LLD acquire failed: cleaning={} free={} dirty_live={:?}",
                        self.cleaning,
                        self.free_segments(),
                        &self.seg_live[..8.min(self.seg_live.len())]
                    );
                }
                return Err(FsError::NoSpace);
            }
            self.stats.on_demand += 1;
            self.metrics.inc("lld.clean_on_demand");
            self.clean_some(2)?;
        }
        Err(FsError::NoSpace)
    }

    fn open_mut(&mut self) -> FsResult<&mut OpenSeg> {
        if self.open.is_none() {
            let seg = self.acquire_segment()?;
            self.set_seg_state(seg, SegState::Open);
            self.open = Some(OpenSeg {
                seg,
                summary: Summary::empty(),
                data: vec![0u8; (SEG_DATA as usize) * self.block_size],
                flushed: 0,
            });
        }
        Ok(self.open.as_mut().expect("just ensured"))
    }

    /// Append one block to the log; seals the segment when it fills.
    fn append(&mut self, lb: u64, buf: &[u8]) -> FsResult<()> {
        // User-level logical disk: each block through it costs host CPU.
        // (A zero-cost configuration skips the clock call entirely so it
        // doesn't inflate the simulation event count.)
        if self.cfg.cpu_per_block_ns > 0 {
            self.dev.clock().advance(self.cfg.cpu_per_block_ns);
        }
        // Drop the old mapping first.
        self.unmap(lb);
        let bs = self.block_size;
        let open = self.open_mut()?;
        let idx = open.summary.fill;
        let off = idx as usize * bs;
        open.data[off..off + bs].copy_from_slice(buf);
        open.summary.owners[idx as usize] = lb as u32;
        open.summary.fill += 1;
        let seg = open.seg;
        let full = open.summary.fill as u64 == SEG_DATA;
        let slot = seg_to_slot(seg, idx);
        self.map[lb as usize] = slot as u32;
        self.rmap[slot as usize] = lb as u32;
        self.set_seg_live(seg, self.seg_live[seg as usize] + 1);
        if full {
            self.seal()?;
        }
        // Keep the log ahead of exhaustion: once the free pool runs low,
        // clean in the write path (the cost Figure 8 measures at high
        // utilisation). The guard stops the cleaner's own appends from
        // recursing here.
        if !self.cleaning && self.free_segments() <= 2 {
            self.stats.on_demand += 1;
            self.metrics.inc("lld.clean_on_demand");
            let _ = self.clean_some(2);
        }
        Ok(())
    }

    fn unmap(&mut self, lb: u64) {
        let old = self.map[lb as usize];
        if old != NONE {
            self.map[lb as usize] = NONE;
            self.rmap[old as usize] = NONE;
            let (seg, _) = slot_to_seg(old as u64);
            self.set_seg_live(seg, self.seg_live[seg as usize] - 1);
            if self.seg_live[seg as usize] == 0 && self.seg_state[seg as usize] == SegState::Dirty {
                if self.cleaning {
                    // Mid-clean, the emptied segment is the victim (or holds
                    // data whose only durable copy the open segment hasn't
                    // flushed yet): reusing it now would overwrite that copy,
                    // and a torn flush would lose both versions. Park it
                    // until the open segment is durable.
                    if !self.pending_free.contains(&seg) {
                        self.pending_free.push(seg);
                    }
                } else {
                    // A sealed segment emptied by overwrites is safe to free:
                    // the open segment holding the overwrites cannot itself
                    // be recycled before it seals (and thus is durable).
                    self.set_seg_state(seg, SegState::Free);
                }
            }
        }
    }

    fn next_flush_seq(&mut self) -> u64 {
        self.flush_seq += 1;
        self.flush_seq
    }

    /// Assemble the one-command write image for a segment flush: the
    /// encoded summary followed by the first `fill` data slots. Built with
    /// two bulk copies — this runs on every seal/flush, where an
    /// element-wise iterator collect of the ~512 KB image was measurable.
    fn seg_image(summary: &Summary, data: &[u8], fill: usize, bs: usize) -> Vec<u8> {
        let mut image = Vec::with_capacity((1 + fill) * bs);
        image.extend_from_slice(&summary.encode(bs));
        image.extend_from_slice(&data[..fill * bs]);
        image
    }

    /// The open segment's contents just reached the platter: everything it
    /// superseded is now safely dead, so parked segments become free.
    fn promote_pending_frees(&mut self) {
        if self.cleaning {
            // A victim still being copied out must not be promoted by a
            // mid-clean seal; `clean_segment` promotes after its final
            // flush instead.
            return;
        }
        for seg in std::mem::take(&mut self.pending_free) {
            if self.seg_live[seg as usize] == 0 && self.seg_state[seg as usize] == SegState::Dirty {
                self.set_seg_state(seg, SegState::Free);
            }
        }
    }

    /// Force the open segment's current contents to disk without sealing,
    /// so that frees depending on them can be promoted.
    fn flush_open_now(&mut self) -> FsResult<()> {
        if let Some(open) = self.open.as_mut() {
            if open.summary.fill > open.flushed {
                let seq = self.flush_seq + 1;
                self.flush_seq = seq;
                let open = self.open.as_mut().expect("checked above");
                open.summary.seq = seq;
                let fill = open.summary.fill;
                open.summary.data_csum =
                    fnv64(&[&open.data[..fill as usize * self.block_size]]);
                let image =
                    Self::seg_image(&open.summary, &open.data, fill as usize, self.block_size);
                let start = summary_block(open.seg);
                open.flushed = fill;
                let (spans, sp) = self.open_span(disksim::SpanKind::LogAppend, "lld.seg_flush");
                let r = self.dev.write_blocks(start, &image);
                self.close_span(&spans, sp);
                r?;
            }
        }
        self.promote_pending_frees();
        Ok(())
    }

    /// Write the open segment (summary + all appended slots) and seal it.
    fn seal(&mut self) -> FsResult<()> {
        let Some(mut open) = self.open.take() else {
            return Ok(());
        };
        open.summary.seq = self.next_flush_seq();
        open.summary.data_csum = fnv64(&[
            &open.data[..open.summary.fill as usize * self.block_size]
        ]);
        self.write_open_image(&open)?;
        self.promote_pending_frees();
        let new = if self.seg_live[open.seg as usize] > 0 {
            SegState::Dirty
        } else {
            SegState::Free
        };
        self.set_seg_state(open.seg, new);
        Ok(())
    }

    /// Partial-segment handling on sync: above the threshold, seal; below
    /// it, write out what exists but keep accepting appends.
    fn flush_partial(&mut self) -> FsResult<()> {
        let Some(open) = self.open.as_ref() else {
            return Ok(());
        };
        if open.summary.fill == 0 {
            return Ok(());
        }
        let frac = open.summary.fill as f64 / SEG_DATA as f64;
        if frac >= self.cfg.partial_threshold {
            self.seal()
        } else {
            let open = self.open.as_mut().expect("checked above");
            let fill = open.summary.fill;
            open.summary.seq = self.flush_seq + 1;
            self.flush_seq += 1;
            let open = self.open.as_mut().expect("checked above");
            open.summary.data_csum =
                fnv64(&[&open.data[..fill as usize * self.block_size]]);
            // Write summary + filled slots in one command.
            let image =
                Self::seg_image(&open.summary, &open.data, fill as usize, self.block_size);
            let start = summary_block(open.seg);
            open.flushed = fill;
            let (spans, sp) = self.open_span(disksim::SpanKind::LogAppend, "lld.seg_flush");
            let r = self.dev.write_blocks(start, &image);
            self.close_span(&spans, sp);
            r?;
            self.promote_pending_frees();
            Ok(())
        }
    }

    fn write_open_image(&mut self, open: &OpenSeg) -> FsResult<()> {
        let fill = open.summary.fill as usize;
        let image = Self::seg_image(&open.summary, &open.data, fill, self.block_size);
        let (spans, sp) = self.open_span(disksim::SpanKind::LogAppend, "lld.seg_flush");
        let r = self.dev.write_blocks(summary_block(open.seg), &image);
        self.close_span(&spans, sp);
        r?;
        Ok(())
    }

    fn write_checkpoint(&mut self) -> FsResult<()> {
        let mut raw = vec![0u8; (self.ckpt_blocks as usize) * self.block_size];
        raw[0..4].copy_from_slice(&CKPT_MAGIC.to_le_bytes());
        raw[8..16].copy_from_slice(&self.logical_blocks.to_le_bytes());
        raw[16..24].copy_from_slice(&self.flush_seq.to_le_bytes());
        for (i, &slot) in self.map.iter().enumerate() {
            let off = 24 + i * 4;
            raw[off..off + 4].copy_from_slice(&slot.to_le_bytes());
        }
        // Checksum (folded FNV over the image with the csum field zeroed),
        // so mount can reject a checkpoint torn by a power cut.
        let h = fnv64(&[&raw[0..4], &[0u8; 4], &raw[8..]]);
        raw[4..8].copy_from_slice(&((h ^ (h >> 32)) as u32).to_le_bytes());
        let slot_start = if self.ckpt_next_b {
            self.ckpt_start + self.ckpt_blocks
        } else {
            self.ckpt_start
        };
        let (spans, sp) = self.open_span(disksim::SpanKind::LogAppend, "lld.checkpoint");
        let r = self.dev.write_blocks(slot_start, &raw);
        self.close_span(&spans, sp);
        r?;
        // Only alternate once the write completed: a failed/torn write
        // leaves the other (older but valid) slot as the fallback.
        self.ckpt_next_b = !self.ckpt_next_b;
        Ok(())
    }

    // ----- the cleaner -----------------------------------------------------

    /// Reclaim up to `want` segments, greedily by lowest utilisation.
    /// Returns how many were reclaimed.
    ///
    /// The victim is the head of the `(live, seg)` dirty-segment index —
    /// O(log n) instead of the per-pass summary rescan, with identical
    /// semantics (lowest live count, ties to the lowest segment number).
    /// `VLFS_REFERENCE=1` routes the pick through the retained rescan
    /// oracle instead; debug builds cross-check the two on every pass.
    pub fn clean_some(&mut self, want: u32) -> FsResult<u32> {
        // One span per cleaning pass; the victim reads, copy appends and
        // their segment flushes all hang off it (the copies' own
        // `LogAppend` child spans inherit the background classification).
        let (spans, sp) = self.open_span(disksim::SpanKind::Compaction, "lld.clean");
        let r = self.clean_some_inner(want);
        self.close_span(&spans, sp);
        r
    }

    fn clean_some_inner(&mut self, want: u32) -> FsResult<u32> {
        let mut cleaned = 0;
        while cleaned < want {
            let victim = if disksim::reference_mode() {
                self.choose_victim_rescan()
            } else {
                self.metrics.inc("lld.victim_index_picks");
                // Fully-live segments are never worth cleaning: copying
                // them frees nothing.
                self.dirty_index
                    .first()
                    .copied()
                    .and_then(|(live, seg)| ((live as u64) < SEG_DATA).then_some(seg))
            };
            debug_assert_eq!(victim, self.choose_victim_rescan());
            let Some(victim) = victim else { break };
            self.clean_segment(victim)?;
            cleaned += 1;
        }
        Ok(cleaned)
    }

    /// The pre-index full-rescan victim pick — least-utilised sealed
    /// segment by exhaustive `min_by_key` — retained as the oracle the
    /// indexed pick is verified against (and used under `VLFS_REFERENCE=1`).
    pub(crate) fn choose_victim_rescan(&self) -> Option<u32> {
        (0..self.nsegs)
            .filter(|&s| {
                self.seg_state[s as usize] == SegState::Dirty
                    && (self.seg_live[s as usize] as u64) < SEG_DATA
            })
            .min_by_key(|&s| self.seg_live[s as usize])
    }

    fn clean_segment(&mut self, victim: u32) -> FsResult<()> {
        if self.metrics.is_enabled() {
            self.metrics
                .observe("lld.victim_live", self.seg_live[victim as usize] as u64);
        }
        let live: Vec<(u32, u32)> = (0..SEG_DATA as u32)
            .filter_map(|idx| {
                let slot = seg_to_slot(victim, idx);
                let owner = self.rmap[slot as usize];
                (owner != NONE).then_some((idx, owner))
            })
            .collect();
        // The copies must fit in the open segment plus (at most) one fresh
        // one; refuse up front rather than wedge mid-copy.
        let open_room = self
            .open
            .as_ref()
            .map(|o| SEG_DATA as u32 - o.summary.fill)
            .unwrap_or(0);
        if live.len() as u32 > open_room && self.free_segments() == 0 {
            if std::env::var("VLOG_TRACE").is_ok() {
                eprintln!(
                    "LLD clean_segment {victim}: live={} room={open_room} no free",
                    live.len()
                );
            }
            return Err(FsError::NoSpace);
        }
        // Read the whole victim in one command (cleaning is segment-sized
        // I/O — the reason it needs long idle windows, unlike the VLD's
        // track-sized compactor).
        let mut image = vec![0u8; SEG_BLOCKS as usize * self.block_size];
        self.dev.read_blocks(summary_block(victim), &mut image)?;
        self.cleaning = true;
        for (idx, owner) in live {
            let off = (1 + idx as usize) * self.block_size;
            // `image` is a local buffer, so it can be lent to `append`
            // directly — no per-block copy.
            let r = self.append(owner as u64, &image[off..off + self.block_size]);
            if r.is_err() {
                self.cleaning = false;
            }
            r?;
            self.stats.blocks_copied += 1;
            self.metrics.inc("lld.blocks_copied");
        }
        self.cleaning = false;
        debug_assert_eq!(self.seg_live[victim as usize], 0);
        // The victim may only be reused once the copies are durable.
        if !self.pending_free.contains(&victim) {
            self.pending_free.push(victim);
        }
        self.flush_open_now()?;
        self.stats.segments_cleaned += 1;
        if self.metrics.is_enabled() {
            self.metrics.inc("lld.segments_cleaned");
            self.update_gauges();
        }
        Ok(())
    }
}

impl BlockDevice for LogDisk {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.logical_blocks
    }

    fn clock(&self) -> SimClock {
        self.dev.clock()
    }

    fn read_block(&mut self, block: u64, buf: &mut [u8]) -> DiskResult<ServiceTime> {
        let slot = self.map[block as usize];
        if slot == NONE {
            buf.fill(0);
            return Ok(ServiceTime::ZERO);
        }
        // Serve from the open segment buffer when possible.
        if let Some(open) = &self.open {
            let (seg, idx) = slot_to_seg(slot as u64);
            if seg == open.seg {
                let off = idx as usize * self.block_size;
                buf.copy_from_slice(&open.data[off..off + self.block_size]);
                return Ok(ServiceTime::ZERO);
            }
        }
        self.dev.read_block(slot_device_block(slot as u64), buf)
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> DiskResult<ServiceTime> {
        let clock = self.dev.clock();
        let t0 = clock.now();
        let t0_busy = self.dev.disk_stats().busy;
        self.append(block, buf).map_err(|e| match e {
            FsError::NoSpace => disksim::DiskError::NoSpace,
            FsError::Disk(d) => d,
            _ => disksim::DiskError::Unsupported("log append failed"),
        })?;
        // Report the device time this append actually triggered (zero for
        // a pure buffer append; a sealed segment's flush otherwise).
        let _ = t0_busy;
        Ok(ServiceTime {
            overhead_ns: 0,
            seek_ns: 0,
            head_switch_ns: 0,
            rotation_ns: 0,
            transfer_ns: clock.now() - t0,
        })
    }

    fn trim(&mut self, block: u64) -> DiskResult<()> {
        self.unmap(block);
        Ok(())
    }

    fn idle(&mut self, budget_ns: u64) -> u64 {
        let clock = self.dev.clock();
        let start = clock.now();
        let deadline = start + budget_ns;
        while clock.now() < deadline && self.free_segments() < self.cfg.idle_clean_target {
            if self.dirty_index.is_empty() {
                break;
            }
            self.stats.during_idle += 1;
            self.metrics.inc("lld.clean_during_idle");
            if self.clean_some(1).unwrap_or(0) == 0 {
                break;
            }
        }
        self.update_gauges();
        clock.now() - start
    }

    fn flush(&mut self) -> DiskResult<ServiceTime> {
        let clock = self.dev.clock();
        let t0 = clock.now();
        self.sync().map_err(|e| match e {
            FsError::Disk(d) => d,
            _ => disksim::DiskError::Unsupported("log flush failed"),
        })?;
        Ok(ServiceTime {
            transfer_ns: clock.now() - t0,
            ..ServiceTime::ZERO
        })
    }

    fn disk_stats(&self) -> DiskStats {
        self.dev.disk_stats()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn self_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn inner_device(&self) -> Option<&dyn BlockDevice> {
        Some(self.dev.as_ref())
    }

    fn spans(&self) -> disksim::Spans {
        self.dev.spans()
    }

    fn snapshot(&self) -> Option<Box<dyn DeviceSnapshot>> {
        Some(Box::new(LogDiskSnapshot {
            dev: self.dev.snapshot()?,
            cfg: self.cfg,
            block_size: self.block_size,
            nsegs: self.nsegs,
            logical_blocks: self.logical_blocks,
            map: self.map.clone(),
            rmap: self.rmap.clone(),
            seg_state: self.seg_state.clone(),
            free_count: self.free_count,
            seg_live: self.seg_live.clone(),
            open: self.open.clone(),
            next_seg: self.next_seg,
            ckpt_start: self.ckpt_start,
            ckpt_blocks: self.ckpt_blocks,
            flush_seq: self.flush_seq,
            pending_free: self.pending_free.clone(),
            ckpt_next_b: self.ckpt_next_b,
            dirty_index: self.dirty_index.clone(),
            stats: self.stats,
        }))
    }
}

/// Snapshot of a [`LogDisk`]: the wrapped device's snapshot plus every
/// piece of log bookkeeping, including the in-memory open segment. The
/// `cleaning` re-entrancy guard is transient (always false between calls)
/// and restores false; the metrics handle restores detached.
pub struct LogDiskSnapshot {
    dev: Box<dyn DeviceSnapshot>,
    cfg: LldConfig,
    block_size: usize,
    nsegs: u32,
    logical_blocks: u64,
    map: Vec<u32>,
    rmap: Vec<u32>,
    seg_state: Vec<SegState>,
    free_count: u32,
    seg_live: Vec<u32>,
    open: Option<OpenSeg>,
    next_seg: u32,
    ckpt_start: u64,
    ckpt_blocks: u64,
    flush_seq: u64,
    pending_free: Vec<u32>,
    ckpt_next_b: bool,
    dirty_index: std::collections::BTreeSet<(u32, u32)>,
    stats: CleanerStats,
}

impl DeviceSnapshot for LogDiskSnapshot {
    fn restore(&self) -> Box<dyn BlockDevice> {
        Box::new(LogDisk {
            dev: self.dev.restore(),
            cfg: self.cfg,
            block_size: self.block_size,
            nsegs: self.nsegs,
            logical_blocks: self.logical_blocks,
            map: self.map.clone(),
            rmap: self.rmap.clone(),
            seg_state: self.seg_state.clone(),
            free_count: self.free_count,
            seg_live: self.seg_live.clone(),
            open: self.open.clone(),
            next_seg: self.next_seg,
            ckpt_start: self.ckpt_start,
            ckpt_blocks: self.ckpt_blocks,
            cleaning: false,
            flush_seq: self.flush_seq,
            pending_free: self.pending_free.clone(),
            ckpt_next_b: self.ckpt_next_b,
            dirty_index: self.dirty_index.clone(),
            stats: self.stats,
            metrics: disksim::Metrics::disabled(),
        })
    }

    fn local_events(&self) -> u64 {
        self.dev.local_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::{DiskSpec, RegularDisk};

    fn raw() -> Box<dyn BlockDevice> {
        Box::new(RegularDisk::new(
            DiskSpec::st19101_sim(),
            SimClock::new(),
            4096,
        ))
    }

    fn lld() -> LogDisk {
        LogDisk::format(raw(), LldConfig::default()).unwrap()
    }

    #[test]
    fn geometry_leaves_reserve_and_checkpoint() {
        let l = lld();
        assert!(l.segments() >= 40);
        assert_eq!(
            l.num_blocks(),
            (l.segments() as u64 - RESERVE_SEGS) * SEG_DATA
        );
        assert!(l.ckpt_start >= l.segments() as u64 * SEG_BLOCKS);
    }

    #[test]
    fn write_read_round_trip_through_buffer_and_media() {
        let mut l = lld();
        let w: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        l.write_block(10, &w).unwrap();
        // Still in the open segment: served from memory.
        let mut r = vec![0u8; 4096];
        let t = l.read_block(10, &mut r).unwrap();
        assert_eq!(r, w);
        assert_eq!(t.total_ns(), 0);
        // Fill the segment to force a seal, then re-read from media.
        for i in 0..SEG_DATA {
            l.write_block(100 + i, &vec![i as u8; 4096]).unwrap();
        }
        let mut r = vec![0u8; 4096];
        l.read_block(10, &mut r).unwrap();
        assert_eq!(r, w);
    }

    #[test]
    fn small_writes_are_buffered_not_disked() {
        let mut l = lld();
        let before = l.disk_stats().writes;
        for i in 0..50u64 {
            l.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        assert_eq!(l.disk_stats().writes, before, "appends must stay in memory");
    }

    #[test]
    fn seal_writes_one_big_command() {
        let mut l = lld();
        let before = l.disk_stats().writes;
        for i in 0..SEG_DATA {
            l.write_block(i, &vec![2u8; 4096]).unwrap();
        }
        assert_eq!(l.disk_stats().writes, before + 1, "one command per segment");
    }

    #[test]
    fn unmapped_reads_zero() {
        let mut l = lld();
        let mut r = vec![9u8; 4096];
        let t = l.read_block(77, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0));
        assert_eq!(t.total_ns(), 0);
    }

    #[test]
    fn sync_below_threshold_keeps_segment_open() {
        let mut l = lld();
        for i in 0..10u64 {
            l.write_block(i, &vec![3u8; 4096]).unwrap();
        }
        l.sync().unwrap();
        assert!(l.open.is_some(), "10/127 < 75%: memory copy retained");
        // Above threshold: sealed.
        for i in 10..100u64 {
            l.write_block(i, &vec![4u8; 4096]).unwrap();
        }
        l.sync().unwrap();
        assert!(l.open.is_none(), "100/127 >= 75%: flushed as if full");
    }

    #[test]
    fn overwrites_make_segments_cleanable() {
        let mut l = lld();
        // Fill several segments, then overwrite everything: old segments
        // become fully dead and thus free without cleaning.
        let n = 3 * SEG_DATA;
        for i in 0..n {
            l.write_block(i, &vec![5u8; 4096]).unwrap();
        }
        let free_before = l.free_segments();
        for i in 0..n {
            l.write_block(i, &vec![6u8; 4096]).unwrap();
        }
        assert!(
            l.free_segments() >= free_before - 1,
            "dead segments recycled"
        );
        // Data still correct.
        let mut r = vec![0u8; 4096];
        l.read_block(n - 1, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 6));
    }

    #[test]
    fn cleaner_reclaims_holey_segments() {
        let mut l = lld();
        let span = 5 * SEG_DATA;
        for i in 0..span {
            l.write_block(i, &vec![7u8; 4096]).unwrap();
        }
        // Punch 50% holes.
        for i in (0..span).step_by(2) {
            l.write_block(i, &vec![8u8; 4096]).unwrap();
        }
        l.sync().unwrap();
        let free_before = l.free_segments();
        let cleaned = l.clean_some(2).unwrap();
        assert_eq!(cleaned, 2);
        assert!(l.free_segments() > free_before.saturating_sub(1));
        assert!(l.cleaner_stats().blocks_copied > 0);
        // All data intact.
        for i in 0..span {
            let want = if i % 2 == 0 { 8 } else { 7 };
            let mut r = vec![0u8; 4096];
            l.read_block(i, &mut r).unwrap();
            assert!(r.iter().all(|&b| b == want), "block {i}");
        }
    }

    #[test]
    fn fills_to_capacity_with_on_demand_cleaning() {
        let mut l = lld();
        let n = l.num_blocks();
        for i in 0..n {
            l.write_block(i, &vec![9u8; 4096]).unwrap();
        }
        // Overwrite a lot — forces cleaning since free segments are scarce.
        for i in 0..n {
            l.write_block(i, &vec![10u8; 4096]).unwrap();
        }
        assert!(l.cleaner_stats().segments_cleaned > 0 || l.free_segments() > 0);
        let mut r = vec![0u8; 4096];
        l.read_block(0, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 10));
    }

    #[test]
    fn idle_cleaning_respects_target_and_budget() {
        // Aggressive target so idle time has cleaning to do.
        let cfg = LldConfig {
            idle_clean_target: u32::MAX,
            ..LldConfig::default()
        };
        let mut l = LogDisk::format(raw(), cfg).unwrap();
        let span = 6 * SEG_DATA;
        for i in 0..span {
            l.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        for i in (0..span).step_by(2) {
            l.write_block(i, &vec![2u8; 4096]).unwrap();
        }
        l.sync().unwrap();
        let dirty_before = l.segments() - l.free_segments();
        let used = l.idle(60_000_000_000);
        assert!(used > 0, "holey segments existed; idle must clean");
        assert!(l.cleaner_stats().during_idle > 0);
        let dirty_after = l.segments() - l.free_segments();
        assert!(
            dirty_after < dirty_before,
            "{dirty_before} -> {dirty_after}"
        );
        // A tiny budget consumes at most one cleaning pass beyond it.
        let small = l.idle(1_000);
        assert!(small < 200_000_000, "budget wildly exceeded: {small}");
    }

    #[test]
    fn roll_forward_recovers_sealed_segments_after_crash() {
        // Write enough to seal several segments, then "crash" without any
        // sync: the checkpoint is stale (from format), but the sealed
        // segments' summaries roll the map forward.
        let mut l = lld();
        let n = 3 * SEG_DATA + 40; // 3 sealed + a partial tail
        for i in 0..n {
            l.write_block(i, &vec![(i % 251) as u8; 4096]).unwrap();
        }
        let dev = l.dev; // no sync(): simulated crash
        let mut l2 = LogDisk::mount(dev, LldConfig::default()).unwrap();
        for i in 0..3 * SEG_DATA {
            let mut r = vec![0u8; 4096];
            l2.read_block(i, &mut r).unwrap();
            assert!(
                r.iter().all(|&b| b == (i % 251) as u8),
                "sealed block {i} lost"
            );
        }
        // The unsealed, never-flushed tail is (correctly) gone.
        let mut r = vec![0u8; 4096];
        l2.read_block(3 * SEG_DATA + 10, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0), "unflushed tail should be lost");
    }

    #[test]
    fn roll_forward_applies_partial_flushes() {
        let mut l = lld();
        for i in 0..30u64 {
            l.write_block(i, &vec![5u8; 4096]).unwrap();
        }
        l.sync().unwrap(); // below threshold: partial flush, segment open
        for i in 30..50u64 {
            l.write_block(i, &vec![6u8; 4096]).unwrap();
        }
        // Crash: blocks 30..50 were never flushed; 0..30 were.
        let dev = l.dev;
        let mut l2 = LogDisk::mount(dev, LldConfig::default()).unwrap();
        let mut r = vec![0u8; 4096];
        l2.read_block(10, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 5), "partially-flushed data lost");
        l2.read_block(40, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0));
    }

    #[test]
    fn roll_forward_keeps_latest_version_across_segments() {
        let mut l = lld();
        // Fill a segment with v1, then overwrite some blocks into the next
        // segment; crash after both sealed.
        for i in 0..SEG_DATA {
            l.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        for i in 0..SEG_DATA {
            l.write_block(i, &vec![2u8; 4096]).unwrap();
        }
        let dev = l.dev;
        let mut l2 = LogDisk::mount(dev, LldConfig::default()).unwrap();
        for i in (0..SEG_DATA).step_by(13) {
            let mut r = vec![0u8; 4096];
            l2.read_block(i, &mut r).unwrap();
            assert!(
                r.iter().all(|&b| b == 2),
                "block {i} resolved to stale version"
            );
        }
    }

    #[test]
    fn cleaner_victims_stay_safe_across_crash() {
        // Clean a holey segment, then crash before any sync: the copies
        // were force-flushed before the victim became reusable, so nothing
        // is lost.
        let mut l = lld();
        let span = 3 * SEG_DATA;
        for i in 0..span {
            l.write_block(i, &vec![7u8; 4096]).unwrap();
        }
        for i in (0..span).step_by(2) {
            l.write_block(i, &vec![8u8; 4096]).unwrap();
        }
        l.clean_some(2).unwrap();
        let dev = l.dev; // crash, no sync
        let mut l2 = LogDisk::mount(dev, LldConfig::default()).unwrap();
        for i in 0..span {
            let want = if i % 2 == 0 { 8 } else { 7 };
            let mut r = vec![0u8; 4096];
            l2.read_block(i, &mut r).unwrap();
            // Blocks might legitimately be the unflushed tail (lost) only
            // if they were never flushed; sealed v1/v2 and cleaned copies
            // must survive.
            let got = r[0];
            assert!(r.iter().all(|&b| b == got), "block {i} torn after crash");
            assert!(
                got == want || got == 0,
                "block {i}: impossible value {got} (want {want} or lost)"
            );
            if got == 0 {
                // Lost blocks are only acceptable from the unflushed tail;
                // v1 blocks (odd) were sealed long ago and must be present.
                assert!(i % 2 == 0, "sealed block {i} lost");
            }
        }
    }

    #[test]
    fn checkpointed_mount_preserves_data() {
        let mut l = lld();
        for i in 0..200u64 {
            l.write_block(i, &vec![i as u8; 4096]).unwrap();
        }
        l.sync().unwrap();
        let dev = l.dev;
        let mut l2 = LogDisk::mount(dev, LldConfig::default()).unwrap();
        for i in 0..200u64 {
            let mut r = vec![0u8; 4096];
            l2.read_block(i, &mut r).unwrap();
            assert!(r.iter().all(|&b| b == i as u8), "block {i}");
        }
    }

    #[test]
    fn torn_checkpoint_falls_back_to_other_slot() {
        let mut l = lld();
        for i in 0..200u64 {
            l.write_block(i, &vec![i as u8; 4096]).unwrap();
        }
        l.sync().unwrap();
        let (ckpt_start, ckpt_total) = l.checkpoint_region();
        let ckpt_blocks = ckpt_total / 2;
        // Format wrote slot A, the sync wrote slot B: tear slot B's header
        // (as a power cut mid-checkpoint would) and remount.
        let mut dev = l.crash();
        dev.write_block(ckpt_start + ckpt_blocks, &vec![0xEEu8; 4096])
            .unwrap();
        let mut l2 = LogDisk::mount(dev, LldConfig::default()).unwrap();
        // Slot A (from format) plus summary roll-forward recovers all the
        // sealed/flushed data.
        for i in 0..SEG_DATA {
            let mut r = vec![0u8; 4096];
            l2.read_block(i, &mut r).unwrap();
            assert!(r.iter().all(|&b| b == i as u8), "block {i}");
        }
    }

    #[test]
    fn both_checkpoints_corrupt_scan_fallback_recovers() {
        let mut l = lld();
        let n = 2 * SEG_DATA; // two sealed segments
        for i in 0..n {
            l.write_block(i, &vec![(i % 251) as u8; 4096]).unwrap();
        }
        l.sync().unwrap();
        let (ckpt_start, ckpt_total) = l.checkpoint_region();
        let ckpt_blocks = ckpt_total / 2;
        let mut dev = l.crash();
        dev.write_block(ckpt_start, &vec![0xEEu8; 4096]).unwrap();
        dev.write_block(ckpt_start + ckpt_blocks, &vec![0xEEu8; 4096])
            .unwrap();
        let mut l2 = LogDisk::mount(dev, LldConfig::default()).unwrap();
        for i in 0..n {
            let mut r = vec![0u8; 4096];
            l2.read_block(i, &mut r).unwrap();
            assert!(r.iter().all(|&b| b == (i % 251) as u8), "block {i}");
        }
    }

    #[test]
    fn torn_segment_flush_is_discarded_on_mount() {
        // Seal one segment (durable), then hand-craft a "torn flush" of a
        // second: its summary lands but the data blocks do not. Mount must
        // keep the sealed segment and discard the torn one.
        let mut l = lld();
        for i in 0..SEG_DATA {
            l.write_block(i, &vec![3u8; 4096]).unwrap();
        }
        let mut torn = Summary::empty();
        torn.fill = 4;
        for idx in 0..4u32 {
            torn.owners[idx as usize] = (SEG_DATA + idx as u64) as u32;
        }
        torn.seq = 99;
        torn.data_csum = 0x1234_5678; // data never written: csum can't match
        let img = torn.encode(4096);
        let mut dev = l.crash();
        dev.write_block(summary_block(1), &img).unwrap();
        let mut l2 = LogDisk::mount(dev, LldConfig::default()).unwrap();
        let mut r = vec![0u8; 4096];
        l2.read_block(0, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 3), "sealed segment lost");
        l2.read_block(SEG_DATA + 1, &mut r).unwrap();
        assert!(
            r.iter().all(|&b| b == 0),
            "torn segment's blocks must not surface"
        );
    }

    #[test]
    fn scan_fallback_does_not_alias_trimmed_blocks() {
        // Trim a whole segment's worth of blocks, force the emptied segment
        // to be reused by new data, then corrupt both checkpoints and
        // remount via the scan path. The stale pre-trim mappings must not
        // alias onto the reused segment's new contents.
        let mut l = lld();
        for i in 0..SEG_DATA {
            l.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        l.sync().unwrap(); // checkpoint maps 0..SEG_DATA into segment 0
        for i in 0..SEG_DATA {
            l.trim(i).unwrap();
        }
        // Steer the allocator back to the emptied segment and seal a fresh
        // generation of data into it.
        assert_eq!(l.seg_state[0], SegState::Free, "trim must free segment 0");
        l.next_seg = 0;
        let hi = l.num_blocks() - SEG_DATA;
        for i in 0..SEG_DATA {
            l.write_block(hi + i, &vec![10u8; 4096]).unwrap();
        }
        assert_eq!(l.seg_state[0], SegState::Dirty, "segment 0 never reused");
        assert!(l.seg_live[0] > 0);
        let (ckpt_start, ckpt_total) = l.checkpoint_region();
        let ckpt_blocks = ckpt_total / 2;
        let mut dev = l.crash();
        dev.write_block(ckpt_start, &vec![0xEEu8; 4096]).unwrap();
        dev.write_block(ckpt_start + ckpt_blocks, &vec![0xEEu8; 4096])
            .unwrap();
        let mut l2 = LogDisk::mount(dev, LldConfig::default()).unwrap();
        for i in 0..SEG_DATA {
            let mut r = vec![7u8; 4096];
            l2.read_block(i, &mut r).unwrap();
            assert!(
                r.iter().all(|&b| b == 0),
                "trimmed block {i} aliased onto reused segment data"
            );
        }
    }

    #[test]
    fn trim_frees_segment_space() {
        let mut l = lld();
        for i in 0..SEG_DATA {
            l.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        for i in 0..SEG_DATA {
            l.trim(i).unwrap();
        }
        let mut r = vec![1u8; 4096];
        l.read_block(0, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0));
    }

    /// The `(live, seg)` dirty index stays in lockstep with `seg_state` /
    /// `seg_live`, and its head matches the retained full-rescan victim
    /// oracle, across random write / trim / clean / sync interleavings.
    #[test]
    fn dirty_index_matches_rescan_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut l = lld();
        let mut rng = StdRng::seed_from_u64(0x11D);
        let n = l.num_blocks();
        for round in 0..60 {
            for _ in 0..rng.gen_range(10..200) {
                let lb = rng.gen_range(0..n / 4);
                match rng.gen_range(0..10u32) {
                    0 => l.trim(lb).unwrap(),
                    _ => {
                        l.write_block(lb, &vec![lb as u8; 4096]).unwrap();
                    }
                }
            }
            match rng.gen_range(0..3u32) {
                0 => {
                    let _ = l.clean_some(rng.gen_range(1..3u32));
                }
                1 => l.sync().unwrap(),
                _ => {}
            }
            let recomputed: std::collections::BTreeSet<(u32, u32)> = l
                .seg_state
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == SegState::Dirty)
                .map(|(i, _)| (l.seg_live[i], i as u32))
                .collect();
            assert_eq!(l.dirty_index, recomputed, "round {round}");
            let indexed = l
                .dirty_index
                .first()
                .copied()
                .and_then(|(live, seg)| ((live as u64) < SEG_DATA).then_some(seg));
            assert_eq!(indexed, l.choose_victim_rescan(), "round {round}");
        }
    }
}
