//! Segment geometry and on-disk segment summaries.
//!
//! The log-structured logical disk divides the device into 512 KB segments
//! (the MIT LLD's size, which the paper uses). Each segment's first block
//! is its *summary*: the logical owner of every data slot, so a mounted
//! volume (or a cleaner) can tell live blocks from dead ones.

use fscore::{FsError, FsResult};

/// Device blocks per segment (512 KB / 4 KB).
pub const SEG_BLOCKS: u64 = 128;
/// Data slots per segment (one block goes to the summary).
pub const SEG_DATA: u64 = SEG_BLOCKS - 1;
/// Sentinel for "no owner" / unmapped.
pub const NONE: u32 = u32::MAX;
/// Summary magic ("LSEG").
pub const SUMMARY_MAGIC: u32 = 0x4C53_4547;

/// Byte length of the checksummed summary header: magic, fill, seq, owner
/// table and data checksum.
const HEAD_BYTES: usize = 16 + SEG_DATA as usize * 4 + 8;

/// The checksum protecting summaries and checkpoints. A crash can tear the
/// multi-block segment flush (summary first, data after); the checksums let
/// mount detect and discard such segments instead of replaying garbage.
///
/// This is FNV-1a lifted from bytes to 64-bit words: the byte-serial
/// multiply chain priced every 512 KB seal at a millisecond of host time,
/// so each step folds in eight bytes at once. The digest is a pure function
/// of the concatenated byte stream (chunk boundaries never change it — a
/// carry buffer regroups bytes across chunks), and the total length is
/// folded into the final step so streams differing only in trailing zeros
/// stay distinct.
pub fn fnv64(chunks: &[&[u8]]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut carry = [0u8; 8];
    let mut pending = 0usize;
    let mut total = 0u64;
    for chunk in chunks {
        total += chunk.len() as u64;
        let mut rest = *chunk;
        if pending > 0 {
            let take = (8 - pending).min(rest.len());
            carry[pending..pending + take].copy_from_slice(&rest[..take]);
            pending += take;
            rest = &rest[take..];
            if pending < 8 {
                // The chunk ran out before completing a word; keep the
                // partial carry for the next chunk.
                continue;
            }
            h = (h ^ u64::from_le_bytes(carry)).wrapping_mul(PRIME);
        }
        let mut words = rest.chunks_exact(8);
        for w in &mut words {
            let word = u64::from_le_bytes(w.try_into().expect("chunk of 8"));
            h = (h ^ word).wrapping_mul(PRIME);
        }
        let tail = words.remainder();
        carry[..tail.len()].copy_from_slice(tail);
        pending = tail.len();
    }
    if pending > 0 {
        carry[pending..].fill(0);
        h = (h ^ u64::from_le_bytes(carry)).wrapping_mul(PRIME);
    }
    (h ^ total).wrapping_mul(PRIME)
}

/// Per-segment bookkeeping state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegState {
    /// No live data; available for writing.
    Free,
    /// Sealed on disk, may contain live and dead blocks.
    Dirty,
    /// The segment currently accepting appends (in memory).
    Open,
}

/// In-memory image of a segment summary block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Logical owner of each data slot (NONE = never written).
    pub owners: Vec<u32>,
    /// Number of slots actually appended.
    pub fill: u32,
    /// Monotonic flush sequence: every summary written to disk (partial
    /// flush or seal) gets a fresh value, so mount-time roll-forward can
    /// order segments and skip ones older than the checkpoint.
    pub seq: u64,
    /// Checksum over the `fill` data blocks flushed with this summary.
    /// Roll-forward verifies it before trusting the segment: if the crash
    /// tore the flush after the summary block but before (all of) the data
    /// landed, the mismatch exposes it.
    pub data_csum: u64,
}

impl Summary {
    /// An empty summary.
    pub fn empty() -> Self {
        Self {
            owners: vec![NONE; SEG_DATA as usize],
            fill: 0,
            seq: 0,
            data_csum: 0,
        }
    }

    /// Serialise into a block image of `block_size` bytes. The header is
    /// sealed with its own checksum so a torn summary write (partial
    /// sectors of the summary block itself) is detectable.
    pub fn encode(&self, block_size: usize) -> Vec<u8> {
        let mut b = vec![0u8; block_size];
        b[0..4].copy_from_slice(&SUMMARY_MAGIC.to_le_bytes());
        b[4..8].copy_from_slice(&self.fill.to_le_bytes());
        b[8..16].copy_from_slice(&self.seq.to_le_bytes());
        for (i, o) in self.owners.iter().enumerate() {
            let off = 16 + i * 4;
            b[off..off + 4].copy_from_slice(&o.to_le_bytes());
        }
        let data_off = 16 + SEG_DATA as usize * 4;
        b[data_off..data_off + 8].copy_from_slice(&self.data_csum.to_le_bytes());
        let head_csum = fnv64(&[&b[..HEAD_BYTES]]);
        b[HEAD_BYTES..HEAD_BYTES + 8].copy_from_slice(&head_csum.to_le_bytes());
        b
    }

    /// Decode a summary block, verifying the header checksum.
    pub fn decode(buf: &[u8]) -> FsResult<Summary> {
        if buf.len() < HEAD_BYTES + 8 {
            return Err(FsError::Invalid("summary block too small"));
        }
        if u32::from_le_bytes(buf[0..4].try_into().expect("slice of 4")) != SUMMARY_MAGIC {
            return Err(FsError::Invalid("bad segment summary magic"));
        }
        let stored = u64::from_le_bytes(
            buf[HEAD_BYTES..HEAD_BYTES + 8]
                .try_into()
                .expect("slice of 8"),
        );
        if fnv64(&[&buf[..HEAD_BYTES]]) != stored {
            return Err(FsError::Invalid("segment summary checksum mismatch"));
        }
        let fill = u32::from_le_bytes(buf[4..8].try_into().expect("slice of 4"));
        if fill > SEG_DATA as u32 {
            return Err(FsError::Invalid("summary fill out of range"));
        }
        let seq = u64::from_le_bytes(buf[8..16].try_into().expect("slice of 8"));
        let mut owners = Vec::with_capacity(SEG_DATA as usize);
        for i in 0..SEG_DATA as usize {
            let off = 16 + i * 4;
            owners.push(u32::from_le_bytes(
                buf[off..off + 4].try_into().expect("slice of 4"),
            ));
        }
        let data_off = 16 + SEG_DATA as usize * 4;
        let data_csum = u64::from_le_bytes(
            buf[data_off..data_off + 8]
                .try_into()
                .expect("slice of 8"),
        );
        Ok(Summary {
            owners,
            fill,
            seq,
            data_csum,
        })
    }
}

/// Map a global data-slot number to its segment and slot index.
#[inline]
pub fn slot_to_seg(slot: u64) -> (u32, u32) {
    ((slot / SEG_DATA) as u32, (slot % SEG_DATA) as u32)
}

/// Map (segment, slot index) to the global slot number.
#[inline]
pub fn seg_to_slot(seg: u32, idx: u32) -> u64 {
    seg as u64 * SEG_DATA + idx as u64
}

/// Device block holding a data slot.
#[inline]
pub fn slot_device_block(slot: u64) -> u64 {
    let (seg, idx) = slot_to_seg(slot);
    seg as u64 * SEG_BLOCKS + 1 + idx as u64
}

/// Device block holding a segment's summary.
#[inline]
pub fn summary_block(seg: u32) -> u64 {
    seg as u64 * SEG_BLOCKS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_roundtrip() {
        let mut s = Summary::empty();
        s.owners[0] = 5;
        s.owners[126] = 99;
        s.fill = 2;
        s.seq = 77;
        s.data_csum = 0xDEAD_BEEF_F00D;
        let img = s.encode(4096);
        assert_eq!(Summary::decode(&img).unwrap(), s);
    }

    #[test]
    fn tampered_summary_header_rejected() {
        let mut img = Summary::empty().encode(4096);
        img[20] ^= 0x01; // flip one owner bit
        assert!(Summary::decode(&img).is_err(), "checksum must catch tamper");
    }

    #[test]
    fn bad_summary_rejected() {
        assert!(Summary::decode(&vec![0u8; 4096]).is_err());
        assert!(Summary::decode(&[0u8; 10]).is_err());
        let mut s = Summary::empty().encode(4096);
        s[4] = 0xFF; // fill > SEG_DATA
        s[5] = 0xFF;
        assert!(Summary::decode(&s).is_err());
    }

    #[test]
    fn fnv64_depends_only_on_the_byte_stream() {
        let data: Vec<u8> = (0..100u8).collect();
        let whole = fnv64(&[&data]);
        // Any chunking of the same stream must digest identically.
        assert_eq!(fnv64(&[&data[..3], &data[3..]]), whole);
        assert_eq!(fnv64(&[&data[..8], &data[8..64], &data[64..]]), whole);
        assert_eq!(fnv64(&[&[], &data, &[]]), whole);
        // Different streams must (overwhelmingly) differ — including ones
        // that only differ by trailing zeros.
        assert_ne!(fnv64(&[&data[..99]]), whole);
        assert_ne!(fnv64(&[&[0u8; 8]]), fnv64(&[&[0u8; 16]]));
        assert_ne!(fnv64(&[&[]]), fnv64(&[&[0u8]]));
    }

    #[test]
    fn slot_addressing_roundtrip() {
        for slot in [0u64, 1, 126, 127, 128, 1000] {
            let (seg, idx) = slot_to_seg(slot);
            assert_eq!(seg_to_slot(seg, idx), slot);
        }
        assert_eq!(slot_device_block(0), 1, "slot 0 skips the summary");
        assert_eq!(slot_device_block(127), 129, "second segment starts at 128");
        assert_eq!(summary_block(1), 128);
    }
}
