//! Property tests over the analytical models' structural behaviour.

use proptest::prelude::*;
use vlog_models::{compactor, cylinder, single_track};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Formula (1) is monotone: more free space never increases the skip
    /// count, and it is bounded by the track size.
    #[test]
    fn single_track_monotone_and_bounded(n in 4u64..512, p in 0.0f64..=1.0) {
        let e = single_track::expected_skips(n, p);
        prop_assert!(e >= 0.0 && e <= n as f64);
        let eps = 0.02;
        if p + eps <= 1.0 {
            prop_assert!(single_track::expected_skips(n, p + eps) <= e + 1e-9);
        }
    }

    /// Formula (9) is monotone in the physical block size: bigger b (up to
    /// B) never increases the locate cost.
    #[test]
    fn block_extension_monotone_in_b(n in 64u64..512, p in 0.05f64..0.95) {
        let logical = 8u64;
        let mut prev = f64::INFINITY;
        for b in [1u64, 2, 4, 8] {
            let e = single_track::expected_skips_blocks(n, p, b, logical);
            prop_assert!(e <= prev + 1e-9, "b={b}: {e} > {prev}");
            prev = e;
        }
    }

    /// The cylinder model is bounded above by the single-track geometric
    /// expectation and below by zero.
    #[test]
    fn cylinder_bounded_by_single_track(
        p in 0.02f64..0.98,
        s in 1u64..60,
        t in 2u32..24,
    ) {
        let cyl = cylinder::expected_latency(p, s, t);
        let single = (1.0 - p) / p;
        prop_assert!(cyl >= 0.0);
        prop_assert!(cyl <= single + 1e-9, "p={p} s={s} t={t}: {cyl} > {single}");
        // More tracks can only help.
        let more = cylinder::expected_latency(p, s, t + 4);
        prop_assert!(more <= cyl + 1e-9);
    }

    /// The compactor model's exact sum (10) decreases as the reserve m
    /// grows, and the closed form (13) yields finite positive latencies
    /// with an interior optimum.
    #[test]
    fn compactor_model_structure(n in 16u64..512) {
        let s = 500_000u64; // 0.5 ms switch
        let r = 25_000u64; // 25 µs sector
        let mut prev = f64::INFINITY;
        for m in (0..n - 1).step_by((n as usize / 8).max(1)) {
            let sum = compactor::total_skips_exact(n, m);
            prop_assert!(sum >= 0.0);
            prop_assert!(sum <= prev + 1e-9, "sum not decreasing at m={m}");
            prev = sum;
            let lat = compactor::avg_latency_model_ns(n, m, s, r);
            prop_assert!(lat.is_finite() && lat > 0.0);
        }
        let (m_opt, best) = compactor::optimal_threshold(n, s, r);
        prop_assert!(m_opt < n);
        prop_assert!(best > 0.0);
        // The optimum really is no worse than a few probes.
        for m in [0, n / 4, n / 2, n - 1] {
            prop_assert!(best <= compactor::avg_latency_model_ns(n, m, s, r) + 1e-6);
        }
    }

    /// Threshold/percentage conversion is exact at the ends and monotone.
    #[test]
    fn threshold_conversion_sane(n in 8u64..512, pct in 0.0f64..=100.0) {
        let m = compactor::threshold_to_m(n, pct);
        prop_assert!(m <= n);
        prop_assert!(compactor::threshold_to_m(n, 0.0) == 0);
        prop_assert!(compactor::threshold_to_m(n, 100.0) == n);
        let m2 = compactor::threshold_to_m(n, (pct + 7.0).min(100.0));
        prop_assert!(m2 >= m);
    }
}
