//! The fill-to-threshold model assuming a compactor (§2.3, Appendix A.2).
//!
//! With a compactor regenerating empty tracks during idle time, the
//! allocator fills an empty track until `m` of its `n` sectors remain free,
//! then switches (cost `s`). Substituting the free count `i` into formula
//! (6), the skips accumulated over one track's fill are
//!
//! ```text
//! Σ_{i=m+1}^{n} (n − i)/(1 + i)                              (10)
//! ```
//!
//! giving an average per-write latency of
//!
//! ```text
//! [s + r·Σ…] / (n − m)                                       (11)
//! ```
//!
//! Approximating the sum by an integral and adding the empirical
//! non-randomness correction
//!
//! ```text
//! ε(n, m) = (n − m − 0.5)^(p+2) / [(8 − n/96)·(p + 2)·n^p],  p = 1 + n/36   (12)
//! ```
//!
//! yields the paper's closed form
//!
//! ```text
//! [s + r·((n+1)·ln((n+2)/(m+2)) − (n − m) + ε(n, m))] / (n − m)   (13)
//! ```

/// Formula (10): total sectors skipped filling a track from empty down to
/// `m` free sectors.
pub fn total_skips_exact(n: u64, m: u64) -> f64 {
    assert!(m < n);
    ((m + 1)..=n).map(|i| (n - i) as f64 / (1 + i) as f64).sum()
}

/// Formula (11): average latency per write in nanoseconds, using the exact
/// sum. `switch_ns` is the track-switch cost, `sector_ns` one sector time.
pub fn avg_latency_exact_ns(n: u64, m: u64, switch_ns: u64, sector_ns: u64) -> f64 {
    (switch_ns as f64 + sector_ns as f64 * total_skips_exact(n, m)) / (n - m) as f64
}

/// Formula (12): the non-randomness correction ε(n, m).
pub fn epsilon(n: u64, m: u64) -> f64 {
    let nf = n as f64;
    let p = 1.0 + nf / 36.0;
    let num = (nf - m as f64 - 0.5).powf(p + 2.0);
    let den = (8.0 - nf / 96.0) * (p + 2.0) * nf.powf(p);
    num / den
}

/// Formula (13): the paper's closed-form average latency per write, in
/// nanoseconds.
pub fn avg_latency_model_ns(n: u64, m: u64, switch_ns: u64, sector_ns: u64) -> f64 {
    assert!(m < n);
    let nf = n as f64;
    let mf = m as f64;
    let integral = (nf + 1.0) * ((nf + 2.0) / (mf + 2.0)).ln() - (nf - mf);
    let skips = integral + epsilon(n, m);
    (switch_ns as f64 + sector_ns as f64 * skips) / (nf - mf)
}

/// The threshold expressed as the paper's x-axis: the percentage of free
/// sectors reserved per track before a switch (high threshold = frequent
/// switches).
pub fn threshold_to_m(n: u64, threshold_percent: f64) -> u64 {
    ((threshold_percent / 100.0) * n as f64).round() as u64
}

/// Sweep the model over thresholds and return the optimum `(m, latency_ns)`.
pub fn optimal_threshold(n: u64, switch_ns: u64, sector_ns: u64) -> (u64, f64) {
    (0..n)
        .map(|m| (m, avg_latency_model_ns(n, m, switch_ns, sector_ns)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite latencies"))
        .expect("n >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    // HP97560-ish: 72 sectors, 2.5 ms switch, 0.2082 ms/sector.
    const HP: (u64, u64, u64) = (72, 2_500_000, 208_229);
    // ST19101-ish: 256 sectors, 0.5 ms switch, 23.4 µs/sector.
    const ST: (u64, u64, u64) = (256, 500_000, 23_437);

    #[test]
    fn exact_sum_sanity() {
        // Filling to the last sector of a 72-sector track skips far more
        // than filling only half of it.
        assert!(total_skips_exact(72, 0) > total_skips_exact(72, 36) * 4.0);
        // One write into an otherwise-empty track skips ~nothing.
        assert!(total_skips_exact(72, 71) < 0.02);
    }

    #[test]
    fn model_tracks_exact_sum_shape() {
        // The closed form should stay within ~20% of the exact sum plus
        // epsilon over the operating range.
        let (n, s, r) = HP;
        for m in [4u64, 8, 18, 36, 54] {
            let exact =
                (s as f64 + r as f64 * (total_skips_exact(n, m) + epsilon(n, m))) / (n - m) as f64;
            let model = avg_latency_model_ns(n, m, s, r);
            let ratio = model / exact;
            assert!((0.8..1.2).contains(&ratio), "m={m}: ratio {ratio}");
        }
    }

    #[test]
    fn extremes_are_penalised() {
        // The paper: switching too frequently (high threshold, large m)
        // pays the switch cost; switching too rarely (m → 0) pays crowded-
        // track rotation. The optimum lies strictly between.
        let (n, s, r) = HP;
        let (m_opt, best) = optimal_threshold(n, s, r);
        assert!(m_opt > 0 && m_opt < n - 1, "optimum at boundary: {m_opt}");
        assert!(best < avg_latency_model_ns(n, 1, s, r));
        assert!(best < avg_latency_model_ns(n, n - 1, s, r));
    }

    #[test]
    fn hp_latencies_in_paper_range() {
        // Figure 2's HP curve lives between roughly 0.5 and 3 ms.
        let (n, s, r) = HP;
        for m in (2..n - 1).step_by(7) {
            let ms = avg_latency_model_ns(n, m, s, r) / 1e6;
            assert!((0.1..4.0).contains(&ms), "m={m}: {ms} ms");
        }
    }

    #[test]
    fn seagate_is_roughly_an_order_faster() {
        let hp_best = optimal_threshold(HP.0, HP.1, HP.2).1;
        let st_best = optimal_threshold(ST.0, ST.1, ST.2).1;
        assert!(
            st_best * 5.0 < hp_best,
            "HP {hp_best} ns vs ST {st_best} ns — technology trend missing"
        );
    }

    #[test]
    fn threshold_conversion() {
        assert_eq!(threshold_to_m(72, 0.0), 0);
        assert_eq!(threshold_to_m(72, 50.0), 36);
        assert_eq!(threshold_to_m(72, 100.0), 72);
    }
}
