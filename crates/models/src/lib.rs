#![warn(missing_docs)]
//! # vlog-models — the paper's analytical models of eager writing
//!
//! Section 2 of *Virtual Log Based File Systems for a Programmable Disk*
//! derives three models for the time eager writing needs to locate a free
//! sector; this crate implements all of them, with both exact and
//! closed-form variants so each can validate the other:
//!
//! * [`single_track`] — formula (1) and its recurrence proof, plus the
//!   block-size extension (9);
//! * [`cylinder`] — formula (2) with the distributions (3)–(4), used by the
//!   Figure 1 model curves;
//! * [`compactor`] — formulas (10)–(13), the fill-to-threshold model behind
//!   Figure 2 and the VLD's 75 % track-fill threshold.
//!
//! [`convert`] turns model outputs (sector counts) into milliseconds for a
//! given [`disksim::DiskSpec`].

pub mod compactor;
pub mod convert;
pub mod cylinder;
pub mod single_track;

pub use compactor::{avg_latency_model_ns, optimal_threshold};
pub use convert::{head_switch_sectors, sectors_to_ms};
pub use cylinder::expected_latency;
pub use single_track::expected_skips;
