//! The single-cylinder model (§2.2).
//!
//! The expected latency (in sector times) to reach the nearest free sector
//! considering both the current track and the other `t−1` tracks of the
//! cylinder is
//!
//! ```text
//! E = Σx Σy min(x, y) · fx(p, x) · fy(p, y)                  (2)
//! fx(p, x) = p · (1 − p)^x                                   (3)
//! fy(p, y) = fx(1 − (1 − p)^(t−1), y − s)                    (4)
//! ```
//!
//! where `x` is the delay on the current track, `y` the delay via a head
//! switch costing `s` sector times, and `p` the free fraction. Both the
//! literal double sum and an exact closed form (via
//! `E[min(X,Y)] = Σ_k P(X>k)·P(Y>k)`) are provided; the closed form is what
//! the Figure 1 harness uses.

/// Formula (3): probability of exactly `x` occupied sectors before a free
/// one on the current track.
pub fn fx(p: f64, x: u64) -> f64 {
    p * (1.0 - p).powi(x as i32)
}

/// Formula (4): probability that the cheapest other-track free sector costs
/// `y` (including the head-switch cost `s`); zero for `y < s`.
pub fn fy(p: f64, y: u64, s: u64, tracks: u32) -> f64 {
    if y < s {
        return 0.0;
    }
    let q = 1.0 - (1.0 - p).powi(tracks as i32 - 1);
    fx(q, y - s)
}

/// Formula (2) evaluated as the literal truncated double sum (for
/// validating the closed form).
pub fn expected_latency_sum(p: f64, s: u64, tracks: u32, terms: u64) -> f64 {
    let mut e = 0.0;
    for x in 0..terms {
        let px = fx(p, x);
        if px == 0.0 {
            continue;
        }
        for y in s..s + terms {
            e += (x.min(y)) as f64 * px * fy(p, y, s, tracks);
        }
    }
    e
}

/// Formula (2) in closed form. With `X ~ Geom(p)` and `Y = s + Geom(q)`
/// (`q = 1 − (1−p)^(t−1)`),
///
/// ```text
/// E[min(X,Y)] = Σ_{k<s} P(X>k) + Σ_{k≥s} P(X>k)·P(Y>k)
///             = a·(1−a^s)/(1−a) + a^{s+1}·b/(1−a·b)   (a=1−p, b=1−q)
/// ```
pub fn expected_latency(p: f64, s: u64, tracks: u32) -> f64 {
    if p >= 1.0 {
        return 0.0;
    }
    if p <= 0.0 {
        return f64::INFINITY;
    }
    let a = 1.0 - p; // P(X > k) = a^{k+1}
    let q = 1.0 - a.powi(tracks as i32 - 1);
    let b = 1.0 - q; // P(Y > s-1+j) = b^j
                     // Part 1: k = 0..s-1 → Σ a^{k+1} = a (1 - a^s) / (1 - a)
    let part1 = a * (1.0 - a.powi(s as i32)) / (1.0 - a);
    // Part 2: k = s+j, j ≥ 0 → Σ_j a^{s+j+1} b^{j+1} = a^{s+1} b / (1 - a b)
    let part2 = if b == 0.0 {
        0.0
    } else {
        a.powi(s as i32 + 1) * b / (1.0 - a * b)
    };
    part1 + part2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_double_sum() {
        for &p in &[0.05, 0.2, 0.5, 0.8] {
            for &(s, t) in &[(12u64, 19u32), (21, 16), (5, 2)] {
                let sum = expected_latency_sum(p, s, t, 4000);
                let closed = expected_latency(p, s, t);
                assert!(
                    (sum - closed).abs() < 1e-6,
                    "p={p} s={s} t={t}: {sum} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn cylinder_beats_single_track() {
        // Adding other tracks can only reduce expected latency versus the
        // single-track geometric mean (1-p)/p.
        for &p in &[0.1, 0.3, 0.6] {
            let single = (1.0 - p) / p;
            let cyl = expected_latency(p, 12, 19);
            assert!(cyl <= single + 1e-9, "p={p}");
        }
    }

    #[test]
    fn single_track_limit_when_switch_is_infinite() {
        // A huge switch cost reduces the model to the current track only:
        // E → Σ_k P(X>k) = (1-p)/p.
        let p = 0.25;
        let e = expected_latency(p, 10_000, 19);
        assert!((e - (1.0 - p) / p).abs() < 1e-6);
    }

    #[test]
    fn monotone_decreasing_in_free_space() {
        let mut prev = f64::INFINITY;
        for i in 1..=99 {
            let e = expected_latency(i as f64 / 100.0, 12, 19);
            assert!(e <= prev + 1e-12, "not monotone at {i}%");
            prev = e;
        }
    }

    #[test]
    fn boundary_values() {
        assert_eq!(expected_latency(1.0, 12, 19), 0.0);
        assert!(expected_latency(0.0, 12, 19).is_infinite());
    }

    #[test]
    fn fy_respects_switch_cost() {
        assert_eq!(fy(0.5, 3, 5, 19), 0.0, "cannot beat the switch cost");
        assert!(fy(0.5, 5, 5, 19) > 0.0);
    }
}
