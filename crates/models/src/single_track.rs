//! The single-track model (§2.1 and Appendix A.1).
//!
//! With `n` sectors per track, free fraction `p`, and free space randomly
//! distributed, the expected number of occupied sectors the head skips
//! before reaching a free one is
//!
//! ```text
//! E = (1 − p)·n / (1 + p·n)                                  (1)
//! ```
//!
//! proved from the recurrence `E(n,k) = (n−k)/n · (1 + E(n−1,k))` whose
//! unique solution is `E(n,k) = (n−k)/(1+k)` (formulas 7–8). The extension
//! to logical blocks of `B` sectors on a disk with physical blocks of `b`
//! sectors (`b ≤ B`) is
//!
//! ```text
//! E = (1 − p)·n / (b + p·n) · B                              (9)
//! ```
//!
//! showing latency is minimised when the physical block size matches the
//! logical block size.

/// Formula (8): expected skipped sectors with `k` free among `n`.
pub fn expected_skips_exact(n: u64, k: u64) -> f64 {
    assert!(k <= n);
    (n - k) as f64 / (1 + k) as f64
}

/// Formula (1): expected skipped sectors at free fraction `p`.
pub fn expected_skips(n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "free fraction out of range");
    let n = n as f64;
    (1.0 - p) * n / (1.0 + p * n)
}

/// The recurrence of formula (7), evaluated directly (used to validate the
/// closed form).
pub fn expected_skips_recurrence(n: u64, k: u64) -> f64 {
    assert!(k <= n);
    if n == k {
        return 0.0;
    }
    // E(n,k) = (n-k)/n * (1 + E(n-1,k)); E(k,k) = 0.
    let mut e = 0.0;
    for m in (k + 1)..=n {
        e = (m - k) as f64 / m as f64 * (1.0 + e);
    }
    e
}

/// Formula (9): expected skipped sectors to place one logical block of
/// `logical_sectors` on a disk with `physical_sectors`-sized physical
/// blocks (`physical_sectors ≤ logical_sectors`).
pub fn expected_skips_blocks(n: u64, p: f64, physical_sectors: u64, logical_sectors: u64) -> f64 {
    assert!(physical_sectors >= 1 && physical_sectors <= logical_sectors);
    let n = n as f64;
    (1.0 - p) * n / (physical_sectors as f64 + p * n) * logical_sectors as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_solves_recurrence() {
        for n in [8u64, 72, 256] {
            for k in [1u64, 2, n / 4, n / 2, n - 1, n] {
                let a = expected_skips_exact(n, k);
                let b = expected_skips_recurrence(n, k);
                assert!((a - b).abs() < 1e-9, "n={n} k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn formula_one_matches_exact_at_k_equals_pn() {
        let n = 72u64;
        for k in [9u64, 18, 36, 54] {
            let p = k as f64 / n as f64;
            assert!((expected_skips(n, p) - expected_skips_exact(n, k)).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_headline_number() {
        // "even at a relatively high utilization of 80%, we can expect to
        // incur only a four-sector rotational delay".
        let skips = expected_skips(72, 0.2);
        assert!((3.5..4.5).contains(&skips), "skips at 80% util: {skips}");
    }

    #[test]
    fn limits_behave() {
        assert_eq!(expected_skips(72, 1.0), 0.0);
        assert!((expected_skips(72, 0.0) - 72.0).abs() < 1e-9);
        // Monotone decreasing in p.
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let e = expected_skips(256, i as f64 / 100.0);
            assert!(e <= prev);
            prev = e;
        }
    }

    #[test]
    fn matched_block_sizes_minimise_latency() {
        // Formula (9): for a 8-sector logical block, physical 8 beats 1.
        let n = 72;
        let p = 0.3;
        let matched = expected_skips_blocks(n, p, 8, 8);
        let sectored = expected_skips_blocks(n, p, 1, 8);
        assert!(matched < sectored);
        // And reduces to (1) when B = b = 1.
        assert!((expected_skips_blocks(n, p, 1, 1) - expected_skips(n, p)).abs() < 1e-12);
    }
}
