//! Conversions between model units (sector times) and wall-clock time for
//! a concrete drive.

use disksim::DiskSpec;

/// Convert a latency expressed in sector times into milliseconds on `spec`
/// (single-zone specs only, as in the paper).
pub fn sectors_to_ms(spec: &DiskSpec, sectors: f64) -> f64 {
    let spt = spec
        .geometry
        .sectors_per_track(0)
        .expect("spec has at least one cylinder");
    sectors * disksim::ns_to_ms(spec.mech.sector_ns(spt))
}

/// The head-switch cost in sector times — the `s` parameter of the
/// cylinder and compactor models.
pub fn head_switch_sectors(spec: &DiskSpec) -> u64 {
    let spt = spec
        .geometry
        .sectors_per_track(0)
        .expect("spec has at least one cylinder");
    let sector = spec.mech.sector_ns(spt);
    spec.mech.head_switch_ns.div_ceil(sector)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hp_sector_time() {
        let hp = DiskSpec::hp97560_sim();
        // 14.99 ms / 72 ≈ 0.208 ms per sector.
        let ms = sectors_to_ms(&hp, 1.0);
        assert!((ms - 0.208).abs() < 0.002, "{ms}");
        // 2.5 ms switch ≈ 13 sectors (rounded up).
        assert_eq!(head_switch_sectors(&hp), 13);
    }

    #[test]
    fn seagate_sector_time() {
        let st = DiskSpec::st19101_sim();
        // 6 ms / 256 ≈ 23.4 µs per sector.
        let ms = sectors_to_ms(&st, 1.0);
        assert!((ms - 0.0234).abs() < 0.001, "{ms}");
        assert_eq!(head_switch_sectors(&st), 22);
    }

    #[test]
    fn half_rotation_reference() {
        // The paper's update-in-place yardstick: half a rotation is ~7.5 ms
        // on the HP and 3 ms on the Seagate.
        let hp = DiskSpec::hp97560_sim();
        assert!((sectors_to_ms(&hp, 36.0) - 7.5).abs() < 0.05);
        let st = DiskSpec::st19101_sim();
        assert!((sectors_to_ms(&st, 128.0) - 3.0).abs() < 0.01);
    }
}
