//! The virtual log: an eager-written, tree-linked, recoverable
//! indirection map (§3 of the paper).
//!
//! Data blocks are written wherever is cheapest (eager writing); the
//! logical→physical *indirection map* makes them findable. The map is
//! persisted piecewise: each update writes the affected piece to a free
//! sector near the head, chained backward to the previous log tail
//! (Figure 3a). Overwriting a piece makes its old sector recyclable; the
//! new entry carries a *bypass* pointer past the dead sector so the chain
//! survives recycling (Figure 3b) — that is what makes the log "virtual":
//! entries are neither contiguous nor immortal, yet the tail reaches
//! everything live.
//!
//! A multi-block update writes all data blocks first, then the affected map
//! pieces, the last flagged as the transaction's commit record; recovery
//! ignores payloads of uncommitted parts, so updates are atomic with no
//! extra I/O.
//!
//! All I/O is simulated through [`disksim::Disk`]; every public operation
//! returns the [`ServiceTime`] it consumed.

use crate::alloc::{AllocConfig, AllocatorState, Candidate, EagerAllocator};
use crate::checkpoint::{Checkpoint, CheckpointRegion};
use crate::freemap::FreeMap;
use crate::mapsector::{MapFlags, MapSectorRef, TxnInfo, PIECE_ENTRIES, UNMAPPED};
use crate::piecetable::PieceTable;
use crate::tail::{TailRecord, FIRMWARE_SECTORS, TAIL_LBA};
use disksim::{Disk, DiskError, DiskSnapshot, Result, ServiceTime, SECTOR_BYTES};

/// Allocation tracing (set `VLOG_TRACE=1`), checked once per process.
fn trace_enabled() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("VLOG_TRACE").is_some())
}

/// Sectors per data block (4 KB physical blocks, as in the paper's VLD).
pub const BLOCK_SECTORS: u32 = 8;
/// Bytes per data block.
pub const BLOCK_BYTES: usize = BLOCK_SECTORS as usize * SECTOR_BYTES;

/// Where one live piece of the map currently sits on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PieceLoc {
    /// Sector holding the current version.
    pub lba: u64,
    /// Its sequence number.
    pub seq: u64,
    /// The previous-root pointer it was written with — needed as the bypass
    /// target when this version is later overwritten.
    pub prev: Option<(u64, u64)>,
}

/// Counters describing virtual-log activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct VlogStats {
    /// Logical data blocks written.
    pub data_writes: u64,
    /// Map sectors appended to the log.
    pub map_writes: u64,
    /// Logical data blocks read.
    pub data_reads: u64,
    /// Blocks relocated by the compactor.
    pub blocks_moved: u64,
    /// Compaction passes that emptied at least one track.
    pub tracks_emptied: u64,
    /// Multi-piece transactions committed.
    pub txns: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
}

/// The virtual log and everything it owns: the disk, the free map, the
/// indirection map, and the eager allocator.
#[derive(Debug)]
pub struct VirtualLog {
    pub(crate) disk: Disk,
    pub(crate) alloc: EagerAllocator,
    pub(crate) free: FreeMap,
    /// Logical block → physical block ([`UNMAPPED`] = hole), paged by
    /// map piece so lookup is two array indexes.
    pub(crate) map: PieceTable,
    /// Physical block → logical block (UNMAPPED = not a live data block).
    pub(crate) rmap: Vec<u32>,
    /// Piece index → current on-disk location.
    pub(crate) pieces: Vec<Option<PieceLoc>>,
    /// Current log tail (root): (lba, seq).
    pub(crate) root: Option<(u64, u64)>,
    pub(crate) next_seq: u64,
    next_txn: u64,
    num_logical: u64,
    /// Physical blocks whose old contents become free once the in-flight
    /// commit is durable.
    pub(crate) deferred_blocks: Vec<u32>,
    /// Superseded map-piece blocks awaiting the next checkpoint. They stay
    /// allocated so the backward chain within the traversal window is never
    /// broken by recycling (§3.3's checkpoint makes recycling sound).
    pub(crate) pending_recycle: Vec<u64>,
    /// Placement of the two alternating checkpoint slots.
    pub(crate) ckpt_region: CheckpointRegion,
    /// Entries with `seq <` this are covered by the last checkpoint.
    pub(crate) checkpoint_seq: u64,
    /// Which slot the next checkpoint writes to.
    ckpt_use_b: bool,
    pub(crate) stats: VlogStats,
    /// Metrics handle (disabled by default): log-depth / pending-recycle
    /// gauges and the map-sector chain-length histogram.
    pub(crate) metrics: disksim::Metrics,
    /// Scratch buffer for encoding map sectors: taken, filled and put back
    /// by every append, so the write hot path performs no heap allocation
    /// (the same pooling idiom as `disksim`'s track buffers).
    append_buf: Vec<u8>,
}

impl VirtualLog {
    /// Format a fresh virtual log on `disk`: reserves the firmware area and
    /// starts with an empty map. The disk's own command overhead is zeroed —
    /// the log *is* the drive's firmware; per-command overhead is charged by
    /// the logical-disk layer ([`crate::Vld`]).
    pub fn format(mut disk: Disk, alloc_cfg: AllocConfig) -> Self {
        let total_sectors = disk.spec().geometry.total_sectors();
        let num_logical = Self::logical_capacity(total_sectors);
        let total_pb = total_sectors / BLOCK_SECTORS as u64;
        let n_pieces = (num_logical as usize).div_ceil(PIECE_ENTRIES);
        let ckpt_region =
            CheckpointRegion::layout(FIRMWARE_SECTORS, n_pieces, BLOCK_SECTORS as u64);
        let mut free = FreeMap::new(&disk.spec().geometry);
        Self::reserve_meta(&disk, &mut free, &ckpt_region);
        // Ensure the firmware tail slot starts unambiguously cleared and
        // slot A holds a valid (empty) checkpoint to boot from.
        disk.poke_sectors(TAIL_LBA, &TailRecord::cleared())
            .expect("firmware area exists on any disk");
        let initial = Checkpoint {
            seq: 0,
            pieces: vec![None; n_pieces],
        };
        disk.poke_sectors(ckpt_region.slot_a, &initial.encode(ckpt_region.sectors))
            .expect("checkpoint region exists on any disk");
        Self {
            disk,
            alloc: EagerAllocator::new(alloc_cfg),
            free,
            map: PieceTable::new(num_logical as usize),
            rmap: vec![UNMAPPED; total_pb as usize],
            pieces: vec![None; n_pieces],
            root: None,
            next_seq: 1,
            next_txn: 1,
            num_logical,
            deferred_blocks: Vec::new(),
            pending_recycle: Vec::new(),
            ckpt_region,
            checkpoint_seq: 0,
            ckpt_use_b: true,
            stats: VlogStats::default(),
            metrics: disksim::Metrics::disabled(),
            append_buf: Vec::new(),
        }
    }

    /// How many logical 4 KB blocks a disk with `total_sectors` sectors can
    /// expose, leaving room for the firmware area, the live map sectors and
    /// an eager-writing slack reserve.
    pub fn logical_capacity(total_sectors: u64) -> u64 {
        let mut n = (total_sectors - FIRMWARE_SECTORS) / BLOCK_SECTORS as u64;
        for _ in 0..4 {
            let pieces = n.div_ceil(PIECE_ENTRIES as u64);
            let ckpt =
                CheckpointRegion::layout(FIRMWARE_SECTORS, pieces as usize, BLOCK_SECTORS as u64);
            // Per piece: one live block, plus up to ~two superseded blocks
            // awaiting the next checkpoint, plus the checkpoint slots and
            // eager-writing headroom — a few percent of the simulated disk,
            // in the ballpark of the paper's map-overhead estimate.
            let reserve = 3 * pieces * BLOCK_SECTORS as u64 + 2 * ckpt.sectors + 384;
            n = (total_sectors - FIRMWARE_SECTORS - reserve) / BLOCK_SECTORS as u64;
        }
        n
    }

    pub(crate) fn reserve_meta(disk: &Disk, free: &mut FreeMap, ckpt: &CheckpointRegion) {
        let g = &disk.spec().geometry;
        for s in (0..FIRMWARE_SECTORS).chain(ckpt.slot_a..ckpt.end()) {
            let p = g.lba_to_phys(s).expect("metadata area within disk");
            free.allocate(p.cyl, p.track, p.sector, 1)
                .expect("metadata sector valid");
        }
    }

    /// Assemble a log from state rebuilt by recovery.
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the struct
    pub(crate) fn from_recovered(
        disk: Disk,
        alloc: EagerAllocator,
        free: FreeMap,
        map: PieceTable,
        rmap: Vec<u32>,
        pieces: Vec<Option<PieceLoc>>,
        root: Option<(u64, u64)>,
        next_seq: u64,
        num_logical: u64,
        ckpt_region: CheckpointRegion,
        checkpoint_seq: u64,
        ckpt_use_b: bool,
    ) -> Self {
        Self {
            disk,
            alloc,
            free,
            map,
            rmap,
            pieces,
            root,
            next_seq,
            next_txn: next_seq,
            num_logical,
            deferred_blocks: Vec::new(),
            pending_recycle: Vec::new(),
            ckpt_region,
            checkpoint_seq,
            ckpt_use_b,
            stats: VlogStats::default(),
            metrics: disksim::Metrics::disabled(),
            append_buf: Vec::new(),
        }
    }

    /// Number of logical blocks exposed.
    pub fn num_blocks(&self) -> u64 {
        self.num_logical
    }

    /// The simulated disk (e.g. for cache policy or statistics).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Mutable access to the simulated disk.
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// Activity counters.
    pub fn stats(&self) -> VlogStats {
        self.stats
    }

    /// Attach a metrics handle (pass `Metrics::disabled()` to detach).
    /// Wired through to the eager allocator as well; the internal disk's
    /// handle is set separately via [`Self::disk_mut`].
    pub fn set_metrics(&mut self, metrics: disksim::Metrics) {
        self.alloc.set_metrics(metrics.clone());
        self.metrics = metrics;
    }

    /// Fraction of disk sectors in use (data + map + firmware).
    pub fn utilization(&self) -> f64 {
        self.free.utilization()
    }

    /// Free-space map (read-only view).
    pub fn free_map(&self) -> &FreeMap {
        &self.free
    }

    /// Current physical block of a logical block, if mapped.
    pub fn translate(&self, lb: u64) -> Option<u64> {
        let pb = self.map.try_get(lb as usize)?;
        (pb != UNMAPPED).then_some(pb as u64)
    }

    fn check_lb(&self, lb: u64) -> Result<()> {
        if lb >= self.num_logical {
            return Err(DiskError::OutOfRange {
                addr: lb,
                limit: self.num_logical,
            });
        }
        Ok(())
    }

    fn check_buf(buf_len: usize) -> Result<()> {
        if buf_len != BLOCK_BYTES {
            return Err(DiskError::BadBufferLength {
                expected: BLOCK_BYTES,
                actual: buf_len,
            });
        }
        Ok(())
    }

    /// Read a logical block. Unmapped blocks read as zeros at no mechanical
    /// cost (the drive answers from the map without touching the media).
    pub fn read(&mut self, lb: u64, buf: &mut [u8]) -> Result<ServiceTime> {
        self.check_lb(lb)?;
        Self::check_buf(buf.len())?;
        self.stats.data_reads += 1;
        match self.translate(lb) {
            Some(pb) => self.disk.read_sectors(pb * BLOCK_SECTORS as u64, buf),
            None => {
                buf.fill(0);
                Ok(ServiceTime::ZERO)
            }
        }
    }

    /// Write one logical block atomically: eager data write, then the map
    /// piece that commits it.
    pub fn write(&mut self, lb: u64, buf: &[u8]) -> Result<ServiceTime> {
        self.check_lb(lb)?;
        Self::check_buf(buf.len())?;
        let mut total = self.write_data_block(lb, buf)?;
        let piece = self.piece_of(lb);
        total += self.append_piece(piece, MapFlags::EMPTY, None)?;
        self.release_superseded();
        total += self.maybe_checkpoint()?;
        Ok(total)
    }

    /// Largest batch [`VirtualLog::write_many`] accepts: atomicity defers
    /// the release of every overwritten block until the commit record is
    /// durable, so the transient footprint (old + new) must fit in the
    /// eager-writing slack reserve.
    pub const MAX_ATOMIC_BLOCKS: usize = 32;

    /// Write several logical blocks as one atomic transaction. Data blocks
    /// are eager-written first; then every affected map piece, the last one
    /// flagged as the commit record. On recovery, either all of the batch
    /// or none of it is visible.
    ///
    /// # Errors
    ///
    /// Fails with `Unsupported` if the batch exceeds
    /// [`VirtualLog::MAX_ATOMIC_BLOCKS`]; use [`VirtualLog::write_batch`]
    /// for bulk data that doesn't need all-or-nothing semantics.
    pub fn write_many(&mut self, batch: &[(u64, &[u8])]) -> Result<ServiceTime> {
        if batch.is_empty() {
            return Ok(ServiceTime::ZERO);
        }
        if batch.len() > Self::MAX_ATOMIC_BLOCKS {
            return Err(DiskError::Unsupported("atomic batch exceeds slack reserve"));
        }
        for (lb, buf) in batch {
            self.check_lb(*lb)?;
            Self::check_buf(buf.len())?;
        }
        let mut total = ServiceTime::ZERO;
        for (lb, buf) in batch {
            total += self.write_data_block(*lb, buf)?;
        }
        // Group the affected pieces, preserving a deterministic order.
        let mut pieces: Vec<u32> = batch.iter().map(|(lb, _)| self.piece_of(*lb)).collect();
        pieces.sort_unstable();
        pieces.dedup();
        if pieces.len() == 1 {
            total += self.append_piece(pieces[0], MapFlags::EMPTY, None)?;
        } else {
            let id = self.next_txn;
            self.next_txn += 1;
            let n = pieces.len() as u16;
            for (i, piece) in pieces.iter().enumerate() {
                let last = i + 1 == pieces.len();
                let flags = if last {
                    MapFlags::TXN_COMMIT
                } else {
                    MapFlags::TXN_PART
                };
                let txn = TxnInfo {
                    id,
                    index: i as u16,
                    total: n,
                };
                total += self.append_piece(*piece, flags, Some(txn))?;
            }
            self.stats.txns += 1;
        }
        self.release_superseded();
        total += self.maybe_checkpoint()?;
        Ok(total)
    }

    /// Write many logical blocks with per-group durability but without
    /// cross-group atomicity: blocks are grouped by map piece (in chunks
    /// small enough to fit the slack reserve), each group committed by one
    /// map append and its superseded space released immediately. This is
    /// the bulk path the VLD's `write_blocks` uses — large sequential
    /// transfers (e.g. an LFS segment flush through the VLD) would
    /// otherwise transiently hold both old and new copies of every block.
    pub fn write_batch(&mut self, batch: &[(u64, &[u8])]) -> Result<ServiceTime> {
        const CHUNK: usize = 24;
        let mut total = ServiceTime::ZERO;
        let mut i = 0;
        while i < batch.len() {
            let piece = self.piece_of(batch[i].0);
            let mut j = i;
            while j < batch.len() && j - i < CHUNK && self.piece_of(batch[j].0) == piece {
                j += 1;
            }
            for (lb, buf) in &batch[i..j] {
                self.check_lb(*lb)?;
                Self::check_buf(buf.len())?;
                total += self.write_data_block(*lb, buf)?;
            }
            total += self.append_piece(piece, MapFlags::EMPTY, None)?;
            self.release_superseded();
            i = j;
        }
        total += self.maybe_checkpoint()?;
        Ok(total)
    }

    /// Drop the mapping of a logical block (an explicit delete from the
    /// layer above). The freed space becomes allocatable once the map piece
    /// recording the hole is durable.
    pub fn trim(&mut self, lb: u64) -> Result<ServiceTime> {
        self.check_lb(lb)?;
        if self.translate(lb).is_none() {
            return Ok(ServiceTime::ZERO);
        }
        let old = self.map.get(lb as usize);
        self.map.set(lb as usize, UNMAPPED);
        self.deferred_blocks.push(old);
        let piece = self.piece_of(lb);
        let mut t = self.append_piece(piece, MapFlags::EMPTY, None)?;
        self.release_superseded();
        t += self.maybe_checkpoint()?;
        Ok(t)
    }

    /// Eager-write a block that is *not* tracked by the indirection map —
    /// the caller keeps the returned physical block number (e.g. inside an
    /// inode, as VLFS does in §3.3/Figure 4). Returns `(physical block,
    /// service time)`. The block is not durable-by-name: after a crash the
    /// space is reclaimed unless a recovered structure re-registers it via
    /// [`VirtualLog::reserve_external_block`].
    pub fn write_raw(&mut self, buf: &[u8]) -> Result<(u32, ServiceTime)> {
        Self::check_buf(buf.len())?;
        let cand = self
            .alloc
            .find_block(&self.disk, &self.free)
            .ok_or(DiskError::NoSpace)?;
        let lba = self.cand_lba(&cand)?;
        let t = self.disk.write_sectors(lba, buf)?;
        self.free
            .allocate(cand.cyl, cand.track, cand.sector, BLOCK_SECTORS)?;
        Ok(((lba / BLOCK_SECTORS as u64) as u32, t))
    }

    /// Read a raw (externally tracked) physical block.
    pub fn read_raw(&mut self, pb: u32, buf: &mut [u8]) -> Result<ServiceTime> {
        Self::check_buf(buf.len())?;
        self.disk
            .read_sectors(pb as u64 * BLOCK_SECTORS as u64, buf)
    }

    /// Release a raw physical block previously returned by
    /// [`VirtualLog::write_raw`].
    pub fn free_raw(&mut self, pb: u32) -> Result<()> {
        let g = &self.disk.spec().geometry;
        let p = g.lba_to_phys(pb as u64 * BLOCK_SECTORS as u64)?;
        self.free.release(p.cyl, p.track, p.sector, BLOCK_SECTORS)
    }

    /// After recovery, re-register an externally tracked block (recovered
    /// from a structure such as an inode) as allocated.
    pub fn reserve_external_block(&mut self, pb: u32) -> Result<()> {
        let g = &self.disk.spec().geometry;
        let p = g.lba_to_phys(pb as u64 * BLOCK_SECTORS as u64)?;
        self.free.allocate(p.cyl, p.track, p.sector, BLOCK_SECTORS)
    }

    /// Fault-injection hook for crash tests: eager-write a data block and
    /// update the in-memory map *without* committing a map piece — as if a
    /// crash landed mid-transaction.
    #[doc(hidden)]
    pub fn write_data_block_for_test(&mut self, lb: u64, buf: &[u8]) {
        self.write_data_block(lb, buf).expect("test write fits");
    }

    /// Fault-injection hook: append a map piece with explicit flags (e.g. a
    /// transaction part with no commit record).
    #[doc(hidden)]
    pub fn append_piece_for_test(&mut self, piece: u32, flags: MapFlags, txn: Option<TxnInfo>) {
        self.append_piece(piece, flags, txn)
            .expect("test append fits");
        self.release_superseded();
    }

    /// Orderly power-down: record the log tail at the firmware location
    /// (with checksum) and park. Recovery boots from this record.
    pub fn shutdown(&mut self) -> Result<ServiceTime> {
        let rec = TailRecord {
            root: self.root,
            next_seq: self.next_seq,
        };
        let mut total = self.disk.seek_to(0, 0)?;
        total += self.disk.write_sectors(TAIL_LBA, &rec.encode())?;
        Ok(total)
    }

    /// Simulate a crash: drop all volatile state and hand back the disk.
    pub fn crash(self) -> Disk {
        self.disk
    }

    /// Which map piece covers logical block `lb`.
    pub(crate) fn piece_of(&self, lb: u64) -> u32 {
        (lb as usize / PIECE_ENTRIES) as u32
    }

    /// Eager-write the data for `lb`, updating the in-memory map and
    /// deferring the release of the overwritten block until commit.
    fn write_data_block(&mut self, lb: u64, buf: &[u8]) -> Result<ServiceTime> {
        let cand = self
            .alloc
            .find_block(&self.disk, &self.free)
            .ok_or_else(|| {
                if trace_enabled() {
                    eprintln!(
                        "VLOG data alloc failed: free_sectors={} util={:.3}",
                        self.free.free_sectors(),
                        self.free.utilization()
                    );
                }
                DiskError::NoSpace
            })?;
        let lba = self.cand_lba(&cand)?;
        if trace_enabled() {
            let h = self.disk.head();
            eprintln!(
                "data lb={lb} -> ({}, {}, {}) head=({}, {}, {}) cost={}us",
                cand.cyl,
                cand.track,
                cand.sector,
                h.cyl,
                h.track,
                h.sector,
                cand.cost.total_ns() / 1000
            );
        }
        let t = self.disk.write_sectors(lba, buf)?;
        self.free
            .allocate(cand.cyl, cand.track, cand.sector, BLOCK_SECTORS)?;
        let new_pb = (lba / BLOCK_SECTORS as u64) as u32;
        let old_pb = self.map.get(lb as usize);
        self.map.set(lb as usize, new_pb);
        self.rmap[new_pb as usize] = lb as u32;
        if old_pb != UNMAPPED {
            self.deferred_blocks.push(old_pb);
        }
        self.stats.data_writes += 1;
        Ok(t)
    }

    fn cand_lba(&self, cand: &Candidate) -> Result<u64> {
        self.disk.phys_to_lba(disksim::PhysAddr {
            cyl: cand.cyl,
            track: cand.track,
            sector: cand.sector,
        })
    }

    /// Append the current contents of `piece` to the virtual log and make
    /// it the new root. The overwritten version's sector joins the deferred
    /// release list (safe to recycle once this write is on disk — which it
    /// is when this function returns).
    pub(crate) fn append_piece(
        &mut self,
        piece: u32,
        flags: MapFlags,
        txn: Option<TxnInfo>,
    ) -> Result<ServiceTime> {
        // Map pieces are sector-sized but *occupy* whole 4 KB physical
        // blocks (the VLD's uniform allocation unit, §4.2): the internal
        // fragmentation costs space, not transfer time, and keeps the
        // aligned free pool unfragmented.
        let cand = self
            .alloc
            .find_block(&self.disk, &self.free)
            .ok_or(DiskError::NoSpace)?;
        let lba = self.cand_lba(&cand)?;
        let old = self.pieces[piece as usize];
        // Encode straight from the piece's page into the reusable scratch
        // buffer. The final piece may be shorter than PIECE_ENTRIES;
        // recovery treats absent trailing entries and UNMAPPED padding
        // identically.
        let mut image = std::mem::take(&mut self.append_buf);
        let sector = MapSectorRef {
            seq: self.next_seq,
            piece,
            flags,
            prev: self.root,
            bypass: old.and_then(|o| o.prev),
            txn,
            entries: self.map.piece_entries(piece),
        };
        if trace_enabled() {
            let h = self.disk.head();
            eprintln!(
                "map piece={piece} -> ({}, {}, {}) head=({}, {}, {}) cost={}us",
                cand.cyl,
                cand.track,
                cand.sector,
                h.cyl,
                h.track,
                h.sector,
                cand.cost.total_ns() / 1000
            );
        }
        sector.encode_into(&mut image)?;
        // Attribute the map commit to the log machinery, not to whichever
        // host command triggered it.
        let sp = if self.disk.spans().is_enabled() {
            self.disk.spans().open(
                disksim::SpanKind::LogAppend,
                "vlog.map_append",
                self.disk.now_ns(),
            )
        } else {
            0
        };
        let t = self.disk.write_sectors(lba, &image);
        if sp != 0 {
            self.disk.spans().close(sp, self.disk.now_ns());
        }
        self.append_buf = image;
        let t = t?;
        self.free
            .allocate(cand.cyl, cand.track, cand.sector, BLOCK_SECTORS)?;
        if let Some(o) = old {
            // Superseded piece blocks are recycled only once the next
            // checkpoint covers them, so the backward chain inside the
            // traversal window is never broken.
            self.pending_recycle.push(o.lba);
        }
        self.pieces[piece as usize] = Some(PieceLoc {
            lba,
            seq: self.next_seq,
            prev: self.root,
        });
        self.root = Some((lba, self.next_seq));
        self.next_seq += 1;
        self.stats.map_writes += 1;
        if self.metrics.is_enabled() {
            self.metrics.inc("vlog.map_writes");
            self.metrics
                .gauge("vlog.depth", (self.next_seq - self.checkpoint_seq) as i64);
            self.metrics
                .gauge("vlog.pending_recycle", self.pending_recycle.len() as i64);
        }
        Ok(t)
    }

    /// Release everything whose supersession just became durable: old data
    /// blocks and old map-piece sectors queued during the current operation.
    pub(crate) fn release_superseded(&mut self) {
        let g = &self.disk.spec().geometry;
        for pb in self.deferred_blocks.drain(..) {
            self.rmap[pb as usize] = UNMAPPED;
            let p = g
                .lba_to_phys(pb as u64 * BLOCK_SECTORS as u64)
                .expect("previously allocated block is in range");
            self.free
                .release(p.cyl, p.track, p.sector, BLOCK_SECTORS)
                .expect("release of an allocated block cannot fail");
        }
    }

    /// Write a checkpoint: persist the piece directory to the inactive
    /// slot, then recycle every superseded piece block the new checkpoint
    /// covers.
    pub fn checkpoint(&mut self) -> Result<ServiceTime> {
        if self.metrics.is_enabled() {
            // Chain length the checkpoint truncates: map sectors a scan
            // recovery would have had to traverse had we crashed now.
            self.metrics
                .observe("vlog.chain_len", self.next_seq - self.checkpoint_seq);
            self.metrics.inc("vlog.checkpoints");
        }
        let ck = Checkpoint {
            seq: self.next_seq,
            pieces: self.pieces.clone(),
        };
        let slot = if self.ckpt_use_b {
            self.ckpt_region.slot_b
        } else {
            self.ckpt_region.slot_a
        };
        let image = ck.encode(self.ckpt_region.sectors);
        let sp = if self.disk.spans().is_enabled() {
            self.disk.spans().open(
                disksim::SpanKind::LogAppend,
                "vlog.checkpoint",
                self.disk.now_ns(),
            )
        } else {
            0
        };
        let t = self.disk.write_sectors(slot, &image);
        if sp != 0 {
            self.disk.spans().close(sp, self.disk.now_ns());
        }
        let t = t?;
        self.ckpt_use_b = !self.ckpt_use_b;
        self.checkpoint_seq = ck.seq;
        let g = &self.disk.spec().geometry;
        for lba in self.pending_recycle.drain(..) {
            let p = g
                .lba_to_phys(lba)
                .expect("previously written map piece is in range");
            self.free
                .release(p.cyl, p.track, p.sector, BLOCK_SECTORS)
                .expect("release of an allocated block cannot fail");
        }
        self.stats.checkpoints += 1;
        if self.metrics.is_enabled() {
            self.metrics
                .gauge("vlog.depth", (self.next_seq - self.checkpoint_seq) as i64);
            self.metrics.gauge("vlog.pending_recycle", 0);
        }
        Ok(t)
    }

    /// Checkpoint when enough superseded piece blocks have accumulated —
    /// sooner when free space is tight, so pending blocks don't squeeze the
    /// eager-writing slack at high utilisation.
    pub(crate) fn maybe_checkpoint(&mut self) -> Result<ServiceTime> {
        let pending_sectors = self.pending_recycle.len() as u64 * BLOCK_SECTORS as u64;
        let tight = self.free.free_sectors() < 4 * pending_sectors;
        let threshold = if tight { 8 } else { self.pieces.len().max(16) };
        if self.pending_recycle.len() >= threshold {
            self.checkpoint()
        } else {
            Ok(ServiceTime::ZERO)
        }
    }

    /// Superseded map blocks waiting for the next checkpoint.
    pub fn pending_recycle_len(&self) -> usize {
        self.pending_recycle.len()
    }

    /// Does any pending-recycle block sit on the given track?
    pub(crate) fn pending_recycle_on_track(
        &self,
        cyl: u32,
        track: u32,
        g: &disksim::Geometry,
    ) -> bool {
        self.pending_recycle.iter().any(|&lba| {
            g.lba_to_phys(lba)
                .map(|p| p.cyl == cyl && p.track == track)
                .unwrap_or(false)
        })
    }

    /// The log-time horizon of the last checkpoint.
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// Capture the complete mutable state of the log — disk image (shared
    /// copy-on-write), free map, indirection map (piece pages shared
    /// copy-on-write), log chain bookkeeping and allocator position — as a
    /// `Send + Sync` value. [`VlogSnapshot::restore`] yields an independent
    /// log that continues exactly as this one would; observability handles
    /// are not captured (a restored log starts detached).
    pub fn snapshot(&self) -> VlogSnapshot {
        VlogSnapshot {
            disk: self.disk.snapshot(),
            alloc: self.alloc.state(),
            free: self.free.clone(),
            map: self.map.clone(),
            rmap: self.rmap.clone(),
            pieces: self.pieces.clone(),
            root: self.root,
            next_seq: self.next_seq,
            next_txn: self.next_txn,
            num_logical: self.num_logical,
            deferred_blocks: self.deferred_blocks.clone(),
            pending_recycle: self.pending_recycle.clone(),
            ckpt_region: self.ckpt_region,
            checkpoint_seq: self.checkpoint_seq,
            ckpt_use_b: self.ckpt_use_b,
            stats: self.stats,
        }
    }
}

/// A point-in-time image of a [`VirtualLog`], cheap to take (the disk's
/// track store and the map's piece pages are `Arc`-shared, copied only on
/// the first post-snapshot write) and safe to ship across threads.
#[derive(Debug, Clone)]
pub struct VlogSnapshot {
    disk: DiskSnapshot,
    alloc: AllocatorState,
    free: FreeMap,
    map: PieceTable,
    rmap: Vec<u32>,
    pieces: Vec<Option<PieceLoc>>,
    root: Option<(u64, u64)>,
    next_seq: u64,
    next_txn: u64,
    num_logical: u64,
    deferred_blocks: Vec<u32>,
    pending_recycle: Vec<u64>,
    ckpt_region: CheckpointRegion,
    checkpoint_seq: u64,
    ckpt_use_b: bool,
    stats: VlogStats,
}

impl VlogSnapshot {
    /// Materialise an independent [`VirtualLog`] from this snapshot.
    pub fn restore(&self) -> VirtualLog {
        VirtualLog {
            disk: self.disk.restore(),
            alloc: EagerAllocator::from_state(&self.alloc),
            free: self.free.clone(),
            map: self.map.clone(),
            rmap: self.rmap.clone(),
            pieces: self.pieces.clone(),
            root: self.root,
            next_seq: self.next_seq,
            next_txn: self.next_txn,
            num_logical: self.num_logical,
            deferred_blocks: self.deferred_blocks.clone(),
            pending_recycle: self.pending_recycle.clone(),
            ckpt_region: self.ckpt_region,
            checkpoint_seq: self.checkpoint_seq,
            ckpt_use_b: self.ckpt_use_b,
            stats: self.stats,
            metrics: disksim::Metrics::disabled(),
            append_buf: Vec::new(),
        }
    }

    /// Simulation events the captured system had consumed — forks credit
    /// these to the global event counter so fork-vs-rebuild totals match.
    pub fn local_events(&self) -> u64 {
        self.disk.local_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocConfig;
    use disksim::{DiskSpec, SimClock};

    pub(crate) fn fresh() -> VirtualLog {
        let mut spec = DiskSpec::hp97560_sim();
        spec.command_overhead_ns = 0;
        VirtualLog::format(Disk::new(spec, SimClock::new()), AllocConfig::default())
    }

    fn block(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_BYTES]
    }

    #[test]
    fn capacity_leaves_reserve() {
        let v = fresh();
        let total_pb = v.disk().spec().geometry.total_sectors() / 8;
        assert!(v.num_blocks() > 0);
        assert!(
            v.num_blocks() < total_pb,
            "must reserve space for map + firmware"
        );
        // The reserve is small (a few percent at most).
        assert!(v.num_blocks() as f64 > 0.95 * total_pb as f64);
    }

    #[test]
    fn unmapped_reads_zero_for_free() {
        let mut v = fresh();
        let mut buf = block(0xFF);
        let t = v.read(5, &mut buf).unwrap();
        assert_eq!(t, ServiceTime::ZERO);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut v = fresh();
        v.write(7, &block(0xAB)).unwrap();
        let mut buf = block(0);
        v.read(7, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xAB));
        assert_eq!(v.stats().data_writes, 1);
        assert_eq!(v.stats().map_writes, 1);
    }

    #[test]
    fn overwrite_frees_old_block() {
        let mut v = fresh();
        v.write(3, &block(1)).unwrap();
        let first_pb = v.translate(3).unwrap();
        let free_after_first = v.free.free_sectors();
        v.write(3, &block(2)).unwrap();
        let second_pb = v.translate(3).unwrap();
        assert_ne!(first_pb, second_pb, "eager writing never updates in place");
        // The old data block was released at commit; the superseded map
        // block waits for the next checkpoint (8 sectors outstanding).
        assert_eq!(v.free.free_sectors(), free_after_first - 8);
        assert_eq!(v.pending_recycle_len(), 1);
        v.checkpoint().unwrap();
        assert_eq!(v.free.free_sectors(), free_after_first);
        assert_eq!(v.pending_recycle_len(), 0);
        let mut buf = block(0);
        v.read(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 2));
    }

    #[test]
    fn small_write_latency_beats_update_in_place() {
        // The headline claim: a random small write lands in far less than
        // the half-rotation an update-in-place system pays on average.
        let mut v = fresh();
        // Prime the disk with some data and a moved head.
        for lb in 0..50 {
            v.write(lb, &block(lb as u8)).unwrap();
        }
        let half_rev = v.disk().spec().half_rotation_ns();
        let mut worst = 0u64;
        for lb in [1000u64, 2000, 3000, 500, 1500] {
            let t = v.write(lb, &block(9)).unwrap();
            worst = worst.max(t.total_ns());
        }
        assert!(
            worst < half_rev,
            "eager write took {worst} ns, ≥ half rotation {half_rev} ns"
        );
    }

    #[test]
    fn write_many_single_piece_is_one_map_write() {
        let mut v = fresh();
        let (a, b) = (block(1), block(2));
        let batch: Vec<(u64, &[u8])> = vec![(0, a.as_slice()), (1, b.as_slice())];
        v.write_many(&batch).unwrap();
        assert_eq!(v.stats().map_writes, 1, "same piece: one commit sector");
        assert_eq!(v.stats().txns, 0);
    }

    #[test]
    fn write_many_cross_piece_commits_once() {
        let mut v = fresh();
        let far = crate::mapsector::PIECE_ENTRIES as u64 * 3;
        let (a, b) = (block(1), block(2));
        let batch: Vec<(u64, &[u8])> = vec![(0, a.as_slice()), (far, b.as_slice())];
        v.write_many(&batch).unwrap();
        assert_eq!(v.stats().map_writes, 2);
        assert_eq!(v.stats().txns, 1);
        let mut buf = block(0);
        v.read(far, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 2));
    }

    #[test]
    fn trim_unmaps_and_frees() {
        let mut v = fresh();
        v.write(9, &block(7)).unwrap();
        let free_before_trim = v.free.free_sectors();
        v.trim(9).unwrap();
        assert_eq!(v.translate(9), None);
        // 8 data sectors came back; the superseded map block (also 8
        // sectors) waits for a checkpoint — net zero until then.
        v.checkpoint().unwrap();
        assert_eq!(v.free.free_sectors(), free_before_trim + 8);
        let mut buf = block(0xFF);
        v.read(9, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        // Trimming an unmapped block is free.
        assert_eq!(v.trim(9).unwrap(), ServiceTime::ZERO);
    }

    #[test]
    fn out_of_range_and_bad_buffers_rejected() {
        let mut v = fresh();
        let n = v.num_blocks();
        assert!(v.write(n, &block(0)).is_err());
        assert!(v.read(n, &mut block(0)).is_err());
        assert!(v.write(0, &[0u8; 512]).is_err());
        assert!(v.trim(n).is_err());
    }

    #[test]
    fn fills_to_capacity_then_no_space() {
        let mut v = fresh();
        let n = v.num_blocks();
        for lb in 0..n {
            v.write(lb, &block(1)).unwrap_or_else(|e| {
                panic!("write {lb}/{n} failed: {e}");
            });
        }
        // Everything is mapped; utilization is near 1.
        assert!(v.utilization() > 0.95);
        // Overwrites must still succeed (they recycle their own space).
        v.write(0, &block(2)).unwrap();
        let mut buf = block(0);
        v.read(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 2));
    }

    #[test]
    fn sequence_numbers_strictly_increase() {
        let mut v = fresh();
        v.write(0, &block(1)).unwrap();
        let s1 = v.root.unwrap().1;
        v.write(1, &block(1)).unwrap();
        let s2 = v.root.unwrap().1;
        assert!(s2 > s1);
    }

    #[test]
    fn shutdown_writes_valid_tail() {
        let mut v = fresh();
        v.write(0, &block(1)).unwrap();
        let root = v.root;
        v.shutdown().unwrap();
        let disk = v.crash();
        let mut buf = [0u8; disksim::SECTOR_BYTES];
        disk.peek_sectors(crate::tail::TAIL_LBA, &mut buf).unwrap();
        let rec = crate::tail::TailRecord::decode(&buf).unwrap();
        assert_eq!(rec.root, root);
    }
}
