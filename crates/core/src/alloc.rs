//! Eager-writing allocation: pick a free location near the disk head.
//!
//! Two strategies from the paper are implemented:
//!
//! * **Greedy** (§2.1/§2.2) — take the free sector (or aligned block)
//!   reachable in minimum positioning time, searching the current cylinder
//!   first and widening outward; the Figure 1 simulation uses the
//!   bidirectional variant, the VLD the one-directional sweep of §4.2
//!   ("cylinder seeks only in one direction until it reaches the last
//!   cylinder"), which keeps the head from being trapped in full regions.
//! * **Threshold fill** (§2.3/§4.2) — when the compactor keeps a pool of
//!   empty tracks, fill the current empty track only up to a threshold
//!   (75 % in the paper's experiments), then move on; fall back to greedy
//!   once the pool is exhausted.
//!
//! All cost ranking uses the exact mechanical model via
//! [`disksim::Disk::position_cost`], so the allocator is as informed as
//! firmware running inside the drive — precisely the paper's premise.

use crate::freemap::FreeMap;
use disksim::{Disk, Metrics, ServiceTime};

/// A chosen allocation target and its predicted positioning cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Cylinder of the chosen location.
    pub cyl: u32,
    /// Track (head) of the chosen location.
    pub track: u32,
    /// First sector of the chosen location.
    pub sector: u32,
    /// Predicted seek + head switch + rotation to reach it.
    pub cost: ServiceTime,
}

/// Allocator tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocConfig {
    /// Data-block alignment in sectors (8 for the paper's 4 KB blocks).
    pub block_sectors: u32,
    /// Track-fill threshold: stop filling an empty track once its
    /// utilisation reaches this fraction (paper: 0.75).
    pub threshold: f64,
    /// Use the one-directional cylinder sweep (the VLD behaviour). When
    /// false, greedy searches both directions — the Figure 1 idealisation.
    pub one_way_sweep: bool,
    /// Prefer filling compactor-produced empty tracks to the threshold
    /// before going greedy.
    pub threshold_fill: bool,
}

impl Default for AllocConfig {
    fn default() -> Self {
        Self {
            block_sectors: 8,
            threshold: 0.75,
            one_way_sweep: true,
            threshold_fill: true,
        }
    }
}

/// Stateful eager allocator.
#[derive(Debug, Clone)]
pub struct EagerAllocator {
    cfg: AllocConfig,
    /// The empty track currently being filled under the threshold policy.
    fill_track: Option<(u32, u32)>,
    /// A track allocations must avoid (set while the compactor empties it,
    /// so fresh writes don't re-pollute the victim).
    avoid: Option<(u32, u32)>,
    /// Metrics handle (disabled by default). Counts fast-path vs. fallback
    /// decisions; never influences them.
    metrics: Metrics,
}

/// Plain-data image of an allocator's mutable state (`Send + Sync`), used
/// by the snapshot/fork engine. The metrics handle is deliberately not
/// captured: a restored allocator starts detached.
#[derive(Debug, Clone, Copy)]
pub struct AllocatorState {
    cfg: AllocConfig,
    fill_track: Option<(u32, u32)>,
    avoid: Option<(u32, u32)>,
}

impl EagerAllocator {
    /// Create an allocator with the given configuration.
    pub fn new(cfg: AllocConfig) -> Self {
        Self {
            cfg,
            fill_track: None,
            avoid: None,
            metrics: Metrics::disabled(),
        }
    }

    /// Capture the mutable state for a later [`EagerAllocator::from_state`].
    pub fn state(&self) -> AllocatorState {
        AllocatorState {
            cfg: self.cfg,
            fill_track: self.fill_track,
            avoid: self.avoid,
        }
    }

    /// Rebuild an allocator from captured state (metrics detached).
    pub fn from_state(state: &AllocatorState) -> Self {
        Self {
            cfg: state.cfg,
            fill_track: state.fill_track,
            avoid: state.avoid,
            metrics: Metrics::disabled(),
        }
    }

    /// Attach a metrics handle (pass `Metrics::disabled()` to detach). The
    /// allocator records `alloc.fast_path` / `alloc.greedy_fallback` block
    /// placements; its decisions are unaffected.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Forbid allocations on one track (compaction victim); `None` clears.
    pub fn set_avoid(&mut self, track: Option<(u32, u32)>) {
        self.avoid = track;
        if self.avoid.is_some() && self.fill_track == self.avoid {
            self.fill_track = None;
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AllocConfig {
        &self.cfg
    }

    /// Choose a free aligned data block near the head. Returns `None` only
    /// when no aligned block is free anywhere.
    pub fn find_block(&mut self, disk: &Disk, free: &FreeMap) -> Option<Candidate> {
        let align = self.cfg.block_sectors;
        if self.cfg.threshold_fill {
            if let Some(c) = self.fill_candidate(disk, free, align) {
                self.metrics.inc("alloc.fast_path");
                return Some(c);
            }
        }
        self.metrics.inc("alloc.greedy_fallback");
        self.greedy(disk, free, align)
    }

    /// Choose a single free sector near the head (for map-sector appends).
    /// Always greedy: the log entry goes wherever is cheapest right now.
    pub fn find_sector(&mut self, disk: &Disk, free: &FreeMap) -> Option<Candidate> {
        self.greedy(disk, free, 1)
    }

    /// Threshold-fill step: keep writing into the current fill track until
    /// it reaches the threshold, then grab the nearest empty track.
    fn fill_candidate(&mut self, disk: &Disk, free: &FreeMap, align: u32) -> Option<Candidate> {
        // Keep filling the current track while it is under the threshold and
        // still has room for an aligned slot.
        if let Some((c, t)) = self.fill_track {
            if free.track_utilization(c, t) < self.cfg.threshold {
                if let Some(cand) = self.best_in_track(disk, free, c, t, align, u64::MAX) {
                    return Some(cand);
                }
            }
            self.fill_track = None;
        }
        // Grab the nearest empty track from the compactor's pool; if the
        // pool is dry, the caller falls back to greedy.
        let next = free.nearest_empty_track(disk.head().cyl)?;
        if Some(next) == self.avoid {
            return None;
        }
        self.fill_track = Some(next);
        self.best_in_track(disk, free, next.0, next.1, align, u64::MAX)
    }

    /// Cheapest candidate on one track: the first free (aligned) slot in
    /// rotational encounter order from the head's arrival position.
    ///
    /// `incumbent_ns` is the cost of the best candidate found so far: every
    /// sector here costs at least the seek/head-switch to reach the track,
    /// so when that lower bound already matches or exceeds the incumbent the
    /// track is discarded without scanning it or pricing anything exactly.
    /// (Ties keep the incumbent, matching `min_by_key`'s first-wins rule.)
    fn best_in_track(
        &self,
        disk: &Disk,
        free: &FreeMap,
        cyl: u32,
        track: u32,
        align: u32,
        incumbent_ns: u64,
    ) -> Option<Candidate> {
        if self.avoid == Some((cyl, track)) {
            return None;
        }
        if disk.reposition_lower_bound_ns(cyl, track) >= incumbent_ns {
            return None;
        }
        let arrival = disk.arrival_sector(cyl, track).ok()?;
        let sector = free.first_aligned_from(cyl, track, arrival, align)?;
        let cost = disk.position_cost(cyl, track, sector).ok()?;
        Some(Candidate {
            cyl,
            track,
            sector,
            cost,
        })
    }

    /// Cheapest candidate within one cylinder (all tracks considered),
    /// keeping only candidates strictly cheaper than `incumbent_ns`. The
    /// per-cylinder summary counts reject cylinders with no usable space in
    /// O(1), and the running best feeds the per-track lower-bound prune.
    fn best_in_cylinder(
        &self,
        disk: &Disk,
        free: &FreeMap,
        cyl: u32,
        align: u32,
        incumbent_ns: u64,
    ) -> Option<Candidate> {
        if !free.cylinder_has_candidate(cyl, align) {
            return None;
        }
        let tracks = free.tracks_in_cylinder();
        let mut best: Option<Candidate> = None;
        let mut bound = incumbent_ns;
        for t in 0..tracks {
            if let Some(c) = self.best_in_track(disk, free, cyl, t, align, bound) {
                // The prune used a lower bound; the exact cost can still
                // lose to the incumbent. Replace only on strict improvement
                // (first-wins on ties, like the unpruned `min_by_key`).
                if c.cost.total_ns() < bound {
                    bound = c.cost.total_ns();
                    best = Some(c);
                }
            }
        }
        best
    }

    /// Greedy search: current cylinder first, then widening. One-way mode
    /// walks forward (wrapping) and takes the first cylinder with space;
    /// two-way mode alternates ±d and prunes once the seek alone exceeds
    /// the best candidate found.
    fn greedy(&mut self, disk: &Disk, free: &FreeMap, align: u32) -> Option<Candidate> {
        let cyls = free.cylinders();
        let cur = disk.head().cyl;
        if self.cfg.one_way_sweep {
            for w in 0..cyls {
                let c = (cur + w) % cyls;
                if let Some(cand) = self.best_in_cylinder(disk, free, c, align, u64::MAX) {
                    return Some(cand);
                }
            }
            None
        } else {
            let mut best: Option<Candidate> = None;
            for d in 0..cyls {
                if let Some(b) = &best {
                    // Any candidate at distance >= d costs at least seek(d).
                    if b.cost.total_ns() < disk.seek_ns(d) {
                        break;
                    }
                }
                for c in [cur.checked_sub(d), (cur + d < cyls).then_some(cur + d)]
                    .into_iter()
                    .flatten()
                {
                    let bound = best.as_ref().map(|b| b.cost.total_ns()).unwrap_or(u64::MAX);
                    if let Some(cand) = self.best_in_cylinder(disk, free, c, align, bound) {
                        best = Some(cand);
                    }
                    if d == 0 {
                        break;
                    }
                }
            }
            best
        }
    }

    /// Forget the current fill track (e.g. after a compaction pass changed
    /// the landscape).
    pub fn reset_fill(&mut self) {
        self.fill_track = None;
    }

    /// The empty track currently being filled, if the threshold policy has
    /// one in hand. The compactor avoids choosing it as a victim.
    pub fn fill_track(&self) -> Option<(u32, u32)> {
        self.fill_track
    }
}

/// The pre-index exhaustive greedy search, retained as the oracle the
/// pruned fast path is verified against: it prices every reachable free
/// slot with the exact mechanical model and never consults the summary
/// counts, lower bounds or word-level scans. Equivalence tests (and the
/// microbenchmarks' before/after comparison) call these directly.
pub mod reference {
    use super::Candidate;
    use crate::freemap::FreeMap;
    use disksim::Disk;

    /// Naive per-track candidate: linear free-list scan plus an exact
    /// `position_cost` for the first slot in rotational encounter order.
    pub fn best_in_track(
        disk: &Disk,
        free: &FreeMap,
        avoid: Option<(u32, u32)>,
        cyl: u32,
        track: u32,
        align: u32,
    ) -> Option<Candidate> {
        if avoid == Some((cyl, track)) {
            return None;
        }
        let arrival = disk.arrival_sector(cyl, track).ok()?;
        let sector = if align == 1 {
            free.free_sectors_from(cyl, track, arrival).next()?
        } else {
            free.free_aligned_from(cyl, track, arrival, align)?
        };
        let cost = disk.position_cost(cyl, track, sector).ok()?;
        Some(Candidate {
            cyl,
            track,
            sector,
            cost,
        })
    }

    /// Naive per-cylinder candidate: price every track, take the min.
    pub fn best_in_cylinder(
        disk: &Disk,
        free: &FreeMap,
        avoid: Option<(u32, u32)>,
        cyl: u32,
        align: u32,
    ) -> Option<Candidate> {
        let tracks = free.tracks_in_cylinder();
        (0..tracks)
            .filter_map(|t| best_in_track(disk, free, avoid, cyl, t, align))
            .min_by_key(|c| c.cost.total_ns())
    }

    /// Naive greedy search, both sweep modes, exactly as the allocator
    /// behaved before the hierarchical index and cost pruning landed.
    pub fn greedy(
        disk: &Disk,
        free: &FreeMap,
        avoid: Option<(u32, u32)>,
        align: u32,
        one_way_sweep: bool,
    ) -> Option<Candidate> {
        let cyls = free.cylinders();
        let cur = disk.head().cyl;
        if one_way_sweep {
            for w in 0..cyls {
                let c = (cur + w) % cyls;
                if let Some(cand) = best_in_cylinder(disk, free, avoid, c, align) {
                    return Some(cand);
                }
            }
            None
        } else {
            let mut best: Option<Candidate> = None;
            for d in 0..cyls {
                if let Some(b) = &best {
                    if b.cost.total_ns() < disk.spec().mech.seek_ns(d) {
                        break;
                    }
                }
                for c in [cur.checked_sub(d), (cur + d < cyls).then_some(cur + d)]
                    .into_iter()
                    .flatten()
                {
                    if let Some(cand) = best_in_cylinder(disk, free, avoid, c, align) {
                        if best.is_none()
                            || cand.cost.total_ns()
                                < best.as_ref().map(|b| b.cost.total_ns()).unwrap_or(u64::MAX)
                        {
                            best = Some(cand);
                        }
                    }
                    if d == 0 {
                        break;
                    }
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::{DiskSpec, SimClock};

    fn setup() -> (Disk, FreeMap) {
        let mut spec = DiskSpec::hp97560_sim();
        spec.command_overhead_ns = 0; // internal (in-drive) operation
        let disk = Disk::new(spec, SimClock::new());
        let free = FreeMap::new(&disk.spec().geometry);
        (disk, free)
    }

    fn greedy_alloc(one_way: bool) -> EagerAllocator {
        EagerAllocator::new(AllocConfig {
            one_way_sweep: one_way,
            threshold_fill: false,
            ..AllocConfig::default()
        })
    }

    #[test]
    fn empty_disk_block_is_nearly_free_to_reach() {
        let (disk, free) = setup();
        let mut a = greedy_alloc(true);
        let c = a.find_block(&disk, &free).unwrap();
        // On an empty disk the very next aligned slot on the current track
        // should win: no seek, no switch, under one block of rotation.
        assert_eq!(c.cost.seek_ns, 0);
        assert_eq!(c.cost.head_switch_ns, 0);
        assert!(c.cost.rotation_ns <= 8 * disk.spec().mech.sector_ns(72));
    }

    #[test]
    fn chosen_block_is_globally_optimal_two_way() {
        let (disk, mut free) = setup();
        // Occupy most of the current track to force a real decision.
        free.allocate(0, 0, 0, 64).unwrap();
        let mut a = greedy_alloc(false);
        let c = a.find_block(&disk, &free).unwrap();
        // Exhaustively verify optimality over every free aligned block.
        let mut best = u64::MAX;
        for cyl in 0..36 {
            for t in 0..19 {
                for slot in 0..(72 / 8) {
                    let s = slot * 8;
                    if free.run_free(cyl, t, s, 8) {
                        let cost = disk.position_cost(cyl, t, s).unwrap().total_ns();
                        best = best.min(cost);
                    }
                }
            }
        }
        assert_eq!(c.cost.total_ns(), best);
    }

    #[test]
    fn single_sector_allocation_prefers_current_track() {
        let (disk, free) = setup();
        let mut a = greedy_alloc(true);
        let c = a.find_sector(&disk, &free).unwrap();
        let h = disk.head();
        assert_eq!((c.cyl, c.track), (h.cyl, h.track));
        assert!(c.cost.rotation_ns <= 2 * disk.spec().mech.sector_ns(72));
    }

    #[test]
    fn one_way_sweep_skips_full_cylinders_forward() {
        let (mut disk, mut free) = setup();
        disk.seek_to(5, 0).unwrap();
        // Fill cylinders 5..8 completely.
        for cyl in 5..8 {
            for t in 0..19 {
                free.allocate(cyl, t, 0, 72).unwrap();
            }
        }
        let mut a = greedy_alloc(true);
        let c = a.find_block(&disk, &free).unwrap();
        assert_eq!(c.cyl, 8, "sweep must move forward, not back to cylinder 4");
    }

    #[test]
    fn one_way_sweep_wraps_at_disk_end() {
        let (mut disk, mut free) = setup();
        disk.seek_to(35, 0).unwrap();
        for t in 0..19 {
            free.allocate(35, t, 0, 72).unwrap();
        }
        let mut a = greedy_alloc(true);
        let c = a.find_block(&disk, &free).unwrap();
        assert_eq!(c.cyl, 0);
    }

    #[test]
    fn exhausted_disk_returns_none() {
        let (disk, mut free) = setup();
        for cyl in 0..36 {
            for t in 0..19 {
                free.allocate(cyl, t, 0, 72).unwrap();
            }
        }
        let mut a = greedy_alloc(true);
        assert!(a.find_block(&disk, &free).is_none());
        assert!(a.find_sector(&disk, &free).is_none());
        // A single free sector is enough for find_sector but not find_block.
        free.release(10, 3, 17, 1).unwrap();
        assert!(a.find_sector(&disk, &free).is_some());
        assert!(a.find_block(&disk, &free).is_none());
    }

    #[test]
    fn threshold_fill_sticks_to_one_track_until_threshold() {
        let (disk, mut free) = setup();
        let mut a = EagerAllocator::new(AllocConfig::default());
        // 72 sectors/track, 9 blocks; 75% threshold -> 6 blocks and change.
        let mut tracks_used = std::collections::HashSet::new();
        for _ in 0..6 {
            let c = a.find_block(&disk, &free).unwrap();
            free.allocate(c.cyl, c.track, c.sector, 8).unwrap();
            tracks_used.insert((c.cyl, c.track));
        }
        assert_eq!(tracks_used.len(), 1, "filled more than one track early");
        // Utilization now 48/72 = 0.667 < 0.75: next block still same track.
        let c = a.find_block(&disk, &free).unwrap();
        assert!(tracks_used.contains(&(c.cyl, c.track)));
        free.allocate(c.cyl, c.track, c.sector, 8).unwrap();
        // 56/72 = 0.778 >= 0.75: the policy must switch tracks now.
        let c = a.find_block(&disk, &free).unwrap();
        assert!(!tracks_used.contains(&(c.cyl, c.track)));
    }

    #[test]
    fn threshold_fill_falls_back_to_greedy_without_empty_tracks() {
        let (disk, mut free) = setup();
        // Put one sector on every track: no empty tracks remain.
        for cyl in 0..36 {
            for t in 0..19 {
                free.allocate(cyl, t, 0, 1).unwrap();
            }
        }
        let mut a = EagerAllocator::new(AllocConfig::default());
        let c = a.find_block(&disk, &free).unwrap();
        assert!(free.run_free(c.cyl, c.track, c.sector, 8));
    }

    /// The tentpole's safety net: across random fill patterns, head
    /// positions, rotation phases, disks, sweep modes, alignments and avoid
    /// tracks, the indexed/pruned allocator must choose *exactly* what the
    /// retained naive reference chooses — same sector, same predicted cost.
    /// Both search in the same order with first-wins ties, so equality is
    /// full, not just cost equality.
    #[test]
    fn pruned_allocator_matches_naive_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for spec0 in [DiskSpec::hp97560_sim(), DiskSpec::st19101_sim()] {
            let mut spec = spec0;
            spec.command_overhead_ns = 0;
            let g = spec.geometry.clone();
            let (cyls, tracks) = (g.cylinders(), g.tracks_per_cylinder());
            let mut rng = StdRng::seed_from_u64(0xA11C ^ cyls as u64);
            for &util in &[0.05f64, 0.45, 0.85, 0.97] {
                for one_way in [true, false] {
                    let clock = SimClock::new();
                    let mut disk = Disk::new(spec.clone(), clock.clone());
                    let mut free = FreeMap::new(&g);
                    // Random per-sector occupancy at the target utilisation,
                    // plus (sometimes) a band of completely full cylinders so
                    // the O(1) cylinder skip actually triggers.
                    let full_band = if rng.gen_bool(0.5) {
                        let w = rng.gen_range(1..cyls.max(2));
                        let s = rng.gen_range(0..cyls);
                        Some((s, w))
                    } else {
                        None
                    };
                    for cyl in 0..cyls {
                        let in_band =
                            full_band.is_some_and(|(s, w)| (cyl + cyls - s) % cyls < w);
                        for t in 0..tracks {
                            let spt = g.sectors_per_track(cyl).unwrap();
                            for sec in 0..spt {
                                if in_band || rng.gen_bool(util) {
                                    free.allocate(cyl, t, sec, 1).unwrap();
                                }
                            }
                        }
                    }
                    let avoid = rng
                        .gen_bool(0.5)
                        .then(|| (rng.gen_range(0..cyls), rng.gen_range(0..tracks)));
                    for _ in 0..3 {
                        disk.seek_to(rng.gen_range(0..cyls), rng.gen_range(0..tracks))
                            .unwrap();
                        clock.advance(rng.gen_range(0..spec.mech.revolution_ns()));
                        let mut a = EagerAllocator::new(AllocConfig {
                            one_way_sweep: one_way,
                            threshold_fill: false,
                            ..AllocConfig::default()
                        });
                        a.set_avoid(avoid);
                        for align in [8u32, 1] {
                            let fast = if align == 8 {
                                a.find_block(&disk, &free)
                            } else {
                                a.find_sector(&disk, &free)
                            };
                            let naive = reference::greedy(&disk, &free, avoid, align, one_way);
                            assert_eq!(
                                fast, naive,
                                "divergence: cyls={cyls} util={util} one_way={one_way} \
                                 align={align} avoid={avoid:?} head={:?}",
                                disk.head()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn reset_fill_releases_track() {
        let (disk, mut free) = setup();
        let mut a = EagerAllocator::new(AllocConfig::default());
        let c = a.find_block(&disk, &free).unwrap();
        free.allocate(c.cyl, c.track, c.sector, 8).unwrap();
        a.reset_fill();
        // Still works after the reset.
        assert!(a.find_block(&disk, &free).is_some());
    }
}
