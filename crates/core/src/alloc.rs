//! Eager-writing allocation: pick a free location near the disk head.
//!
//! Two strategies from the paper are implemented:
//!
//! * **Greedy** (§2.1/§2.2) — take the free sector (or aligned block)
//!   reachable in minimum positioning time, searching the current cylinder
//!   first and widening outward; the Figure 1 simulation uses the
//!   bidirectional variant, the VLD the one-directional sweep of §4.2
//!   ("cylinder seeks only in one direction until it reaches the last
//!   cylinder"), which keeps the head from being trapped in full regions.
//! * **Threshold fill** (§2.3/§4.2) — when the compactor keeps a pool of
//!   empty tracks, fill the current empty track only up to a threshold
//!   (75 % in the paper's experiments), then move on; fall back to greedy
//!   once the pool is exhausted.
//!
//! All cost ranking uses the exact mechanical model via
//! [`disksim::Disk::position_cost`], so the allocator is as informed as
//! firmware running inside the drive — precisely the paper's premise.

use crate::freemap::FreeMap;
use disksim::{Disk, ServiceTime};

/// A chosen allocation target and its predicted positioning cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Cylinder of the chosen location.
    pub cyl: u32,
    /// Track (head) of the chosen location.
    pub track: u32,
    /// First sector of the chosen location.
    pub sector: u32,
    /// Predicted seek + head switch + rotation to reach it.
    pub cost: ServiceTime,
}

/// Allocator tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocConfig {
    /// Data-block alignment in sectors (8 for the paper's 4 KB blocks).
    pub block_sectors: u32,
    /// Track-fill threshold: stop filling an empty track once its
    /// utilisation reaches this fraction (paper: 0.75).
    pub threshold: f64,
    /// Use the one-directional cylinder sweep (the VLD behaviour). When
    /// false, greedy searches both directions — the Figure 1 idealisation.
    pub one_way_sweep: bool,
    /// Prefer filling compactor-produced empty tracks to the threshold
    /// before going greedy.
    pub threshold_fill: bool,
}

impl Default for AllocConfig {
    fn default() -> Self {
        Self {
            block_sectors: 8,
            threshold: 0.75,
            one_way_sweep: true,
            threshold_fill: true,
        }
    }
}

/// Stateful eager allocator.
#[derive(Debug, Clone)]
pub struct EagerAllocator {
    cfg: AllocConfig,
    /// The empty track currently being filled under the threshold policy.
    fill_track: Option<(u32, u32)>,
    /// A track allocations must avoid (set while the compactor empties it,
    /// so fresh writes don't re-pollute the victim).
    avoid: Option<(u32, u32)>,
}

impl EagerAllocator {
    /// Create an allocator with the given configuration.
    pub fn new(cfg: AllocConfig) -> Self {
        Self {
            cfg,
            fill_track: None,
            avoid: None,
        }
    }

    /// Forbid allocations on one track (compaction victim); `None` clears.
    pub fn set_avoid(&mut self, track: Option<(u32, u32)>) {
        self.avoid = track;
        if self.avoid.is_some() && self.fill_track == self.avoid {
            self.fill_track = None;
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AllocConfig {
        &self.cfg
    }

    /// Choose a free aligned data block near the head. Returns `None` only
    /// when no aligned block is free anywhere.
    pub fn find_block(&mut self, disk: &Disk, free: &FreeMap) -> Option<Candidate> {
        let align = self.cfg.block_sectors;
        if self.cfg.threshold_fill {
            if let Some(c) = self.fill_candidate(disk, free, align) {
                return Some(c);
            }
        }
        self.greedy(disk, free, align)
    }

    /// Choose a single free sector near the head (for map-sector appends).
    /// Always greedy: the log entry goes wherever is cheapest right now.
    pub fn find_sector(&mut self, disk: &Disk, free: &FreeMap) -> Option<Candidate> {
        self.greedy(disk, free, 1)
    }

    /// Threshold-fill step: keep writing into the current fill track until
    /// it reaches the threshold, then grab the nearest empty track.
    fn fill_candidate(&mut self, disk: &Disk, free: &FreeMap, align: u32) -> Option<Candidate> {
        // Keep filling the current track while it is under the threshold and
        // still has room for an aligned slot.
        if let Some((c, t)) = self.fill_track {
            if free.track_utilization(c, t) < self.cfg.threshold {
                if let Some(cand) = self.best_in_track(disk, free, c, t, align) {
                    return Some(cand);
                }
            }
            self.fill_track = None;
        }
        // Grab the nearest empty track from the compactor's pool; if the
        // pool is dry, the caller falls back to greedy.
        let next = free.nearest_empty_track(disk.head().cyl)?;
        if Some(next) == self.avoid {
            return None;
        }
        self.fill_track = Some(next);
        self.best_in_track(disk, free, next.0, next.1, align)
    }

    /// Cheapest candidate on one track: the first free (aligned) slot in
    /// rotational encounter order from the head's arrival position.
    fn best_in_track(
        &self,
        disk: &Disk,
        free: &FreeMap,
        cyl: u32,
        track: u32,
        align: u32,
    ) -> Option<Candidate> {
        if self.avoid == Some((cyl, track)) {
            return None;
        }
        let arrival = disk.arrival_sector(cyl, track).ok()?;
        let sector = if align == 1 {
            free.free_sectors_from(cyl, track, arrival).next()?
        } else {
            free.free_aligned_from(cyl, track, arrival, align)?
        };
        let cost = disk.position_cost(cyl, track, sector).ok()?;
        Some(Candidate {
            cyl,
            track,
            sector,
            cost,
        })
    }

    /// Cheapest candidate within one cylinder (all tracks considered).
    fn best_in_cylinder(
        &self,
        disk: &Disk,
        free: &FreeMap,
        cyl: u32,
        align: u32,
    ) -> Option<Candidate> {
        let tracks = free.tracks_in_cylinder();
        (0..tracks)
            .filter_map(|t| self.best_in_track(disk, free, cyl, t, align))
            .min_by_key(|c| c.cost.total_ns())
    }

    /// Greedy search: current cylinder first, then widening. One-way mode
    /// walks forward (wrapping) and takes the first cylinder with space;
    /// two-way mode alternates ±d and prunes once the seek alone exceeds
    /// the best candidate found.
    fn greedy(&mut self, disk: &Disk, free: &FreeMap, align: u32) -> Option<Candidate> {
        let cyls = free.cylinders();
        let cur = disk.head().cyl;
        if self.cfg.one_way_sweep {
            for w in 0..cyls {
                let c = (cur + w) % cyls;
                if let Some(cand) = self.best_in_cylinder(disk, free, c, align) {
                    return Some(cand);
                }
            }
            None
        } else {
            let mut best: Option<Candidate> = None;
            for d in 0..cyls {
                if let Some(b) = &best {
                    // Any candidate at distance >= d costs at least seek(d).
                    if b.cost.total_ns() < disk.spec().mech.seek_ns(d) {
                        break;
                    }
                }
                for c in [cur.checked_sub(d), (cur + d < cyls).then_some(cur + d)]
                    .into_iter()
                    .flatten()
                {
                    if let Some(cand) = self.best_in_cylinder(disk, free, c, align) {
                        if best.is_none()
                            || cand.cost.total_ns()
                                < best.as_ref().map(|b| b.cost.total_ns()).unwrap_or(u64::MAX)
                        {
                            best = Some(cand);
                        }
                    }
                    if d == 0 {
                        break;
                    }
                }
            }
            best
        }
    }

    /// Forget the current fill track (e.g. after a compaction pass changed
    /// the landscape).
    pub fn reset_fill(&mut self) {
        self.fill_track = None;
    }

    /// The empty track currently being filled, if the threshold policy has
    /// one in hand. The compactor avoids choosing it as a victim.
    pub fn fill_track(&self) -> Option<(u32, u32)> {
        self.fill_track
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::{DiskSpec, SimClock};

    fn setup() -> (Disk, FreeMap) {
        let mut spec = DiskSpec::hp97560_sim();
        spec.command_overhead_ns = 0; // internal (in-drive) operation
        let disk = Disk::new(spec, SimClock::new());
        let free = FreeMap::new(&disk.spec().geometry);
        (disk, free)
    }

    fn greedy_alloc(one_way: bool) -> EagerAllocator {
        EagerAllocator::new(AllocConfig {
            one_way_sweep: one_way,
            threshold_fill: false,
            ..AllocConfig::default()
        })
    }

    #[test]
    fn empty_disk_block_is_nearly_free_to_reach() {
        let (disk, free) = setup();
        let mut a = greedy_alloc(true);
        let c = a.find_block(&disk, &free).unwrap();
        // On an empty disk the very next aligned slot on the current track
        // should win: no seek, no switch, under one block of rotation.
        assert_eq!(c.cost.seek_ns, 0);
        assert_eq!(c.cost.head_switch_ns, 0);
        assert!(c.cost.rotation_ns <= 8 * disk.spec().mech.sector_ns(72));
    }

    #[test]
    fn chosen_block_is_globally_optimal_two_way() {
        let (disk, mut free) = setup();
        // Occupy most of the current track to force a real decision.
        free.allocate(0, 0, 0, 64).unwrap();
        let mut a = greedy_alloc(false);
        let c = a.find_block(&disk, &free).unwrap();
        // Exhaustively verify optimality over every free aligned block.
        let mut best = u64::MAX;
        for cyl in 0..36 {
            for t in 0..19 {
                for slot in 0..(72 / 8) {
                    let s = slot * 8;
                    if free.run_free(cyl, t, s, 8) {
                        let cost = disk.position_cost(cyl, t, s).unwrap().total_ns();
                        best = best.min(cost);
                    }
                }
            }
        }
        assert_eq!(c.cost.total_ns(), best);
    }

    #[test]
    fn single_sector_allocation_prefers_current_track() {
        let (disk, free) = setup();
        let mut a = greedy_alloc(true);
        let c = a.find_sector(&disk, &free).unwrap();
        let h = disk.head();
        assert_eq!((c.cyl, c.track), (h.cyl, h.track));
        assert!(c.cost.rotation_ns <= 2 * disk.spec().mech.sector_ns(72));
    }

    #[test]
    fn one_way_sweep_skips_full_cylinders_forward() {
        let (mut disk, mut free) = setup();
        disk.seek_to(5, 0).unwrap();
        // Fill cylinders 5..8 completely.
        for cyl in 5..8 {
            for t in 0..19 {
                free.allocate(cyl, t, 0, 72).unwrap();
            }
        }
        let mut a = greedy_alloc(true);
        let c = a.find_block(&disk, &free).unwrap();
        assert_eq!(c.cyl, 8, "sweep must move forward, not back to cylinder 4");
    }

    #[test]
    fn one_way_sweep_wraps_at_disk_end() {
        let (mut disk, mut free) = setup();
        disk.seek_to(35, 0).unwrap();
        for t in 0..19 {
            free.allocate(35, t, 0, 72).unwrap();
        }
        let mut a = greedy_alloc(true);
        let c = a.find_block(&disk, &free).unwrap();
        assert_eq!(c.cyl, 0);
    }

    #[test]
    fn exhausted_disk_returns_none() {
        let (disk, mut free) = setup();
        for cyl in 0..36 {
            for t in 0..19 {
                free.allocate(cyl, t, 0, 72).unwrap();
            }
        }
        let mut a = greedy_alloc(true);
        assert!(a.find_block(&disk, &free).is_none());
        assert!(a.find_sector(&disk, &free).is_none());
        // A single free sector is enough for find_sector but not find_block.
        free.release(10, 3, 17, 1).unwrap();
        assert!(a.find_sector(&disk, &free).is_some());
        assert!(a.find_block(&disk, &free).is_none());
    }

    #[test]
    fn threshold_fill_sticks_to_one_track_until_threshold() {
        let (disk, mut free) = setup();
        let mut a = EagerAllocator::new(AllocConfig::default());
        // 72 sectors/track, 9 blocks; 75% threshold -> 6 blocks and change.
        let mut tracks_used = std::collections::HashSet::new();
        for _ in 0..6 {
            let c = a.find_block(&disk, &free).unwrap();
            free.allocate(c.cyl, c.track, c.sector, 8).unwrap();
            tracks_used.insert((c.cyl, c.track));
        }
        assert_eq!(tracks_used.len(), 1, "filled more than one track early");
        // Utilization now 48/72 = 0.667 < 0.75: next block still same track.
        let c = a.find_block(&disk, &free).unwrap();
        assert!(tracks_used.contains(&(c.cyl, c.track)));
        free.allocate(c.cyl, c.track, c.sector, 8).unwrap();
        // 56/72 = 0.778 >= 0.75: the policy must switch tracks now.
        let c = a.find_block(&disk, &free).unwrap();
        assert!(!tracks_used.contains(&(c.cyl, c.track)));
    }

    #[test]
    fn threshold_fill_falls_back_to_greedy_without_empty_tracks() {
        let (disk, mut free) = setup();
        // Put one sector on every track: no empty tracks remain.
        for cyl in 0..36 {
            for t in 0..19 {
                free.allocate(cyl, t, 0, 1).unwrap();
            }
        }
        let mut a = EagerAllocator::new(AllocConfig::default());
        let c = a.find_block(&disk, &free).unwrap();
        assert!(free.run_free(c.cyl, c.track, c.sector, 8));
    }

    #[test]
    fn reset_fill_releases_track() {
        let (disk, mut free) = setup();
        let mut a = EagerAllocator::new(AllocConfig::default());
        let c = a.find_block(&disk, &free).unwrap();
        free.allocate(c.cyl, c.track, c.sector, 8).unwrap();
        a.reset_fill();
        // Still works after the reset.
        assert!(a.find_block(&disk, &free).is_some());
    }
}
