//! Eager-writing allocation: pick a free location near the disk head.
//!
//! Two strategies from the paper are implemented:
//!
//! * **Greedy** (§2.1/§2.2) — take the free sector (or aligned block)
//!   reachable in minimum positioning time, searching the current cylinder
//!   first and widening outward; the Figure 1 simulation uses the
//!   bidirectional variant, the VLD the one-directional sweep of §4.2
//!   ("cylinder seeks only in one direction until it reaches the last
//!   cylinder"), which keeps the head from being trapped in full regions.
//! * **Threshold fill** (§2.3/§4.2) — when the compactor keeps a pool of
//!   empty tracks, fill the current empty track only up to a threshold
//!   (75 % in the paper's experiments), then move on; fall back to greedy
//!   once the pool is exhausted.
//!
//! All cost ranking uses the exact mechanical model via
//! [`disksim::Disk::position_cost`], so the allocator is as informed as
//! firmware running inside the drive — precisely the paper's premise.

use crate::freemap::FreeMap;
use disksim::{CylinderPricer, Disk, Metrics, ServiceTime, TrackPricer};
use std::sync::OnceLock;

/// Which greedy-search implementation answers allocation queries. All three
/// provably pick the same sector; they differ only in how much work they do
/// to find it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// Best-first over the [`FreeMap::frontier`] with early exit: stop at
    /// the first candidate whose exact cost meets its frontier lower bound.
    Fast,
    /// The PR 2 pruned scan: sweep cylinders, reject tracks whose
    /// repositioning lower bound cannot beat the incumbent.
    Pruned,
    /// The naive exhaustive oracle: price every reachable slot, take the
    /// `min_by_key`.
    Reference,
}

/// The process-wide allocator mode: `VLFS_ALLOC={fast,pruned,reference}`,
/// defaulting to [`AllocMode::Fast`] — or to [`AllocMode::Reference`] when
/// reference mode (`VLFS_REFERENCE=1`) selects every pre-optimisation
/// oracle path and `VLFS_ALLOC` is not set explicitly. Read once.
pub fn alloc_mode() -> AllocMode {
    static MODE: OnceLock<AllocMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("VLFS_ALLOC") {
        Ok(v) if v == "fast" => AllocMode::Fast,
        Ok(v) if v == "pruned" => AllocMode::Pruned,
        Ok(v) if v == "reference" => AllocMode::Reference,
        Ok(v) => panic!("VLFS_ALLOC: unknown mode {v:?} (expected fast|pruned|reference)"),
        Err(_) => {
            if disksim::reference_mode() {
                AllocMode::Reference
            } else {
                AllocMode::Fast
            }
        }
    })
}

/// A chosen allocation target and its predicted positioning cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Cylinder of the chosen location.
    pub cyl: u32,
    /// Track (head) of the chosen location.
    pub track: u32,
    /// First sector of the chosen location.
    pub sector: u32,
    /// Predicted seek + head switch + rotation to reach it.
    pub cost: ServiceTime,
}

/// Allocator tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocConfig {
    /// Data-block alignment in sectors (8 for the paper's 4 KB blocks).
    pub block_sectors: u32,
    /// Track-fill threshold: stop filling an empty track once its
    /// utilisation reaches this fraction (paper: 0.75).
    pub threshold: f64,
    /// Use the one-directional cylinder sweep (the VLD behaviour). When
    /// false, greedy searches both directions — the Figure 1 idealisation.
    pub one_way_sweep: bool,
    /// Prefer filling compactor-produced empty tracks to the threshold
    /// before going greedy.
    pub threshold_fill: bool,
}

impl Default for AllocConfig {
    fn default() -> Self {
        Self {
            block_sectors: 8,
            threshold: 0.75,
            one_way_sweep: true,
            threshold_fill: true,
        }
    }
}

/// Stateful eager allocator.
#[derive(Debug, Clone)]
pub struct EagerAllocator {
    cfg: AllocConfig,
    /// Which search implementation answers queries (identical answers).
    mode: AllocMode,
    /// The empty track currently being filled under the threshold policy.
    fill_track: Option<(u32, u32)>,
    /// A track allocations must avoid (set while the compactor empties it,
    /// so fresh writes don't re-pollute the victim).
    avoid: Option<(u32, u32)>,
    /// Metrics handle (disabled by default). Counts fast-path vs. fallback
    /// decisions; never influences them.
    metrics: Metrics,
}

/// Plain-data image of an allocator's mutable state (`Send + Sync`), used
/// by the snapshot/fork engine. The metrics handle is deliberately not
/// captured: a restored allocator starts detached.
#[derive(Debug, Clone, Copy)]
pub struct AllocatorState {
    cfg: AllocConfig,
    mode: AllocMode,
    fill_track: Option<(u32, u32)>,
    avoid: Option<(u32, u32)>,
}

impl EagerAllocator {
    /// Create an allocator with the given configuration, in the
    /// process-wide [`alloc_mode`].
    pub fn new(cfg: AllocConfig) -> Self {
        Self::with_mode(cfg, alloc_mode())
    }

    /// Create an allocator pinned to an explicit search mode, regardless of
    /// the `VLFS_ALLOC` environment (equivalence tests and microbenchmarks
    /// compare the modes side by side within one process).
    pub fn with_mode(cfg: AllocConfig, mode: AllocMode) -> Self {
        Self {
            cfg,
            mode,
            fill_track: None,
            avoid: None,
            metrics: Metrics::disabled(),
        }
    }

    /// The search mode in force.
    pub fn mode(&self) -> AllocMode {
        self.mode
    }

    /// Capture the mutable state for a later [`EagerAllocator::from_state`].
    pub fn state(&self) -> AllocatorState {
        AllocatorState {
            cfg: self.cfg,
            mode: self.mode,
            fill_track: self.fill_track,
            avoid: self.avoid,
        }
    }

    /// Rebuild an allocator from captured state (metrics detached).
    pub fn from_state(state: &AllocatorState) -> Self {
        Self {
            cfg: state.cfg,
            mode: state.mode,
            fill_track: state.fill_track,
            avoid: state.avoid,
            metrics: Metrics::disabled(),
        }
    }

    /// Attach a metrics handle (pass `Metrics::disabled()` to detach). The
    /// allocator records `alloc.fast_path` / `alloc.greedy_fallback` block
    /// placements; its decisions are unaffected.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Forbid allocations on one track (compaction victim); `None` clears.
    pub fn set_avoid(&mut self, track: Option<(u32, u32)>) {
        self.avoid = track;
        if self.avoid.is_some() && self.fill_track == self.avoid {
            self.fill_track = None;
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AllocConfig {
        &self.cfg
    }

    /// Choose a free aligned data block near the head. Returns `None` only
    /// when no aligned block is free anywhere.
    pub fn find_block(&mut self, disk: &Disk, free: &FreeMap) -> Option<Candidate> {
        let align = self.cfg.block_sectors;
        if self.cfg.threshold_fill {
            if let Some(c) = self.fill_candidate(disk, free, align) {
                self.metrics.inc("alloc.fast_path");
                return Some(c);
            }
        }
        self.metrics.inc("alloc.greedy_fallback");
        self.greedy(disk, free, align)
    }

    /// Choose a single free sector near the head (for map-sector appends).
    /// Always greedy: the log entry goes wherever is cheapest right now.
    pub fn find_sector(&mut self, disk: &Disk, free: &FreeMap) -> Option<Candidate> {
        self.greedy(disk, free, 1)
    }

    /// Threshold-fill step: keep writing into the current fill track until
    /// it reaches the threshold, then grab the nearest empty track.
    fn fill_candidate(&mut self, disk: &Disk, free: &FreeMap, align: u32) -> Option<Candidate> {
        // Keep filling the current track while it is under the threshold and
        // still has room for an aligned slot.
        if let Some((c, t)) = self.fill_track {
            if free.track_utilization(c, t) < self.cfg.threshold {
                if let Some(cand) = self.track_candidate(disk, free, c, t, align) {
                    return Some(cand);
                }
            }
            self.fill_track = None;
        }
        // Grab the nearest empty track from the compactor's pool; if the
        // pool is dry, the caller falls back to greedy.
        let next = free.nearest_empty_track(disk.head().cyl)?;
        if Some(next) == self.avoid {
            return None;
        }
        self.fill_track = Some(next);
        self.track_candidate(disk, free, next.0, next.1, align)
    }

    /// Price one track with no incumbent bound, through the primitive the
    /// allocator's mode selects (the indexed word-scan, or the naive linear
    /// scan in reference mode — same answer by the equivalence tests).
    fn track_candidate(
        &self,
        disk: &Disk,
        free: &FreeMap,
        cyl: u32,
        track: u32,
        align: u32,
    ) -> Option<Candidate> {
        match self.mode {
            AllocMode::Reference => {
                reference::best_in_track(disk, free, self.avoid, cyl, track, align)
            }
            AllocMode::Fast | AllocMode::Pruned => {
                self.best_in_track(disk, free, cyl, track, align, u64::MAX)
            }
        }
    }

    /// Cheapest candidate on one track: the first free (aligned) slot in
    /// rotational encounter order from the head's arrival position.
    ///
    /// `incumbent_ns` is the cost of the best candidate found so far: every
    /// sector here costs at least the seek/head-switch to reach the track,
    /// so when that lower bound already matches or exceeds the incumbent the
    /// track is discarded without scanning it or pricing anything exactly.
    /// (Ties keep the incumbent, matching `min_by_key`'s first-wins rule.)
    fn best_in_track(
        &self,
        disk: &Disk,
        free: &FreeMap,
        cyl: u32,
        track: u32,
        align: u32,
        incumbent_ns: u64,
    ) -> Option<Candidate> {
        if disk.reposition_lower_bound_ns(cyl, track) >= incumbent_ns {
            return None;
        }
        self.price_track(disk, free, cyl, track, align)
    }

    /// Price one track with no lower-bound prune: the first free (aligned)
    /// slot in rotational encounter order from the head's arrival position.
    /// The best-first frontier consumers call this directly — the frontier
    /// already computed each unit's exact lower bound, and its ordered
    /// early-exit subsumes the per-track prune, so recomputing
    /// `reposition_lower_bound_ns` here would be pure double work. The
    /// one-shot [`Disk::track_pricer`] plan does the seek/arrival
    /// trigonometry once instead of once per disk query.
    #[inline]
    fn price_track(
        &self,
        disk: &Disk,
        free: &FreeMap,
        cyl: u32,
        track: u32,
        align: u32,
    ) -> Option<Candidate> {
        let plan = disk.track_pricer(cyl, track).ok()?;
        self.price_planned(disk, free, cyl, track, align, &plan)
    }

    /// Price one track through an already-built [`TrackPricer`] plan: scan
    /// the free map from the plan's arrival sector, cost the hit with the
    /// plan's cached angular state.
    #[inline]
    fn price_planned(
        &self,
        disk: &Disk,
        free: &FreeMap,
        cyl: u32,
        track: u32,
        align: u32,
        plan: &TrackPricer,
    ) -> Option<Candidate> {
        if self.avoid == Some((cyl, track)) {
            return None;
        }
        let sector = free.first_aligned_from(cyl, track, plan.arrival, align)?;
        let cost = disk.priced_cost(plan, sector);
        Some(Candidate {
            cyl,
            track,
            sector,
            cost,
        })
    }

    /// Cheapest candidate within one cylinder (all tracks considered),
    /// keeping only candidates strictly cheaper than `incumbent_ns`. The
    /// per-cylinder summary counts reject cylinders with no usable space in
    /// O(1), and the running best feeds the per-track lower-bound prune.
    fn best_in_cylinder(
        &self,
        disk: &Disk,
        free: &FreeMap,
        cyl: u32,
        align: u32,
        incumbent_ns: u64,
    ) -> Option<Candidate> {
        if !free.cylinder_has_candidate(cyl, align) {
            return None;
        }
        let tracks = free.tracks_in_cylinder();
        let mut best: Option<Candidate> = None;
        let mut bound = incumbent_ns;
        for t in 0..tracks {
            if let Some(c) = self.best_in_track(disk, free, cyl, t, align, bound) {
                // The prune used a lower bound; the exact cost can still
                // lose to the incumbent. Replace only on strict improvement
                // (first-wins on ties, like the unpruned `min_by_key`).
                if c.cost.total_ns() < bound {
                    bound = c.cost.total_ns();
                    best = Some(c);
                }
            }
        }
        best
    }

    /// Greedy search: current cylinder first, then widening. One-way mode
    /// walks forward (wrapping) and takes the first cylinder with space;
    /// two-way mode alternates ±d and stops once no unvisited location can
    /// beat the best candidate found. Dispatches on the allocator's mode;
    /// all three implementations return the identical candidate.
    fn greedy(&mut self, disk: &Disk, free: &FreeMap, align: u32) -> Option<Candidate> {
        match self.mode {
            AllocMode::Reference => {
                reference::greedy(disk, free, self.avoid, align, self.cfg.one_way_sweep)
            }
            AllocMode::Pruned => self.greedy_pruned(disk, free, align),
            AllocMode::Fast => {
                if self.cfg.one_way_sweep {
                    self.greedy_fast_one_way(disk, free, align)
                } else {
                    self.greedy_fast_two_way(disk, free, align)
                }
            }
        }
    }

    /// The PR 2 pruned scan (retained behind `VLFS_ALLOC=pruned`): sweep
    /// cylinders in search order, thread the incumbent's cost through the
    /// per-track repositioning lower bound.
    fn greedy_pruned(&self, disk: &Disk, free: &FreeMap, align: u32) -> Option<Candidate> {
        let cyls = free.cylinders();
        let cur = disk.head().cyl;
        if self.cfg.one_way_sweep {
            for w in 0..cyls {
                let c = (cur + w) % cyls;
                if let Some(cand) = self.best_in_cylinder(disk, free, c, align, u64::MAX) {
                    return Some(cand);
                }
            }
            None
        } else {
            let mut best: Option<Candidate> = None;
            for d in 0..cyls {
                if let Some(b) = &best {
                    // Any candidate at distance >= d costs at least seek(d).
                    if b.cost.total_ns() < disk.seek_ns(d) {
                        break;
                    }
                }
                for c in [cur.checked_sub(d), (cur + d < cyls).then_some(cur + d)]
                    .into_iter()
                    .flatten()
                {
                    let bound = best.as_ref().map(|b| b.cost.total_ns()).unwrap_or(u64::MAX);
                    if let Some(cand) = self.best_in_cylinder(disk, free, c, align, bound) {
                        best = Some(cand);
                    }
                    if d == 0 {
                        break;
                    }
                }
            }
            best
        }
    }

    /// Best-first two-way search over the [`FreeMap::frontier`].
    ///
    /// Tracks arrive in nondecreasing order of their exact repositioning
    /// lower bound, so the loop stops at the first unit whose bound
    /// strictly exceeds the incumbent's exact cost: every unvisited track
    /// can then only yield strictly costlier candidates. Units whose bound
    /// *equals* the incumbent's cost are still priced — they can tie, and a
    /// tie is won by the track the reference scan visits first, which is
    /// what the lexicographic `(cost, rank)` replacement below decides.
    /// Hence the result equals the reference `min_by_key` pick exactly.
    fn greedy_fast_two_way(&self, disk: &Disk, free: &FreeMap, align: u32) -> Option<Candidate> {
        let head = disk.head();
        let switch = disk.spec().mech.head_switch_ns;
        let mut best: Option<(Candidate, u64, u64)> = None; // (cand, total_ns, rank)
        // The frontier drains each cylinder's tracks contiguously, so one
        // cylinder-wide plan (seek + arrival-angle divisions) serves every
        // unit of the group; only the per-track skew is new work.
        let mut cached: Option<(u32, CylinderPricer)> = None;
        for unit in free.frontier(head.cyl, head.track, switch, |d| disk.seek_ns(d), align) {
            if let Some((_, total, _)) = &best {
                if unit.lower_bound_ns > *total {
                    break;
                }
            }
            // Price with no per-track prune: the frontier's ordered bounds
            // make the `break` above the complete prune — any unit that
            // survives it has `lower_bound_ns <= incumbent`, exactly the
            // units a `>= incumbent + 1` prune would keep (equal-cost,
            // lower-rank ties included, resolved by the rank comparison
            // below).
            let c = if unit.cyl == head.cyl && unit.track == head.track {
                self.price_track(disk, free, unit.cyl, unit.track, align)
            } else {
                let plan = match &cached {
                    Some((pc, p)) if *pc == unit.cyl => *p,
                    _ => match disk.cylinder_pricer(unit.cyl) {
                        Ok(p) => {
                            cached = Some((unit.cyl, p));
                            p
                        }
                        Err(_) => continue,
                    },
                };
                let tp = disk.track_pricer_from(&plan, unit.track);
                self.price_planned(disk, free, unit.cyl, unit.track, align, &tp)
            };
            let Some(c) = c else {
                continue;
            };
            let total = c.cost.total_ns();
            let better = match &best {
                None => true,
                Some((_, bt, rank)) => total < *bt || (total == *bt && unit.rank < *rank),
            };
            if better {
                best = Some((c, total, unit.rank));
            }
        }
        best.map(|(c, _, _)| c)
    }

    /// Best-first one-way search: the cylinder choice is sweep order (first
    /// cylinder with any candidate, exactly as the reference behaves), but
    /// within the head's own cylinder the head track (lower bound 0) is
    /// priced first and wins outright when its candidate costs less than a
    /// head switch — the common mostly-empty-track case prices one track
    /// instead of scanning the cylinder.
    fn greedy_fast_one_way(&self, disk: &Disk, free: &FreeMap, align: u32) -> Option<Candidate> {
        let cyls = free.cylinders();
        let head = disk.head();
        for w in 0..cyls {
            let c = (head.cyl + w) % cyls;
            if !free.cylinder_has_candidate(c, align) {
                continue;
            }
            let cand = if c == head.cyl {
                self.best_first_in_head_cylinder(disk, free, align)
            } else {
                self.best_in_cylinder(disk, free, c, align, u64::MAX)
            };
            if cand.is_some() {
                return cand;
            }
        }
        None
    }

    /// Best candidate within the head's cylinder, head track first. Ties
    /// across tracks resolve to the lowest track index (the reference
    /// scans tracks in order with first-wins `min_by_key`), so replacement
    /// is lexicographic on `(cost, track)` and the early exits are strict.
    fn best_first_in_head_cylinder(
        &self,
        disk: &Disk,
        free: &FreeMap,
        align: u32,
    ) -> Option<Candidate> {
        let head = disk.head();
        let switch = disk.spec().mech.head_switch_ns;
        let tracks = free.tracks_in_cylinder();
        let mut best: Option<Candidate> = None;
        if let Some(c) = self.price_track(disk, free, head.cyl, head.track, align) {
            if c.cost.total_ns() < switch {
                // Every other track costs at least a head switch: strictly
                // worse, and a tie is impossible.
                return Some(c);
            }
            best = Some(c);
        }
        // One cylinder-wide plan covers every non-head track (all reached
        // with the same head switch).
        let Ok(plan) = disk.cylinder_pricer(head.cyl) else {
            return best;
        };
        for t in 0..tracks {
            if t == head.track {
                continue;
            }
            if let Some(b) = &best {
                if b.cost.total_ns() < switch {
                    break;
                }
            }
            // No per-track prune: every non-head track's lower bound is
            // exactly the head-switch cost, and the `break` above already
            // exits once the incumbent beats a head switch — the prune
            // could never fire beyond it.
            let tp = disk.track_pricer_from(&plan, t);
            if let Some(c) = self.price_planned(disk, free, head.cyl, t, align, &tp) {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        c.cost.total_ns() < b.cost.total_ns()
                            || (c.cost.total_ns() == b.cost.total_ns() && t < b.track)
                    }
                };
                if better {
                    best = Some(c);
                }
            }
        }
        best
    }

    /// Forget the current fill track (e.g. after a compaction pass changed
    /// the landscape).
    pub fn reset_fill(&mut self) {
        self.fill_track = None;
    }

    /// The empty track currently being filled, if the threshold policy has
    /// one in hand. The compactor avoids choosing it as a victim.
    pub fn fill_track(&self) -> Option<(u32, u32)> {
        self.fill_track
    }
}

/// The pre-index exhaustive greedy search, retained as the oracle the
/// pruned fast path is verified against: it prices every reachable free
/// slot with the exact mechanical model and never consults the summary
/// counts, lower bounds or word-level scans. Equivalence tests (and the
/// microbenchmarks' before/after comparison) call these directly.
pub mod reference {
    use super::Candidate;
    use crate::freemap::FreeMap;
    use disksim::Disk;

    /// Naive per-track candidate: linear free-list scan plus an exact
    /// `position_cost` for the first slot in rotational encounter order.
    pub fn best_in_track(
        disk: &Disk,
        free: &FreeMap,
        avoid: Option<(u32, u32)>,
        cyl: u32,
        track: u32,
        align: u32,
    ) -> Option<Candidate> {
        if avoid == Some((cyl, track)) {
            return None;
        }
        let arrival = disk.arrival_sector(cyl, track).ok()?;
        let sector = if align == 1 {
            free.free_sectors_from(cyl, track, arrival).next()?
        } else {
            free.free_aligned_from(cyl, track, arrival, align)?
        };
        let cost = disk.position_cost(cyl, track, sector).ok()?;
        Some(Candidate {
            cyl,
            track,
            sector,
            cost,
        })
    }

    /// Naive per-cylinder candidate: price every track, take the min.
    pub fn best_in_cylinder(
        disk: &Disk,
        free: &FreeMap,
        avoid: Option<(u32, u32)>,
        cyl: u32,
        align: u32,
    ) -> Option<Candidate> {
        let tracks = free.tracks_in_cylinder();
        (0..tracks)
            .filter_map(|t| best_in_track(disk, free, avoid, cyl, t, align))
            .min_by_key(|c| c.cost.total_ns())
    }

    /// Naive greedy search, both sweep modes, exactly as the allocator
    /// behaved before the hierarchical index and cost pruning landed.
    pub fn greedy(
        disk: &Disk,
        free: &FreeMap,
        avoid: Option<(u32, u32)>,
        align: u32,
        one_way_sweep: bool,
    ) -> Option<Candidate> {
        let cyls = free.cylinders();
        let cur = disk.head().cyl;
        if one_way_sweep {
            for w in 0..cyls {
                let c = (cur + w) % cyls;
                if let Some(cand) = best_in_cylinder(disk, free, avoid, c, align) {
                    return Some(cand);
                }
            }
            None
        } else {
            let mut best: Option<Candidate> = None;
            for d in 0..cyls {
                if let Some(b) = &best {
                    if b.cost.total_ns() < disk.spec().mech.seek_ns(d) {
                        break;
                    }
                }
                for c in [cur.checked_sub(d), (cur + d < cyls).then_some(cur + d)]
                    .into_iter()
                    .flatten()
                {
                    if let Some(cand) = best_in_cylinder(disk, free, avoid, c, align) {
                        if best.is_none()
                            || cand.cost.total_ns()
                                < best.as_ref().map(|b| b.cost.total_ns()).unwrap_or(u64::MAX)
                        {
                            best = Some(cand);
                        }
                    }
                    if d == 0 {
                        break;
                    }
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::{DiskSpec, SimClock};

    fn setup() -> (Disk, FreeMap) {
        let mut spec = DiskSpec::hp97560_sim();
        spec.command_overhead_ns = 0; // internal (in-drive) operation
        let disk = Disk::new(spec, SimClock::new());
        let free = FreeMap::new(&disk.spec().geometry);
        (disk, free)
    }

    fn greedy_alloc(one_way: bool) -> EagerAllocator {
        EagerAllocator::new(AllocConfig {
            one_way_sweep: one_way,
            threshold_fill: false,
            ..AllocConfig::default()
        })
    }

    #[test]
    fn empty_disk_block_is_nearly_free_to_reach() {
        let (disk, free) = setup();
        let mut a = greedy_alloc(true);
        let c = a.find_block(&disk, &free).unwrap();
        // On an empty disk the very next aligned slot on the current track
        // should win: no seek, no switch, under one block of rotation.
        assert_eq!(c.cost.seek_ns, 0);
        assert_eq!(c.cost.head_switch_ns, 0);
        assert!(c.cost.rotation_ns <= 8 * disk.spec().mech.sector_ns(72));
    }

    #[test]
    fn chosen_block_is_globally_optimal_two_way() {
        let (disk, mut free) = setup();
        // Occupy most of the current track to force a real decision.
        free.allocate(0, 0, 0, 64).unwrap();
        let mut a = greedy_alloc(false);
        let c = a.find_block(&disk, &free).unwrap();
        // Exhaustively verify optimality over every free aligned block.
        let mut best = u64::MAX;
        for cyl in 0..36 {
            for t in 0..19 {
                for slot in 0..(72 / 8) {
                    let s = slot * 8;
                    if free.run_free(cyl, t, s, 8) {
                        let cost = disk.position_cost(cyl, t, s).unwrap().total_ns();
                        best = best.min(cost);
                    }
                }
            }
        }
        assert_eq!(c.cost.total_ns(), best);
    }

    #[test]
    fn single_sector_allocation_prefers_current_track() {
        let (disk, free) = setup();
        let mut a = greedy_alloc(true);
        let c = a.find_sector(&disk, &free).unwrap();
        let h = disk.head();
        assert_eq!((c.cyl, c.track), (h.cyl, h.track));
        assert!(c.cost.rotation_ns <= 2 * disk.spec().mech.sector_ns(72));
    }

    #[test]
    fn one_way_sweep_skips_full_cylinders_forward() {
        let (mut disk, mut free) = setup();
        disk.seek_to(5, 0).unwrap();
        // Fill cylinders 5..8 completely.
        for cyl in 5..8 {
            for t in 0..19 {
                free.allocate(cyl, t, 0, 72).unwrap();
            }
        }
        let mut a = greedy_alloc(true);
        let c = a.find_block(&disk, &free).unwrap();
        assert_eq!(c.cyl, 8, "sweep must move forward, not back to cylinder 4");
    }

    #[test]
    fn one_way_sweep_wraps_at_disk_end() {
        let (mut disk, mut free) = setup();
        disk.seek_to(35, 0).unwrap();
        for t in 0..19 {
            free.allocate(35, t, 0, 72).unwrap();
        }
        let mut a = greedy_alloc(true);
        let c = a.find_block(&disk, &free).unwrap();
        assert_eq!(c.cyl, 0);
    }

    #[test]
    fn exhausted_disk_returns_none() {
        let (disk, mut free) = setup();
        for cyl in 0..36 {
            for t in 0..19 {
                free.allocate(cyl, t, 0, 72).unwrap();
            }
        }
        let mut a = greedy_alloc(true);
        assert!(a.find_block(&disk, &free).is_none());
        assert!(a.find_sector(&disk, &free).is_none());
        // A single free sector is enough for find_sector but not find_block.
        free.release(10, 3, 17, 1).unwrap();
        assert!(a.find_sector(&disk, &free).is_some());
        assert!(a.find_block(&disk, &free).is_none());
    }

    #[test]
    fn threshold_fill_sticks_to_one_track_until_threshold() {
        let (disk, mut free) = setup();
        let mut a = EagerAllocator::new(AllocConfig::default());
        // 72 sectors/track, 9 blocks; 75% threshold -> 6 blocks and change.
        let mut tracks_used = std::collections::HashSet::new();
        for _ in 0..6 {
            let c = a.find_block(&disk, &free).unwrap();
            free.allocate(c.cyl, c.track, c.sector, 8).unwrap();
            tracks_used.insert((c.cyl, c.track));
        }
        assert_eq!(tracks_used.len(), 1, "filled more than one track early");
        // Utilization now 48/72 = 0.667 < 0.75: next block still same track.
        let c = a.find_block(&disk, &free).unwrap();
        assert!(tracks_used.contains(&(c.cyl, c.track)));
        free.allocate(c.cyl, c.track, c.sector, 8).unwrap();
        // 56/72 = 0.778 >= 0.75: the policy must switch tracks now.
        let c = a.find_block(&disk, &free).unwrap();
        assert!(!tracks_used.contains(&(c.cyl, c.track)));
    }

    #[test]
    fn threshold_fill_falls_back_to_greedy_without_empty_tracks() {
        let (disk, mut free) = setup();
        // Put one sector on every track: no empty tracks remain.
        for cyl in 0..36 {
            for t in 0..19 {
                free.allocate(cyl, t, 0, 1).unwrap();
            }
        }
        let mut a = EagerAllocator::new(AllocConfig::default());
        let c = a.find_block(&disk, &free).unwrap();
        assert!(free.run_free(c.cyl, c.track, c.sector, 8));
    }

    /// The tentpole's safety net: across random fill patterns, head
    /// positions, rotation phases, disks, sweep modes, alignments and avoid
    /// tracks, all three allocator modes — best-first indexed, pruned scan,
    /// naive reference — must choose *exactly* the same candidate: same
    /// sector, same predicted cost. All searches resolve ties to the
    /// reference scan's first-wins order, so equality is full, not just
    /// cost equality.
    #[test]
    fn allocator_modes_choose_identically() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for spec0 in [DiskSpec::hp97560_sim(), DiskSpec::st19101_sim()] {
            let mut spec = spec0;
            spec.command_overhead_ns = 0;
            let g = spec.geometry.clone();
            let (cyls, tracks) = (g.cylinders(), g.tracks_per_cylinder());
            let mut rng = StdRng::seed_from_u64(0xA11C ^ cyls as u64);
            for &util in &[0.05f64, 0.45, 0.85, 0.97] {
                for one_way in [true, false] {
                    let clock = SimClock::new();
                    let mut disk = Disk::new(spec.clone(), clock.clone());
                    let mut free = FreeMap::new(&g);
                    // Random per-sector occupancy at the target utilisation,
                    // plus (sometimes) a band of completely full cylinders so
                    // the O(1) cylinder skip actually triggers.
                    let full_band = if rng.gen_bool(0.5) {
                        let w = rng.gen_range(1..cyls.max(2));
                        let s = rng.gen_range(0..cyls);
                        Some((s, w))
                    } else {
                        None
                    };
                    for cyl in 0..cyls {
                        let in_band =
                            full_band.is_some_and(|(s, w)| (cyl + cyls - s) % cyls < w);
                        for t in 0..tracks {
                            let spt = g.sectors_per_track(cyl).unwrap();
                            for sec in 0..spt {
                                if in_band || rng.gen_bool(util) {
                                    free.allocate(cyl, t, sec, 1).unwrap();
                                }
                            }
                        }
                    }
                    let avoid = rng
                        .gen_bool(0.5)
                        .then(|| (rng.gen_range(0..cyls), rng.gen_range(0..tracks)));
                    for _ in 0..3 {
                        disk.seek_to(rng.gen_range(0..cyls), rng.gen_range(0..tracks))
                            .unwrap();
                        clock.advance(rng.gen_range(0..spec.mech.revolution_ns()));
                        let cfg = AllocConfig {
                            one_way_sweep: one_way,
                            threshold_fill: false,
                            ..AllocConfig::default()
                        };
                        for align in [8u32, 1] {
                            let picks: Vec<Option<Candidate>> =
                                [AllocMode::Fast, AllocMode::Pruned, AllocMode::Reference]
                                    .into_iter()
                                    .map(|mode| {
                                        let mut a = EagerAllocator::with_mode(cfg, mode);
                                        a.set_avoid(avoid);
                                        if align == 8 {
                                            a.find_block(&disk, &free)
                                        } else {
                                            a.find_sector(&disk, &free)
                                        }
                                    })
                                    .collect();
                            assert!(
                                picks[0] == picks[2] && picks[1] == picks[2],
                                "divergence: cyls={cyls} util={util} one_way={one_way} \
                                 align={align} avoid={avoid:?} head={:?} \
                                 fast={:?} pruned={:?} reference={:?}",
                                disk.head(),
                                picks[0],
                                picks[1],
                                picks[2]
                            );
                        }
                    }
                }
            }
        }
    }

    /// Hand-built equal-cost ties: every mode must resolve them to the
    /// track the reference scan visits first.
    #[test]
    fn tie_breaking_matches_reference_scan_order() {
        let modes = [AllocMode::Fast, AllocMode::Pruned, AllocMode::Reference];
        // Mirrored cylinders: the head sits on cylinder 10 with its own
        // cylinder (and everything within distance 2) full; cylinders 8 and
        // 12 each keep one identical free block. Seek, arrival sector and
        // rotation are mirror-equal, so the costs tie exactly; the
        // reference scan visits `cur - d` before `cur + d`.
        for one_way in [false, true] {
            let (mut disk, mut free) = setup();
            disk.seek_to(10, 3).unwrap();
            for cyl in 0..36 {
                for t in 0..19 {
                    free.allocate(cyl, t, 0, 72).unwrap();
                }
            }
            free.release(8, 3, 16, 8).unwrap();
            free.release(12, 3, 16, 8).unwrap();
            let picks: Vec<Candidate> = modes
                .iter()
                .map(|&m| {
                    let mut a = EagerAllocator::with_mode(
                        AllocConfig {
                            one_way_sweep: one_way,
                            threshold_fill: false,
                            ..AllocConfig::default()
                        },
                        m,
                    );
                    a.find_block(&disk, &free).unwrap()
                })
                .collect();
            assert_eq!(picks[0], picks[1]);
            assert_eq!(picks[1], picks[2]);
            if !one_way {
                assert_eq!(
                    (picks[0].cyl, picks[0].track),
                    (8, 3),
                    "two-way tie must go to the lower cylinder (visited first)"
                );
            }
        }
        // Same-cylinder track tie: head on track 15 of cylinder 0, one free
        // block each on tracks 2 and 10, placed at the *same angle* (the
        // HP's track skew is 13 of 72 sectors, so tracks 8 apart with start
        // sectors 32 apart coincide: 40 + 13·2 ≡ 8 + 13·10 (mod 72)). Head
        // switch and rotation are then equal — first-wins goes to the
        // lower track index.
        let (mut disk, mut free) = setup();
        disk.seek_to(0, 15).unwrap();
        for cyl in 0..36 {
            for t in 0..19 {
                free.allocate(cyl, t, 0, 72).unwrap();
            }
        }
        free.release(0, 2, 40, 8).unwrap();
        free.release(0, 10, 8, 8).unwrap();
        for one_way in [false, true] {
            let picks: Vec<Candidate> = modes
                .iter()
                .map(|&m| {
                    let mut a = EagerAllocator::with_mode(
                        AllocConfig {
                            one_way_sweep: one_way,
                            threshold_fill: false,
                            ..AllocConfig::default()
                        },
                        m,
                    );
                    a.find_block(&disk, &free).unwrap()
                })
                .collect();
            assert_eq!(picks[0], picks[1], "one_way={one_way}");
            assert_eq!(picks[1], picks[2], "one_way={one_way}");
            assert_eq!((picks[0].cyl, picks[0].track), (0, 2), "one_way={one_way}");
        }
    }

    #[test]
    fn reset_fill_releases_track() {
        let (disk, mut free) = setup();
        let mut a = EagerAllocator::new(AllocConfig::default());
        let c = a.find_block(&disk, &free).unwrap();
        free.allocate(c.cyl, c.track, c.sector, 8).unwrap();
        a.reset_fill();
        // Still works after the reset.
        assert!(a.find_block(&disk, &free).is_some());
    }
}
