//! On-disk format of virtual-log entries (indirection-map sectors).
//!
//! The indirection map is a table of logical-block → physical-block
//! translations, divided into fixed-size *pieces*; whenever a map entry
//! changes, the piece containing it is written — whole — to a free sector
//! near the head (§3.2 of the paper). Each such sector is a virtual-log
//! entry and carries:
//!
//! * a monotonically increasing **sequence number** (its age),
//! * a **previous-root pointer** — the backward chain of Figure 3a,
//! * an optional **bypass pointer** — the second tree branch of Figure 3b,
//!   pointing *past* the overwritten (now recyclable) older version of the
//!   same piece, and
//! * a checksum and magic, making entries self-identifying for the
//!   scan-recovery fallback.
//!
//! Multi-piece transactions mark all but the last sector `TXN_PART`; the
//! final sector carries `TXN_COMMIT`. Recovery ignores the payload of parts
//! whose commit record never made it to disk, giving atomic multi-block
//! writes with no extra I/O.

use crate::checksum::crc32;
use disksim::{DiskError, Result, SECTOR_BYTES};

/// Magic number identifying a virtual-log map sector ("VLOG").
pub const MAP_MAGIC: u32 = 0x564C_4F47;
/// On-disk format version.
pub const MAP_VERSION: u16 = 1;
/// Bytes per on-disk map piece: one sector, as in §3.2 ("we write the
/// piece of the table that contains the new map entry to a free sector").
/// Allocation, however, happens at the VLD's uniform 4 KB physical-block
/// granularity — a map sector occupies a whole block with internal
/// fragmentation (§4.2: "The resulting internal fragmentation when writing
/// data or metadata blocks that are smaller only biases against ... the
/// VLD") — so only one sector is *transferred* while the aligned free
/// space stays unfragmented.
pub const PIECE_BYTES: usize = SECTOR_BYTES;
/// Number of map entries per piece.
pub const PIECE_ENTRIES: usize = piece_capacity(PIECE_BYTES);
/// Sentinel for an unmapped logical block.
pub const UNMAPPED: u32 = u32::MAX;
/// Sentinel LBA meaning "no pointer".
pub const NO_LBA: u64 = u64::MAX;

const HEADER_BYTES: usize = 72;

/// Map entries that fit in a piece of `bytes` bytes.
pub const fn piece_capacity(bytes: usize) -> usize {
    (bytes - HEADER_BYTES) / 4
}

/// Minimal bitflags implementation (avoids an external dependency).
macro_rules! bitflags_lite {
    (
        $(#[$m:meta])* pub struct $name:ident : $ty:ty {
            $($(#[$fm:meta])* const $flag:ident = $val:expr;)*
        }
    ) => {
        $(#[$m])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct $name(pub $ty);
        impl $name {
            $($(#[$fm])* pub const $flag: $name = $name($val);)*
            /// No flags set.
            pub const EMPTY: $name = $name(0);
            /// Does `self` contain all bits of `other`?
            pub fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }
            /// Union of two flag sets.
            pub fn union(self, other: $name) -> $name {
                $name(self.0 | other.0)
            }
        }
    };
}

bitflags_lite! {
    /// Map-sector flags.
    pub struct MapFlags: u16 {
        /// Sector is part of a multi-sector transaction but not its commit
        /// point; its payload is valid only if the commit sector exists.
        const TXN_PART = 0b01;
        /// Sector commits the transaction named by `txn_id`.
        const TXN_COMMIT = 0b10;
    }
}

/// Identity of a transaction spanning multiple map sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnInfo {
    /// Transaction identifier (unique per log).
    pub id: u64,
    /// This sector's index within the transaction.
    pub index: u16,
    /// Total sectors in the transaction.
    pub total: u16,
}

/// A decoded virtual-log entry: one version of one piece of the indirection
/// map, plus the log linkage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapSector {
    /// Age of this entry; strictly increasing across the log.
    pub seq: u64,
    /// Which piece of the map table this sector holds.
    pub piece: u32,
    /// Flags (transaction markers).
    pub flags: MapFlags,
    /// Backward pointer to the previous log root: (lba, seq).
    pub prev: Option<(u64, u64)>,
    /// Bypass pointer past a recycled older version: (lba, seq).
    pub bypass: Option<(u64, u64)>,
    /// Transaction metadata if this sector participates in one.
    pub txn: Option<TxnInfo>,
    /// The piece payload: physical block number per logical block, with
    /// [`UNMAPPED`] holes. At most [`PIECE_ENTRIES`] long.
    pub entries: Vec<u32>,
}

/// A map sector with a *borrowed* payload, for serialisation. The log
/// appends one map piece per tracked write; encoding straight from the
/// in-memory map table avoids cloning the piece payload on every append.
#[derive(Debug, Clone, Copy)]
pub struct MapSectorRef<'a> {
    /// Age of this entry; strictly increasing across the log.
    pub seq: u64,
    /// Which piece of the map table this sector holds.
    pub piece: u32,
    /// Flags (transaction markers).
    pub flags: MapFlags,
    /// Backward pointer to the previous log root: (lba, seq).
    pub prev: Option<(u64, u64)>,
    /// Bypass pointer past a recycled older version: (lba, seq).
    pub bypass: Option<(u64, u64)>,
    /// Transaction metadata if this sector participates in one.
    pub txn: Option<TxnInfo>,
    /// The piece payload. At most [`PIECE_ENTRIES`] long.
    pub entries: &'a [u32],
}

impl MapSector {
    /// Serialise into a [`PIECE_BYTES`]-byte block image.
    ///
    /// # Errors
    ///
    /// Fails if the payload exceeds [`PIECE_ENTRIES`].
    pub fn encode(&self) -> Result<Vec<u8>> {
        MapSectorRef {
            seq: self.seq,
            piece: self.piece,
            flags: self.flags,
            prev: self.prev,
            bypass: self.bypass,
            txn: self.txn,
            entries: &self.entries,
        }
        .encode()
    }
}

impl MapSectorRef<'_> {
    /// Serialise into a [`PIECE_BYTES`]-byte block image.
    ///
    /// # Errors
    ///
    /// Fails if the payload exceeds [`PIECE_ENTRIES`].
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Serialise into a caller-owned buffer, reusing its allocation. The
    /// buffer is cleared and resized to [`PIECE_BYTES`] — the log's append
    /// path passes the same scratch vector on every call so the hot path
    /// performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Fails if the payload exceeds [`PIECE_ENTRIES`].
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<()> {
        if self.entries.len() > PIECE_ENTRIES {
            return Err(DiskError::BadBufferLength {
                expected: PIECE_ENTRIES * 4,
                actual: self.entries.len() * 4,
            });
        }
        buf.clear();
        buf.resize(PIECE_BYTES, 0);
        buf[0..4].copy_from_slice(&MAP_MAGIC.to_le_bytes());
        buf[4..6].copy_from_slice(&MAP_VERSION.to_le_bytes());
        buf[6..8].copy_from_slice(&self.flags.0.to_le_bytes());
        buf[8..16].copy_from_slice(&self.seq.to_le_bytes());
        buf[16..20].copy_from_slice(&self.piece.to_le_bytes());
        buf[20..22].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        let (txn_id, txn_index, txn_total) = match self.txn {
            Some(t) => (t.id, t.index, t.total),
            None => (0, 0, 0),
        };
        buf[22..24].copy_from_slice(&txn_index.to_le_bytes());
        let (plba, pseq) = self.prev.unwrap_or((NO_LBA, 0));
        buf[24..32].copy_from_slice(&plba.to_le_bytes());
        buf[32..40].copy_from_slice(&pseq.to_le_bytes());
        let (blba, bseq) = self.bypass.unwrap_or((NO_LBA, 0));
        buf[40..48].copy_from_slice(&blba.to_le_bytes());
        buf[48..56].copy_from_slice(&bseq.to_le_bytes());
        buf[56..64].copy_from_slice(&txn_id.to_le_bytes());
        buf[64..66].copy_from_slice(&txn_total.to_le_bytes());
        // buf[66..68] reserved, zero. Checksum goes in 68..72, computed with
        // the field itself zeroed.
        for (i, e) in self.entries.iter().enumerate() {
            let o = HEADER_BYTES + i * 4;
            buf[o..o + 4].copy_from_slice(&e.to_le_bytes());
        }
        let sum = crc32(buf);
        buf[68..72].copy_from_slice(&sum.to_le_bytes());
        Ok(())
    }
}

impl MapSector {
    /// Try to decode a piece image. Returns `None` (not an error) if the
    /// block is not a valid map piece — the common case when scanning.
    pub fn decode(buf: &[u8]) -> Option<MapSector> {
        if buf.len() != PIECE_BYTES {
            return None;
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        let version = u16::from_le_bytes(buf[4..6].try_into().ok()?);
        if magic != MAP_MAGIC || version != MAP_VERSION {
            return None;
        }
        let stored_sum = u32::from_le_bytes(buf[68..72].try_into().ok()?);
        let mut copy = buf.to_vec();
        copy[68..72].fill(0);
        if crc32(&copy) != stored_sum {
            return None;
        }
        let n = u16::from_le_bytes(buf[20..22].try_into().ok()?) as usize;
        if n > PIECE_ENTRIES {
            return None;
        }
        let flags = MapFlags(u16::from_le_bytes(buf[6..8].try_into().ok()?));
        let txn_id = u64::from_le_bytes(buf[56..64].try_into().ok()?);
        let txn_index = u16::from_le_bytes(buf[22..24].try_into().ok()?);
        let txn_total = u16::from_le_bytes(buf[64..66].try_into().ok()?);
        let prev_lba = u64::from_le_bytes(buf[24..32].try_into().ok()?);
        let prev_seq = u64::from_le_bytes(buf[32..40].try_into().ok()?);
        let bypass_lba = u64::from_le_bytes(buf[40..48].try_into().ok()?);
        let bypass_seq = u64::from_le_bytes(buf[48..56].try_into().ok()?);
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let o = HEADER_BYTES + i * 4;
            entries.push(u32::from_le_bytes(buf[o..o + 4].try_into().ok()?));
        }
        Some(MapSector {
            seq: u64::from_le_bytes(buf[8..16].try_into().ok()?),
            piece: u32::from_le_bytes(buf[16..20].try_into().ok()?),
            flags,
            prev: (prev_lba != NO_LBA).then_some((prev_lba, prev_seq)),
            bypass: (bypass_lba != NO_LBA).then_some((bypass_lba, bypass_seq)),
            txn: (flags.contains(MapFlags::TXN_PART) || flags.contains(MapFlags::TXN_COMMIT))
                .then_some(TxnInfo {
                    id: txn_id,
                    index: txn_index,
                    total: txn_total,
                }),
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MapSector {
        MapSector {
            seq: 42,
            piece: 7,
            flags: MapFlags::EMPTY,
            prev: Some((1234, 41)),
            bypass: Some((99, 17)),
            txn: None,
            entries: vec![1, 2, UNMAPPED, 4],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let buf = m.encode().unwrap();
        assert_eq!(MapSector::decode(&buf).unwrap(), m);
    }

    #[test]
    fn roundtrip_with_txn() {
        let mut m = sample();
        m.flags = MapFlags::TXN_COMMIT;
        m.txn = Some(TxnInfo {
            id: 9,
            index: 2,
            total: 3,
        });
        let buf = m.encode().unwrap();
        let d = MapSector::decode(&buf).unwrap();
        assert_eq!(d.txn, m.txn);
        assert!(d.flags.contains(MapFlags::TXN_COMMIT));
    }

    #[test]
    fn roundtrip_no_pointers_full_payload() {
        let m = MapSector {
            seq: 1,
            piece: 0,
            flags: MapFlags::EMPTY,
            prev: None,
            bypass: None,
            txn: None,
            entries: vec![UNMAPPED; PIECE_ENTRIES],
        };
        let d = MapSector::decode(&m.encode().unwrap()).unwrap();
        assert_eq!(d.prev, None);
        assert_eq!(d.bypass, None);
        assert_eq!(d.entries.len(), PIECE_ENTRIES);
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut m = sample();
        m.entries = vec![0; PIECE_ENTRIES + 1];
        assert!(m.encode().is_err());
    }

    #[test]
    fn corruption_is_detected() {
        let m = sample();
        let mut buf = m.encode().unwrap();
        buf[100] ^= 0xFF;
        assert!(MapSector::decode(&buf).is_none());
    }

    #[test]
    fn arbitrary_data_is_not_a_map_sector() {
        assert!(MapSector::decode(&[0u8; PIECE_BYTES]).is_none());
        assert!(MapSector::decode(&[0xAAu8; PIECE_BYTES]).is_none());
        assert!(MapSector::decode(&[0u8; 100]).is_none());
        assert!(MapSector::decode(&[0u8; 8 * SECTOR_BYTES]).is_none());
    }

    #[test]
    fn capacity_matches_paper_overhead() {
        // 110 4-byte entries per sector-sized piece; the 23 MB simulated
        // disk needs ~55 pieces.
        assert_eq!(PIECE_ENTRIES, 110);
        assert_eq!(piece_capacity(8 * SECTOR_BYTES), 1006);
    }

    #[test]
    fn flags_operations() {
        let f = MapFlags::TXN_PART.union(MapFlags::TXN_COMMIT);
        assert!(f.contains(MapFlags::TXN_PART));
        assert!(f.contains(MapFlags::TXN_COMMIT));
        assert!(!MapFlags::EMPTY.contains(MapFlags::TXN_PART));
    }
}
