#![warn(missing_docs)]
//! # vlog-core — the virtual log and the Virtual Log Disk
//!
//! This crate implements the primary contribution of *Virtual Log Based
//! File Systems for a Programmable Disk* (Wang, Anderson, Patterson,
//! OSDI 1999):
//!
//! * **Eager writing** ([`alloc`]): small synchronous writes complete by
//!   landing on a free sector near the current head position, chosen with
//!   exact mechanical knowledge — the premise of a file system running on
//!   the drive's embedded processor.
//! * **The virtual log** ([`log`], [`mapsector`]): a log of indirection-map
//!   pieces whose entries are *not* physically contiguous. Entries chain
//!   backward; overwrites turn the chain into a tree whose bypass branches
//!   let obsolete sectors be recycled without copying live data (paper
//!   Figure 3).
//! * **Fast recovery** ([`recovery`], [`tail`]): boot from a checksummed
//!   tail record written by the firmware power-down sequence; fall back to
//!   scanning for self-identifying entries when power-down failed. Atomic
//!   multi-block transactions ride the same mechanism.
//! * **Idle-time compaction** ([`compact`]): track-granularity
//!   hole-plugging that regenerates empty tracks, keeping eager writes fast
//!   at high utilisation.
//! * **The VLD** ([`vld`]): all of the above behind an unmodified
//!   block-device interface, so stock file systems get the benefit.
//!
//! ```
//! use disksim::{BlockDevice, DiskSpec, SimClock};
//! use vlog_core::{Vld, VldConfig};
//!
//! let mut vld = Vld::format(DiskSpec::st19101_sim(), SimClock::new(), VldConfig::default());
//! let block = vec![7u8; vld.block_size()];
//! let t = vld.write_block(123, &block).unwrap();
//! // A small synchronous write costs far less than a half rotation (3 ms).
//! assert!(t.total_ms() < 3.0);
//! ```

pub mod alloc;
pub mod audit;
pub mod checkpoint;
pub mod checksum;
pub mod compact;
pub mod freemap;
pub mod log;
pub mod mapsector;
pub mod piecetable;
pub mod recovery;
pub mod tail;
pub mod vld;
pub mod vlfs;

pub use alloc::{alloc_mode, AllocConfig, AllocMode, AllocatorState, Candidate, EagerAllocator};
pub use checkpoint::{Checkpoint, CheckpointRegion};
pub use compact::{CompactStats, Compactor, CompactorConfig, CompactorState, VictimPolicy};
pub use freemap::{FreeMap, Frontier, FrontierTrack};
pub use log::{PieceLoc, VirtualLog, VlogSnapshot, VlogStats, BLOCK_BYTES, BLOCK_SECTORS};
pub use mapsector::{MapFlags, MapSector, TxnInfo, PIECE_ENTRIES, UNMAPPED};
pub use piecetable::PieceTable;
pub use recovery::RecoveryReport;
pub use tail::{TailRecord, FIRMWARE_SECTORS, TAIL_LBA};
pub use vld::{Vld, VldConfig, VldSnapshot};
pub use vlfs::{VlfsInode, VlfsLayer, INODE_DIRECT};
