//! CRC-32 checksums for on-disk structures.
//!
//! The paper protects the firmware tail record with a checksum and relies on
//! "cryptographically signed map entries" for the scan-recovery fallback. A
//! CRC-32 (IEEE polynomial) over the sector payload plays both roles in the
//! simulation: it reliably distinguishes map sectors from arbitrary data and
//! detects torn or stale records.

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    // Build the table at compile time so the hot path is table-driven.
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut buf = vec![0u8; 512];
        buf[100] = 0x55;
        let c0 = crc32(&buf);
        buf[100] ^= 1;
        assert_ne!(crc32(&buf), c0);
    }

    #[test]
    fn zero_sector_checksum_is_stable_and_nonzero_elsewhere() {
        let zeros = vec![0u8; 512];
        let c = crc32(&zeros);
        assert_eq!(c, crc32(&vec![0u8; 512]));
        let ones = vec![0xFFu8; 512];
        assert_ne!(crc32(&ones), c);
    }
}
