//! Internal-consistency audit for the virtual log.
//!
//! Crash-point exploration needs a machine-checkable statement of what a
//! *healthy* virtual log looks like, so that a log rebuilt by recovery at
//! every possible power-cut point can be vetted. [`VirtualLog::check_consistency`]
//! verifies, without mutating anything:
//!
//! * the forward map and the reverse map are mutually consistent (a
//!   bijection over mapped blocks);
//! * every live map piece on disk decodes, and matches the in-memory piece
//!   directory (location, sequence) and the in-memory map (entries);
//! * the newest piece is the log root;
//! * the free map agrees exactly with reachability — every sector is
//!   accounted for: allocated if and only if owned by the firmware area,
//!   the checkpoint region, a mapped data block, a live piece block or a
//!   block awaiting deferred release/recycling.

use crate::log::{PieceLoc, VirtualLog, BLOCK_SECTORS};
use crate::mapsector::{MapSector, PIECE_ENTRIES, UNMAPPED};
use crate::tail::FIRMWARE_SECTORS;
use disksim::SECTOR_BYTES;

/// What a sector is owned by, for the accounting pass.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Owner {
    None,
    Firmware,
    Checkpoint,
    Data(u32),
    Piece(u32),
    PendingRecycle,
    DeferredData,
}

impl Owner {
    fn describe(self) -> String {
        match self {
            Owner::None => "unowned".into(),
            Owner::Firmware => "firmware area".into(),
            Owner::Checkpoint => "checkpoint region".into(),
            Owner::Data(lb) => format!("data block of lb {lb}"),
            Owner::Piece(p) => format!("map piece {p}"),
            Owner::PendingRecycle => "pending-recycle map block".into(),
            Owner::DeferredData => "deferred-release data block".into(),
        }
    }
}

impl VirtualLog {
    /// Audit the log's invariants; returns a human-readable description of
    /// every violation found (empty = consistent). Reads the media via
    /// side-effect-free peeks, so the simulated clock and head do not move.
    pub fn check_consistency(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let cap = |errs: &Vec<String>| errs.len() >= 64;

        // --- map ↔ rmap bijection ---------------------------------------
        for (lb, pb) in self.map.iter().enumerate() {
            if pb == UNMAPPED {
                continue;
            }
            match self.rmap.get(pb as usize) {
                Some(&back) if back as usize == lb => {}
                Some(&back) => errs.push(format!(
                    "map[{lb}] = pb {pb}, but rmap[{pb}] = {back}"
                )),
                None => errs.push(format!("map[{lb}] = pb {pb} beyond device")),
            }
            if cap(&errs) {
                return errs;
            }
        }
        for (pb, &lb) in self.rmap.iter().enumerate() {
            if lb == UNMAPPED {
                continue;
            }
            match self.map.try_get(lb as usize) {
                Some(fwd) if fwd as usize == pb => {}
                Some(fwd) => errs.push(format!(
                    "rmap[{pb}] = lb {lb}, but map[{lb}] = {fwd}"
                )),
                None => errs.push(format!("rmap[{pb}] = lb {lb} beyond capacity")),
            }
            if cap(&errs) {
                return errs;
            }
        }

        // --- on-disk pieces match the directory and the map --------------
        let mut newest: Option<(u32, PieceLoc)> = None;
        for (idx, loc) in self.pieces.iter().enumerate() {
            let Some(loc) = *loc else { continue };
            if newest.is_none_or(|(_, n)| loc.seq > n.seq) {
                newest = Some((idx as u32, loc));
            }
            let mut buf = [0u8; SECTOR_BYTES];
            if self.disk.peek_sectors(loc.lba, &mut buf).is_err() {
                errs.push(format!("piece {idx}: lba {} unreadable", loc.lba));
                continue;
            }
            let Some(sector) = MapSector::decode(&buf) else {
                errs.push(format!(
                    "piece {idx}: sector at lba {} does not decode",
                    loc.lba
                ));
                continue;
            };
            if sector.piece != idx as u32 {
                errs.push(format!(
                    "piece {idx}: on-disk sector names piece {}",
                    sector.piece
                ));
            }
            if sector.seq != loc.seq {
                errs.push(format!(
                    "piece {idx}: directory seq {} vs on-disk seq {}",
                    loc.seq, sector.seq
                ));
            }
            let start = idx * PIECE_ENTRIES;
            for (k, &entry) in sector.entries.iter().enumerate() {
                let want = self.map.try_get(start + k).unwrap_or(UNMAPPED);
                if entry != want {
                    errs.push(format!(
                        "piece {idx} entry {k} (lb {}): on-disk {entry} vs memory {want}",
                        start + k
                    ));
                    break; // one mismatch per piece is enough signal
                }
            }
            if cap(&errs) {
                return errs;
            }
        }

        // --- the newest piece is the root --------------------------------
        match (self.root, newest) {
            (Some((lba, seq)), Some((idx, loc))) => {
                if loc.seq != seq || loc.lba != lba {
                    errs.push(format!(
                        "root is (lba {lba}, seq {seq}) but newest piece {idx} \
                         is (lba {}, seq {})",
                        loc.lba, loc.seq
                    ));
                }
            }
            (Some((lba, seq)), None) => errs.push(format!(
                "root is (lba {lba}, seq {seq}) but no piece is live"
            )),
            (None, Some((idx, _))) => {
                errs.push(format!("no root, but piece {idx} is live"))
            }
            (None, None) => {}
        }

        // --- free map agrees with reachability ---------------------------
        let g = &self.disk.spec().geometry;
        let total = g.total_sectors();
        let mut owner = vec![Owner::None; total as usize];
        let claim = |owner: &mut Vec<Owner>,
                         errs: &mut Vec<String>,
                         lba: u64,
                         count: u64,
                         who: Owner| {
            for s in lba..lba + count {
                if s >= total {
                    errs.push(format!("{} claims sector {s} beyond device", who.describe()));
                    return;
                }
                let prev = owner[s as usize];
                if prev != Owner::None {
                    errs.push(format!(
                        "sector {s} claimed by both {} and {}",
                        prev.describe(),
                        who.describe()
                    ));
                    return;
                }
                owner[s as usize] = who;
            }
        };
        claim(&mut owner, &mut errs, 0, FIRMWARE_SECTORS, Owner::Firmware);
        claim(
            &mut owner,
            &mut errs,
            self.ckpt_region.slot_a,
            self.ckpt_region.end() - self.ckpt_region.slot_a,
            Owner::Checkpoint,
        );
        let bs = BLOCK_SECTORS as u64;
        for (lb, pb) in self.map.iter().enumerate() {
            if pb != UNMAPPED {
                claim(&mut owner, &mut errs, pb as u64 * bs, bs, Owner::Data(lb as u32));
            }
        }
        for (idx, loc) in self.pieces.iter().enumerate() {
            if let Some(loc) = loc {
                claim(&mut owner, &mut errs, loc.lba, bs, Owner::Piece(idx as u32));
            }
        }
        for &lba in &self.pending_recycle {
            claim(&mut owner, &mut errs, lba, bs, Owner::PendingRecycle);
        }
        for &pb in &self.deferred_blocks {
            claim(&mut owner, &mut errs, pb as u64 * bs, bs, Owner::DeferredData);
        }
        if cap(&errs) {
            return errs;
        }
        for s in 0..total {
            let p = g.lba_to_phys(s).expect("sector within geometry");
            let free = self.free.is_free(p.cyl, p.track, p.sector);
            let owned = owner[s as usize] != Owner::None;
            if free && owned {
                errs.push(format!(
                    "sector {s} is owned ({}) but marked free",
                    owner[s as usize].describe()
                ));
            } else if !free && !owned {
                errs.push(format!("sector {s} is allocated but unreachable"));
            }
            if cap(&errs) {
                return errs;
            }
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocConfig;
    use crate::log::BLOCK_BYTES;
    use disksim::{Disk, DiskSpec, SimClock};

    fn fresh() -> VirtualLog {
        let mut spec = DiskSpec::hp97560_sim();
        spec.command_overhead_ns = 0;
        VirtualLog::format(Disk::new(spec, SimClock::new()), AllocConfig::default())
    }

    #[test]
    fn fresh_and_busy_logs_are_consistent() {
        let v = fresh();
        assert_eq!(v.check_consistency(), Vec::<String>::new());
        let mut v = fresh();
        for lb in 0..200u64 {
            v.write(lb, &vec![lb as u8; BLOCK_BYTES]).unwrap();
        }
        for lb in (0..200u64).step_by(3) {
            v.write(lb, &vec![7u8; BLOCK_BYTES]).unwrap();
        }
        for lb in (0..200u64).step_by(7) {
            v.trim(lb).unwrap();
        }
        v.checkpoint().unwrap();
        assert_eq!(v.check_consistency(), Vec::<String>::new());
    }

    #[test]
    fn audit_detects_broken_bijection() {
        let mut v = fresh();
        v.write(0, &vec![1u8; BLOCK_BYTES]).unwrap();
        let pb = v.translate(0).unwrap();
        v.rmap[pb as usize] = 12345;
        let errs = v.check_consistency();
        assert!(!errs.is_empty());
        assert!(errs.iter().any(|e| e.contains("rmap")), "{errs:?}");
    }

    #[test]
    fn audit_detects_freemap_leak() {
        let mut v = fresh();
        v.write(0, &vec![1u8; BLOCK_BYTES]).unwrap();
        // Allocate an unowned sector behind the log's back.
        let g = v.disk.spec().geometry.clone();
        let total = g.total_sectors();
        let p = g.lba_to_phys(total - 1).unwrap();
        if v.free.is_free(p.cyl, p.track, p.sector) {
            v.free.allocate(p.cyl, p.track, p.sector, 1).unwrap();
        }
        let errs = v.check_consistency();
        assert!(
            errs.iter().any(|e| e.contains("unreachable")),
            "{errs:?}"
        );
    }
}
