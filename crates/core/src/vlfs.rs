//! VLFS: the log-structured file system *integrated* with the virtual log
//! (§3.3, Figure 4).
//!
//! The paper designs (but does not implement) a variant of LFS in which
//! data blocks, inode blocks, and inode-map entries are all eager-written,
//! and **only the inode map belongs to the virtual log**: "this is
//! essentially adding a level of indirection to the indirection map. The
//! advantage is that the inode map, which is the sole content of the
//! virtual log, is now compact enough to be stored in memory; it also
//! reduces the number of I/O's needed to maintain the indirection map
//! because VLFS simply takes advantage of the existing indirection data
//! structures in the file system."
//!
//! Here the design is realised as a library layer:
//!
//! * data blocks are raw eager writes ([`VirtualLog::write_raw`]) whose
//!   addresses live in inodes, not in the map;
//! * inode blocks are eager-written through the virtual log's indirection
//!   map, keyed by inode number — so the map has one entry per *inode*,
//!   not per block (the §3.3 compactness win);
//! * a write commits by appending the inode-map piece: data first, inode
//!   second, map last — a crash at any point rolls back to the previous
//!   consistent inode.
//!
//! Recovery recovers the virtual log (tail record / checkpoint / scan as
//! usual), then walks the recovered inodes to re-register their data
//! blocks in the free map; unreferenced eager writes from a torn update
//! are reclaimed automatically.

use crate::alloc::AllocConfig;
use crate::log::{VirtualLog, BLOCK_BYTES};
use crate::mapsector::UNMAPPED;
use crate::recovery::RecoveryReport;
use disksim::{Disk, DiskError, Result, ServiceTime};

/// Direct block pointers per inode (one 4 KB inode block).
pub const INODE_DIRECT: usize = (BLOCK_BYTES - 16) / 4;

/// An in-memory inode: file size plus direct pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VlfsInode {
    /// File size in bytes.
    pub size: u64,
    /// Physical block of each file block ([`UNMAPPED`] = hole).
    pub direct: Vec<u32>,
}

impl VlfsInode {
    fn empty() -> Self {
        Self {
            size: 0,
            direct: vec![UNMAPPED; INODE_DIRECT],
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_BYTES];
        b[0..8].copy_from_slice(&self.size.to_le_bytes());
        b[8..12].copy_from_slice(&0x564C_4653u32.to_le_bytes()); // "VLFS"
        for (i, d) in self.direct.iter().enumerate() {
            let o = 16 + i * 4;
            b[o..o + 4].copy_from_slice(&d.to_le_bytes());
        }
        b
    }

    fn decode(buf: &[u8]) -> Result<VlfsInode> {
        if buf.len() != BLOCK_BYTES
            || u32::from_le_bytes(buf[8..12].try_into().expect("slice")) != 0x564C_4653
        {
            return Err(DiskError::Corrupt("VLFS inode"));
        }
        let size = u64::from_le_bytes(buf[0..8].try_into().expect("slice"));
        let mut direct = Vec::with_capacity(INODE_DIRECT);
        for i in 0..INODE_DIRECT {
            let o = 16 + i * 4;
            direct.push(u32::from_le_bytes(buf[o..o + 4].try_into().expect("slice")));
        }
        Ok(VlfsInode { size, direct })
    }

    /// Number of data blocks the file spans.
    pub fn blocks(&self) -> u64 {
        self.size.div_ceil(BLOCK_BYTES as u64)
    }
}

/// The inode-map-only virtual-log file layer of §3.3.
#[derive(Debug)]
pub struct VlfsLayer {
    log: VirtualLog,
    n_inodes: u64,
    /// In-memory inode cache ("compact enough to be stored in memory").
    inodes: Vec<Option<VlfsInode>>,
}

impl VlfsLayer {
    /// Format a fresh layer with `n_inodes` inodes on `disk`.
    pub fn format(disk: Disk, alloc_cfg: AllocConfig, n_inodes: u64) -> VlfsLayer {
        let log = VirtualLog::format(disk, alloc_cfg);
        let n_inodes = n_inodes.min(log.num_blocks());
        VlfsLayer {
            log,
            n_inodes,
            inodes: vec![None; n_inodes as usize],
        }
    }

    /// Recover a layer after a crash: recover the virtual log, then walk
    /// every live inode to re-register its data blocks.
    pub fn recover(
        disk: Disk,
        alloc_cfg: AllocConfig,
        n_inodes: u64,
    ) -> Result<(VlfsLayer, RecoveryReport)> {
        let (mut log, report) = VirtualLog::recover(disk, alloc_cfg)?;
        let n_inodes = n_inodes.min(log.num_blocks());
        let mut inodes = vec![None; n_inodes as usize];
        for ino in 0..n_inodes {
            if log.translate(ino).is_none() {
                continue;
            }
            let mut buf = vec![0u8; BLOCK_BYTES];
            log.read(ino, &mut buf)?;
            let inode = VlfsInode::decode(&buf)?;
            for &pb in inode.direct.iter().filter(|&&pb| pb != UNMAPPED) {
                log.reserve_external_block(pb)?;
            }
            inodes[ino as usize] = Some(inode);
        }
        Ok((
            VlfsLayer {
                log,
                n_inodes,
                inodes,
            },
            report,
        ))
    }

    /// Number of inodes.
    pub fn n_inodes(&self) -> u64 {
        self.n_inodes
    }

    /// The underlying virtual log.
    pub fn log(&self) -> &VirtualLog {
        &self.log
    }

    /// Simulate a crash, yielding the raw disk.
    pub fn crash(self) -> Disk {
        self.log.crash()
    }

    /// Orderly shutdown (writes the tail record for fast recovery).
    pub fn shutdown(&mut self) -> Result<ServiceTime> {
        self.log.shutdown()
    }

    fn check_ino(&self, ino: u64) -> Result<()> {
        if ino >= self.n_inodes {
            return Err(DiskError::OutOfRange {
                addr: ino,
                limit: self.n_inodes,
            });
        }
        Ok(())
    }

    /// Allocate an inode (caller picks a free number).
    pub fn create(&mut self, ino: u64) -> Result<ServiceTime> {
        self.check_ino(ino)?;
        if self.inodes[ino as usize].is_some() {
            return Err(DiskError::Unsupported("inode already exists"));
        }
        let inode = VlfsInode::empty();
        let t = self.log.write(ino, &inode.encode())?;
        self.inodes[ino as usize] = Some(inode);
        Ok(t)
    }

    /// Does the inode exist?
    pub fn exists(&self, ino: u64) -> bool {
        (ino < self.n_inodes) && self.inodes[ino as usize].is_some()
    }

    /// File size of an inode.
    pub fn size(&self, ino: u64) -> Result<u64> {
        self.check_ino(ino)?;
        self.inodes[ino as usize]
            .as_ref()
            .map(|i| i.size)
            .ok_or(DiskError::Unsupported("no such inode"))
    }

    /// Write one 4 KB file block. This is the §3.3 write path: eager data
    /// write (raw), then the updated inode block, committed by the
    /// inode-map append — three eager writes, one commit point.
    pub fn write_block(&mut self, ino: u64, file_block: u64, data: &[u8]) -> Result<ServiceTime> {
        self.check_ino(ino)?;
        if file_block >= INODE_DIRECT as u64 {
            return Err(DiskError::OutOfRange {
                addr: file_block,
                limit: INODE_DIRECT as u64,
            });
        }
        let mut inode = self.inodes[ino as usize]
            .clone()
            .ok_or(DiskError::Unsupported("no such inode"))?;
        let (new_pb, mut t) = self.log.write_raw(data)?;
        let old_pb = inode.direct[file_block as usize];
        inode.direct[file_block as usize] = new_pb;
        inode.size = inode.size.max((file_block + 1) * BLOCK_BYTES as u64);
        // Commit: the inode goes through the virtual log's map.
        t += self.log.write(ino, &inode.encode())?;
        if old_pb != UNMAPPED {
            self.log.free_raw(old_pb)?;
        }
        self.inodes[ino as usize] = Some(inode);
        Ok(t)
    }

    /// Read one file block (holes read as zeros).
    pub fn read_block(&mut self, ino: u64, file_block: u64, out: &mut [u8]) -> Result<ServiceTime> {
        self.check_ino(ino)?;
        let inode = self.inodes[ino as usize]
            .as_ref()
            .ok_or(DiskError::Unsupported("no such inode"))?;
        match inode.direct.get(file_block as usize) {
            Some(&pb) if pb != UNMAPPED => self.log.read_raw(pb, out),
            _ => {
                out.fill(0);
                Ok(ServiceTime::ZERO)
            }
        }
    }

    /// Delete an inode and free all of its blocks.
    pub fn delete(&mut self, ino: u64) -> Result<ServiceTime> {
        self.check_ino(ino)?;
        let inode = self.inodes[ino as usize]
            .take()
            .ok_or(DiskError::Unsupported("no such inode"))?;
        for &pb in inode.direct.iter().filter(|&&pb| pb != UNMAPPED) {
            self.log.free_raw(pb)?;
        }
        self.log.trim(ino)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::{DiskSpec, SimClock};

    fn fresh() -> VlfsLayer {
        let mut spec = DiskSpec::st19101_sim();
        spec.command_overhead_ns = 0;
        VlfsLayer::format(
            Disk::new(spec, SimClock::new()),
            AllocConfig::default(),
            256,
        )
    }

    fn blk(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_BYTES]
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut v = fresh();
        v.create(3).unwrap();
        v.write_block(3, 0, &blk(7)).unwrap();
        v.write_block(3, 5, &blk(9)).unwrap();
        assert_eq!(v.size(3).unwrap(), 6 * BLOCK_BYTES as u64);
        let mut out = blk(0);
        v.read_block(3, 0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 7));
        v.read_block(3, 5, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 9));
        // Hole.
        v.read_block(3, 2, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn map_traffic_is_per_inode_not_per_block() {
        // The §3.3 win: writing many blocks of one file touches the
        // indirection map once per write (the inode's entry), and the map
        // itself stays one-entry-per-inode small.
        let mut v = fresh();
        v.create(0).unwrap();
        let before = v.log().stats().map_writes;
        for i in 0..20 {
            v.write_block(0, i, &blk(i as u8)).unwrap();
        }
        let appends = v.log().stats().map_writes - before;
        assert_eq!(appends, 20, "one commit per write");
        // Only one map entry is live for this whole file.
        assert!(v.log().translate(0).is_some());
        assert_eq!(v.log().translate(1), None);
    }

    #[test]
    fn overwrite_reuses_space() {
        let mut v = fresh();
        v.create(1).unwrap();
        v.write_block(1, 0, &blk(1)).unwrap();
        let free1 = v.log().free_map().free_sectors();
        for pass in 2..10u8 {
            v.write_block(1, 0, &blk(pass)).unwrap();
        }
        // Space use is steady apart from pending map blocks awaiting a
        // checkpoint.
        let drift = free1.saturating_sub(v.log().free_map().free_sectors());
        assert!(
            drift <= 8 * (v.log().pending_recycle_len() as u64 + 2),
            "leak: {drift}"
        );
    }

    #[test]
    fn crash_recovery_restores_files_and_space() {
        let mut v = fresh();
        for ino in 0..10u64 {
            v.create(ino).unwrap();
            for fb in 0..4u64 {
                v.write_block(ino, fb, &blk((ino * 4 + fb) as u8)).unwrap();
            }
        }
        let free_before = v.log().free_map().free_sectors();
        let disk = v.crash();
        let (mut v, report) = VlfsLayer::recover(disk, AllocConfig::default(), 256).unwrap();
        assert!(report.pieces_recovered > 0);
        for ino in 0..10u64 {
            assert!(v.exists(ino));
            for fb in 0..4u64 {
                let mut out = blk(0);
                v.read_block(ino, fb, &mut out).unwrap();
                assert!(
                    out.iter().all(|&b| b == (ino * 4 + fb) as u8),
                    "ino {ino} block {fb}"
                );
            }
        }
        // Data blocks were re-registered: free space is consistent (within
        // the checkpoint-pending slack).
        let free_after = v.log().free_map().free_sectors();
        assert!(
            free_after.abs_diff(free_before) <= 512,
            "free space drifted: {free_before} -> {free_after}"
        );
        // And new writes don't corrupt old files (allocator respects the
        // re-registered blocks).
        v.create(100).unwrap();
        for fb in 0..50u64 {
            v.write_block(100, fb % INODE_DIRECT as u64, &blk(0xFF))
                .unwrap();
        }
        let mut out = blk(0);
        v.read_block(0, 0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn torn_update_rolls_back_to_previous_inode() {
        let mut v = fresh();
        v.create(2).unwrap();
        v.write_block(2, 0, &blk(5)).unwrap();
        // Tear: raw data written, inode never committed.
        let (_pb, _) = v.log.write_raw(&blk(6)).unwrap();
        let disk = v.crash();
        let (mut v, _) = VlfsLayer::recover(disk, AllocConfig::default(), 256).unwrap();
        let mut out = blk(0);
        v.read_block(2, 0, &mut out).unwrap();
        assert!(
            out.iter().all(|&b| b == 5),
            "must roll back to committed data"
        );
    }

    #[test]
    fn delete_frees_everything() {
        let mut v = fresh();
        v.create(9).unwrap();
        for fb in 0..8u64 {
            v.write_block(9, fb, &blk(1)).unwrap();
        }
        v.delete(9).unwrap();
        assert!(!v.exists(9));
        assert!(v.read_block(9, 0, &mut blk(0)).is_err());
        // Deleting again fails cleanly.
        assert!(v.delete(9).is_err());
    }

    #[test]
    fn bounds_are_enforced() {
        let mut v = fresh();
        assert!(v.create(10_000).is_err());
        v.create(0).unwrap();
        assert!(v.create(0).is_err(), "double create");
        assert!(v.write_block(0, INODE_DIRECT as u64, &blk(0)).is_err());
        assert!(v.write_block(99, 0, &blk(0)).is_err());
    }

    #[test]
    fn writes_are_eager_fast() {
        let mut v = fresh();
        v.create(0).unwrap();
        let half_rev = v.log().disk().spec().half_rotation_ns();
        // Prime, then measure: data + inode + map, all eager.
        for fb in 0..5u64 {
            v.write_block(0, fb, &blk(1)).unwrap();
        }
        let t = v.write_block(0, 2, &blk(2)).unwrap();
        assert!(
            t.total_ns() < 2 * half_rev,
            "three eager writes beat one update-in-place rotation: {t:?}"
        );
    }
}
