//! The two-level logical→physical translation table.
//!
//! The indirection map is stored as one page per map *piece* — the same
//! granularity at which it is persisted ([`crate::mapsector::MapSector`])
//! — with pages materialised lazily on first write. Lookup is two array
//! indexes (piece, then entry), never a hash probe; a piece whose page was
//! never touched reads as all-[`UNMAPPED`] from a shared zero page, so a
//! freshly formatted multi-gigabyte virtual log allocates no map memory at
//! all. Encoding a piece for the log ([`PieceTable::piece_entries`]) hands
//! back the page slice directly — the borrowed-encode path introduced for
//! the hot allocator loop keeps working without a copy.

use std::sync::Arc;

use crate::mapsector::{PIECE_ENTRIES, UNMAPPED};

/// A page shared by every piece that was never written.
static UNMAPPED_PAGE: [u32; PIECE_ENTRIES] = [UNMAPPED; PIECE_ENTRIES];

/// Logical block → physical block, piece-paged. `UNMAPPED` marks holes.
///
/// Pages sit behind `Arc`, so cloning the table — the snapshot/fork path —
/// copies one pointer per materialised page; the first [`PieceTable::set`]
/// into a page still shared with a snapshot copies that page only
/// (copy-on-write at piece granularity, matching the map-piece unit the
/// log persists).
#[derive(Debug, Clone)]
pub struct PieceTable {
    pages: Vec<Option<Arc<[u32; PIECE_ENTRIES]>>>,
    len: usize,
}

impl PieceTable {
    /// An all-unmapped table covering `num_logical` blocks.
    pub fn new(num_logical: usize) -> Self {
        Self {
            pages: (0..num_logical.div_ceil(PIECE_ENTRIES)).map(|_| None).collect(),
            len: num_logical,
        }
    }

    /// Number of logical blocks covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entry for logical block `lb` (must be `< len`). Two array
    /// indexes; an unmaterialised page reads as [`UNMAPPED`].
    #[inline]
    pub fn get(&self, lb: usize) -> u32 {
        debug_assert!(lb < self.len);
        match &self.pages[lb / PIECE_ENTRIES] {
            Some(page) => page[lb % PIECE_ENTRIES],
            None => UNMAPPED,
        }
    }

    /// The entry for `lb`, or `None` past the end of the table.
    #[inline]
    pub fn try_get(&self, lb: usize) -> Option<u32> {
        (lb < self.len).then(|| self.get(lb))
    }

    /// Set the entry for logical block `lb`, materialising its page (and
    /// un-sharing it first if a snapshot still holds the old copy).
    #[inline]
    pub fn set(&mut self, lb: usize, pb: u32) {
        debug_assert!(lb < self.len);
        let page = self.pages[lb / PIECE_ENTRIES]
            .get_or_insert_with(|| Arc::new([UNMAPPED; PIECE_ENTRIES]));
        Arc::make_mut(page)[lb % PIECE_ENTRIES] = pb;
    }

    /// The entries of `piece`, clamped to the table length (the final
    /// piece may be short). Borrowed straight from the page — this is what
    /// the log's piece-append encodes from.
    pub fn piece_entries(&self, piece: u32) -> &[u32] {
        let start = piece as usize * PIECE_ENTRIES;
        let n = (self.len - start).min(PIECE_ENTRIES);
        match &self.pages[piece as usize] {
            Some(page) => &page[..n],
            None => &UNMAPPED_PAGE[..n],
        }
    }

    /// Every entry in logical-block order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).map(move |lb| self.get(lb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unmapped_and_lazy() {
        let t = PieceTable::new(PIECE_ENTRIES * 3 + 5);
        assert_eq!(t.len(), PIECE_ENTRIES * 3 + 5);
        assert!(!t.is_empty());
        assert_eq!(t.get(0), UNMAPPED);
        assert_eq!(t.get(t.len() - 1), UNMAPPED);
        assert!(t.pages.iter().all(|p| p.is_none()), "no page materialised");
    }

    #[test]
    fn set_get_round_trip_and_page_isolation() {
        let mut t = PieceTable::new(PIECE_ENTRIES * 2);
        t.set(3, 77);
        t.set(PIECE_ENTRIES + 1, 88);
        assert_eq!(t.get(3), 77);
        assert_eq!(t.get(PIECE_ENTRIES + 1), 88);
        assert_eq!(t.get(4), UNMAPPED);
        assert_eq!(t.try_get(PIECE_ENTRIES * 2), None);
        assert_eq!(t.try_get(3), Some(77));
    }

    #[test]
    fn piece_entries_clamp_and_share() {
        let mut t = PieceTable::new(PIECE_ENTRIES + 7);
        assert_eq!(t.piece_entries(0).len(), PIECE_ENTRIES);
        assert_eq!(t.piece_entries(1).len(), 7);
        assert!(t.piece_entries(1).iter().all(|&e| e == UNMAPPED));
        t.set(PIECE_ENTRIES + 2, 5);
        assert_eq!(t.piece_entries(1), &[UNMAPPED, UNMAPPED, 5, UNMAPPED, UNMAPPED, UNMAPPED, UNMAPPED]);
    }

    #[test]
    fn iter_covers_every_block_in_order() {
        let mut t = PieceTable::new(PIECE_ENTRIES + 2);
        t.set(1, 10);
        t.set(PIECE_ENTRIES, 20);
        let v: Vec<u32> = t.iter().collect();
        assert_eq!(v.len(), PIECE_ENTRIES + 2);
        assert_eq!(v[1], 10);
        assert_eq!(v[PIECE_ENTRIES], 20);
        assert_eq!(v[0], UNMAPPED);
    }
}
