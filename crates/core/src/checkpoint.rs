//! Periodic checkpoints of the piece directory (§3.3).
//!
//! "Periodically, we write the entire inode map to the disk contiguously.
//! At recovery time ... [the system] traverses the virtual log backwards
//! from the log tail towards the checkpoint." For the VLD's indirection
//! map the analogue is the *piece directory*: the location and age of every
//! live map piece. Two alternating slots in a fixed region just past the
//! firmware block hold it; recovery uses the newest valid slot and only
//! walks the log for entries younger than it.
//!
//! The checkpoint is also what makes recycling sound: a superseded map
//! sector younger than the last checkpoint stays allocated (on the
//! *pending* list) until the next checkpoint covers it — so the backward
//! chain within the traversal window is always intact, no matter how hot a
//! piece is. Sectors older than the checkpoint are recycled freely; the
//! traversal never descends below the checkpoint sequence.

use crate::checksum::crc32;
use crate::log::PieceLoc;
use crate::mapsector::NO_LBA;
use disksim::SECTOR_BYTES;

/// Magic for a checkpoint slot ("VCKP").
pub const CKPT_MAGIC: u32 = 0x5643_4B50;

const HEADER_BYTES: usize = 32;
const ENTRY_BYTES: usize = 32;

/// Placement of the two alternating checkpoint slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointRegion {
    /// LBA of slot A.
    pub slot_a: u64,
    /// LBA of slot B.
    pub slot_b: u64,
    /// Sectors per slot.
    pub sectors: u64,
}

impl CheckpointRegion {
    /// Region layout for `n_pieces` pieces starting at `start_lba`,
    /// block-aligned slots.
    pub fn layout(start_lba: u64, n_pieces: usize, block_sectors: u64) -> CheckpointRegion {
        let bytes = HEADER_BYTES + n_pieces * ENTRY_BYTES;
        let sectors_raw = (bytes as u64).div_ceil(SECTOR_BYTES as u64);
        let sectors = sectors_raw.div_ceil(block_sectors) * block_sectors;
        CheckpointRegion {
            slot_a: start_lba,
            slot_b: start_lba + sectors,
            sectors,
        }
    }

    /// First LBA past the region.
    pub fn end(&self) -> u64 {
        self.slot_b + self.sectors
    }
}

/// A decoded checkpoint: the piece directory at a moment in log time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Every log entry with `seq <` this value is covered by the directory
    /// below; traversal never descends past it.
    pub seq: u64,
    /// Piece directory (index = piece number).
    pub pieces: Vec<Option<PieceLoc>>,
}

impl Checkpoint {
    /// Serialise into a slot image of exactly `sectors * SECTOR_BYTES`.
    pub fn encode(&self, sectors: u64) -> Vec<u8> {
        let mut buf = vec![0u8; sectors as usize * SECTOR_BYTES];
        buf[0..4].copy_from_slice(&CKPT_MAGIC.to_le_bytes());
        buf[4..6].copy_from_slice(&1u16.to_le_bytes()); // version
        buf[8..12].copy_from_slice(&(self.pieces.len() as u32).to_le_bytes());
        buf[16..24].copy_from_slice(&self.seq.to_le_bytes());
        for (i, p) in self.pieces.iter().enumerate() {
            let o = HEADER_BYTES + i * ENTRY_BYTES;
            let (lba, seq, prev) = match p {
                Some(loc) => (loc.lba, loc.seq, loc.prev),
                None => (NO_LBA, 0, None),
            };
            let (plba, pseq) = prev.unwrap_or((NO_LBA, 0));
            buf[o..o + 8].copy_from_slice(&lba.to_le_bytes());
            buf[o + 8..o + 16].copy_from_slice(&seq.to_le_bytes());
            buf[o + 16..o + 24].copy_from_slice(&plba.to_le_bytes());
            buf[o + 24..o + 32].copy_from_slice(&pseq.to_le_bytes());
        }
        let sum = crc32(&buf);
        buf[12..16].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decode and validate a slot image; `None` if invalid/torn.
    pub fn decode(buf: &[u8]) -> Option<Checkpoint> {
        if buf.len() < HEADER_BYTES {
            return None;
        }
        if u32::from_le_bytes(buf[0..4].try_into().ok()?) != CKPT_MAGIC {
            return None;
        }
        if u16::from_le_bytes(buf[4..6].try_into().ok()?) != 1 {
            return None;
        }
        let stored = u32::from_le_bytes(buf[12..16].try_into().ok()?);
        let mut copy = buf.to_vec();
        copy[12..16].fill(0);
        if crc32(&copy) != stored {
            return None;
        }
        let n = u32::from_le_bytes(buf[8..12].try_into().ok()?) as usize;
        if HEADER_BYTES + n * ENTRY_BYTES > buf.len() {
            return None;
        }
        let seq = u64::from_le_bytes(buf[16..24].try_into().ok()?);
        let mut pieces = Vec::with_capacity(n);
        for i in 0..n {
            let o = HEADER_BYTES + i * ENTRY_BYTES;
            let lba = u64::from_le_bytes(buf[o..o + 8].try_into().ok()?);
            if lba == NO_LBA {
                pieces.push(None);
                continue;
            }
            let pseq = u64::from_le_bytes(buf[o + 8..o + 16].try_into().ok()?);
            let plba = u64::from_le_bytes(buf[o + 16..o + 24].try_into().ok()?);
            let ppseq = u64::from_le_bytes(buf[o + 24..o + 32].try_into().ok()?);
            pieces.push(Some(PieceLoc {
                lba,
                seq: pseq,
                prev: (plba != NO_LBA).then_some((plba, ppseq)),
            }));
        }
        Some(Checkpoint { seq, pieces })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            seq: 99,
            pieces: vec![
                Some(PieceLoc {
                    lba: 800,
                    seq: 42,
                    prev: Some((640, 41)),
                }),
                None,
                Some(PieceLoc {
                    lba: 1600,
                    seq: 77,
                    prev: None,
                }),
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let region = CheckpointRegion::layout(8, c.pieces.len(), 8);
        let img = c.encode(region.sectors);
        assert_eq!(img.len() as u64, region.sectors * SECTOR_BYTES as u64);
        assert_eq!(Checkpoint::decode(&img), Some(c));
    }

    #[test]
    fn corruption_rejected() {
        let c = sample();
        let mut img = c.encode(8);
        img[40] ^= 1;
        assert_eq!(Checkpoint::decode(&img), None);
        assert_eq!(Checkpoint::decode(&[0u8; 512]), None);
    }

    #[test]
    fn region_layout_is_block_aligned_and_disjoint() {
        let r = CheckpointRegion::layout(8, 51, 8);
        assert_eq!(r.slot_a, 8);
        assert_eq!(r.sectors % 8, 0);
        assert!(r.slot_b >= r.slot_a + r.sectors);
        assert_eq!(r.end(), r.slot_b + r.sectors);
        // 51 pieces fit in one 4 KB block per slot.
        assert_eq!(r.sectors, 8);
        // Big directories grow the slots.
        let big = CheckpointRegion::layout(8, 5000, 8);
        assert!(big.sectors > 8);
    }
}
