//! The free-space compactor (§2.3, §4.2).
//!
//! During idle periods the drive can use the "free" bandwidth between head
//! and platter to generate empty tracks: read a victim track, *hole-plug*
//! its live blocks into free space on other (non-empty) tracks, and commit
//! the moves through the virtual log. Unlike the LFS cleaner, which must
//! move whole segments, this works at track granularity and can exploit
//! short idle intervals — the contrast Figures 10 and 11 measure.
//!
//! Live map sectors found on a victim track are relocated by simply
//! re-appending their piece to the log (which frees the old sector by
//! construction).

use crate::log::{VirtualLog, BLOCK_SECTORS};
use crate::mapsector::{MapFlags, UNMAPPED};
use disksim::{Metrics, PhysAddr, Result, SECTOR_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How compaction victims are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Uniformly random among non-empty tracks — what the paper's VLD does
    /// ("currently, we choose compaction targets randomly").
    Random,
    /// The least-utilised non-empty track first (cheapest empty track per
    /// byte moved) — an ablation alternative.
    LeastUtilized,
}

/// Compactor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactorConfig {
    /// Victim selection policy.
    pub policy: VictimPolicy,
    /// Stop once this many completely empty tracks exist.
    pub target_empty_tracks: u32,
    /// RNG seed (runs are deterministic in simulation).
    pub seed: u64,
}

impl Default for CompactorConfig {
    fn default() -> Self {
        Self {
            policy: VictimPolicy::Random,
            target_empty_tracks: 64,
            seed: 0x5EED,
        }
    }
}

/// Counters for compactor activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactStats {
    /// Idle nanoseconds actually consumed by compaction.
    pub consumed_ns: u64,
    /// Victim tracks fully emptied.
    pub tracks_emptied: u64,
    /// Data blocks relocated.
    pub blocks_moved: u64,
    /// Map pieces re-appended to relocate their sectors.
    pub pieces_relocated: u64,
}

/// The idle-time free-space compactor.
#[derive(Debug)]
pub struct Compactor {
    cfg: CompactorConfig,
    rng: StdRng,
    stats: CompactStats,
    /// Metrics handle (disabled by default): rounds, tracks emptied, bytes
    /// moved, and idle time consumed.
    metrics: Metrics,
    /// Victim whose track was partially compacted when the idle budget
    /// expired; the next [`Compactor::run`] resumes it (re-validated
    /// against the current free map) instead of re-picking from scratch.
    pending_victim: Option<(u32, u32)>,
    /// Sectors per track of cylinder 0, cached across runs for the
    /// achievable-target computation (geometry never changes). Zero until
    /// first use.
    spt0: u64,
}

/// Plain-data image of a compactor's mutable state (`Send + Sync`),
/// including the RNG stream position, used by the snapshot/fork engine.
/// The metrics handle is deliberately not captured: a restored compactor
/// starts detached.
#[derive(Debug, Clone)]
pub struct CompactorState {
    cfg: CompactorConfig,
    rng: StdRng,
    stats: CompactStats,
    pending_victim: Option<(u32, u32)>,
    spt0: u64,
}

impl Compactor {
    /// Create a compactor with the given configuration.
    pub fn new(cfg: CompactorConfig) -> Self {
        Self {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: CompactStats::default(),
            metrics: Metrics::disabled(),
            pending_victim: None,
            spt0: 0,
        }
    }

    /// Capture the mutable state for a later [`Compactor::from_state`].
    pub fn state(&self) -> CompactorState {
        CompactorState {
            cfg: self.cfg,
            rng: self.rng.clone(),
            stats: self.stats,
            pending_victim: self.pending_victim,
            spt0: self.spt0,
        }
    }

    /// Rebuild a compactor from captured state (metrics detached). The
    /// restored RNG resumes exactly where the captured stream stopped, so a
    /// fork picks the same victim sequence a continued original would.
    pub fn from_state(state: &CompactorState) -> Self {
        Self {
            cfg: state.cfg,
            rng: state.rng.clone(),
            stats: state.stats,
            metrics: Metrics::disabled(),
            pending_victim: state.pending_victim,
            spt0: state.spt0,
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CompactStats {
        self.stats
    }

    /// Attach a metrics handle (pass `Metrics::disabled()` to detach).
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Run for at most `budget_ns` of simulated time; returns the time
    /// actually consumed. Stops early when the empty-track pool reaches its
    /// target or no suitable victim exists.
    pub fn run(&mut self, vlog: &mut VirtualLog, budget_ns: u64) -> u64 {
        let blocks_before = self.stats.blocks_moved;
        let clock = vlog.disk().clock();
        let start = clock.now();
        let deadline = start + budget_ns;
        // The whole pass is background work: every disk command issued
        // until the span closes (including map appends for moved blocks,
        // which open their own child spans) hangs off this node.
        let spans = vlog.disk().spans().clone();
        let sp = if spans.is_enabled() {
            spans.open(disksim::SpanKind::Compaction, "vld.compact", start)
        } else {
            0
        };
        // The pool can never exceed the free space; chasing a larger target
        // would repack the same data forever.
        if self.spt0 == 0 {
            self.spt0 = vlog.free_map().sectors_per_track(0) as u64;
        }
        let achievable = (vlog.free_map().free_sectors() / self.spt0).saturating_sub(2) as u32;
        let target = self.cfg.target_empty_tracks.min(achievable);
        // Emptying a victim starts with a whole-track read — a seek plus a
        // full rotation — before the per-move deadline checks can engage,
        // so a run may overshoot the deadline by about one track read plus
        // one move. The first track starts on any non-zero budget (short
        // idle intervals are the compactor's reason to exist; callers that
        // must not overdraw hold back a reserve, see `Vld::idle`), but a
        // *second* track needs visible headroom.
        let step_ns = 3 * vlog.disk().spec().half_rotation_ns();
        let mut started = false;
        while clock.now() < deadline && (!started || clock.now() + step_ns <= deadline) {
            if vlog.free_map().empty_tracks() >= target {
                break;
            }
            // Resume the track the previous idle grant left half-compacted,
            // if it still holds live data and hasn't become the fill track.
            let resumed = self
                .pending_victim
                .take()
                .filter(|&(c, t)| Self::victim_eligible(vlog, c, t));
            if resumed.is_some() {
                self.metrics.inc("compact.victims_resumed");
            }
            let Some(victim) = resumed.or_else(|| self.choose_victim(vlog)) else {
                break;
            };
            started = true;
            let outcome = self.compact_track(vlog, victim, deadline);
            vlog.alloc.set_avoid(None);
            match outcome {
                Ok(true) => {
                    self.stats.tracks_emptied += 1;
                    vlog.stats.tracks_emptied += 1;
                    self.metrics.inc("compact.tracks_emptied");
                }
                Ok(false) => {
                    // Out of budget mid-track: carry the victim over to the
                    // next run (the moves already made are committed).
                    self.pending_victim = Some(victim);
                    break;
                }
                Err(_) => break, // no destination space: nothing to gain
            }
        }
        if sp != 0 {
            spans.close(sp, clock.now());
        }
        let consumed = clock.now() - start;
        self.stats.consumed_ns += consumed;
        if self.metrics.is_enabled() && consumed > 0 {
            self.metrics.inc("compact.rounds");
            self.metrics.add("compact.consumed_ns", consumed);
            self.metrics.add(
                "compact.bytes_moved",
                (self.stats.blocks_moved - blocks_before) * crate::log::BLOCK_BYTES as u64,
            );
        }
        consumed
    }

    /// Pick a victim track containing live data (or live map sectors), per
    /// policy. Never picks the allocator's current fill track.
    ///
    /// `Random` rejection-samples eligible tracks exactly as before (O(1)
    /// on any non-sparse disk); its sparse-disk fallback and the whole
    /// `LeastUtilized` policy go through the free map's utilization index —
    /// O(1) amortized instead of a `cylinders × tracks` scan per round.
    /// `VLFS_REFERENCE=1` (and the equivalence tests) route the pick
    /// through [`reference::least_utilized_rescan`] instead.
    fn choose_victim(&mut self, vlog: &VirtualLog) -> Option<(u32, u32)> {
        let free = vlog.free_map();
        let cyls = free.cylinders();
        let tracks = free.tracks_in_cylinder();
        if self.cfg.policy == VictimPolicy::Random {
            for _ in 0..256 {
                let c = self.rng.gen_range(0..cyls);
                let t = self.rng.gen_range(0..tracks);
                if Self::victim_eligible(vlog, c, t) {
                    return Some((c, t));
                }
            }
            // Sparse disk: fall back to the deterministic indexed pick.
        }
        if disksim::reference_mode() {
            reference::least_utilized_rescan(vlog)
        } else {
            self.metrics.inc("compact.victim_index_picks");
            let fill = vlog.alloc.fill_track();
            free.least_utilized_nonempty(|c, t| {
                Some((c, t)) == fill || Self::is_firmware_track(c, t)
            })
        }
    }

    /// Is (`cyl`, `track`) a permissible victim right now: holds live data,
    /// is not the allocator's fill track, and is not the firmware track.
    fn victim_eligible(vlog: &VirtualLog, c: u32, t: u32) -> bool {
        let free = vlog.free_map();
        let ti = free.track_index(c, t);
        let used = free.sectors_per_track(ti) - free.free_in_track(c, t);
        used > 0 && Some((c, t)) != vlog.alloc.fill_track() && !Self::is_firmware_track(c, t)
    }

    fn is_firmware_track(cyl: u32, track: u32) -> bool {
        // The firmware area occupies the first sectors of (0, 0); that track
        // can never be emptied, so don't waste idle time on it.
        cyl == 0 && track == 0
    }

    /// Empty one victim track. Returns Ok(true) if the track was fully
    /// emptied, Ok(false) if the budget expired first (partial progress is
    /// kept — every completed move is committed).
    fn compact_track(
        &mut self,
        vlog: &mut VirtualLog,
        (vc, vt): (u32, u32),
        deadline: u64,
    ) -> Result<bool> {
        let clock = vlog.disk().clock();
        let (spt, start_lba) = {
            let g = &vlog.disk().spec().geometry;
            (g.sectors_per_track(vc)?, g.track_start_lba(vc, vt)?)
        };
        // Nothing — data or map sectors — may land on the victim while it
        // is being emptied, or it never empties.
        vlog.alloc.set_avoid(Some((vc, vt)));

        // One whole-track read: the compactor works at track granularity.
        let mut track_buf = vec![0u8; spt as usize * SECTOR_BYTES];
        vlog.disk_mut().read_sectors(start_lba, &mut track_buf)?;

        // Collect the live data blocks on this track.
        let mut moves: Vec<(u32, u64, usize)> = Vec::new(); // (old_pb, lb, buf offset)
        for slot in 0..spt / BLOCK_SECTORS {
            let sector = slot * BLOCK_SECTORS;
            let pb = ((start_lba + sector as u64) / BLOCK_SECTORS as u64) as u32;
            let lb = vlog.rmap_lookup(pb);
            if lb != UNMAPPED {
                moves.push((pb, lb as u64, sector as usize * SECTOR_BYTES));
            }
        }

        // Group the moves by map piece so each piece commits exactly once.
        moves.sort_by_key(|&(_, lb, _)| vlog.piece_of(lb));

        // Hole-plug the data blocks elsewhere, committing per map piece.
        let mut batch: Vec<(u64, usize)> = Vec::new();
        let mut current_piece: Option<u32> = None;
        let flush =
            |vlog: &mut VirtualLog, batch: &mut Vec<(u64, usize)>, piece: u32| -> Result<()> {
                if batch.is_empty() {
                    return Ok(());
                }
                vlog.append_piece(piece, MapFlags::EMPTY, None)?;
                vlog.release_superseded();
                batch.clear();
                Ok(())
            };
        for (old_pb, lb, off) in moves {
            if clock.now() >= deadline {
                if let Some(p) = current_piece {
                    flush(vlog, &mut batch, p)?;
                }
                vlog.alloc.set_avoid(None);
                return Ok(false);
            }
            let piece = vlog.piece_of(lb);
            if let Some(cur) = current_piece {
                if cur != piece {
                    flush(vlog, &mut batch, cur)?;
                }
            }
            current_piece = Some(piece);
            let data = &track_buf[off..off + BLOCK_SECTORS as usize * SECTOR_BYTES];
            vlog.relocate_block(lb, old_pb, data, (vc, vt))?;
            self.stats.blocks_moved += 1;
            batch.push((lb, off));
        }
        if let Some(p) = current_piece {
            flush(vlog, &mut batch, p)?;
        }

        // Relocate any live map sectors still on the victim track by
        // re-appending their pieces; a checkpoint then releases the
        // superseded blocks (they are pending until one covers them).
        let resident: Vec<u32> = vlog.pieces_on_track(vc, vt, &vlog.disk().spec().geometry);
        let relocated = !resident.is_empty();
        for piece in resident {
            if clock.now() >= deadline {
                vlog.alloc.set_avoid(None);
                return Ok(false);
            }
            vlog.append_piece(piece, MapFlags::EMPTY, None)?;
            vlog.release_superseded();
            self.stats.pieces_relocated += 1;
        }
        if relocated || vlog.pending_recycle_on_track(vc, vt, &vlog.disk().spec().geometry) {
            vlog.checkpoint()?;
        }
        vlog.alloc.set_avoid(None);
        Ok(vlog.free_map().free_in_track(vc, vt) == spt)
    }
}

/// The pre-index full-rescan victim picker, retained as the oracle the
/// utilization-indexed pick is verified against (same pattern as
/// `alloc::reference`): it walks every `(cyl, track)` pair and takes the
/// first minimum of the f64 utilization. `VLFS_REFERENCE=1` routes
/// [`Compactor`] victim selection through here so CI can diff figure
/// output byte-for-byte between the two implementations.
pub mod reference {
    use crate::log::VirtualLog;

    /// Least-utilized eligible track by exhaustive scan in `(cyl, track)`
    /// order, first minimum wins — exactly the pre-index `LeastUtilized`
    /// pick (and the sparse-disk fallback of `Random`).
    pub fn least_utilized_rescan(vlog: &VirtualLog) -> Option<(u32, u32)> {
        let free = vlog.free_map();
        let fill = vlog.alloc.fill_track();
        let cyls = free.cylinders();
        let tracks = free.tracks_in_cylinder();
        (0..cyls)
            .flat_map(|c| (0..tracks).map(move |t| (c, t)))
            .filter(|&(c, t)| {
                let ti = free.track_index(c, t);
                let used = free.sectors_per_track(ti) - free.free_in_track(c, t);
                used > 0 && Some((c, t)) != fill && !(c == 0 && t == 0)
            })
            .min_by(|&(c1, t1), &(c2, t2)| {
                free.track_utilization(c1, t1)
                    .partial_cmp(&free.track_utilization(c2, t2))
                    .expect("utilisations are finite")
            })
    }
}

impl VirtualLog {
    /// Reverse-map lookup: which logical block lives in physical block `pb`.
    pub(crate) fn rmap_lookup(&self, pb: u32) -> u32 {
        self.rmap[pb as usize]
    }

    /// Pieces whose live map sector sits on the given track.
    pub(crate) fn pieces_on_track(&self, cyl: u32, track: u32, g: &disksim::Geometry) -> Vec<u32> {
        self.pieces
            .iter()
            .enumerate()
            .filter_map(|(i, loc)| {
                let loc = loc.as_ref()?;
                let p = g.lba_to_phys(loc.lba).ok()?;
                (p.cyl == cyl && p.track == track).then_some(i as u32)
            })
            .collect()
    }

    /// Move one live data block off a victim track into a hole elsewhere
    /// (never back onto the victim, and preferring non-empty tracks so the
    /// compactor's output pool isn't consumed by its own input).
    pub(crate) fn relocate_block(
        &mut self,
        lb: u64,
        old_pb: u32,
        data: &[u8],
        victim: (u32, u32),
    ) -> Result<()> {
        let cand = self
            .find_plug_destination(victim)
            .ok_or(disksim::DiskError::NoSpace)?;
        let lba = self.disk.phys_to_lba(PhysAddr {
            cyl: cand.0,
            track: cand.1,
            sector: cand.2,
        })?;
        self.disk.write_sectors(lba, data)?;
        self.free.allocate(cand.0, cand.1, cand.2, BLOCK_SECTORS)?;
        let new_pb = (lba / BLOCK_SECTORS as u64) as u32;
        self.map.set(lb as usize, new_pb);
        self.rmap[new_pb as usize] = lb as u32;
        // The old copy is dead the moment the covering map piece commits;
        // defer its release exactly like an overwrite.
        self.defer_block_release(old_pb);
        self.stats.blocks_moved += 1;
        Ok(())
    }

    /// A hole-plugging destination: cheapest free aligned block on a
    /// *non-empty*, non-victim track, widening outward from the head; empty
    /// tracks are used only as a last resort.
    fn find_plug_destination(&self, victim: (u32, u32)) -> Option<(u32, u32, u32)> {
        let head = self.disk.head();
        let cyls = self.free.cylinders();
        let tracks = self.free.tracks_in_cylinder();
        let mut last_resort: Option<(u32, u32, u32)> = None;
        for d in 0..cyls {
            for cyl in [
                head.cyl.checked_sub(d),
                (head.cyl + d < cyls).then_some(head.cyl + d),
            ]
            .into_iter()
            .flatten()
            {
                let mut best: Option<(u64, (u32, u32, u32))> = None;
                for t in 0..tracks {
                    if (cyl, t) == victim {
                        continue;
                    }
                    let Ok(arrival) = self.disk.arrival_sector(cyl, t) else {
                        continue;
                    };
                    let Some(sector) = self.free.free_aligned_from(cyl, t, arrival, BLOCK_SECTORS)
                    else {
                        continue;
                    };
                    let ti = self.free.track_index(cyl, t);
                    let empty = self.free.free_in_track(cyl, t) == self.free.sectors_per_track(ti);
                    if empty {
                        if last_resort.is_none() {
                            last_resort = Some((cyl, t, sector));
                        }
                        continue;
                    }
                    let Ok(cost) = self.disk.position_cost(cyl, t, sector) else {
                        continue;
                    };
                    let cost = cost.total_ns();
                    if best.map(|(c, _)| cost < c).unwrap_or(true) {
                        best = Some((cost, (cyl, t, sector)));
                    }
                }
                if let Some((_, found)) = best {
                    return Some(found);
                }
                if d == 0 {
                    break;
                }
            }
        }
        last_resort
    }

    /// Queue a physical block for release at the next commit point.
    pub(crate) fn defer_block_release(&mut self, pb: u32) {
        self.deferred_blocks.push(pb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocConfig;
    use disksim::{Disk, DiskSpec, SimClock};

    fn fresh() -> VirtualLog {
        let mut spec = DiskSpec::hp97560_sim();
        spec.command_overhead_ns = 0;
        VirtualLog::format(Disk::new(spec, SimClock::new()), AllocConfig::default())
    }

    fn fill_fraction(v: &mut VirtualLog, frac: f64) -> u64 {
        let n = (v.num_blocks() as f64 * frac) as u64;
        let buf = vec![0x11u8; crate::log::BLOCK_BYTES];
        for lb in 0..n {
            v.write(lb, &buf).unwrap();
        }
        n
    }

    #[test]
    fn compaction_creates_empty_tracks() {
        let mut v = fresh();
        // Fill 60%, then punch holes by overwriting a scattered subset —
        // overwrites free the old locations, leaving holey tracks.
        let n = fill_fraction(&mut v, 0.6);
        let buf = vec![0x22u8; crate::log::BLOCK_BYTES];
        for lb in (0..n).step_by(3) {
            v.write(lb, &buf).unwrap();
        }
        let before = v.free_map().empty_tracks();
        let mut c = Compactor::new(CompactorConfig {
            target_empty_tracks: before + 4,
            ..CompactorConfig::default()
        });
        let consumed = c.run(&mut v, 60_000_000_000); // generous budget
        assert!(consumed > 0);
        assert!(
            v.free_map().empty_tracks() >= before + 4,
            "empty tracks {} -> {}",
            before,
            v.free_map().empty_tracks()
        );
        assert!(c.stats().blocks_moved > 0);
    }

    #[test]
    fn compaction_preserves_data() {
        let mut v = fresh();
        let n = 200u64;
        for lb in 0..n {
            v.write(lb, &vec![lb as u8; crate::log::BLOCK_BYTES])
                .unwrap();
        }
        // Punch holes.
        for lb in (0..n).step_by(2) {
            v.write(lb, &vec![(lb as u8) ^ 0xFF; crate::log::BLOCK_BYTES])
                .unwrap();
        }
        let mut c = Compactor::new(CompactorConfig::default());
        c.run(&mut v, 30_000_000_000);
        for lb in 0..n {
            let mut buf = vec![0u8; crate::log::BLOCK_BYTES];
            v.read(lb, &mut buf).unwrap();
            let want = if lb % 2 == 0 {
                (lb as u8) ^ 0xFF
            } else {
                lb as u8
            };
            assert!(
                buf.iter().all(|&b| b == want),
                "block {lb} corrupted by compaction"
            );
        }
    }

    #[test]
    fn budget_limits_consumption() {
        let mut v = fresh();
        fill_fraction(&mut v, 0.5);
        let buf = vec![0x33u8; crate::log::BLOCK_BYTES];
        for lb in (0..v.num_blocks() / 2).step_by(2) {
            v.write(lb, &buf).unwrap();
        }
        let mut c = Compactor::new(CompactorConfig {
            target_empty_tracks: u32::MAX,
            ..CompactorConfig::default()
        });
        let budget = 50_000_000; // 50 ms
        let consumed = c.run(&mut v, budget);
        // Allowed to overshoot by at most one track read + one move cycle.
        assert!(consumed < budget + 100_000_000, "consumed {consumed}");
        assert!(consumed > 0);
    }

    #[test]
    fn zero_budget_consumes_nothing() {
        let mut v = fresh();
        fill_fraction(&mut v, 0.3);
        let mut c = Compactor::new(CompactorConfig::default());
        assert_eq!(c.run(&mut v, 0), 0);
    }

    #[test]
    fn stops_at_target_pool() {
        let mut v = fresh();
        // Nearly empty disk: plenty of empty tracks already.
        v.write(0, &vec![1u8; crate::log::BLOCK_BYTES]).unwrap();
        let mut c = Compactor::new(CompactorConfig {
            target_empty_tracks: 1,
            ..CompactorConfig::default()
        });
        assert_eq!(c.run(&mut v, 1_000_000_000), 0, "pool already at target");
    }

    /// The O(1) indexed victim pick returns exactly what the retained
    /// full-rescan oracle returns, across random write / overwrite /
    /// compaction interleavings (the alloc/free/clean churn the index must
    /// track incrementally).
    #[test]
    fn indexed_victim_pick_matches_rescan_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut v = fresh();
        let mut c = Compactor::new(CompactorConfig {
            policy: VictimPolicy::LeastUtilized,
            target_empty_tracks: u32::MAX,
            seed: 3,
        });
        let mut rng = StdRng::seed_from_u64(0x5617);
        let n = v.num_blocks();
        let buf = vec![0x55u8; crate::log::BLOCK_BYTES];
        for round in 0..40 {
            // A burst of writes/overwrites (allocs + frees), then sometimes
            // a budgeted compaction slice (cleaning).
            for _ in 0..rng.gen_range(5..60) {
                let lb = rng.gen_range(0..n / 2);
                v.write(lb, &buf).unwrap();
            }
            if rng.gen_bool(0.4) {
                c.run(&mut v, rng.gen_range(0..40_000_000u64));
            }
            assert_eq!(
                c.choose_victim(&v),
                reference::least_utilized_rescan(&v),
                "round {round}"
            );
        }
    }

    /// A budget expiry mid-track carries the victim into the next run
    /// instead of re-picking, and the resumed run finishes the track.
    #[test]
    fn partial_track_progress_resumes_across_runs() {
        let mut v = fresh();
        fill_fraction(&mut v, 0.5);
        let buf = vec![0x66u8; crate::log::BLOCK_BYTES];
        for lb in (0..v.num_blocks() / 2).step_by(2) {
            v.write(lb, &buf).unwrap();
        }
        let mut c = Compactor::new(CompactorConfig {
            target_empty_tracks: u32::MAX,
            ..CompactorConfig::default()
        });
        // Grant slivers of idle time until one expires mid-track.
        let mut carried = None;
        for _ in 0..200 {
            c.run(&mut v, 3_000_000);
            if let Some(vic) = c.pending_victim {
                carried = Some(vic);
                break;
            }
        }
        let vic = carried.expect("some 3 ms grant should expire mid-track");
        // The next grant must pick up the same track, not start elsewhere.
        let m = disksim::Metrics::enabled();
        c.set_metrics(m.clone());
        c.run(&mut v, 2_000_000_000);
        assert!(
            m.counter_value("compact.victims_resumed") >= 1,
            "victim {vic:?} was not resumed"
        );
    }

    #[test]
    fn least_utilized_policy_works() {
        let mut v = fresh();
        fill_fraction(&mut v, 0.4);
        let buf = vec![0x44u8; crate::log::BLOCK_BYTES];
        for lb in (0..v.num_blocks() * 2 / 5).step_by(4) {
            v.write(lb, &buf).unwrap();
        }
        let before = v.free_map().empty_tracks();
        let mut c = Compactor::new(CompactorConfig {
            policy: VictimPolicy::LeastUtilized,
            target_empty_tracks: before + 2,
            seed: 7,
        });
        c.run(&mut v, 60_000_000_000);
        assert!(v.free_map().empty_tracks() >= before + 2);
    }
}
