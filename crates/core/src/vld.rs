//! The Virtual Log Disk: eager writing behind an unmodified disk interface.
//!
//! The VLD "does not alter the existing disk interface and can deliver the
//! performance advantage of eager writing to an unmodified file system"
//! (§1, §4.2). It implements [`disksim::BlockDevice`] so the same UFS/LFS
//! code that runs on a [`disksim::RegularDisk`] runs on it unchanged.
//!
//! Per the paper's implementation notes (§4.2):
//!
//! * physical block size is 4 KB, matching the file systems' logical block;
//! * deletes invisible to the driver are handled by *overwrite detection* —
//!   re-use of a logical address frees the old mapping ([`BlockDevice::trim`]
//!   is also wired through for layers that can say more);
//! * the read-ahead buffer runs the aggressive whole-track policy, since
//!   remapping breaks the monotonic-address assumption of the stock
//!   algorithm;
//! * a free-space compactor runs during idle periods, filling empty tracks
//!   to a 75 % threshold before switching (§2.3's model picks the
//!   threshold);
//! * cylinder sweeps go one direction only, so the head is never trapped in
//!   a full region.
//!
//! Being "inside the drive", internal operations pay no per-command SCSI
//! overhead; the host-visible overhead *o* is charged exactly once per
//! block-device call.

use crate::alloc::AllocConfig;
use crate::compact::{Compactor, CompactorConfig, CompactorState};
use crate::log::{VirtualLog, VlogSnapshot, BLOCK_BYTES};
use crate::recovery::RecoveryReport;
use disksim::{
    BlockDevice, CachePolicy, DeviceSnapshot, Disk, DiskSpec, DiskStats, Metrics, Result,
    ServiceTime, SimClock, Tracer,
};

/// Configuration for a [`Vld`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VldConfig {
    /// Eager-allocation settings.
    pub alloc: AllocConfig,
    /// Compactor settings.
    pub compactor: CompactorConfig,
    /// Run the compactor when idle time is granted.
    pub compaction_enabled: bool,
    /// Use the aggressive whole-track read-ahead policy (the paper's fix).
    pub aggressive_readahead: bool,
}

impl Default for VldConfig {
    fn default() -> Self {
        Self {
            alloc: AllocConfig::default(),
            compactor: CompactorConfig::default(),
            compaction_enabled: true,
            aggressive_readahead: true,
        }
    }
}

/// A Virtual Log Disk: a [`VirtualLog`] exported through the standard
/// block-device interface.
#[derive(Debug)]
pub struct Vld {
    vlog: VirtualLog,
    compactor: Compactor,
    cfg: VldConfig,
    /// Host-visible per-command overhead (the drive spec's *o*).
    host_overhead_ns: u64,
}

impl Vld {
    /// Format a fresh VLD on a drive described by `spec`.
    pub fn format(spec: DiskSpec, clock: SimClock, cfg: VldConfig) -> Self {
        let host_overhead_ns = spec.command_overhead_ns;
        let mut internal = spec;
        internal.command_overhead_ns = 0; // the log runs inside the drive
        let mut disk = Disk::new(internal, clock);
        if cfg.aggressive_readahead {
            disk.set_cache_policy(CachePolicy::AggressiveTrack);
        }
        Self {
            vlog: VirtualLog::format(disk, cfg.alloc),
            compactor: Compactor::new(cfg.compactor),
            cfg,
            host_overhead_ns,
        }
    }

    /// Recover a VLD from a disk image (after a crash or orderly shutdown).
    /// `host_overhead_ns` is the drive's per-command overhead, which is not
    /// stored on the media.
    pub fn recover(
        mut disk: Disk,
        host_overhead_ns: u64,
        cfg: VldConfig,
    ) -> Result<(Self, RecoveryReport)> {
        if cfg.aggressive_readahead {
            disk.set_cache_policy(CachePolicy::AggressiveTrack);
        }
        let (vlog, report) = VirtualLog::recover(disk, cfg.alloc)?;
        Ok((
            Self {
                vlog,
                compactor: Compactor::new(cfg.compactor),
                cfg,
                host_overhead_ns,
            },
            report,
        ))
    }

    /// Orderly power-down: persist the log tail for fast recovery.
    pub fn shutdown(&mut self) -> Result<ServiceTime> {
        self.vlog.shutdown()
    }

    /// Simulate a power failure, yielding the raw disk image.
    pub fn crash(self) -> Disk {
        self.vlog.crash()
    }

    /// The underlying virtual log (for statistics and inspection).
    pub fn vlog(&self) -> &VirtualLog {
        &self.vlog
    }

    /// Mutable access to the virtual log (fault-injection hooks in crash
    /// tests).
    pub fn vlog_mut(&mut self) -> &mut VirtualLog {
        &mut self.vlog
    }

    /// The compactor (for statistics).
    pub fn compactor(&self) -> &Compactor {
        &self.compactor
    }

    /// The configuration in force.
    pub fn config(&self) -> &VldConfig {
        &self.cfg
    }

    /// Attach an event tracer and metrics handle to the whole VLD stack:
    /// the internal disk (per-op trace events and latency histograms), the
    /// virtual log (depth/chain gauges), the eager allocator (fast-path
    /// counters) and the compactor. Pass `None` / `Metrics::disabled()` to
    /// detach.
    pub fn set_observability(&mut self, tracer: Option<Tracer>, metrics: Metrics) {
        self.vlog.disk_mut().set_tracer(tracer);
        self.vlog.disk_mut().set_metrics(metrics.clone());
        self.vlog.set_metrics(metrics.clone());
        self.compactor.set_metrics(metrics);
    }

    /// Attach a causal-span handle to the internal disk. The VLD's own
    /// machinery (map appends, checkpoints, compaction, recovery) opens
    /// spans on the same handle, so its disk time is attributed to the
    /// right cause rather than to the host command that happened to be in
    /// flight.
    pub fn set_spans(&mut self, spans: disksim::Spans) {
        self.vlog.disk_mut().set_spans(spans);
    }

    /// Write several logical blocks as a single atomic transaction (one
    /// host command). The virtual log's commit record guarantees that after
    /// a crash either all or none of the batch is visible.
    pub fn write_atomic(&mut self, batch: &[(u64, &[u8])]) -> Result<ServiceTime> {
        let host = self.charge_host_overhead();
        Ok(host + self.vlog.write_many(batch)?)
    }

    /// Capture the whole VLD — virtual log, compactor (RNG position
    /// included) and configuration — as a `Send + Sync` snapshot.
    pub fn snapshot_state(&self) -> VldSnapshot {
        VldSnapshot {
            vlog: self.vlog.snapshot(),
            compactor: self.compactor.state(),
            cfg: self.cfg,
            host_overhead_ns: self.host_overhead_ns,
        }
    }

    /// Materialise an independent VLD from a snapshot (observability
    /// detached).
    pub fn from_snapshot(snap: &VldSnapshot) -> Self {
        Self {
            vlog: snap.vlog.restore(),
            compactor: Compactor::from_state(&snap.compactor),
            cfg: snap.cfg,
            host_overhead_ns: snap.host_overhead_ns,
        }
    }

    fn charge_host_overhead(&mut self) -> ServiceTime {
        self.vlog.disk().advance_ns(self.host_overhead_ns);
        ServiceTime {
            overhead_ns: self.host_overhead_ns,
            ..ServiceTime::ZERO
        }
    }
}

impl BlockDevice for Vld {
    fn block_size(&self) -> usize {
        BLOCK_BYTES
    }

    fn num_blocks(&self) -> u64 {
        self.vlog.num_blocks()
    }

    fn clock(&self) -> SimClock {
        self.vlog.disk().clock()
    }

    fn read_block(&mut self, block: u64, buf: &mut [u8]) -> Result<ServiceTime> {
        let host = self.charge_host_overhead();
        Ok(host + self.vlog.read(block, buf)?)
    }

    fn write_block(&mut self, block: u64, buf: &[u8]) -> Result<ServiceTime> {
        let host = self.charge_host_overhead();
        Ok(host + self.vlog.write(block, buf)?)
    }

    fn read_blocks(&mut self, start: u64, buf: &mut [u8]) -> Result<ServiceTime> {
        // One host command; internal reads resolve through the map (and the
        // aggressive track buffer absorbs the scatter).
        let mut total = self.charge_host_overhead();
        for (i, chunk) in buf.chunks_mut(BLOCK_BYTES).enumerate() {
            total += self.vlog.read(start + i as u64, chunk)?;
        }
        Ok(total)
    }

    fn write_blocks(&mut self, start: u64, buf: &[u8]) -> Result<ServiceTime> {
        // Bulk writes take the non-atomic batched path: per-piece-group
        // durability without the transient old+new footprint of a full
        // transaction (see [`VirtualLog::write_batch`]).
        let host = self.charge_host_overhead();
        let batch: Vec<(u64, &[u8])> = buf
            .chunks(BLOCK_BYTES)
            .enumerate()
            .map(|(i, c)| (start + i as u64, c))
            .collect();
        Ok(host + self.vlog.write_batch(&batch)?)
    }

    fn trim(&mut self, block: u64) -> Result<()> {
        self.vlog.trim(block)?;
        Ok(())
    }

    fn idle(&mut self, budget_ns: u64) -> u64 {
        let start = self.vlog.disk().now_ns();
        // An idle grant is a loan the device must repay on time. Hold back
        // a reserve covering the worst single operation the background
        // machinery can have in flight when the deadline hits — a seek
        // plus a rotation, i.e. a whole-track read or a checkpoint — and
        // spend only the remainder. The compactor may dip into the reserve
        // to finish an operation it already started, never to begin one.
        let reserve_ns = 3 * self.vlog.disk().spec().half_rotation_ns();
        if budget_ns >= reserve_ns && self.vlog.pending_recycle_len() >= 8 {
            let _ = self.vlog.checkpoint();
        }
        if self.cfg.compaction_enabled {
            let used = self.vlog.disk().now_ns() - start;
            let spendable = budget_ns.saturating_sub(used + reserve_ns);
            if spendable > 0 {
                self.compactor.run(&mut self.vlog, spendable);
                // Compaction reshapes the free space; let the allocator
                // re-pick its fill track.
                self.vlog.alloc.reset_fill();
            }
        }
        self.vlog.disk().now_ns() - start
    }

    fn flush(&mut self) -> Result<ServiceTime> {
        // All VLD writes are already durable; use the sync point to refresh
        // the checkpoint when enough superseded map blocks have piled up —
        // it keeps recovery windows short at no extra foreground cost.
        if self.vlog.pending_recycle_len() >= 8 {
            self.vlog.checkpoint()
        } else {
            Ok(ServiceTime::ZERO)
        }
    }

    fn disk_stats(&self) -> DiskStats {
        self.vlog.disk().stats()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn self_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn spans(&self) -> disksim::Spans {
        self.vlog.disk().spans().clone()
    }

    fn snapshot(&self) -> Option<Box<dyn DeviceSnapshot>> {
        Some(Box::new(self.snapshot_state()))
    }
}

/// A point-in-time image of a [`Vld`]: the virtual-log snapshot (disk
/// tracks and map pages `Arc`-shared, copy-on-write) plus the compactor's
/// state and the device configuration. `Send + Sync`, so an aged system
/// can be built once and forked inside parallel figure-cell workers.
#[derive(Debug, Clone)]
pub struct VldSnapshot {
    vlog: VlogSnapshot,
    compactor: CompactorState,
    cfg: VldConfig,
    host_overhead_ns: u64,
}

impl DeviceSnapshot for VldSnapshot {
    fn restore(&self) -> Box<dyn BlockDevice> {
        Box::new(Vld::from_snapshot(self))
    }

    fn local_events(&self) -> u64 {
        self.vlog.local_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vld() -> Vld {
        Vld::format(
            DiskSpec::st19101_sim(),
            SimClock::new(),
            VldConfig::default(),
        )
    }

    fn blk(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_BYTES]
    }

    #[test]
    fn implements_block_device_round_trip() {
        let mut d = vld();
        d.write_block(42, &blk(0x77)).unwrap();
        let mut buf = blk(0);
        d.read_block(42, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x77));
    }

    #[test]
    fn host_overhead_charged_once_per_command() {
        let mut d = vld();
        let o = DiskSpec::st19101_sim().command_overhead_ns;
        let st = d.write_block(0, &blk(1)).unwrap();
        assert_eq!(st.overhead_ns, o, "exactly one host overhead per write");
        let st = d.write_blocks(10, &[blk(1), blk(2)].concat()).unwrap();
        assert_eq!(st.overhead_ns, o, "batch writes amortise the overhead");
    }

    #[test]
    fn random_sync_writes_much_faster_than_regular_disk() {
        use disksim::RegularDisk;
        let clock_v = SimClock::new();
        let mut v = Vld::format(DiskSpec::st19101_sim(), clock_v, VldConfig::default());
        let clock_r = SimClock::new();
        let mut r = RegularDisk::new(DiskSpec::st19101_sim(), clock_r, BLOCK_BYTES);

        // Interleave random single-block writes over 1/4 of the device.
        let span = (v.num_blocks().min(r.num_blocks()) / 4).max(1);
        let mut lb = 1u64;
        let (mut tv, mut tr) = (0u64, 0u64);
        for i in 0..200u64 {
            lb = (lb * 1103515245 + 12345 + i) % span;
            tv += v.write_block(lb, &blk(i as u8)).unwrap().total_ns();
            tr += r.write_block(lb, &blk(i as u8)).unwrap().total_ns();
        }
        assert!(
            tv * 2 < tr,
            "VLD ({tv} ns) should be far faster than regular ({tr} ns)"
        );
    }

    #[test]
    fn trim_then_read_returns_zeros() {
        let mut d = vld();
        d.write_block(3, &blk(9)).unwrap();
        d.trim(3).unwrap();
        let mut buf = blk(0xFF);
        d.read_block(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn idle_runs_compactor_only_when_enabled() {
        let cfg = VldConfig {
            compaction_enabled: false,
            ..VldConfig::default()
        };
        let mut d = Vld::format(DiskSpec::st19101_sim(), SimClock::new(), cfg);
        d.write_block(0, &blk(1)).unwrap();
        assert_eq!(d.idle(1_000_000_000), 0);
    }

    #[test]
    fn batched_reads_amortise_host_overhead() {
        let mut d = vld();
        let w: Vec<u8> = (0..8 * BLOCK_BYTES).map(|i| i as u8).collect();
        d.write_blocks(0, &w).unwrap();
        let o = DiskSpec::st19101_sim().command_overhead_ns;
        let mut r = vec![0u8; 8 * BLOCK_BYTES];
        let st = d.read_blocks(0, &mut r).unwrap();
        assert_eq!(st.overhead_ns, o, "one command for the whole batch");
        assert_eq!(r, w);
    }

    #[test]
    fn oversized_atomic_batch_rejected() {
        let mut d = vld();
        let buf = blk(1);
        let batch: Vec<(u64, &[u8])> = (0..64u64).map(|i| (i, buf.as_slice())).collect();
        assert!(
            d.write_atomic(&batch).is_err(),
            "batches beyond the slack reserve must be refused, not wedge"
        );
        // The bulk path handles it fine.
        let big: Vec<u8> = vec![2u8; 64 * BLOCK_BYTES];
        d.write_blocks(100, &big).unwrap();
        let mut r = vec![0u8; BLOCK_BYTES];
        d.read_block(163, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 2));
    }

    #[test]
    fn write_atomic_round_trips() {
        let mut d = vld();
        let (a, b, c) = (blk(1), blk(2), blk(3));
        let batch: Vec<(u64, &[u8])> =
            vec![(0, a.as_slice()), (500, b.as_slice()), (1000, c.as_slice())];
        d.write_atomic(&batch).unwrap();
        for (lb, want) in [(0u64, 1u8), (500, 2), (1000, 3)] {
            let mut buf = blk(0);
            d.read_block(lb, &mut buf).unwrap();
            assert!(buf.iter().all(|&x| x == want));
        }
    }

    #[test]
    fn shutdown_recover_preserves_contents() {
        let mut d = vld();
        for lb in 0..100u64 {
            d.write_block(lb, &blk(lb as u8)).unwrap();
        }
        d.shutdown().unwrap();
        let disk = d.crash();
        let o = DiskSpec::st19101_sim().command_overhead_ns;
        let (mut d2, report) = Vld::recover(disk, o, VldConfig::default()).unwrap();
        assert!(
            report.used_tail,
            "orderly shutdown boots from the tail record"
        );
        assert_eq!(report.scanned_sectors, 0);
        for lb in 0..100u64 {
            let mut buf = blk(0);
            d2.read_block(lb, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == lb as u8), "block {lb} lost");
        }
    }

    #[test]
    fn checkpoints_alternate_slots_and_survive_a_torn_one() {
        // Write enough churn for several checkpoints; then corrupt the
        // newest slot on the raw image: recovery must fall back to the
        // older slot (plus the log window) without data loss.
        let o = DiskSpec::st19101_sim().command_overhead_ns;
        let mut d = vld();
        for round in 0..4u64 {
            for i in 0..200u64 {
                d.write_block(i % 64, &blk((round * 200 + i) as u8))
                    .unwrap();
            }
            d.idle(1_000_000_000); // checkpoint opportunity
        }
        assert!(
            d.vlog().stats().checkpoints >= 2,
            "need several checkpoints"
        );
        let mut final_state = Vec::new();
        for lb in 0..64u64 {
            let mut buf = blk(0);
            d.read_block(lb, &mut buf).unwrap();
            final_state.push(buf[0]);
        }
        d.shutdown().unwrap();
        let mut disk = d.crash();
        // Corrupt both checkpoint slots' first sectors? No — just one: the
        // region starts right after the firmware block.
        let region = crate::CheckpointRegion::layout(
            crate::FIRMWARE_SECTORS,
            64, // any >= actual piece count works for locating slot A
            8,
        );
        let garbage = vec![0xFFu8; disksim::SECTOR_BYTES];
        disk.poke_sectors(region.slot_a, &garbage).unwrap();
        let (mut d2, report) = Vld::recover(disk, o, VldConfig::default()).unwrap();
        assert!(report.used_tail);
        for (lb, &want) in final_state.iter().enumerate() {
            let mut buf = blk(0);
            d2.read_block(lb as u64, &mut buf).unwrap();
            assert!(
                buf.iter().all(|&b| b == want),
                "block {lb} lost after torn checkpoint"
            );
        }
    }

    #[test]
    fn cold_data_survives_hot_piece_churn_across_recoveries() {
        // Regression test: a piece that is never rewritten must stay
        // recoverable even after heavy churn on *other* pieces recycles
        // long runs of the backward chain. Without checkpoint-gated
        // recycling, the chain to the cold piece breaks and its data is
        // silently lost on the second recovery.
        let o = DiskSpec::st19101_sim().command_overhead_ns;
        let mut d = vld();
        // Cold data in piece 0.
        for lb in 0..50u64 {
            d.write_block(lb, &blk(lb as u8)).unwrap();
        }
        for round in 0..3 {
            // Hot churn in a different piece (far lbs), enough to recycle
            // many map blocks.
            for i in 0..300u64 {
                d.write_block(2000 + (i % 40), &blk(i as u8)).unwrap();
            }
            // Alternate orderly and crash recoveries.
            if round % 2 == 0 {
                d.shutdown().unwrap();
            }
            let disk = d.crash();
            let (d2, report) = Vld::recover(disk, o, VldConfig::default()).unwrap();
            d = d2;
            assert_eq!(report.used_tail, round % 2 == 0);
            for lb in (0..50u64).step_by(7) {
                let mut buf = blk(0);
                d.read_block(lb, &mut buf).unwrap();
                assert!(
                    buf.iter().all(|&b| b == lb as u8),
                    "round {round}: cold block {lb} lost"
                );
            }
        }
    }

    #[test]
    fn crash_without_shutdown_recovers_by_scanning() {
        let mut d = vld();
        for lb in 0..50u64 {
            d.write_block(lb, &blk(lb as u8)).unwrap();
        }
        let disk = d.crash(); // no shutdown: tail record is cleared
        let o = DiskSpec::st19101_sim().command_overhead_ns;
        let (mut d2, report) = Vld::recover(disk, o, VldConfig::default()).unwrap();
        assert!(!report.used_tail);
        assert!(report.scanned_sectors > 0, "fallback must scan");
        for lb in 0..50u64 {
            let mut buf = blk(0);
            d2.read_block(lb, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == lb as u8), "block {lb} lost");
        }
    }

    /// Image round-trip property over the VLD's sparse remapped store:
    /// after a seeded mix of writes and trims, recovery from a
    /// saved-and-reloaded image is byte-identical to recovery from the
    /// original media — for every block the workload ever touched,
    /// including the trimmed ones.
    #[test]
    fn image_round_trip_preserves_vld_recovery() {
        let o = DiskSpec::st19101_sim().command_overhead_ns;
        for seed in 0..4u64 {
            let mut d = vld();
            let span = d.num_blocks() / 4;
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut touched = Vec::new();
            for _ in 0..200 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = (x >> 16) % span;
                if x % 5 == 0 && !touched.is_empty() {
                    let victim = touched[(x >> 32) as usize % touched.len()];
                    d.trim(victim).unwrap();
                } else {
                    d.write_block(b, &blk((x >> 24) as u8)).unwrap();
                    touched.push(b);
                }
            }
            let disk = d.crash();
            let mut img = Vec::new();
            disk.save_image(&mut img).unwrap();
            let copy = Disk::load_image(
                DiskSpec::st19101_sim(),
                SimClock::new(),
                &mut img.as_slice(),
            )
            .unwrap();
            let (mut va, ra) = Vld::recover(disk, o, VldConfig::default()).unwrap();
            let (mut vb, rb) = Vld::recover(copy, o, VldConfig::default()).unwrap();
            assert_eq!(
                ra.used_tail, rb.used_tail,
                "seed {seed}: recovery paths diverged"
            );
            for &b in &touched {
                let mut pa = blk(0);
                let mut pb = blk(1);
                va.read_block(b, &mut pa).unwrap();
                vb.read_block(b, &mut pb).unwrap();
                assert_eq!(
                    pa, pb,
                    "seed {seed}: block {b} differs after image round-trip"
                );
            }
        }
    }
}
