//! Crash recovery: rebuild the indirection map from the checkpoint plus
//! the virtual-log tail.
//!
//! Normal boot (the fast path of §3.2/§3.3):
//!
//! 1. read the firmware **tail record** (checksummed; written by the
//!    power-down sequence, cleared after every recovery so it can never be
//!    trusted stale);
//! 2. read the two alternating **checkpoint** slots and take the newest
//!    valid piece directory;
//! 3. traverse the log tree from the tail, youngest-first, down to the
//!    checkpoint horizon — within that window nothing has been recycled
//!    (superseded piece blocks wait on the pending list until a checkpoint
//!    covers them), so the chain is intact by construction;
//! 4. load the remaining live pieces straight from the checkpoint
//!    directory.
//!
//! Youngest-first order (a max-heap on the sequence number every pointer
//! carries) guarantees that the first version of a piece seen is the live
//! one and that a transaction's commit record is visited before its parts,
//! so uncommitted payloads are recognised and skipped.
//!
//! If the tail record is missing or corrupt (failed power-down), recovery
//! falls back to **scanning** the disk for self-identifying map sectors:
//! the traversal restarts from the youngest entry found, and any piece the
//! walk cannot reach is mined directly from the scan — every live piece
//! version is physically present and self-identifying, so scan recovery
//! succeeds regardless of chain damage.
//!
//! Recovery ends by clearing the tail record and writing a fresh
//! checkpoint, which re-establishes the recycling invariant for the next
//! epoch.

use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::alloc::{AllocConfig, EagerAllocator};
use crate::checkpoint::{Checkpoint, CheckpointRegion};
use crate::freemap::FreeMap;
use crate::log::{PieceLoc, VirtualLog, BLOCK_SECTORS};
use crate::mapsector::{MapFlags, MapSector, PIECE_BYTES, PIECE_ENTRIES, UNMAPPED};
use crate::piecetable::PieceTable;
use crate::tail::{TailRecord, FIRMWARE_SECTORS, TAIL_LBA};
use disksim::{Disk, Result, ServiceTime, SECTOR_BYTES};

/// What happened during a recovery pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// True if the firmware tail record was present and valid.
    pub used_tail: bool,
    /// Sequence horizon of the checkpoint recovery booted from.
    pub checkpoint_seq: u64,
    /// Sectors read by the scan fallback (0 when the tail was valid).
    pub scanned_sectors: u64,
    /// Log sectors visited during traversal.
    pub sectors_traversed: u64,
    /// Branches pruned because the target was invalid.
    pub branches_pruned: u64,
    /// Pieces taken from the checkpoint directory (not seen in the window).
    pub pieces_from_checkpoint: u64,
    /// Pieces recovered in total.
    pub pieces_recovered: u64,
    /// Map sectors whose payload was skipped as uncommitted transaction
    /// parts.
    pub uncommitted_skipped: u64,
    /// Total simulated time the recovery consumed.
    pub service: ServiceTime,
}

impl VirtualLog {
    /// Recover a virtual log from a disk image (e.g. after
    /// [`VirtualLog::crash`] or a normal shutdown).
    pub fn recover(mut disk: Disk, alloc_cfg: AllocConfig) -> Result<(Self, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        // Every read of the checkpoint slots, the traversal window and the
        // scan fallback — plus the closing checkpoint — is recovery work.
        // (On an error the span stays open; harnesses close leftovers with
        // `Spans::close_all` before the next mount.)
        let spans = disk.spans().clone();
        let sp = if spans.is_enabled() {
            spans.open(
                disksim::SpanKind::Recovery,
                "vld.recover",
                disk.clock().now(),
            )
        } else {
            0
        };

        let total_sectors = disk.spec().geometry.total_sectors();
        let num_logical = Self::logical_capacity(total_sectors);
        let n_pieces = (num_logical as usize).div_ceil(PIECE_ENTRIES);
        let region = CheckpointRegion::layout(FIRMWARE_SECTORS, n_pieces, BLOCK_SECTORS as u64);

        // 1. The firmware tail record.
        let mut tail_buf = [0u8; SECTOR_BYTES];
        report.service += disk.read_sectors(TAIL_LBA, &mut tail_buf)?;
        let tail = TailRecord::decode(&tail_buf);
        report.used_tail = tail.is_some();

        // 2. The newest valid checkpoint.
        let mut slot_buf = vec![0u8; region.sectors as usize * SECTOR_BYTES];
        let mut best: Option<(Checkpoint, bool)> = None;
        for (lba, is_b) in [(region.slot_a, false), (region.slot_b, true)] {
            report.service += disk.read_sectors(lba, &mut slot_buf)?;
            if let Some(ck) = Checkpoint::decode(&slot_buf) {
                if best.as_ref().map(|(b, _)| ck.seq > b.seq).unwrap_or(true) {
                    best = Some((ck, is_b));
                }
            }
        }
        let (base, base_was_b) = best.unwrap_or((
            Checkpoint {
                seq: 0,
                pieces: vec![None; n_pieces],
            },
            false,
        ));
        report.checkpoint_seq = base.seq;

        // 3. Find the root: tail record, or scan fallback.
        let mut scan_cache: HashMap<u64, MapSector> = HashMap::new();
        let (root, mut next_seq) = match tail {
            Some(t) => (t.root, t.next_seq),
            None => {
                let (cache, scanned, t) = scan_disk(&mut disk)?;
                report.scanned_sectors = scanned;
                report.service += t;
                let root = cache
                    .iter()
                    .max_by_key(|(_, m)| m.seq)
                    .map(|(lba, m)| (*lba, m.seq));
                let next = cache.values().map(|m| m.seq + 1).max().unwrap_or(1);
                scan_cache = cache;
                (root, next)
            }
        };

        // 4. Youngest-first traversal of the window above the checkpoint.
        // Resolved payloads are piece-indexed (dense, bounded by n_pieces)
        // rather than hashed — the traversal probes this on every sector.
        let mut resolved: Vec<Option<MapSector>> = vec![None; n_pieces];
        let mut resolved_n = 0usize;
        let mut piece_locs: Vec<Option<PieceLoc>> = vec![None; n_pieces];
        let mut committed: HashSet<u64> = HashSet::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut heap: BinaryHeap<(u64, u64)> = BinaryHeap::new(); // (seq, lba)
        if let Some((lba, seq)) = root {
            if seq >= base.seq {
                heap.push((seq, lba));
            }
        }
        let mut max_seen = base.seq;
        while let Some((seq, lba)) = heap.pop() {
            if seq < base.seq || !visited.insert(lba) {
                continue;
            }
            let sector = match scan_cache.get(&lba) {
                Some(m) => Some(m.clone()),
                None => {
                    let mut buf = [0u8; PIECE_BYTES];
                    report.service += disk.read_sectors(lba, &mut buf)?;
                    MapSector::decode(&buf)
                }
            };
            let m = match sector {
                Some(m) if m.seq == seq => m,
                _ => {
                    report.branches_pruned += 1;
                    continue;
                }
            };
            report.sectors_traversed += 1;
            max_seen = max_seen.max(m.seq);
            if m.flags.contains(MapFlags::TXN_COMMIT) {
                if let Some(t) = m.txn {
                    committed.insert(t.id);
                }
            }
            let payload_valid = if m.flags.contains(MapFlags::TXN_PART) {
                let ok = m.txn.map(|t| committed.contains(&t.id)).unwrap_or(false);
                if !ok {
                    report.uncommitted_skipped += 1;
                }
                ok
            } else {
                true
            };
            if payload_valid
                && (m.piece as usize) < n_pieces
                && resolved[m.piece as usize].is_none()
            {
                piece_locs[m.piece as usize] = Some(PieceLoc {
                    lba,
                    seq: m.seq,
                    prev: m.prev,
                });
                resolved[m.piece as usize] = Some(m.clone());
                resolved_n += 1;
            }
            for ptr in [m.prev, m.bypass].into_iter().flatten() {
                if ptr.1 >= base.seq {
                    heap.push((ptr.1, ptr.0));
                }
            }
            if resolved_n == n_pieces {
                break;
            }
        }

        // 5. Scan fallback also mines unreachable pieces directly: every
        // live piece version is physically present and self-identifying.
        if !scan_cache.is_empty() {
            let commits: HashSet<u64> = scan_cache
                .values()
                .filter(|m| m.flags.contains(MapFlags::TXN_COMMIT))
                .filter_map(|m| m.txn.map(|t| t.id))
                .collect();
            for (lba, m) in &scan_cache {
                if (m.piece as usize) >= n_pieces {
                    continue;
                }
                if m.flags.contains(MapFlags::TXN_PART)
                    && !m.txn.map(|t| commits.contains(&t.id)).unwrap_or(false)
                {
                    continue;
                }
                let newer = piece_locs[m.piece as usize]
                    .map(|loc| m.seq > loc.seq)
                    .unwrap_or(true);
                if newer {
                    piece_locs[m.piece as usize] = Some(PieceLoc {
                        lba: *lba,
                        seq: m.seq,
                        prev: m.prev,
                    });
                    if resolved[m.piece as usize].is_none() {
                        resolved_n += 1;
                    }
                    resolved[m.piece as usize] = Some(m.clone());
                }
            }
        }

        // 6. Anything still missing comes from the checkpoint directory;
        // those pieces are read back (one sector each) for their payload.
        for (i, loc) in base.pieces.iter().enumerate() {
            if i >= n_pieces || piece_locs[i].is_some() {
                continue;
            }
            let Some(loc) = loc else { continue };
            let mut buf = [0u8; PIECE_BYTES];
            report.service += disk.read_sectors(loc.lba, &mut buf)?;
            match MapSector::decode(&buf) {
                Some(m) if m.seq == loc.seq && m.piece as usize == i => {
                    piece_locs[i] = Some(*loc);
                    if resolved[i].is_none() {
                        resolved_n += 1;
                    }
                    resolved[i] = Some(m);
                    report.pieces_from_checkpoint += 1;
                }
                _ => report.branches_pruned += 1,
            }
        }
        report.pieces_recovered = resolved_n as u64;
        next_seq = next_seq.max(max_seen + 1);

        // 7. Rebuild the volatile state.
        let total_pb = total_sectors / BLOCK_SECTORS as u64;
        let mut map = PieceTable::new(num_logical as usize);
        let mut rmap = vec![UNMAPPED; total_pb as usize];
        for (piece, m) in resolved.iter().enumerate() {
            let Some(m) = m else { continue };
            let base_lb = piece * PIECE_ENTRIES;
            for (i, &pb) in m.entries.iter().enumerate() {
                let lb = base_lb + i;
                if lb < map.len() && pb != UNMAPPED {
                    map.set(lb, pb);
                    rmap[pb as usize] = lb as u32;
                }
            }
        }
        let mut free = FreeMap::new(&disk.spec().geometry);
        Self::reserve_meta(&disk, &mut free, &region);
        let g = &disk.spec().geometry;
        for loc in piece_locs.iter().flatten() {
            let p = g.lba_to_phys(loc.lba)?;
            free.allocate(p.cyl, p.track, p.sector, BLOCK_SECTORS)?;
        }
        for pb in map.iter().filter(|&pb| pb != UNMAPPED) {
            let p = g.lba_to_phys(pb as u64 * BLOCK_SECTORS as u64)?;
            free.allocate(p.cyl, p.track, p.sector, BLOCK_SECTORS)?;
        }

        // 8. Clear the tail record so it is never trusted stale.
        report.service += disk.write_sectors(TAIL_LBA, &TailRecord::cleared())?;

        // The recovered root is the youngest live piece: chaining future
        // writes from it keeps every live entry reachable.
        let new_root = piece_locs
            .iter()
            .flatten()
            .max_by_key(|l| l.seq)
            .map(|l| (l.lba, l.seq));
        let mut vlog = Self::from_recovered(
            disk,
            EagerAllocator::new(alloc_cfg),
            free,
            map,
            rmap,
            piece_locs,
            new_root,
            next_seq,
            num_logical,
            region,
            base.seq,
            !base_was_b,
        );

        // 9. A fresh checkpoint re-establishes the recycling invariant:
        // everything stale from before the crash is genuinely free now.
        report.service += vlog.checkpoint()?;
        if sp != 0 {
            spans.close(sp, vlog.disk().clock().now());
        }
        Ok((vlog, report))
    }
}

/// Read every track once, decoding all block-aligned sectors. Returns the
/// cache of valid map sectors keyed by LBA, the number of sectors scanned,
/// and the time consumed.
fn scan_disk(disk: &mut Disk) -> Result<(HashMap<u64, MapSector>, u64, ServiceTime)> {
    // Enumerate every track's (start LBA, sectors-per-track) up front from
    // an immutable borrow, so the read loop below can borrow the disk
    // mutably without cloning the geometry.
    let tracks: Vec<(u64, u32)> = {
        let g = &disk.spec().geometry;
        let mut v = Vec::with_capacity((g.cylinders() * g.tracks_per_cylinder()) as usize);
        for cyl in 0..g.cylinders() {
            let spt = g.sectors_per_track(cyl)?;
            for track in 0..g.tracks_per_cylinder() {
                v.push((g.track_start_lba(cyl, track)?, spt));
            }
        }
        v
    };
    // Valid map sectors found by a scan are bounded by the live pieces
    // plus their not-yet-recycled superseded versions — a few per piece.
    // Pre-sizing to that bound keeps the insert loop rehash-free.
    let n_pieces = (VirtualLog::logical_capacity(disk.spec().geometry.total_sectors()) as usize)
        .div_ceil(PIECE_ENTRIES);
    let mut cache = HashMap::with_capacity(4 * n_pieces);
    let mut scanned = 0u64;
    let mut service = ServiceTime::ZERO;
    let mut buf = Vec::new();
    for (start, spt) in tracks {
        buf.resize(spt as usize * SECTOR_BYTES, 0);
        service += disk.read_sectors(start, &mut buf)?;
        scanned += spt as u64;
        // Map pieces live in the first sector of 4 KB-aligned physical
        // blocks, so only those offsets can hold one.
        for s in (0..spt).step_by(BLOCK_SECTORS as usize) {
            let off = s as usize * SECTOR_BYTES;
            if off + PIECE_BYTES <= buf.len() {
                if let Some(m) = MapSector::decode(&buf[off..off + PIECE_BYTES]) {
                    cache.insert(start + s as u64, m);
                }
            }
        }
    }
    Ok((cache, scanned, service))
}
