//! Sector-granularity free-space accounting, organised by track.
//!
//! Eager writing is all about knowing, cheaply, which sectors near the head
//! are free. [`FreeMap`] keeps one bitmap per track plus per-track free
//! counts, so the allocator can ask:
//!
//! * is this sector (or 8-sector-aligned block) free?
//! * how full is this track? (drives the fill-to-threshold policy of §2.3)
//! * which tracks are completely empty? (the compactor's output pool)
//!
//! The map is an in-memory structure; after a crash it is reconstructed from
//! the recovered indirection map (everything not live is free).

use std::collections::BTreeSet;

use disksim::{Geometry, Result};

/// The block alignment the hierarchical index tracks exactly: the paper's
/// 4 KB block is 8 sectors, and 8 divides the 64-bit bitmap word, so an
/// aligned slot is one byte of a word.
pub const INDEX_ALIGN: u32 = 8;

/// Fixed-point scale of the utilization-index key. Two distinct track
/// utilizations `a/s1 != b/s2` differ by at least `1/(s1*s2)`, so with
/// `s <= 2^(SHIFT/2)` sectors per track the scaled keys differ by ≥ 1 and
/// integer truncation preserves the exact rational order (equal fractions
/// still collide, which is what the track-index tie-break is for).
const UTIL_KEY_SHIFT: u32 = 20;

/// Bitmapped free-sector map over an entire disk.
#[derive(Debug, Clone)]
pub struct FreeMap {
    /// One bitmap word-vector per track, indexed by global track number.
    bits: Vec<Vec<u64>>,
    /// Free sectors per track.
    free_count: Vec<u32>,
    /// Sectors per track, per global track (varies across zones).
    spt: Vec<u32>,
    /// Tracks per cylinder, for global-track indexing.
    tracks_per_cyl: u32,
    /// Total free sectors.
    total_free: u64,
    /// Total sectors.
    total: u64,
    /// Number of completely empty tracks.
    empty_tracks: u32,
    /// Free sectors per cylinder (summary over the cylinder's tracks).
    cyl_free: Vec<u64>,
    /// Free [`INDEX_ALIGN`]-aligned slots per track.
    aligned_free: Vec<u32>,
    /// Free [`INDEX_ALIGN`]-aligned slots per cylinder.
    cyl_aligned: Vec<u32>,
    /// Completely empty tracks per cylinder.
    cyl_empty: Vec<u32>,
    /// Utilization-ordered index of the *non-empty* tracks:
    /// `(util_key, global track index)`, maintained incrementally by
    /// [`FreeMap::set`]. `first()` is the least-utilized track holding live
    /// data, with ties resolved to the lowest track index — the same answer
    /// a full `(cyl, track)` scan taking the first minimum would give.
    occ_by_util: BTreeSet<(u64, u32)>,
}

impl FreeMap {
    /// Build a map with every sector free.
    pub fn new(geometry: &Geometry) -> Self {
        let tracks_per_cyl = geometry.tracks_per_cylinder();
        let n_tracks = geometry.cylinders() as usize * tracks_per_cyl as usize;
        let mut bits = Vec::with_capacity(n_tracks);
        let mut free_count = Vec::with_capacity(n_tracks);
        let mut spt_v = Vec::with_capacity(n_tracks);
        for cyl in 0..geometry.cylinders() {
            let spt = geometry
                .sectors_per_track(cyl)
                .expect("cylinder in range by construction");
            for _ in 0..tracks_per_cyl {
                let words = (spt as usize).div_ceil(64);
                let mut v = vec![u64::MAX; words];
                // Mask off bits beyond the track end.
                let excess = words * 64 - spt as usize;
                if excess > 0 {
                    *v.last_mut().expect("at least one word") >>= excess;
                }
                bits.push(v);
                free_count.push(spt);
                spt_v.push(spt);
            }
        }
        let total = geometry.total_sectors();
        let n_cyls = geometry.cylinders() as usize;
        let mut cyl_free = vec![0u64; n_cyls];
        let mut cyl_aligned = vec![0u32; n_cyls];
        let aligned_free: Vec<u32> = spt_v.iter().map(|&spt| spt / INDEX_ALIGN).collect();
        for (ti, &spt) in spt_v.iter().enumerate() {
            let cyl = ti / tracks_per_cyl as usize;
            cyl_free[cyl] += spt as u64;
            cyl_aligned[cyl] += aligned_free[ti];
        }
        Self {
            bits,
            free_count,
            spt: spt_v,
            tracks_per_cyl,
            total_free: total,
            total,
            empty_tracks: n_tracks as u32,
            cyl_free,
            aligned_free,
            cyl_aligned,
            cyl_empty: vec![tracks_per_cyl; n_cyls],
            occ_by_util: BTreeSet::new(),
        }
    }

    /// Fixed-point utilization key of a track with `free` of `spt` sectors
    /// free; see [`UTIL_KEY_SHIFT`] for why truncation is order-exact.
    #[inline]
    fn util_key(spt: u32, free: u32) -> u64 {
        debug_assert!(spt <= 1 << (UTIL_KEY_SHIFT / 2));
        (((spt - free) as u64) << UTIL_KEY_SHIFT) / spt as u64
    }

    /// Global track index for (cylinder, track).
    #[inline]
    pub fn track_index(&self, cyl: u32, track: u32) -> usize {
        cyl as usize * self.tracks_per_cyl as usize + track as usize
    }

    /// Sectors per track at this global track index.
    #[inline]
    pub fn sectors_per_track(&self, ti: usize) -> u32 {
        self.spt[ti]
    }

    /// Total sectors under management.
    #[inline]
    pub fn total_sectors(&self) -> u64 {
        self.total
    }

    /// Free sectors remaining.
    #[inline]
    pub fn free_sectors(&self) -> u64 {
        self.total_free
    }

    /// Fraction of sectors in use, 0.0–1.0.
    pub fn utilization(&self) -> f64 {
        1.0 - self.total_free as f64 / self.total as f64
    }

    /// Number of completely empty tracks.
    #[inline]
    pub fn empty_tracks(&self) -> u32 {
        self.empty_tracks
    }

    /// Free sectors on the given track.
    #[inline]
    pub fn free_in_track(&self, cyl: u32, track: u32) -> u32 {
        self.free_count[self.track_index(cyl, track)]
    }

    /// Is the single sector at (cyl, track, sector) free?
    pub fn is_free(&self, cyl: u32, track: u32, sector: u32) -> bool {
        let ti = self.track_index(cyl, track);
        debug_assert!(sector < self.spt[ti]);
        self.bits[ti][sector as usize / 64] >> (sector % 64) & 1 == 1
    }

    /// Are all `count` sectors starting at `sector` on this track free?
    pub fn run_free(&self, cyl: u32, track: u32, sector: u32, count: u32) -> bool {
        (sector..sector + count).all(|s| self.is_free(cyl, track, s))
    }

    /// Is the [`INDEX_ALIGN`]-aligned slot `slot` of global track `ti`
    /// entirely free? A slot is one byte of a bitmap word (8 divides 64),
    /// so the test is a single byte compare.
    #[inline]
    fn slot_free(&self, ti: usize, slot: u32) -> bool {
        (self.bits[ti][slot as usize / 8] >> ((slot % 8) * 8)) & 0xFF == 0xFF
    }

    /// SWAR reduction of one bitmap word to its free-slot mask: bit `8k` of
    /// the result is set iff byte `k` of `w` is `0xFF`, i.e. iff aligned
    /// slot `k` of the word is entirely free. Bits beyond the track end are
    /// zero by construction, so invalid tail slots can never read as free.
    #[inline]
    fn free_slot_bits(w: u64) -> u64 {
        let m = w & (w >> 4);
        let m = m & (m >> 2);
        (m & (m >> 1)) & 0x0101_0101_0101_0101
    }

    fn set(&mut self, cyl: u32, track: u32, sector: u32, count: u32, free: bool) -> Result<()> {
        let ti = self.track_index(cyl, track);
        let spt = self.spt[ti];
        if sector + count > spt {
            return Err(disksim::DiskError::OutOfRange {
                addr: (sector + count) as u64,
                limit: spt as u64,
            });
        }
        let was_empty = self.free_count[ti] == spt;
        let free_before = self.free_count[ti];
        let slots = spt / INDEX_ALIGN;
        for s in sector..sector + count {
            let w = &mut self.bits[ti][s as usize / 64];
            let mask = 1u64 << (s % 64);
            let cur = *w & mask != 0;
            if cur != free {
                let slot = s / INDEX_ALIGN;
                let slot_was = slot < slots && self.slot_free(ti, slot);
                let w = &mut self.bits[ti][s as usize / 64];
                if free {
                    *w |= mask;
                    self.free_count[ti] += 1;
                    self.total_free += 1;
                    self.cyl_free[cyl as usize] += 1;
                } else {
                    *w &= !mask;
                    self.free_count[ti] -= 1;
                    self.total_free -= 1;
                    self.cyl_free[cyl as usize] -= 1;
                }
                if slot < slots {
                    let slot_is = self.slot_free(ti, slot);
                    match (slot_was, slot_is) {
                        (true, false) => {
                            self.aligned_free[ti] -= 1;
                            self.cyl_aligned[cyl as usize] -= 1;
                        }
                        (false, true) => {
                            self.aligned_free[ti] += 1;
                            self.cyl_aligned[cyl as usize] += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        let free_after = self.free_count[ti];
        if free_before != free_after {
            if free_before < spt {
                self.occ_by_util
                    .remove(&(Self::util_key(spt, free_before), ti as u32));
            }
            if free_after < spt {
                self.occ_by_util
                    .insert((Self::util_key(spt, free_after), ti as u32));
            }
        }
        let now_empty = self.free_count[ti] == spt;
        match (was_empty, now_empty) {
            (true, false) => {
                self.empty_tracks -= 1;
                self.cyl_empty[cyl as usize] -= 1;
            }
            (false, true) => {
                self.empty_tracks += 1;
                self.cyl_empty[cyl as usize] += 1;
            }
            _ => {}
        }
        Ok(())
    }

    /// Mark sectors in use. Idempotent.
    pub fn allocate(&mut self, cyl: u32, track: u32, sector: u32, count: u32) -> Result<()> {
        self.set(cyl, track, sector, count, false)
    }

    /// Mark sectors free. Idempotent.
    pub fn release(&mut self, cyl: u32, track: u32, sector: u32, count: u32) -> Result<()> {
        self.set(cyl, track, sector, count, true)
    }

    /// Mark every sector whose bit is set in `used` as allocated, in one
    /// pass. `used` is a flat LBA-indexed bitmap (bit `lba` of
    /// `used[lba / 64]`); LBAs enumerate `(cyl, track, sector)` in
    /// lexicographic order, so each track is a contiguous bit range that is
    /// stitched into the per-track words with two shifts. Summaries are
    /// rebuilt once at the end instead of being maintained per sector,
    /// which is what makes this O(total/64) rather than O(total · log).
    /// Equivalent to calling [`FreeMap::allocate`] for each set bit.
    pub fn allocate_bulk(&mut self, used: &[u64]) {
        let mut base = 0u64; // LBA of this track's sector 0
        for ti in 0..self.bits.len() {
            let nwords = self.bits[ti].len();
            for wi in 0..nwords {
                let bit = base + wi as u64 * 64;
                let q = (bit / 64) as usize;
                let r = (bit % 64) as u32;
                let lo = used.get(q).copied().unwrap_or(0) >> r;
                let hi = if r == 0 {
                    0
                } else {
                    used.get(q + 1).copied().unwrap_or(0) << (64 - r)
                };
                // Clearing positions beyond the track end is harmless: those
                // bits are already zero by construction.
                self.bits[ti][wi] &= !(lo | hi);
            }
            base += self.spt[ti] as u64;
        }
        self.rebuild_summaries();
    }

    /// Recompute every summary (counts, per-cylinder rollups, the
    /// utilization index) from the bitmaps, after a bulk mutation.
    fn rebuild_summaries(&mut self) {
        let tracks_per_cyl = self.tracks_per_cyl as usize;
        let n_cyls = self.bits.len() / tracks_per_cyl;
        self.total_free = 0;
        self.empty_tracks = 0;
        self.cyl_free = vec![0; n_cyls];
        self.cyl_aligned = vec![0; n_cyls];
        self.cyl_empty = vec![0; n_cyls];
        self.occ_by_util.clear();
        for ti in 0..self.bits.len() {
            let spt = self.spt[ti];
            let cyl = ti / tracks_per_cyl;
            let free: u32 = self.bits[ti].iter().map(|w| w.count_ones()).sum();
            let aligned: u32 = self
                .bits[ti]
                .iter()
                .map(|&w| Self::free_slot_bits(w).count_ones())
                .sum();
            self.free_count[ti] = free;
            self.aligned_free[ti] = aligned;
            self.total_free += free as u64;
            self.cyl_free[cyl] += free as u64;
            self.cyl_aligned[cyl] += aligned;
            if free == spt {
                self.empty_tracks += 1;
                self.cyl_empty[cyl] += 1;
            } else {
                self.occ_by_util
                    .insert((Self::util_key(spt, free), ti as u32));
            }
        }
    }

    /// Iterate the free single sectors of a track, starting the scan at
    /// `from_sector` and wrapping around — i.e. in rotational encounter
    /// order for a head arriving at `from_sector`.
    pub fn free_sectors_from(
        &self,
        cyl: u32,
        track: u32,
        from_sector: u32,
    ) -> impl Iterator<Item = u32> + '_ {
        let ti = self.track_index(cyl, track);
        let spt = self.spt[ti];
        let bits = &self.bits[ti];
        (0..spt).filter_map(move |i| {
            let s = (from_sector + i) % spt;
            (bits[s as usize / 64] >> (s % 64) & 1 == 1).then_some(s)
        })
    }

    /// First free aligned run of `align` sectors on the track at or after
    /// `from_sector` (wrapping), in rotational encounter order.
    pub fn free_aligned_from(
        &self,
        cyl: u32,
        track: u32,
        from_sector: u32,
        align: u32,
    ) -> Option<u32> {
        self.free_aligned_iter(cyl, track, from_sector, align)
            .next()
    }

    /// All free aligned runs of `align` sectors, in rotational encounter
    /// order starting from `from_sector`.
    pub fn free_aligned_iter(
        &self,
        cyl: u32,
        track: u32,
        from_sector: u32,
        align: u32,
    ) -> impl Iterator<Item = u32> + '_ {
        let ti = self.track_index(cyl, track);
        let spt = self.spt[ti];
        let slots = spt / align;
        let start_slot = from_sector.div_ceil(align) % slots.max(1);
        (0..slots).filter_map(move |i| {
            let slot = (start_slot + i) % slots;
            let s = slot * align;
            self.run_free(cyl, track, s, align).then_some(s)
        })
    }

    /// First free sector on the track at or after `from_sector` (wrapping),
    /// i.e. `free_sectors_from(..).next()`, but scanning whole 64-bit bitmap
    /// words with `trailing_zeros` instead of testing sectors one by one.
    pub fn first_free_from(&self, cyl: u32, track: u32, from_sector: u32) -> Option<u32> {
        let ti = self.track_index(cyl, track);
        if self.free_count[ti] == 0 {
            return None;
        }
        let spt = self.spt[ti];
        let bits = &self.bits[ti];
        let from = from_sector % spt;
        let wstart = from as usize / 64;
        // Bits beyond the track end are zero by construction, so a set bit
        // always names a valid sector.
        let w = bits[wstart] & (u64::MAX << (from % 64));
        if w != 0 {
            return Some(wstart as u32 * 64 + w.trailing_zeros());
        }
        for (wi, &w) in bits.iter().enumerate().skip(wstart + 1) {
            if w != 0 {
                return Some(wi as u32 * 64 + w.trailing_zeros());
            }
        }
        // Wrap: words before the start, then the low bits of the start word.
        for (wi, &w) in bits.iter().enumerate().take(wstart) {
            if w != 0 {
                return Some(wi as u32 * 64 + w.trailing_zeros());
            }
        }
        let w = bits[wstart] & !(u64::MAX << (from % 64));
        (w != 0).then(|| wstart as u32 * 64 + w.trailing_zeros())
    }

    /// First free aligned run of `align` sectors at or after `from_sector`
    /// (wrapping), equivalent to [`FreeMap::free_aligned_from`] but with an
    /// O(1) exit on tracks with no free slot and a byte-compare per slot
    /// when `align` is the indexed alignment.
    pub fn first_aligned_from(
        &self,
        cyl: u32,
        track: u32,
        from_sector: u32,
        align: u32,
    ) -> Option<u32> {
        if align == 1 {
            return self.first_free_from(cyl, track, from_sector);
        }
        let ti = self.track_index(cyl, track);
        if self.free_count[ti] < align {
            return None;
        }
        if align != INDEX_ALIGN {
            return self.free_aligned_from(cyl, track, from_sector, align);
        }
        if self.aligned_free[ti] == 0 {
            return None;
        }
        // Word-at-a-time: reduce each 64-bit word to its free-slot mask and
        // find the first set slot bit with `trailing_zeros`, instead of
        // byte-testing slots one by one. Same cyclic slot order as the
        // per-slot scan: start word (high slots), later words, earlier
        // words, start word (low slots).
        let slots = self.spt[ti] / align;
        let start_slot = from_sector.div_ceil(align) % slots;
        let words = &self.bits[ti];
        let ws = start_slot as usize / 8;
        let shift = (start_slot % 8) * 8;
        let m = Self::free_slot_bits(words[ws]) & (u64::MAX << shift);
        if m != 0 {
            return Some((ws as u32 * 8 + m.trailing_zeros() / 8) * align);
        }
        for (wi, &w) in words.iter().enumerate().skip(ws + 1) {
            let m = Self::free_slot_bits(w);
            if m != 0 {
                return Some((wi as u32 * 8 + m.trailing_zeros() / 8) * align);
            }
        }
        for (wi, &w) in words.iter().enumerate().take(ws) {
            let m = Self::free_slot_bits(w);
            if m != 0 {
                return Some((wi as u32 * 8 + m.trailing_zeros() / 8) * align);
            }
        }
        let m = Self::free_slot_bits(words[ws]) & !(u64::MAX << shift);
        (m != 0).then(|| (ws as u32 * 8 + m.trailing_zeros() / 8) * align)
    }

    /// Free sectors in a whole cylinder.
    #[inline]
    pub fn free_in_cylinder(&self, cyl: u32) -> u64 {
        self.cyl_free[cyl as usize]
    }

    /// Free [`INDEX_ALIGN`]-aligned slots in a whole cylinder.
    #[inline]
    pub fn aligned_in_cylinder(&self, cyl: u32) -> u32 {
        self.cyl_aligned[cyl as usize]
    }

    /// Completely empty tracks in a cylinder.
    #[inline]
    pub fn empty_in_cylinder(&self, cyl: u32) -> u32 {
        self.cyl_empty[cyl as usize]
    }

    /// Can this cylinder possibly hold a free run of `align` sectors?
    /// Exact for 1 and [`INDEX_ALIGN`]; a conservative (never false-negative)
    /// free-count bound otherwise. The allocator uses this to skip whole
    /// cylinders in O(1).
    #[inline]
    pub fn cylinder_has_candidate(&self, cyl: u32, align: u32) -> bool {
        match align {
            1 => self.cyl_free[cyl as usize] > 0,
            INDEX_ALIGN => self.cyl_aligned[cyl as usize] > 0,
            a => self.cyl_free[cyl as usize] >= a as u64,
        }
    }

    /// Find the nearest completely empty track to `cyl`, scanning outward in
    /// cylinder distance. Returns (cyl, track). The per-cylinder empty-track
    /// summary skips cylinders with nothing to offer in O(1).
    pub fn nearest_empty_track(&self, cyl: u32) -> Option<(u32, u32)> {
        let cyls = (self.bits.len() / self.tracks_per_cyl as usize) as u32;
        if self.empty_tracks == 0 {
            return None;
        }
        for d in 0..cyls {
            for candidate in [cyl.checked_sub(d), (cyl + d < cyls).then_some(cyl + d)]
                .into_iter()
                .flatten()
            {
                if self.cyl_empty[candidate as usize] > 0 {
                    for t in 0..self.tracks_per_cyl {
                        let ti = self.track_index(candidate, t);
                        if self.free_count[ti] == self.spt[ti] {
                            return Some((candidate, t));
                        }
                    }
                }
                if d == 0 {
                    break; // don't test cyl twice
                }
            }
        }
        None
    }

    /// Number of cylinders under management.
    pub fn cylinders(&self) -> u32 {
        (self.bits.len() / self.tracks_per_cyl as usize) as u32
    }

    /// Tracks per cylinder.
    pub fn tracks_in_cylinder(&self) -> u32 {
        self.tracks_per_cyl
    }

    /// Utilisation of one track, 0.0 (empty) – 1.0 (full).
    pub fn track_utilization(&self, cyl: u32, track: u32) -> f64 {
        let ti = self.track_index(cyl, track);
        1.0 - self.free_count[ti] as f64 / self.spt[ti] as f64
    }

    /// Number of tracks holding at least one live sector — the size of the
    /// utilization index, O(1).
    pub fn nonempty_tracks(&self) -> u32 {
        self.occ_by_util.len() as u32
    }

    /// The least-utilized track holding at least one live sector, skipping
    /// tracks rejected by `exclude`; ties resolve to the lowest global
    /// track index, matching a first-minimum full scan in `(cyl, track)`
    /// order. Cost is proportional to the number of excluded tracks
    /// inspected before a hit — O(1) amortized for the compactor's fixed
    /// exclusion set (the allocator fill track and the firmware track).
    pub fn least_utilized_nonempty(
        &self,
        mut exclude: impl FnMut(u32, u32) -> bool,
    ) -> Option<(u32, u32)> {
        self.occ_by_util
            .iter()
            .map(|&(_, ti)| (ti / self.tracks_per_cyl, ti % self.tracks_per_cyl))
            .find(|&(c, t)| !exclude(c, t))
    }

    /// Could this track possibly hold a free run of `align` sectors? Exact
    /// for 1 and [`INDEX_ALIGN`]; a conservative (never false-negative)
    /// free-count bound otherwise. O(1).
    #[inline]
    pub fn track_has_candidate(&self, cyl: u32, track: u32, align: u32) -> bool {
        let ti = self.track_index(cyl, track);
        match align {
            1 => self.free_count[ti] > 0,
            INDEX_ALIGN => self.aligned_free[ti] > 0,
            a => self.free_count[ti] >= a,
        }
    }

    /// The best-first allocation frontier: every track that might hold a
    /// free run of `align` sectors, in **nondecreasing order of the exact
    /// repositioning lower bound** from head position
    /// `(cur_cyl, cur_track)` — the same quantity
    /// `Disk::reposition_lower_bound_ns` computes (0 for the head's own
    /// track, `head_switch_ns` for the rest of its cylinder since a
    /// zero-distance seek is free, `seek_ns(d)` alone for a cylinder `d`
    /// away, whichever head). A best-first consumer can stop at the first
    /// unit whose lower bound exceeds its incumbent's exact cost.
    ///
    /// No heap is needed: `seek_ns` is nondecreasing in distance, so the
    /// ordering is a lazy two-stream merge of "rest of the current
    /// cylinder" (constant bound `head_switch_ns`) with "cylinder rings
    /// outward" (bound `seek_ns(d)`), plus the head track first. Cylinders
    /// and tracks with no possible candidate are skipped via the O(1)
    /// summaries. Each unit carries its [`FrontierTrack::rank`] in the
    /// reference scan order for exact tie-breaking.
    pub fn frontier<'a, F: Fn(u32) -> u64 + 'a>(
        &'a self,
        cur_cyl: u32,
        cur_track: u32,
        head_switch_ns: u64,
        seek_ns: F,
        align: u32,
    ) -> Frontier<'a, F> {
        let mut f = Frontier {
            map: self,
            seek_ns,
            align,
            cur_cyl,
            cur_track,
            head_switch_ns,
            cyls: self.cylinders(),
            tracks: self.tracks_per_cyl,
            head_emitted: false,
            same_t: 0,
            d: 1,
            side: 0,
            drain: None,
            next_b: None,
            last_lb: 0,
        };
        f.next_b = f.take_next_cylinder();
        f
    }
}

/// One unit of the best-first allocation frontier: a track, the exact lower
/// bound on the positioning cost of any candidate on it, and the track's
/// rank in the reference two-way scan order (distance-major, lower cylinder
/// before higher at each distance, track-minor) — minimising the pair
/// `(exact cost, rank)` lexicographically reproduces the reference scan's
/// `min_by_key` first-wins tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierTrack {
    /// Cylinder of the track.
    pub cyl: u32,
    /// Track (head) within the cylinder.
    pub track: u32,
    /// Exact repositioning lower bound from the head position the frontier
    /// was opened at.
    pub lower_bound_ns: u64,
    /// Position in the reference scan order, for tie-breaking.
    pub rank: u64,
}

/// Iterator state for [`FreeMap::frontier`].
#[derive(Debug)]
pub struct Frontier<'a, F> {
    map: &'a FreeMap,
    seek_ns: F,
    align: u32,
    cur_cyl: u32,
    cur_track: u32,
    head_switch_ns: u64,
    cyls: u32,
    tracks: u32,
    head_emitted: bool,
    /// Next track of the current cylinder to consider (stream A).
    same_t: u32,
    /// Next cylinder distance to open (stream B).
    d: u32,
    /// Which side of distance `d` is next: 0 = `cur - d`, 1 = `cur + d`.
    side: u8,
    /// The foreign cylinder currently being drained track by track.
    drain: Option<DrainCyl>,
    /// One-cylinder lookahead into stream B, so the A/B merge compares
    /// against the bound of the next cylinder that can actually produce a
    /// candidate.
    next_b: Option<DrainCyl>,
    /// Last emitted bound (debug ordering check).
    last_lb: u64,
}

#[derive(Debug, Clone, Copy)]
struct DrainCyl {
    cyl: u32,
    lower_bound_ns: u64,
    ord: u64,
    next_t: u32,
}

impl<F: Fn(u32) -> u64> Frontier<'_, F> {
    /// Advance stream B to the next cylinder (outward by distance, minus
    /// side before plus) that can hold a candidate, O(1) per skipped
    /// cylinder via the per-cylinder summaries.
    fn take_next_cylinder(&mut self) -> Option<DrainCyl> {
        while self.d < self.cyls {
            let d = self.d;
            let (cand, ord) = if self.side == 0 {
                self.side = 1;
                (self.cur_cyl.checked_sub(d), 2 * d as u64 - 1)
            } else {
                self.side = 0;
                self.d += 1;
                let c = self.cur_cyl + d;
                ((c < self.cyls).then_some(c), 2 * d as u64)
            };
            if let Some(c) = cand {
                if self.map.cylinder_has_candidate(c, self.align) {
                    return Some(DrainCyl {
                        cyl: c,
                        lower_bound_ns: (self.seek_ns)(d),
                        ord,
                        next_t: 0,
                    });
                }
            }
        }
        None
    }

    fn emit(&mut self, cyl: u32, track: u32, lower_bound_ns: u64, rank: u64) -> FrontierTrack {
        debug_assert!(lower_bound_ns >= self.last_lb, "frontier out of order");
        self.last_lb = lower_bound_ns;
        FrontierTrack {
            cyl,
            track,
            lower_bound_ns,
            rank,
        }
    }
}

impl<F: Fn(u32) -> u64> Iterator for Frontier<'_, F> {
    type Item = FrontierTrack;

    fn next(&mut self) -> Option<FrontierTrack> {
        let tracks = self.tracks as u64;
        loop {
            // The head's own track: lower bound 0, always first.
            if !self.head_emitted {
                self.head_emitted = true;
                if self
                    .map
                    .track_has_candidate(self.cur_cyl, self.cur_track, self.align)
                {
                    let (c, t) = (self.cur_cyl, self.cur_track);
                    return Some(self.emit(c, t, 0, t as u64));
                }
                continue;
            }
            // Drain the currently open foreign cylinder before any merge
            // decision: all its tracks share one bound.
            if let Some(dr) = &mut self.drain {
                while dr.next_t < self.tracks {
                    let t = dr.next_t;
                    dr.next_t += 1;
                    if self.map.track_has_candidate(dr.cyl, t, self.align) {
                        let (c, lb, rank) = (dr.cyl, dr.lower_bound_ns, dr.ord * tracks + t as u64);
                        return Some(self.emit(c, t, lb, rank));
                    }
                }
                self.drain = None;
                continue;
            }
            // Merge: remaining tracks of the current cylinder (bound =
            // head switch) vs the next candidate cylinder (bound =
            // seek(d)); emit from the cheaper stream, same-cylinder first
            // on ties (equal bounds make emission order irrelevant to
            // best-first consumers — ties are resolved by rank).
            let a_avail = self.same_t < self.tracks;
            if a_avail
                && self
                    .next_b
                    .is_none_or(|b| self.head_switch_ns <= b.lower_bound_ns)
            {
                while self.same_t < self.tracks {
                    let t = self.same_t;
                    self.same_t += 1;
                    if t == self.cur_track {
                        continue;
                    }
                    if self.map.track_has_candidate(self.cur_cyl, t, self.align) {
                        let (c, lb) = (self.cur_cyl, self.head_switch_ns);
                        return Some(self.emit(c, t, lb, t as u64));
                    }
                }
                continue;
            }
            match self.next_b.take() {
                Some(b) => {
                    self.drain = Some(b);
                    self.next_b = self.take_next_cylinder();
                }
                None => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> FreeMap {
        FreeMap::new(&Geometry::uniform(4, 2, 16))
    }

    #[test]
    fn starts_all_free() {
        let m = map();
        assert_eq!(m.total_sectors(), 128);
        assert_eq!(m.free_sectors(), 128);
        assert_eq!(m.empty_tracks(), 8);
        assert!(m.is_free(3, 1, 15));
        assert_eq!(m.utilization(), 0.0);
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut m = map();
        m.allocate(1, 0, 4, 8).unwrap();
        assert!(!m.is_free(1, 0, 4));
        assert!(!m.is_free(1, 0, 11));
        assert!(m.is_free(1, 0, 3));
        assert_eq!(m.free_in_track(1, 0), 8);
        assert_eq!(m.free_sectors(), 120);
        assert_eq!(m.empty_tracks(), 7);
        m.release(1, 0, 4, 8).unwrap();
        assert_eq!(m.free_sectors(), 128);
        assert_eq!(m.empty_tracks(), 8);
    }

    #[test]
    fn allocation_is_idempotent() {
        let mut m = map();
        m.allocate(0, 0, 0, 4).unwrap();
        m.allocate(0, 0, 0, 4).unwrap();
        assert_eq!(m.free_sectors(), 124);
        m.release(0, 0, 0, 2).unwrap();
        m.release(0, 0, 0, 2).unwrap();
        assert_eq!(m.free_sectors(), 126);
    }

    #[test]
    fn out_of_track_alloc_fails() {
        let mut m = map();
        assert!(m.allocate(0, 0, 14, 4).is_err());
    }

    #[test]
    fn free_sectors_from_is_rotational_order() {
        let mut m = map();
        m.allocate(0, 0, 0, 16).unwrap();
        m.release(0, 0, 2, 1).unwrap();
        m.release(0, 0, 10, 1).unwrap();
        let order: Vec<u32> = m.free_sectors_from(0, 0, 5).collect();
        assert_eq!(order, vec![10, 2]);
        let order: Vec<u32> = m.free_sectors_from(0, 0, 0).collect();
        assert_eq!(order, vec![2, 10]);
    }

    #[test]
    fn aligned_search_respects_alignment() {
        let mut m = map();
        // Occupy sector 1: block [0,8) is no longer free, block [8,16) is.
        m.allocate(0, 0, 1, 1).unwrap();
        assert_eq!(m.free_aligned_from(0, 0, 0, 8), Some(8));
        // From sector 9 the wrap search still only returns slot 8.
        assert_eq!(m.free_aligned_from(0, 0, 9, 8), Some(8));
        m.allocate(0, 0, 8, 8).unwrap();
        assert_eq!(m.free_aligned_from(0, 0, 0, 8), None);
    }

    #[test]
    fn aligned_iter_starts_at_next_boundary() {
        let m = map();
        let v: Vec<u32> = m.free_aligned_iter(0, 0, 3, 8).collect();
        assert_eq!(v, vec![8, 0]);
    }

    #[test]
    fn nearest_empty_track_scans_outward() {
        let mut m = map();
        // Fill every track except (3, 1) with one sector.
        for c in 0..4 {
            for t in 0..2 {
                if (c, t) != (3, 1) {
                    m.allocate(c, t, 0, 1).unwrap();
                }
            }
        }
        assert_eq!(m.nearest_empty_track(0), Some((3, 1)));
        assert_eq!(m.nearest_empty_track(3), Some((3, 1)));
        m.allocate(3, 1, 0, 1).unwrap();
        assert_eq!(m.nearest_empty_track(0), None);
    }

    #[test]
    fn track_utilization_tracks_fill() {
        let mut m = map();
        assert_eq!(m.track_utilization(0, 0), 0.0);
        m.allocate(0, 0, 0, 8).unwrap();
        assert!((m.track_utilization(0, 0) - 0.5).abs() < 1e-12);
    }

    /// Full-rescan oracle for the utilization index: the pre-index pick —
    /// first minimum of the f64 utilization in `(cyl, track)` scan order,
    /// over tracks with live data.
    fn least_utilized_rescan(
        m: &FreeMap,
        mut exclude: impl FnMut(u32, u32) -> bool,
    ) -> Option<(u32, u32)> {
        let mut best: Option<((u32, u32), f64)> = None;
        for c in 0..m.cylinders() {
            for t in 0..m.tracks_in_cylinder() {
                if m.free_in_track(c, t) == m.sectors_per_track(m.track_index(c, t))
                    || exclude(c, t)
                {
                    continue;
                }
                let u = m.track_utilization(c, t);
                if best.is_none_or(|(_, b)| u < b) {
                    best = Some(((c, t), u));
                }
            }
        }
        best.map(|(ct, _)| ct)
    }

    #[test]
    fn utilization_index_matches_rescan_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Mixed-width geometries exercise the cross-spt key ordering.
        for (cyls, tracks, spt) in [(4u32, 2u32, 16u32), (6, 3, 72), (3, 2, 256)] {
            let g = Geometry::uniform(cyls, tracks, spt);
            let mut m = FreeMap::new(&g);
            let mut rng = StdRng::seed_from_u64(0x0CCB ^ (cyls as u64) << 8 | spt as u64);
            for step in 0..600 {
                let c = rng.gen_range(0..cyls);
                let t = rng.gen_range(0..tracks);
                let s = rng.gen_range(0..spt);
                let n = rng.gen_range(1..(spt - s).clamp(2, 9));
                if rng.gen_bool(0.55) {
                    m.allocate(c, t, s, n).unwrap();
                } else {
                    m.release(c, t, s, n).unwrap();
                }
                let no_excl = |_: u32, _: u32| false;
                assert_eq!(
                    m.least_utilized_nonempty(no_excl),
                    least_utilized_rescan(&m, no_excl),
                    "step {step} on {cyls}x{tracks}x{spt}"
                );
                // And with an exclusion, as the compactor applies one.
                let excl = |cc: u32, tt: u32| (cc, tt) == (0, 0);
                assert_eq!(
                    m.least_utilized_nonempty(excl),
                    least_utilized_rescan(&m, excl)
                );
                let nonempty = (0..cyls)
                    .flat_map(|c| (0..tracks).map(move |t| (c, t)))
                    .filter(|&(c, t)| m.free_in_track(c, t) < spt)
                    .count() as u32;
                assert_eq!(m.nonempty_tracks(), nonempty);
            }
        }
    }

    /// Random occupancies: the SWAR word-scan aligned search must agree
    /// with the linear per-slot oracle at every starting sector.
    #[test]
    fn swar_aligned_scan_matches_linear_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for (cyls, tracks, spt) in [(2u32, 2u32, 72u32), (2, 2, 256), (2, 1, 16)] {
            let g = Geometry::uniform(cyls, tracks, spt);
            let mut m = FreeMap::new(&g);
            let mut rng = StdRng::seed_from_u64(0x5A4F ^ spt as u64);
            for _ in 0..300 {
                let c = rng.gen_range(0..cyls);
                let t = rng.gen_range(0..tracks);
                let s = rng.gen_range(0..spt);
                if rng.gen_bool(0.6) {
                    m.allocate(c, t, s, 1).unwrap();
                } else {
                    m.release(c, t, s, 1).unwrap();
                }
                let from = rng.gen_range(0..spt);
                assert_eq!(
                    m.first_aligned_from(c, t, from, INDEX_ALIGN),
                    m.free_aligned_from(c, t, from, INDEX_ALIGN),
                    "{cyls}x{tracks}x{spt} from={from}"
                );
            }
        }
    }

    /// `allocate_bulk` over a random LBA bitmap must leave the map — bits
    /// and every summary — identical to per-sector `allocate` calls.
    #[test]
    fn allocate_bulk_matches_per_sector_allocate() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for (cyls, tracks, spt) in [(4u32, 2u32, 16u32), (6, 3, 72), (3, 2, 256)] {
            let g = Geometry::uniform(cyls, tracks, spt);
            let total = g.total_sectors();
            let mut rng = StdRng::seed_from_u64(0xB01C ^ total);
            let mut used = vec![0u64; (total as usize).div_ceil(64)];
            let mut seq = FreeMap::new(&g);
            for lba in 0..total {
                if rng.gen_bool(0.6) {
                    used[lba as usize / 64] |= 1 << (lba % 64);
                    let p = g.lba_to_phys(lba).unwrap();
                    seq.allocate(p.cyl, p.track, p.sector, 1).unwrap();
                }
            }
            let mut bulk = FreeMap::new(&g);
            bulk.allocate_bulk(&used);
            assert_eq!(bulk.free_sectors(), seq.free_sectors());
            assert_eq!(bulk.empty_tracks(), seq.empty_tracks());
            assert_eq!(bulk.nonempty_tracks(), seq.nonempty_tracks());
            let no_excl = |_: u32, _: u32| false;
            assert_eq!(
                bulk.least_utilized_nonempty(no_excl),
                seq.least_utilized_nonempty(no_excl)
            );
            for c in 0..cyls {
                assert_eq!(bulk.free_in_cylinder(c), seq.free_in_cylinder(c));
                assert_eq!(bulk.aligned_in_cylinder(c), seq.aligned_in_cylinder(c));
                assert_eq!(bulk.empty_in_cylinder(c), seq.empty_in_cylinder(c));
                for t in 0..tracks {
                    assert_eq!(bulk.free_in_track(c, t), seq.free_in_track(c, t));
                    for s in 0..spt {
                        assert_eq!(bulk.is_free(c, t, s), seq.is_free(c, t, s));
                    }
                    assert_eq!(
                        bulk.first_aligned_from(c, t, 3, INDEX_ALIGN),
                        seq.first_aligned_from(c, t, 3, INDEX_ALIGN)
                    );
                }
            }
        }
    }

    /// The frontier must (a) emit lower bounds in nondecreasing order, (b)
    /// cover exactly the tracks that can hold a candidate, (c) report the
    /// exact repositioning lower bound and the reference-scan rank.
    #[test]
    fn frontier_orders_exactly_by_lower_bound() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::HashSet;
        let (cyls, tracks, spt) = (9u32, 3u32, 16u32);
        let g = Geometry::uniform(cyls, tracks, spt);
        let mut rng = StdRng::seed_from_u64(0xF407);
        let seek = |d: u32| if d == 0 { 0 } else { 1_000 + 400 * d as u64 };
        // Head switch both cheaper and dearer than a short seek.
        for switch in [700u64, 2_600] {
            let mut m = FreeMap::new(&g);
            for c in 0..cyls {
                for t in 0..tracks {
                    for s in 0..spt {
                        if rng.gen_bool(0.8) {
                            m.allocate(c, t, s, 1).unwrap();
                        }
                    }
                }
            }
            for align in [1u32, INDEX_ALIGN] {
                let (hc, ht) = (rng.gen_range(0..cyls), rng.gen_range(0..tracks));
                let units: Vec<FrontierTrack> =
                    m.frontier(hc, ht, switch, seek, align).collect();
                let mut last = 0u64;
                let mut seen = HashSet::new();
                let mut ranks = HashSet::new();
                for u in &units {
                    assert!(u.lower_bound_ns >= last, "out of order: {u:?}");
                    last = u.lower_bound_ns;
                    let expect = if u.cyl == hc {
                        if u.track == ht {
                            0
                        } else {
                            switch
                        }
                    } else {
                        seek(hc.abs_diff(u.cyl))
                    };
                    assert_eq!(u.lower_bound_ns, expect, "{u:?}");
                    let ord = if u.cyl == hc {
                        0
                    } else if u.cyl < hc {
                        2 * (hc - u.cyl) as u64 - 1
                    } else {
                        2 * (u.cyl - hc) as u64
                    };
                    assert_eq!(u.rank, ord * tracks as u64 + u.track as u64);
                    assert!(seen.insert((u.cyl, u.track)), "duplicate {u:?}");
                    assert!(ranks.insert(u.rank));
                }
                // Coverage: exactly the tracks with a possible candidate
                // (the per-track summary is exact for aligns 1 and 8).
                for c in 0..cyls {
                    for t in 0..tracks {
                        assert_eq!(
                            seen.contains(&(c, t)),
                            m.track_has_candidate(c, t, align),
                            "coverage {c},{t} align {align}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn works_on_wide_tracks() {
        // 256-sector ST19101 tracks span four bitmap words.
        let g = Geometry::uniform(2, 2, 256);
        let mut m = FreeMap::new(&g);
        m.allocate(1, 1, 250, 6).unwrap();
        assert!(!m.is_free(1, 1, 255));
        assert!(m.is_free(1, 1, 249));
        assert_eq!(m.free_in_track(1, 1), 250);
        let firsts: Vec<u32> = m.free_sectors_from(1, 1, 249).take(2).collect();
        assert_eq!(firsts, vec![249, 0]);
    }
}
