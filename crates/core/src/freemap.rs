//! Sector-granularity free-space accounting, organised by track.
//!
//! Eager writing is all about knowing, cheaply, which sectors near the head
//! are free. [`FreeMap`] keeps one bitmap per track plus per-track free
//! counts, so the allocator can ask:
//!
//! * is this sector (or 8-sector-aligned block) free?
//! * how full is this track? (drives the fill-to-threshold policy of §2.3)
//! * which tracks are completely empty? (the compactor's output pool)
//!
//! The map is an in-memory structure; after a crash it is reconstructed from
//! the recovered indirection map (everything not live is free).

use disksim::{Geometry, Result};

/// Bitmapped free-sector map over an entire disk.
#[derive(Debug, Clone)]
pub struct FreeMap {
    /// One bitmap word-vector per track, indexed by global track number.
    bits: Vec<Vec<u64>>,
    /// Free sectors per track.
    free_count: Vec<u32>,
    /// Sectors per track, per global track (varies across zones).
    spt: Vec<u32>,
    /// Tracks per cylinder, for global-track indexing.
    tracks_per_cyl: u32,
    /// Total free sectors.
    total_free: u64,
    /// Total sectors.
    total: u64,
    /// Number of completely empty tracks.
    empty_tracks: u32,
}

impl FreeMap {
    /// Build a map with every sector free.
    pub fn new(geometry: &Geometry) -> Self {
        let tracks_per_cyl = geometry.tracks_per_cylinder();
        let n_tracks = geometry.cylinders() as usize * tracks_per_cyl as usize;
        let mut bits = Vec::with_capacity(n_tracks);
        let mut free_count = Vec::with_capacity(n_tracks);
        let mut spt_v = Vec::with_capacity(n_tracks);
        for cyl in 0..geometry.cylinders() {
            let spt = geometry
                .sectors_per_track(cyl)
                .expect("cylinder in range by construction");
            for _ in 0..tracks_per_cyl {
                let words = (spt as usize).div_ceil(64);
                let mut v = vec![u64::MAX; words];
                // Mask off bits beyond the track end.
                let excess = words * 64 - spt as usize;
                if excess > 0 {
                    *v.last_mut().expect("at least one word") >>= excess;
                }
                bits.push(v);
                free_count.push(spt);
                spt_v.push(spt);
            }
        }
        let total = geometry.total_sectors();
        Self {
            bits,
            free_count,
            spt: spt_v,
            tracks_per_cyl,
            total_free: total,
            total,
            empty_tracks: n_tracks as u32,
        }
    }

    /// Global track index for (cylinder, track).
    #[inline]
    pub fn track_index(&self, cyl: u32, track: u32) -> usize {
        cyl as usize * self.tracks_per_cyl as usize + track as usize
    }

    /// Sectors per track at this global track index.
    #[inline]
    pub fn sectors_per_track(&self, ti: usize) -> u32 {
        self.spt[ti]
    }

    /// Total sectors under management.
    #[inline]
    pub fn total_sectors(&self) -> u64 {
        self.total
    }

    /// Free sectors remaining.
    #[inline]
    pub fn free_sectors(&self) -> u64 {
        self.total_free
    }

    /// Fraction of sectors in use, 0.0–1.0.
    pub fn utilization(&self) -> f64 {
        1.0 - self.total_free as f64 / self.total as f64
    }

    /// Number of completely empty tracks.
    #[inline]
    pub fn empty_tracks(&self) -> u32 {
        self.empty_tracks
    }

    /// Free sectors on the given track.
    #[inline]
    pub fn free_in_track(&self, cyl: u32, track: u32) -> u32 {
        self.free_count[self.track_index(cyl, track)]
    }

    /// Is the single sector at (cyl, track, sector) free?
    pub fn is_free(&self, cyl: u32, track: u32, sector: u32) -> bool {
        let ti = self.track_index(cyl, track);
        debug_assert!(sector < self.spt[ti]);
        self.bits[ti][sector as usize / 64] >> (sector % 64) & 1 == 1
    }

    /// Are all `count` sectors starting at `sector` on this track free?
    pub fn run_free(&self, cyl: u32, track: u32, sector: u32, count: u32) -> bool {
        (sector..sector + count).all(|s| self.is_free(cyl, track, s))
    }

    fn set(&mut self, cyl: u32, track: u32, sector: u32, count: u32, free: bool) -> Result<()> {
        let ti = self.track_index(cyl, track);
        let spt = self.spt[ti];
        if sector + count > spt {
            return Err(disksim::DiskError::OutOfRange {
                addr: (sector + count) as u64,
                limit: spt as u64,
            });
        }
        let was_empty = self.free_count[ti] == spt;
        for s in sector..sector + count {
            let w = &mut self.bits[ti][s as usize / 64];
            let mask = 1u64 << (s % 64);
            let cur = *w & mask != 0;
            if cur != free {
                if free {
                    *w |= mask;
                    self.free_count[ti] += 1;
                    self.total_free += 1;
                } else {
                    *w &= !mask;
                    self.free_count[ti] -= 1;
                    self.total_free -= 1;
                }
            }
        }
        let now_empty = self.free_count[ti] == spt;
        match (was_empty, now_empty) {
            (true, false) => self.empty_tracks -= 1,
            (false, true) => self.empty_tracks += 1,
            _ => {}
        }
        Ok(())
    }

    /// Mark sectors in use. Idempotent.
    pub fn allocate(&mut self, cyl: u32, track: u32, sector: u32, count: u32) -> Result<()> {
        self.set(cyl, track, sector, count, false)
    }

    /// Mark sectors free. Idempotent.
    pub fn release(&mut self, cyl: u32, track: u32, sector: u32, count: u32) -> Result<()> {
        self.set(cyl, track, sector, count, true)
    }

    /// Iterate the free single sectors of a track, starting the scan at
    /// `from_sector` and wrapping around — i.e. in rotational encounter
    /// order for a head arriving at `from_sector`.
    pub fn free_sectors_from(
        &self,
        cyl: u32,
        track: u32,
        from_sector: u32,
    ) -> impl Iterator<Item = u32> + '_ {
        let ti = self.track_index(cyl, track);
        let spt = self.spt[ti];
        let bits = &self.bits[ti];
        (0..spt).filter_map(move |i| {
            let s = (from_sector + i) % spt;
            (bits[s as usize / 64] >> (s % 64) & 1 == 1).then_some(s)
        })
    }

    /// First free aligned run of `align` sectors on the track at or after
    /// `from_sector` (wrapping), in rotational encounter order.
    pub fn free_aligned_from(
        &self,
        cyl: u32,
        track: u32,
        from_sector: u32,
        align: u32,
    ) -> Option<u32> {
        self.free_aligned_iter(cyl, track, from_sector, align)
            .next()
    }

    /// All free aligned runs of `align` sectors, in rotational encounter
    /// order starting from `from_sector`.
    pub fn free_aligned_iter(
        &self,
        cyl: u32,
        track: u32,
        from_sector: u32,
        align: u32,
    ) -> impl Iterator<Item = u32> + '_ {
        let ti = self.track_index(cyl, track);
        let spt = self.spt[ti];
        let slots = spt / align;
        let start_slot = from_sector.div_ceil(align) % slots.max(1);
        (0..slots).filter_map(move |i| {
            let slot = (start_slot + i) % slots;
            let s = slot * align;
            self.run_free(cyl, track, s, align).then_some(s)
        })
    }

    /// Find the nearest completely empty track to `cyl`, scanning outward in
    /// cylinder distance. Returns (cyl, track).
    pub fn nearest_empty_track(&self, cyl: u32) -> Option<(u32, u32)> {
        let cyls = (self.bits.len() / self.tracks_per_cyl as usize) as u32;
        for d in 0..cyls {
            for candidate in [cyl.checked_sub(d), (cyl + d < cyls).then_some(cyl + d)]
                .into_iter()
                .flatten()
            {
                for t in 0..self.tracks_per_cyl {
                    let ti = self.track_index(candidate, t);
                    if self.free_count[ti] == self.spt[ti] {
                        return Some((candidate, t));
                    }
                }
                if d == 0 {
                    break; // don't test cyl twice
                }
            }
        }
        None
    }

    /// Number of cylinders under management.
    pub fn cylinders(&self) -> u32 {
        (self.bits.len() / self.tracks_per_cyl as usize) as u32
    }

    /// Tracks per cylinder.
    pub fn tracks_in_cylinder(&self) -> u32 {
        self.tracks_per_cyl
    }

    /// Utilisation of one track, 0.0 (empty) – 1.0 (full).
    pub fn track_utilization(&self, cyl: u32, track: u32) -> f64 {
        let ti = self.track_index(cyl, track);
        1.0 - self.free_count[ti] as f64 / self.spt[ti] as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> FreeMap {
        FreeMap::new(&Geometry::uniform(4, 2, 16))
    }

    #[test]
    fn starts_all_free() {
        let m = map();
        assert_eq!(m.total_sectors(), 128);
        assert_eq!(m.free_sectors(), 128);
        assert_eq!(m.empty_tracks(), 8);
        assert!(m.is_free(3, 1, 15));
        assert_eq!(m.utilization(), 0.0);
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut m = map();
        m.allocate(1, 0, 4, 8).unwrap();
        assert!(!m.is_free(1, 0, 4));
        assert!(!m.is_free(1, 0, 11));
        assert!(m.is_free(1, 0, 3));
        assert_eq!(m.free_in_track(1, 0), 8);
        assert_eq!(m.free_sectors(), 120);
        assert_eq!(m.empty_tracks(), 7);
        m.release(1, 0, 4, 8).unwrap();
        assert_eq!(m.free_sectors(), 128);
        assert_eq!(m.empty_tracks(), 8);
    }

    #[test]
    fn allocation_is_idempotent() {
        let mut m = map();
        m.allocate(0, 0, 0, 4).unwrap();
        m.allocate(0, 0, 0, 4).unwrap();
        assert_eq!(m.free_sectors(), 124);
        m.release(0, 0, 0, 2).unwrap();
        m.release(0, 0, 0, 2).unwrap();
        assert_eq!(m.free_sectors(), 126);
    }

    #[test]
    fn out_of_track_alloc_fails() {
        let mut m = map();
        assert!(m.allocate(0, 0, 14, 4).is_err());
    }

    #[test]
    fn free_sectors_from_is_rotational_order() {
        let mut m = map();
        m.allocate(0, 0, 0, 16).unwrap();
        m.release(0, 0, 2, 1).unwrap();
        m.release(0, 0, 10, 1).unwrap();
        let order: Vec<u32> = m.free_sectors_from(0, 0, 5).collect();
        assert_eq!(order, vec![10, 2]);
        let order: Vec<u32> = m.free_sectors_from(0, 0, 0).collect();
        assert_eq!(order, vec![2, 10]);
    }

    #[test]
    fn aligned_search_respects_alignment() {
        let mut m = map();
        // Occupy sector 1: block [0,8) is no longer free, block [8,16) is.
        m.allocate(0, 0, 1, 1).unwrap();
        assert_eq!(m.free_aligned_from(0, 0, 0, 8), Some(8));
        // From sector 9 the wrap search still only returns slot 8.
        assert_eq!(m.free_aligned_from(0, 0, 9, 8), Some(8));
        m.allocate(0, 0, 8, 8).unwrap();
        assert_eq!(m.free_aligned_from(0, 0, 0, 8), None);
    }

    #[test]
    fn aligned_iter_starts_at_next_boundary() {
        let m = map();
        let v: Vec<u32> = m.free_aligned_iter(0, 0, 3, 8).collect();
        assert_eq!(v, vec![8, 0]);
    }

    #[test]
    fn nearest_empty_track_scans_outward() {
        let mut m = map();
        // Fill every track except (3, 1) with one sector.
        for c in 0..4 {
            for t in 0..2 {
                if (c, t) != (3, 1) {
                    m.allocate(c, t, 0, 1).unwrap();
                }
            }
        }
        assert_eq!(m.nearest_empty_track(0), Some((3, 1)));
        assert_eq!(m.nearest_empty_track(3), Some((3, 1)));
        m.allocate(3, 1, 0, 1).unwrap();
        assert_eq!(m.nearest_empty_track(0), None);
    }

    #[test]
    fn track_utilization_tracks_fill() {
        let mut m = map();
        assert_eq!(m.track_utilization(0, 0), 0.0);
        m.allocate(0, 0, 0, 8).unwrap();
        assert!((m.track_utilization(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn works_on_wide_tracks() {
        // 256-sector ST19101 tracks span four bitmap words.
        let g = Geometry::uniform(2, 2, 256);
        let mut m = FreeMap::new(&g);
        m.allocate(1, 1, 250, 6).unwrap();
        assert!(!m.is_free(1, 1, 255));
        assert!(m.is_free(1, 1, 249));
        assert_eq!(m.free_in_track(1, 1), 250);
        let firsts: Vec<u32> = m.free_sectors_from(1, 1, 249).take(2).collect();
        assert_eq!(firsts, vec![249, 0]);
    }
}
