//! Sector-granularity free-space accounting, organised by track.
//!
//! Eager writing is all about knowing, cheaply, which sectors near the head
//! are free. [`FreeMap`] keeps one bitmap per track plus per-track free
//! counts, so the allocator can ask:
//!
//! * is this sector (or 8-sector-aligned block) free?
//! * how full is this track? (drives the fill-to-threshold policy of §2.3)
//! * which tracks are completely empty? (the compactor's output pool)
//!
//! The map is an in-memory structure; after a crash it is reconstructed from
//! the recovered indirection map (everything not live is free).

use std::collections::BTreeSet;

use disksim::{Geometry, Result};

/// The block alignment the hierarchical index tracks exactly: the paper's
/// 4 KB block is 8 sectors, and 8 divides the 64-bit bitmap word, so an
/// aligned slot is one byte of a word.
pub const INDEX_ALIGN: u32 = 8;

/// Fixed-point scale of the utilization-index key. Two distinct track
/// utilizations `a/s1 != b/s2` differ by at least `1/(s1*s2)`, so with
/// `s <= 2^(SHIFT/2)` sectors per track the scaled keys differ by ≥ 1 and
/// integer truncation preserves the exact rational order (equal fractions
/// still collide, which is what the track-index tie-break is for).
const UTIL_KEY_SHIFT: u32 = 20;

/// Bitmapped free-sector map over an entire disk.
#[derive(Debug, Clone)]
pub struct FreeMap {
    /// One bitmap word-vector per track, indexed by global track number.
    bits: Vec<Vec<u64>>,
    /// Free sectors per track.
    free_count: Vec<u32>,
    /// Sectors per track, per global track (varies across zones).
    spt: Vec<u32>,
    /// Tracks per cylinder, for global-track indexing.
    tracks_per_cyl: u32,
    /// Total free sectors.
    total_free: u64,
    /// Total sectors.
    total: u64,
    /// Number of completely empty tracks.
    empty_tracks: u32,
    /// Free sectors per cylinder (summary over the cylinder's tracks).
    cyl_free: Vec<u64>,
    /// Free [`INDEX_ALIGN`]-aligned slots per track.
    aligned_free: Vec<u32>,
    /// Free [`INDEX_ALIGN`]-aligned slots per cylinder.
    cyl_aligned: Vec<u32>,
    /// Completely empty tracks per cylinder.
    cyl_empty: Vec<u32>,
    /// Utilization-ordered index of the *non-empty* tracks:
    /// `(util_key, global track index)`, maintained incrementally by
    /// [`FreeMap::set`]. `first()` is the least-utilized track holding live
    /// data, with ties resolved to the lowest track index — the same answer
    /// a full `(cyl, track)` scan taking the first minimum would give.
    occ_by_util: BTreeSet<(u64, u32)>,
}

impl FreeMap {
    /// Build a map with every sector free.
    pub fn new(geometry: &Geometry) -> Self {
        let tracks_per_cyl = geometry.tracks_per_cylinder();
        let n_tracks = geometry.cylinders() as usize * tracks_per_cyl as usize;
        let mut bits = Vec::with_capacity(n_tracks);
        let mut free_count = Vec::with_capacity(n_tracks);
        let mut spt_v = Vec::with_capacity(n_tracks);
        for cyl in 0..geometry.cylinders() {
            let spt = geometry
                .sectors_per_track(cyl)
                .expect("cylinder in range by construction");
            for _ in 0..tracks_per_cyl {
                let words = (spt as usize).div_ceil(64);
                let mut v = vec![u64::MAX; words];
                // Mask off bits beyond the track end.
                let excess = words * 64 - spt as usize;
                if excess > 0 {
                    *v.last_mut().expect("at least one word") >>= excess;
                }
                bits.push(v);
                free_count.push(spt);
                spt_v.push(spt);
            }
        }
        let total = geometry.total_sectors();
        let n_cyls = geometry.cylinders() as usize;
        let mut cyl_free = vec![0u64; n_cyls];
        let mut cyl_aligned = vec![0u32; n_cyls];
        let aligned_free: Vec<u32> = spt_v.iter().map(|&spt| spt / INDEX_ALIGN).collect();
        for (ti, &spt) in spt_v.iter().enumerate() {
            let cyl = ti / tracks_per_cyl as usize;
            cyl_free[cyl] += spt as u64;
            cyl_aligned[cyl] += aligned_free[ti];
        }
        Self {
            bits,
            free_count,
            spt: spt_v,
            tracks_per_cyl,
            total_free: total,
            total,
            empty_tracks: n_tracks as u32,
            cyl_free,
            aligned_free,
            cyl_aligned,
            cyl_empty: vec![tracks_per_cyl; n_cyls],
            occ_by_util: BTreeSet::new(),
        }
    }

    /// Fixed-point utilization key of a track with `free` of `spt` sectors
    /// free; see [`UTIL_KEY_SHIFT`] for why truncation is order-exact.
    #[inline]
    fn util_key(spt: u32, free: u32) -> u64 {
        debug_assert!(spt <= 1 << (UTIL_KEY_SHIFT / 2));
        (((spt - free) as u64) << UTIL_KEY_SHIFT) / spt as u64
    }

    /// Global track index for (cylinder, track).
    #[inline]
    pub fn track_index(&self, cyl: u32, track: u32) -> usize {
        cyl as usize * self.tracks_per_cyl as usize + track as usize
    }

    /// Sectors per track at this global track index.
    #[inline]
    pub fn sectors_per_track(&self, ti: usize) -> u32 {
        self.spt[ti]
    }

    /// Total sectors under management.
    #[inline]
    pub fn total_sectors(&self) -> u64 {
        self.total
    }

    /// Free sectors remaining.
    #[inline]
    pub fn free_sectors(&self) -> u64 {
        self.total_free
    }

    /// Fraction of sectors in use, 0.0–1.0.
    pub fn utilization(&self) -> f64 {
        1.0 - self.total_free as f64 / self.total as f64
    }

    /// Number of completely empty tracks.
    #[inline]
    pub fn empty_tracks(&self) -> u32 {
        self.empty_tracks
    }

    /// Free sectors on the given track.
    #[inline]
    pub fn free_in_track(&self, cyl: u32, track: u32) -> u32 {
        self.free_count[self.track_index(cyl, track)]
    }

    /// Is the single sector at (cyl, track, sector) free?
    pub fn is_free(&self, cyl: u32, track: u32, sector: u32) -> bool {
        let ti = self.track_index(cyl, track);
        debug_assert!(sector < self.spt[ti]);
        self.bits[ti][sector as usize / 64] >> (sector % 64) & 1 == 1
    }

    /// Are all `count` sectors starting at `sector` on this track free?
    pub fn run_free(&self, cyl: u32, track: u32, sector: u32, count: u32) -> bool {
        (sector..sector + count).all(|s| self.is_free(cyl, track, s))
    }

    /// Is the [`INDEX_ALIGN`]-aligned slot `slot` of global track `ti`
    /// entirely free? A slot is one byte of a bitmap word (8 divides 64),
    /// so the test is a single byte compare.
    #[inline]
    fn slot_free(&self, ti: usize, slot: u32) -> bool {
        (self.bits[ti][slot as usize / 8] >> ((slot % 8) * 8)) & 0xFF == 0xFF
    }

    fn set(&mut self, cyl: u32, track: u32, sector: u32, count: u32, free: bool) -> Result<()> {
        let ti = self.track_index(cyl, track);
        let spt = self.spt[ti];
        if sector + count > spt {
            return Err(disksim::DiskError::OutOfRange {
                addr: (sector + count) as u64,
                limit: spt as u64,
            });
        }
        let was_empty = self.free_count[ti] == spt;
        let free_before = self.free_count[ti];
        let slots = spt / INDEX_ALIGN;
        for s in sector..sector + count {
            let w = &mut self.bits[ti][s as usize / 64];
            let mask = 1u64 << (s % 64);
            let cur = *w & mask != 0;
            if cur != free {
                let slot = s / INDEX_ALIGN;
                let slot_was = slot < slots && self.slot_free(ti, slot);
                let w = &mut self.bits[ti][s as usize / 64];
                if free {
                    *w |= mask;
                    self.free_count[ti] += 1;
                    self.total_free += 1;
                    self.cyl_free[cyl as usize] += 1;
                } else {
                    *w &= !mask;
                    self.free_count[ti] -= 1;
                    self.total_free -= 1;
                    self.cyl_free[cyl as usize] -= 1;
                }
                if slot < slots {
                    let slot_is = self.slot_free(ti, slot);
                    match (slot_was, slot_is) {
                        (true, false) => {
                            self.aligned_free[ti] -= 1;
                            self.cyl_aligned[cyl as usize] -= 1;
                        }
                        (false, true) => {
                            self.aligned_free[ti] += 1;
                            self.cyl_aligned[cyl as usize] += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        let free_after = self.free_count[ti];
        if free_before != free_after {
            if free_before < spt {
                self.occ_by_util
                    .remove(&(Self::util_key(spt, free_before), ti as u32));
            }
            if free_after < spt {
                self.occ_by_util
                    .insert((Self::util_key(spt, free_after), ti as u32));
            }
        }
        let now_empty = self.free_count[ti] == spt;
        match (was_empty, now_empty) {
            (true, false) => {
                self.empty_tracks -= 1;
                self.cyl_empty[cyl as usize] -= 1;
            }
            (false, true) => {
                self.empty_tracks += 1;
                self.cyl_empty[cyl as usize] += 1;
            }
            _ => {}
        }
        Ok(())
    }

    /// Mark sectors in use. Idempotent.
    pub fn allocate(&mut self, cyl: u32, track: u32, sector: u32, count: u32) -> Result<()> {
        self.set(cyl, track, sector, count, false)
    }

    /// Mark sectors free. Idempotent.
    pub fn release(&mut self, cyl: u32, track: u32, sector: u32, count: u32) -> Result<()> {
        self.set(cyl, track, sector, count, true)
    }

    /// Iterate the free single sectors of a track, starting the scan at
    /// `from_sector` and wrapping around — i.e. in rotational encounter
    /// order for a head arriving at `from_sector`.
    pub fn free_sectors_from(
        &self,
        cyl: u32,
        track: u32,
        from_sector: u32,
    ) -> impl Iterator<Item = u32> + '_ {
        let ti = self.track_index(cyl, track);
        let spt = self.spt[ti];
        let bits = &self.bits[ti];
        (0..spt).filter_map(move |i| {
            let s = (from_sector + i) % spt;
            (bits[s as usize / 64] >> (s % 64) & 1 == 1).then_some(s)
        })
    }

    /// First free aligned run of `align` sectors on the track at or after
    /// `from_sector` (wrapping), in rotational encounter order.
    pub fn free_aligned_from(
        &self,
        cyl: u32,
        track: u32,
        from_sector: u32,
        align: u32,
    ) -> Option<u32> {
        self.free_aligned_iter(cyl, track, from_sector, align)
            .next()
    }

    /// All free aligned runs of `align` sectors, in rotational encounter
    /// order starting from `from_sector`.
    pub fn free_aligned_iter(
        &self,
        cyl: u32,
        track: u32,
        from_sector: u32,
        align: u32,
    ) -> impl Iterator<Item = u32> + '_ {
        let ti = self.track_index(cyl, track);
        let spt = self.spt[ti];
        let slots = spt / align;
        let start_slot = from_sector.div_ceil(align) % slots.max(1);
        (0..slots).filter_map(move |i| {
            let slot = (start_slot + i) % slots;
            let s = slot * align;
            self.run_free(cyl, track, s, align).then_some(s)
        })
    }

    /// First free sector on the track at or after `from_sector` (wrapping),
    /// i.e. `free_sectors_from(..).next()`, but scanning whole 64-bit bitmap
    /// words with `trailing_zeros` instead of testing sectors one by one.
    pub fn first_free_from(&self, cyl: u32, track: u32, from_sector: u32) -> Option<u32> {
        let ti = self.track_index(cyl, track);
        if self.free_count[ti] == 0 {
            return None;
        }
        let spt = self.spt[ti];
        let bits = &self.bits[ti];
        let from = from_sector % spt;
        let wstart = from as usize / 64;
        // Bits beyond the track end are zero by construction, so a set bit
        // always names a valid sector.
        let w = bits[wstart] & (u64::MAX << (from % 64));
        if w != 0 {
            return Some(wstart as u32 * 64 + w.trailing_zeros());
        }
        for (wi, &w) in bits.iter().enumerate().skip(wstart + 1) {
            if w != 0 {
                return Some(wi as u32 * 64 + w.trailing_zeros());
            }
        }
        // Wrap: words before the start, then the low bits of the start word.
        for (wi, &w) in bits.iter().enumerate().take(wstart) {
            if w != 0 {
                return Some(wi as u32 * 64 + w.trailing_zeros());
            }
        }
        let w = bits[wstart] & !(u64::MAX << (from % 64));
        (w != 0).then(|| wstart as u32 * 64 + w.trailing_zeros())
    }

    /// First free aligned run of `align` sectors at or after `from_sector`
    /// (wrapping), equivalent to [`FreeMap::free_aligned_from`] but with an
    /// O(1) exit on tracks with no free slot and a byte-compare per slot
    /// when `align` is the indexed alignment.
    pub fn first_aligned_from(
        &self,
        cyl: u32,
        track: u32,
        from_sector: u32,
        align: u32,
    ) -> Option<u32> {
        if align == 1 {
            return self.first_free_from(cyl, track, from_sector);
        }
        let ti = self.track_index(cyl, track);
        if self.free_count[ti] < align {
            return None;
        }
        if align != INDEX_ALIGN {
            return self.free_aligned_from(cyl, track, from_sector, align);
        }
        if self.aligned_free[ti] == 0 {
            return None;
        }
        let slots = self.spt[ti] / align;
        let start_slot = from_sector.div_ceil(align) % slots;
        (0..slots)
            .map(|i| (start_slot + i) % slots)
            .find(|&slot| self.slot_free(ti, slot))
            .map(|slot| slot * align)
    }

    /// Free sectors in a whole cylinder.
    #[inline]
    pub fn free_in_cylinder(&self, cyl: u32) -> u64 {
        self.cyl_free[cyl as usize]
    }

    /// Free [`INDEX_ALIGN`]-aligned slots in a whole cylinder.
    #[inline]
    pub fn aligned_in_cylinder(&self, cyl: u32) -> u32 {
        self.cyl_aligned[cyl as usize]
    }

    /// Completely empty tracks in a cylinder.
    #[inline]
    pub fn empty_in_cylinder(&self, cyl: u32) -> u32 {
        self.cyl_empty[cyl as usize]
    }

    /// Can this cylinder possibly hold a free run of `align` sectors?
    /// Exact for 1 and [`INDEX_ALIGN`]; a conservative (never false-negative)
    /// free-count bound otherwise. The allocator uses this to skip whole
    /// cylinders in O(1).
    #[inline]
    pub fn cylinder_has_candidate(&self, cyl: u32, align: u32) -> bool {
        match align {
            1 => self.cyl_free[cyl as usize] > 0,
            INDEX_ALIGN => self.cyl_aligned[cyl as usize] > 0,
            a => self.cyl_free[cyl as usize] >= a as u64,
        }
    }

    /// Find the nearest completely empty track to `cyl`, scanning outward in
    /// cylinder distance. Returns (cyl, track). The per-cylinder empty-track
    /// summary skips cylinders with nothing to offer in O(1).
    pub fn nearest_empty_track(&self, cyl: u32) -> Option<(u32, u32)> {
        let cyls = (self.bits.len() / self.tracks_per_cyl as usize) as u32;
        if self.empty_tracks == 0 {
            return None;
        }
        for d in 0..cyls {
            for candidate in [cyl.checked_sub(d), (cyl + d < cyls).then_some(cyl + d)]
                .into_iter()
                .flatten()
            {
                if self.cyl_empty[candidate as usize] > 0 {
                    for t in 0..self.tracks_per_cyl {
                        let ti = self.track_index(candidate, t);
                        if self.free_count[ti] == self.spt[ti] {
                            return Some((candidate, t));
                        }
                    }
                }
                if d == 0 {
                    break; // don't test cyl twice
                }
            }
        }
        None
    }

    /// Number of cylinders under management.
    pub fn cylinders(&self) -> u32 {
        (self.bits.len() / self.tracks_per_cyl as usize) as u32
    }

    /// Tracks per cylinder.
    pub fn tracks_in_cylinder(&self) -> u32 {
        self.tracks_per_cyl
    }

    /// Utilisation of one track, 0.0 (empty) – 1.0 (full).
    pub fn track_utilization(&self, cyl: u32, track: u32) -> f64 {
        let ti = self.track_index(cyl, track);
        1.0 - self.free_count[ti] as f64 / self.spt[ti] as f64
    }

    /// Number of tracks holding at least one live sector — the size of the
    /// utilization index, O(1).
    pub fn nonempty_tracks(&self) -> u32 {
        self.occ_by_util.len() as u32
    }

    /// The least-utilized track holding at least one live sector, skipping
    /// tracks rejected by `exclude`; ties resolve to the lowest global
    /// track index, matching a first-minimum full scan in `(cyl, track)`
    /// order. Cost is proportional to the number of excluded tracks
    /// inspected before a hit — O(1) amortized for the compactor's fixed
    /// exclusion set (the allocator fill track and the firmware track).
    pub fn least_utilized_nonempty(
        &self,
        mut exclude: impl FnMut(u32, u32) -> bool,
    ) -> Option<(u32, u32)> {
        self.occ_by_util
            .iter()
            .map(|&(_, ti)| (ti / self.tracks_per_cyl, ti % self.tracks_per_cyl))
            .find(|&(c, t)| !exclude(c, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> FreeMap {
        FreeMap::new(&Geometry::uniform(4, 2, 16))
    }

    #[test]
    fn starts_all_free() {
        let m = map();
        assert_eq!(m.total_sectors(), 128);
        assert_eq!(m.free_sectors(), 128);
        assert_eq!(m.empty_tracks(), 8);
        assert!(m.is_free(3, 1, 15));
        assert_eq!(m.utilization(), 0.0);
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut m = map();
        m.allocate(1, 0, 4, 8).unwrap();
        assert!(!m.is_free(1, 0, 4));
        assert!(!m.is_free(1, 0, 11));
        assert!(m.is_free(1, 0, 3));
        assert_eq!(m.free_in_track(1, 0), 8);
        assert_eq!(m.free_sectors(), 120);
        assert_eq!(m.empty_tracks(), 7);
        m.release(1, 0, 4, 8).unwrap();
        assert_eq!(m.free_sectors(), 128);
        assert_eq!(m.empty_tracks(), 8);
    }

    #[test]
    fn allocation_is_idempotent() {
        let mut m = map();
        m.allocate(0, 0, 0, 4).unwrap();
        m.allocate(0, 0, 0, 4).unwrap();
        assert_eq!(m.free_sectors(), 124);
        m.release(0, 0, 0, 2).unwrap();
        m.release(0, 0, 0, 2).unwrap();
        assert_eq!(m.free_sectors(), 126);
    }

    #[test]
    fn out_of_track_alloc_fails() {
        let mut m = map();
        assert!(m.allocate(0, 0, 14, 4).is_err());
    }

    #[test]
    fn free_sectors_from_is_rotational_order() {
        let mut m = map();
        m.allocate(0, 0, 0, 16).unwrap();
        m.release(0, 0, 2, 1).unwrap();
        m.release(0, 0, 10, 1).unwrap();
        let order: Vec<u32> = m.free_sectors_from(0, 0, 5).collect();
        assert_eq!(order, vec![10, 2]);
        let order: Vec<u32> = m.free_sectors_from(0, 0, 0).collect();
        assert_eq!(order, vec![2, 10]);
    }

    #[test]
    fn aligned_search_respects_alignment() {
        let mut m = map();
        // Occupy sector 1: block [0,8) is no longer free, block [8,16) is.
        m.allocate(0, 0, 1, 1).unwrap();
        assert_eq!(m.free_aligned_from(0, 0, 0, 8), Some(8));
        // From sector 9 the wrap search still only returns slot 8.
        assert_eq!(m.free_aligned_from(0, 0, 9, 8), Some(8));
        m.allocate(0, 0, 8, 8).unwrap();
        assert_eq!(m.free_aligned_from(0, 0, 0, 8), None);
    }

    #[test]
    fn aligned_iter_starts_at_next_boundary() {
        let m = map();
        let v: Vec<u32> = m.free_aligned_iter(0, 0, 3, 8).collect();
        assert_eq!(v, vec![8, 0]);
    }

    #[test]
    fn nearest_empty_track_scans_outward() {
        let mut m = map();
        // Fill every track except (3, 1) with one sector.
        for c in 0..4 {
            for t in 0..2 {
                if (c, t) != (3, 1) {
                    m.allocate(c, t, 0, 1).unwrap();
                }
            }
        }
        assert_eq!(m.nearest_empty_track(0), Some((3, 1)));
        assert_eq!(m.nearest_empty_track(3), Some((3, 1)));
        m.allocate(3, 1, 0, 1).unwrap();
        assert_eq!(m.nearest_empty_track(0), None);
    }

    #[test]
    fn track_utilization_tracks_fill() {
        let mut m = map();
        assert_eq!(m.track_utilization(0, 0), 0.0);
        m.allocate(0, 0, 0, 8).unwrap();
        assert!((m.track_utilization(0, 0) - 0.5).abs() < 1e-12);
    }

    /// Full-rescan oracle for the utilization index: the pre-index pick —
    /// first minimum of the f64 utilization in `(cyl, track)` scan order,
    /// over tracks with live data.
    fn least_utilized_rescan(
        m: &FreeMap,
        mut exclude: impl FnMut(u32, u32) -> bool,
    ) -> Option<(u32, u32)> {
        let mut best: Option<((u32, u32), f64)> = None;
        for c in 0..m.cylinders() {
            for t in 0..m.tracks_in_cylinder() {
                if m.free_in_track(c, t) == m.sectors_per_track(m.track_index(c, t))
                    || exclude(c, t)
                {
                    continue;
                }
                let u = m.track_utilization(c, t);
                if best.is_none_or(|(_, b)| u < b) {
                    best = Some(((c, t), u));
                }
            }
        }
        best.map(|(ct, _)| ct)
    }

    #[test]
    fn utilization_index_matches_rescan_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Mixed-width geometries exercise the cross-spt key ordering.
        for (cyls, tracks, spt) in [(4u32, 2u32, 16u32), (6, 3, 72), (3, 2, 256)] {
            let g = Geometry::uniform(cyls, tracks, spt);
            let mut m = FreeMap::new(&g);
            let mut rng = StdRng::seed_from_u64(0x0CCB ^ (cyls as u64) << 8 | spt as u64);
            for step in 0..600 {
                let c = rng.gen_range(0..cyls);
                let t = rng.gen_range(0..tracks);
                let s = rng.gen_range(0..spt);
                let n = rng.gen_range(1..(spt - s).clamp(2, 9));
                if rng.gen_bool(0.55) {
                    m.allocate(c, t, s, n).unwrap();
                } else {
                    m.release(c, t, s, n).unwrap();
                }
                let no_excl = |_: u32, _: u32| false;
                assert_eq!(
                    m.least_utilized_nonempty(no_excl),
                    least_utilized_rescan(&m, no_excl),
                    "step {step} on {cyls}x{tracks}x{spt}"
                );
                // And with an exclusion, as the compactor applies one.
                let excl = |cc: u32, tt: u32| (cc, tt) == (0, 0);
                assert_eq!(
                    m.least_utilized_nonempty(excl),
                    least_utilized_rescan(&m, excl)
                );
                let nonempty = (0..cyls)
                    .flat_map(|c| (0..tracks).map(move |t| (c, t)))
                    .filter(|&(c, t)| m.free_in_track(c, t) < spt)
                    .count() as u32;
                assert_eq!(m.nonempty_tracks(), nonempty);
            }
        }
    }

    #[test]
    fn works_on_wide_tracks() {
        // 256-sector ST19101 tracks span four bitmap words.
        let g = Geometry::uniform(2, 2, 256);
        let mut m = FreeMap::new(&g);
        m.allocate(1, 1, 250, 6).unwrap();
        assert!(!m.is_free(1, 1, 255));
        assert!(m.is_free(1, 1, 249));
        assert_eq!(m.free_in_track(1, 1), 250);
        let firsts: Vec<u32> = m.free_sectors_from(1, 1, 249).take(2).collect();
        assert_eq!(firsts, vec![249, 0]);
    }
}
