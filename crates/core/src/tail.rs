//! The firmware log-tail record.
//!
//! "Modern disk drives use residual power to park their heads in a landing
//! zone ... It is easy to modify the firmware so that the drive records the
//! current log tail location at a fixed location on disk before it parks the
//! actuator" (§3.2). The simulation reserves the first physical block as
//! that fixed firmware area; sector 0 holds the tail record, protected by a
//! checksum and cleared after recovery so a stale record is never trusted.
//!
//! If the power-down sequence fails (injectable in the simulator), the
//! record is absent or corrupt and recovery falls back to scanning the disk
//! for self-identifying map sectors.

use crate::checksum::crc32;
use disksim::SECTOR_BYTES;

/// Magic number for the tail record ("VTAL").
pub const TAIL_MAGIC: u32 = 0x5654_414C;
/// LBA of the tail record within the firmware area.
pub const TAIL_LBA: u64 = 0;
/// Number of sectors reserved for firmware use at the start of the disk
/// (one aligned 4 KB physical block).
pub const FIRMWARE_SECTORS: u64 = 8;

/// A decoded tail record: where the virtual-log root lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailRecord {
    /// LBA of the current log root (tail) map sector, if the log is
    /// non-empty.
    pub root: Option<(u64, u64)>,
    /// The next sequence number to issue, so restarts never reuse one.
    pub next_seq: u64,
}

impl TailRecord {
    /// Serialise to a sector image.
    pub fn encode(&self) -> [u8; SECTOR_BYTES] {
        let mut buf = [0u8; SECTOR_BYTES];
        buf[0..4].copy_from_slice(&TAIL_MAGIC.to_le_bytes());
        buf[4..6].copy_from_slice(&1u16.to_le_bytes()); // version
        let flags: u16 = if self.root.is_some() { 1 } else { 0 };
        buf[6..8].copy_from_slice(&flags.to_le_bytes());
        let (lba, seq) = self.root.unwrap_or((0, 0));
        buf[8..16].copy_from_slice(&lba.to_le_bytes());
        buf[16..24].copy_from_slice(&seq.to_le_bytes());
        buf[24..32].copy_from_slice(&self.next_seq.to_le_bytes());
        let sum = crc32(&buf);
        buf[32..36].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decode and validate a sector image. `None` means "no usable record"
    /// (cleared, corrupt, or never written) — the scan fallback applies.
    pub fn decode(buf: &[u8]) -> Option<TailRecord> {
        if buf.len() != SECTOR_BYTES {
            return None;
        }
        if u32::from_le_bytes(buf[0..4].try_into().ok()?) != TAIL_MAGIC {
            return None;
        }
        if u16::from_le_bytes(buf[4..6].try_into().ok()?) != 1 {
            return None;
        }
        let stored = u32::from_le_bytes(buf[32..36].try_into().ok()?);
        let mut copy = [0u8; SECTOR_BYTES];
        copy.copy_from_slice(buf);
        copy[32..36].fill(0);
        if crc32(&copy) != stored {
            return None;
        }
        let flags = u16::from_le_bytes(buf[6..8].try_into().ok()?);
        let lba = u64::from_le_bytes(buf[8..16].try_into().ok()?);
        let seq = u64::from_le_bytes(buf[16..24].try_into().ok()?);
        let next_seq = u64::from_le_bytes(buf[24..32].try_into().ok()?);
        Some(TailRecord {
            root: (flags & 1 == 1).then_some((lba, seq)),
            next_seq,
        })
    }

    /// The cleared (post-recovery) state: an all-zero sector, which fails
    /// magic validation by construction.
    pub fn cleared() -> [u8; SECTOR_BYTES] {
        [0u8; SECTOR_BYTES]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_root() {
        let t = TailRecord {
            root: Some((777, 42)),
            next_seq: 43,
        };
        assert_eq!(TailRecord::decode(&t.encode()), Some(t));
    }

    #[test]
    fn roundtrip_empty_log() {
        let t = TailRecord {
            root: None,
            next_seq: 0,
        };
        assert_eq!(TailRecord::decode(&t.encode()), Some(t));
    }

    #[test]
    fn cleared_record_is_invalid() {
        assert_eq!(TailRecord::decode(&TailRecord::cleared()), None);
    }

    #[test]
    fn corruption_detected() {
        let t = TailRecord {
            root: Some((777, 42)),
            next_seq: 43,
        };
        let mut buf = t.encode();
        buf[9] ^= 1;
        assert_eq!(TailRecord::decode(&buf), None);
    }

    #[test]
    fn wrong_length_rejected() {
        assert_eq!(TailRecord::decode(&[0u8; 100]), None);
    }
}
