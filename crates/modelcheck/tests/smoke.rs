//! Seeded differential-model-checking sweeps across all four stacks, plus
//! the planted-mutation self-test that proves the detect → shrink → replay
//! pipeline actually fires.
//!
//! Knobs (see the crate docs): `VLFS_SEED` re-bases every sweep for
//! replaying a failure report; `VLFS_MC_SMOKE_SEEDS` widens the smoke
//! sweep (CI pins 64); `VLFS_MC_EPISODES` opts into the long-run soak.

use modelcheck::{
    check_seed, env_seed, episode_seed, gen, run_trace, shrink, sweep_all_stacks,
    sweep_all_stacks_in, PlantedBug, SweepOutcome, ALL_CONFIGS,
};

const DEFAULT_BASE: u64 = 0x0D15_C0DE_5EED_0001;

fn env_count(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// The acceptance sweep: N seeded episodes through every stack config,
/// each ending in a crash + recovery + durability barrier. Any divergence
/// panics with a shrunk, seed-replayable reproducer.
#[test]
fn smoke_episodes_all_stacks() {
    let base = env_seed().unwrap_or(DEFAULT_BASE);
    let seeds = env_count("VLFS_MC_SMOKE_SEEDS", 16);
    let mut crashes = 0u32;
    let mut cuts = 0u32;
    // Episodes fan out over the shared pool (VLFS_THREADS); outcomes come
    // back in (stack, index) order, so any panic below names the same
    // first failure a sequential sweep would.
    for outcome in sweep_all_stacks(base, seeds, 48) {
        match outcome.result {
            Ok(stats) => {
                crashes += stats.crashes;
                cuts += u32::from(stats.cut_fired);
            }
            Err(repro) => panic!("{repro}"),
        }
    }
    // The sweep must actually exercise the crash paths, not tiptoe past
    // them: every episode ends in at least the finale crash, and seeded
    // cuts fire in roughly half the episodes.
    assert!(crashes >= (seeds as u32) * 4, "crash paths under-exercised");
    assert!(cuts > 0, "no seeded power cut fired across the whole sweep");
}

/// Opt-in soak: `VLFS_MC_EPISODES=500 cargo test -p modelcheck --release
/// -- long_run`. Longer traces, as many episodes as requested.
#[test]
fn long_run_soak_when_requested() {
    let episodes = env_count("VLFS_MC_EPISODES", 0);
    if episodes == 0 {
        return;
    }
    let base = env_seed().unwrap_or(DEFAULT_BASE ^ 0x4C4F_4E47); // "LONG"
    for i in 0..episodes {
        let cfg = ALL_CONFIGS[(i % 4) as usize];
        let seed = episode_seed(base, cfg, i);
        if let Err(repro) = check_seed(cfg, seed, 96) {
            panic!("{repro}");
        }
    }
}

/// The same sweep on a 1-wide and a 4-wide pool must render identically:
/// same outcomes, same stats, same order. Uses the explicit-width variant
/// because the process-wide thread knob is set-once.
#[test]
fn sweep_is_deterministic_across_pool_widths() {
    let base = env_seed().unwrap_or(DEFAULT_BASE ^ 0x5EED_D1FF);
    let render = |outs: &[SweepOutcome]| -> Vec<String> {
        outs.iter()
            .map(|o| match &o.result {
                Ok(s) => format!("{:?}#{} seed={:#x} ok {s:?}", o.cfg, o.index, o.seed),
                Err(r) => format!("{:?}#{} seed={:#x} FAIL\n{r}", o.cfg, o.index, o.seed),
            })
            .collect()
    };
    let one = render(&sweep_all_stacks_in(1, base, 4, 32));
    let four = render(&sweep_all_stacks_in(4, base, 4, 32));
    assert_eq!(one, four, "pool width changed sweep outcomes");
}

/// Shrunk reproducers are byte-identical whether produced sequentially or
/// on pool workers: the detect → shrink pipeline takes no input other than
/// the seed and the trace, so four parallel copies must all match the
/// sequential report text exactly.
#[test]
fn shrunk_reproducers_identical_across_pool_widths() {
    let seed = env_seed().unwrap_or(0xBAD_CAB1E);
    let cfg = modelcheck::StackConfig::UfsRegular;
    let mut trace = gen::generate(seed, 40);
    trace.cut = None;
    let reproduce = |op: u64| -> Option<String> {
        let planted = PlantedBug::SilentCorruption { op, seed: seed ^ op };
        let failure = run_trace(cfg, &trace, &planted).err()?;
        Some(shrink(cfg, seed, &trace, &planted, failure).to_string())
    };
    let op = (1..=120)
        .find(|&op| reproduce(op).is_some())
        .expect("no planted corruption fired in 120 tries");
    let sequential = reproduce(op).expect("chosen op reproduces");
    let parallel = disksim::par::pmap_in(4, vec![op; 4], |op| {
        reproduce(op).expect("chosen op reproduces on a worker")
    });
    for copy in parallel {
        assert_eq!(sequential, copy, "worker-produced reproducer diverged");
    }
}

/// Plant a silent write corruption in the device and verify the pipeline:
/// the differential run diverges, the shrinker minimizes the trace, and
/// the shrunk reproducer still fails when replayed from scratch.
#[test]
fn planted_corruption_is_caught_shrunk_and_replayable() {
    let seed = env_seed().unwrap_or(0xBAD_CAB1E);
    let cfg = modelcheck::StackConfig::UfsRegular;
    // A trace with no seeded cut, so the only anomaly is the planted one.
    let mut trace = gen::generate(seed, 40);
    trace.cut = None;

    // Corrupting some post-format writes is benign (the block is freed or
    // overwritten before anyone re-reads it from media); sweep op indexes
    // until the oracle catches one. Deterministic, and in practice the
    // first few indexes already fire.
    let (planted, failure) = (1..=120)
        .find_map(|op| {
            let planted = PlantedBug::SilentCorruption { op, seed: seed ^ op };
            run_trace(cfg, &trace, &planted).err().map(|d| (planted, d))
        })
        .expect("no planted corruption produced a divergence in 120 tries");

    let repro = shrink(cfg, seed, &trace, &planted, failure);
    assert!(
        repro.trace.ops.len() <= trace.ops.len(),
        "shrinking must never grow the trace"
    );
    // The reproducer is self-contained: replaying the shrunk trace against
    // the same planted bug fails again.
    assert!(
        run_trace(cfg, &repro.trace, &planted).is_err(),
        "shrunk reproducer did not replay:\n{repro}"
    );
    let report = repro.to_string();
    assert!(report.contains("VLFS_SEED"), "report must echo the seed:\n{report}");
    assert!(report.contains("ufs-regular"), "report must name the stack:\n{report}");
    // The flight recorder rode along on the final replay: the report must
    // carry span lines and span-stamped disk events from the failing run.
    assert!(
        report.contains("flight recorder") && report.contains("\"parent\":"),
        "report must include the span-annotated flight dump:\n{report}"
    );
    assert!(
        report.contains("\"at\":") && report.contains("\"span\":"),
        "flight dump must contain span-stamped disk events:\n{report}"
    );
}
