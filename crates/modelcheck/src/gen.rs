//! Deterministic seeded workload generation.
//!
//! An episode is a [`TraceSpec`]: a weighted op sequence over a small fixed
//! name pool, plus at most one seeded power cut. Everything is derived from
//! a single `u64` seed through split [`McRng`] streams, so a failure report
//! that prints the seed is a complete reproducer.
//!
//! The generator keeps a mirror of which names exist so it can bias toward
//! valid operations, but it deliberately emits some invalid ones (create of
//! an existing name, delete of a missing one, rename onto a taken name) —
//! error-path parity with the model is part of the contract under test.

use std::fmt;

use disksim::FaultPlan;

use crate::rng::McRng;

/// Number of distinct file names an episode may use. Small enough that the
/// post-crash state scan can enumerate the whole namespace, large enough
/// for interesting rename/delete interleavings.
pub const NAME_POOL: u8 = 16;

/// The `idx`-th pool name.
pub fn name(idx: u8) -> String {
    format!("mc{idx:02}")
}

/// Offsets stay below this, so files stay far from both the inode pointer
/// limit and the volume's capacity (no spurious `NoSpace`/`TooLarge`
/// divergences — capacity behaviour differs legitimately across stacks).
pub const MAX_OFFSET: u64 = 128 * 1024;
/// Write lengths stay below this.
pub const MAX_WRITE: u64 = 32 * 1024;

/// One step of an episode. `name` fields index the pool ([`name`]); write
/// payloads are reproduced from `(tag, offset, len)` via [`crate::rng::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McOp {
    /// Create the file (may legitimately fail with `Exists`).
    Create {
        /// Pool index of the target name.
        name: u8,
    },
    /// Open and write `len` deterministic bytes at `offset`.
    Write {
        /// Pool index of the target name.
        name: u8,
        /// Byte offset of the write.
        offset: u32,
        /// Length in bytes.
        len: u32,
        /// Payload tag (see [`crate::rng::fill`]).
        tag: u64,
    },
    /// Open and write `len` bytes at the current end of file.
    Append {
        /// Pool index of the target name.
        name: u8,
        /// Length in bytes.
        len: u32,
        /// Payload tag.
        tag: u64,
    },
    /// Open and read `len` bytes at `offset`, comparing against the model.
    Read {
        /// Pool index of the target name.
        name: u8,
        /// Byte offset of the read.
        offset: u32,
        /// Length in bytes.
        len: u32,
    },
    /// Delete the file (may legitimately fail with `NotFound`).
    Delete {
        /// Pool index of the target name.
        name: u8,
    },
    /// Rename `from` to `to` (either side may make this an error case).
    Rename {
        /// Pool index of the source name.
        from: u8,
        /// Pool index of the destination name.
        to: u8,
    },
    /// Flush everything; advances the durability floor on success.
    Sync,
    /// Grant idle time — lets the LFS cleaner and VLD compactor run.
    Idle {
        /// Nanoseconds of idle wall-clock granted.
        ns: u64,
    },
    /// Power the stack down without ceremony and remount through recovery.
    CrashRemount,
}

/// A seeded power cut, in device-write ops counted from the end of format
/// (the executor offsets it past the deterministic format write count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cut {
    /// The 1-based post-format device write op the cut fires on.
    pub at_op: u64,
    /// Sectors of that write that reach the media (0 = clean cut before
    /// it, 8 = the whole 4 KiB block lands, then the power dies).
    pub survivors: u32,
}

/// A complete episode specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// The op sequence.
    pub ops: Vec<McOp>,
    /// At most one seeded power cut.
    pub cut: Option<Cut>,
}

impl TraceSpec {
    /// The fault plan for the first incarnation, with the cut shifted past
    /// the `format_writes` the freshly built stack spends before op 1.
    pub fn fault_plan(&self, format_writes: u64) -> FaultPlan {
        match self.cut {
            Some(c) => FaultPlan::torn_power_cut(format_writes + c.at_op, c.survivors),
            None => FaultPlan::none(),
        }
    }
}

impl fmt::Display for TraceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cut {
            Some(c) => writeln!(
                f,
                "  cut: torn power cut at post-format write {} ({}/8 sectors land)",
                c.at_op, c.survivors
            )?,
            None => writeln!(f, "  cut: none")?,
        }
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "  {i:3}: {op:?}")?;
        }
        Ok(())
    }
}

/// Generate the episode for `seed`: `len` weighted ops and (half the time)
/// one power cut. Pure function of its arguments.
pub fn generate(seed: u64, len: usize) -> TraceSpec {
    let mut root = McRng::new(seed);
    let mut r = root.split(1);
    let mut cut_rng = root.split(2);

    let mut present = [false; NAME_POOL as usize];
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = r.below(100);
        let op = if roll < 14 {
            let n = pick(&mut r, &present, false);
            present[n as usize] = true;
            McOp::Create { name: n }
        } else if roll < 36 {
            McOp::Write {
                name: pick(&mut r, &present, true),
                offset: gen_offset(&mut r),
                len: gen_len(&mut r),
                tag: r.next_u64(),
            }
        } else if roll < 46 {
            McOp::Append {
                name: pick(&mut r, &present, true),
                len: gen_len(&mut r),
                tag: r.next_u64(),
            }
        } else if roll < 66 {
            McOp::Read {
                name: pick(&mut r, &present, true),
                offset: gen_offset(&mut r),
                len: gen_len(&mut r),
            }
        } else if roll < 74 {
            let n = pick(&mut r, &present, true);
            present[n as usize] = false;
            McOp::Delete { name: n }
        } else if roll < 80 {
            let from = pick(&mut r, &present, true);
            let to = pick(&mut r, &present, false);
            if present[from as usize] && !present[to as usize] && from != to {
                present[from as usize] = false;
                present[to as usize] = true;
            }
            McOp::Rename { from, to }
        } else if roll < 89 {
            McOp::Sync
        } else if roll < 94 {
            McOp::Idle {
                ns: (1 + r.below(50)) * 10_000_000,
            }
        } else {
            McOp::CrashRemount
        };
        ops.push(op);
    }

    let cut = if cut_rng.chance(50) {
        Some(Cut {
            at_op: 1 + cut_rng.below(400),
            survivors: cut_rng.below(9) as u32,
        })
    } else {
        None
    };
    TraceSpec { ops, cut }
}

/// Pick a name, biased (85 %) toward ones whose mirror presence matches
/// `want_present`; the rest of the time any name, so invalid ops occur.
fn pick(r: &mut McRng, present: &[bool; NAME_POOL as usize], want_present: bool) -> u8 {
    if !r.chance(15) {
        let candidates: Vec<u8> = (0..NAME_POOL)
            .filter(|&i| present[i as usize] == want_present)
            .collect();
        if !candidates.is_empty() {
            return candidates[r.below(candidates.len() as u64) as usize];
        }
    }
    r.below(NAME_POOL as u64) as u8
}

fn gen_offset(r: &mut McRng) -> u32 {
    let raw = r.below(MAX_OFFSET) as u32;
    if r.chance(60) {
        raw & !4095 // block-aligned most of the time
    } else {
        raw
    }
}

fn gen_len(r: &mut McRng) -> u32 {
    (1 + r.below(MAX_WRITE)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let a = generate(0xFEED, 64);
        let b = generate(0xFEED, 64);
        assert_eq!(a, b);
        assert_ne!(a, generate(0xFEEE, 64));
        assert_eq!(a.ops.len(), 64);
    }

    #[test]
    fn episodes_cover_the_op_space() {
        // Across a few seeds every op kind should appear.
        let mut seen = [false; 9];
        for seed in 0..20u64 {
            for op in generate(seed, 64).ops {
                let k = match op {
                    McOp::Create { .. } => 0,
                    McOp::Write { .. } => 1,
                    McOp::Append { .. } => 2,
                    McOp::Read { .. } => 3,
                    McOp::Delete { .. } => 4,
                    McOp::Rename { .. } => 5,
                    McOp::Sync => 6,
                    McOp::Idle { .. } => 7,
                    McOp::CrashRemount => 8,
                };
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "op kinds seen: {seen:?}");
    }

    #[test]
    fn bounds_hold() {
        for seed in 0..50u64 {
            for op in generate(seed, 64).ops {
                match op {
                    McOp::Write { offset, len, .. } | McOp::Read { offset, len, .. } => {
                        assert!((offset as u64) < MAX_OFFSET);
                        assert!(1 <= len && len as u64 <= MAX_WRITE);
                    }
                    McOp::Append { len, .. } => assert!(len as u64 <= MAX_WRITE),
                    _ => {}
                }
            }
        }
    }
}
