//! The differential executor: one trace, two state machines.
//!
//! Each op is applied to the real stack and to the [`RefModel`]; results —
//! success/error, read bytes, file sizes — are compared after every step.
//! A completed `Sync` additionally triggers a full live-state sweep, and
//! every crash (explicit `CrashRemount`, or a seeded power cut firing
//! mid-episode) ends in remount through the stack's real recovery path,
//! structural audits, and the durability-oracle reconciliation.
//!
//! The episode always finishes with a final `sync` + crash + remount +
//! full durable comparison, so buffered state never escapes scrutiny.

use std::collections::BTreeMap;
use std::fmt;

use disksim::{probe_device, DiskError, FaultDisk, WriteFault};
use fscore::{FileSystem, FsError, FsResult};
use ufs::Ufs;

use crate::gen::{name, McOp, TraceSpec, NAME_POOL};
use crate::model::RefModel;
use crate::rng::fill;
use crate::stack::{self, StackConfig};

/// A mutation planted in the device stack, used by the self-test to prove
/// the whole pipeline (detect → shrink → replay) actually fires. `None` in
/// normal operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlantedBug {
    /// No mutation: the stacks are expected to pass.
    None,
    /// Silently corrupt a device write op (the device acks the write but
    /// scribbles on the payload) — an undetected firmware lie the oracle
    /// must catch once the block is re-read from media. The bug is armed in
    /// every device incarnation: post-format write op `op` in the first,
    /// write op `op` of each post-crash incarnation after that (a cache
    /// holding the good copy heals early corruption on every re-flush, so a
    /// lie must be re-told to stay observable).
    SilentCorruption {
        /// 1-based write op to corrupt (post-format in the first
        /// incarnation, post-remount afterwards).
        op: u64,
        /// Corruption pattern seed.
        seed: u64,
    },
}

/// Why a run failed: the step (index into the trace, or `None` for the
/// finale), the op at that step, and what diverged.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the failing op, `None` when the finale barrier failed.
    pub step: Option<usize>,
    /// The op at that step.
    pub op: Option<McOp>,
    /// Human-readable description of the violated expectation.
    pub what: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.step, &self.op) {
            (Some(i), Some(op)) => write!(f, "at step {i} ({op:?}): {}", self.what),
            (Some(i), None) => write!(f, "at step {i}: {}", self.what),
            _ => write!(f, "at episode finale: {}", self.what),
        }
    }
}

/// Counters from a passing run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Ops executed (always the full trace on success).
    pub ops_run: usize,
    /// Crash + remount cycles survived (explicit, seeded, and the finale).
    pub crashes: u32,
    /// Did the seeded power cut fire?
    pub cut_fired: bool,
    /// Files live at the end of the episode.
    pub final_files: usize,
}

/// Drive `trace` through `cfg`, comparing against the reference model at
/// every step. `seed` is only echoed into failure text; the trace itself
/// carries all the entropy.
pub fn run_trace(
    cfg: StackConfig,
    trace: &TraceSpec,
    planted: &PlantedBug,
) -> Result<RunStats, Divergence> {
    run_trace_recorded(cfg, trace, planted, None)
}

/// [`run_trace`] with an optional flight recorder attached to the raw
/// device, so a failing episode leaves behind its span-annotated disk
/// history (see [`crate::shrink::Reproducer`]).
pub fn run_trace_recorded(
    cfg: StackConfig,
    trace: &TraceSpec,
    planted: &PlantedBug,
    rec: Option<&disksim::FlightRecorder>,
) -> Result<RunStats, Divergence> {
    let mut plan = trace.fault_plan(stack::format_writes(cfg));
    if let PlantedBug::SilentCorruption { op, seed } = planted {
        plan = plan.with(
            stack::format_writes(cfg) + op,
            WriteFault::Corrupt { seed: *seed },
        );
    }
    let fs = stack::build_recorded(cfg, plan, rec).map_err(|e| Divergence {
        step: None,
        op: None,
        what: format!("initial format failed: {e}"),
    })?;
    let mut exec = Exec {
        cfg,
        fs: Some(fs),
        model: RefModel::new(),
        stats: RunStats::default(),
        planted: *planted,
    };
    for (i, op) in trace.ops.iter().enumerate() {
        exec.stats.ops_run = i + 1;
        exec.step(i, op)?;
    }
    exec.finale(trace.ops.len())?;
    exec.stats.final_files = exec.model.live().len();
    Ok(exec.stats)
}

fn is_power(e: &FsError) -> bool {
    matches!(e, FsError::Disk(DiskError::PowerFailure))
}

/// What a single FS call turned into.
enum Outcome<T> {
    Ok(T),
    Err(FsError),
    /// The armed power cut fired during (or before) the call.
    Cut,
}

struct Exec {
    cfg: StackConfig,
    fs: Option<Ufs>,
    model: RefModel,
    stats: RunStats,
    planted: PlantedBug,
}

impl Exec {
    fn fs(&mut self) -> &mut Ufs {
        self.fs.as_mut().expect("stack mounted")
    }

    fn powered_off(&self) -> bool {
        let fs = self.fs.as_ref().expect("stack mounted");
        probe_device::<FaultDisk>(fs.device()).is_some_and(|f| f.is_powered_off())
    }

    fn div(&self, step: usize, op: Option<&McOp>, what: String) -> Divergence {
        Divergence { step: Some(step), op: op.copied(), what }
    }

    /// Classify an FS result, folding power failures into `Cut`.
    fn outcome<T>(&self, r: FsResult<T>) -> Outcome<T> {
        match r {
            Ok(v) => Outcome::Ok(v),
            Err(e) if is_power(&e) => Outcome::Cut,
            Err(e) => Outcome::Err(e),
        }
    }

    fn step(&mut self, i: usize, op: &McOp) -> Result<(), Divergence> {
        match *op {
            McOp::Create { name: n } => self.simple_op(i, op, &name(n), |fs, nm| {
                fs.create(nm).map(|_| ())
            }, |m, nm| m.create(nm))?,
            McOp::Delete { name: n } => self.simple_op(i, op, &name(n), |fs, nm| {
                fs.delete(nm)
            }, |m, nm| m.delete(nm))?,
            McOp::Rename { from, to } => self.rename(i, op, from, to)?,
            McOp::Write { name: n, offset, len, tag } => {
                self.write(i, op, n, offset as u64, len as usize, tag, false)?
            }
            McOp::Append { name: n, len, tag } => {
                self.write(i, op, n, 0, len as usize, tag, true)?
            }
            McOp::Read { name: n, offset, len } => self.read(i, op, n, offset as u64, len as usize)?,
            McOp::Sync => self.sync(i, op)?,
            McOp::Idle { ns } => self.fs().idle(ns),
            McOp::CrashRemount => return self.crash_remount(i, Some(op)),
        }
        // A cut can also fire on background writes (cache pressure, the
        // LFS cleaner inside `idle`) without surfacing as an op error.
        if self.powered_off() {
            return self.crash_remount(i, Some(op));
        }
        Ok(())
    }

    /// An op that is one FS call on one name, compared verbatim.
    fn simple_op(
        &mut self,
        i: usize,
        op: &McOp,
        nm: &str,
        fs_call: impl FnOnce(&mut Ufs, &str) -> FsResult<()>,
        model_call: impl FnOnce(&mut RefModel, &str) -> FsResult<()>,
    ) -> Result<(), Divergence> {
        let actual = fs_call(self.fs(), nm);
        match self.outcome(actual) {
            Outcome::Cut => {
                self.model.mark_dirty(nm);
                self.crash_remount(i, Some(op))
            }
            Outcome::Ok(()) => match model_call(&mut self.model, nm) {
                Ok(()) => Ok(()),
                Err(want) => Err(self.div(i, Some(op), format!(
                    "'{nm}': file system reported success, model expects {want}"
                ))),
            },
            Outcome::Err(got) => match model_call(&mut self.model, nm) {
                Err(want) if want == got => Ok(()),
                Err(want) => Err(self.div(i, Some(op), format!(
                    "'{nm}': file system failed with {got}, model expects {want}"
                ))),
                Ok(()) => Err(self.div(i, Some(op), format!(
                    "'{nm}': file system failed with {got}, model expects success"
                ))),
            },
        }
    }

    fn rename(&mut self, i: usize, op: &McOp, from: u8, to: u8) -> Result<(), Divergence> {
        let (f, t) = (name(from), name(to));
        let actual = self.fs().rename(&f, &t);
        match self.outcome(actual) {
            Outcome::Cut => {
                self.model.mark_dirty(&f);
                self.model.mark_dirty(&t);
                self.crash_remount(i, Some(op))
            }
            Outcome::Ok(()) => match self.model.rename(&f, &t) {
                Ok(()) => Ok(()),
                Err(want) => Err(self.div(i, Some(op), format!(
                    "rename '{f}' → '{t}': file system succeeded, model expects {want}"
                ))),
            },
            Outcome::Err(got) => match self.model.rename(&f, &t) {
                Err(want) if want == got => Ok(()),
                other => Err(self.div(i, Some(op), format!(
                    "rename '{f}' → '{t}': file system failed with {got}, model expects {other:?}"
                ))),
            },
        }
    }

    /// Open-by-name, then write (`append` computes the offset from the
    /// model's size, cross-checked against the file system's).
    #[allow(clippy::too_many_arguments)] // the destructured fields of two op variants
    fn write(
        &mut self,
        i: usize,
        op: &McOp,
        n: u8,
        offset: u64,
        len: usize,
        tag: u64,
        append: bool,
    ) -> Result<(), Divergence> {
        let nm = name(n);
        let open = self.fs().open(&nm);
        let h = match self.outcome(open) {
            Outcome::Cut => return self.crash_remount(i, Some(op)),
            Outcome::Err(e) => return self.expect_absent(i, op, &nm, e),
            Outcome::Ok(h) => h,
        };
        let Some(model_size) = self.model.size(&nm) else {
            return Err(self.div(i, Some(op), format!(
                "'{nm}': open succeeded but the model has no such file"
            )));
        };
        let size = self.fs().file_size(h);
        match self.outcome(size) {
            Outcome::Cut => return self.crash_remount(i, Some(op)),
            Outcome::Err(e) => {
                return Err(self.div(i, Some(op), format!("'{nm}': file_size failed: {e}")))
            }
            Outcome::Ok(s) if s != model_size => {
                return Err(self.div(i, Some(op), format!(
                    "'{nm}': file system says {s} bytes, model says {model_size}"
                )))
            }
            Outcome::Ok(_) => {}
        }
        let offset = if append { model_size } else { offset };
        let data = fill(tag, offset, len);
        let actual = self.fs().write(h, offset, &data);
        match self.outcome(actual) {
            Outcome::Cut => {
                self.model.mark_dirty(&nm);
                self.crash_remount(i, Some(op))
            }
            Outcome::Err(e) => Err(self.div(i, Some(op), format!(
                "'{nm}': write of {len} bytes at {offset} failed with {e}, model expects success"
            ))),
            Outcome::Ok(()) => {
                self.model.write(&nm, offset, &data).expect("model file exists");
                Ok(())
            }
        }
    }

    fn read(&mut self, i: usize, op: &McOp, n: u8, offset: u64, len: usize) -> Result<(), Divergence> {
        let nm = name(n);
        let open = self.fs().open(&nm);
        let h = match self.outcome(open) {
            Outcome::Cut => return self.crash_remount(i, Some(op)),
            Outcome::Err(e) => return self.expect_absent(i, op, &nm, e),
            Outcome::Ok(h) => h,
        };
        let expected = match self.model.read(&nm, offset, len) {
            Ok(b) => b,
            Err(_) => {
                return Err(self.div(i, Some(op), format!(
                    "'{nm}': open succeeded but the model has no such file"
                )))
            }
        };
        let mut buf = vec![0u8; len];
        let got = self.fs().read(h, offset, &mut buf);
        match self.outcome(got) {
            Outcome::Cut => self.crash_remount(i, Some(op)),
            Outcome::Err(e) => Err(self.div(i, Some(op), format!(
                "'{nm}': read at {offset} failed with {e}, model expects {} bytes",
                expected.len()
            ))),
            Outcome::Ok(count) => {
                if count != expected.len() || buf[..count] != expected[..] {
                    return Err(self.div(i, Some(op), format!(
                        "'{nm}': read at {offset} returned {count} bytes, model expects {}{}",
                        expected.len(),
                        first_mismatch(&buf[..count], &expected)
                    )));
                }
                Ok(())
            }
        }
    }

    /// An open failed: legal only if the model also lacks the file and the
    /// error is `NotFound`.
    fn expect_absent(
        &mut self,
        i: usize,
        op: &McOp,
        nm: &str,
        e: FsError,
    ) -> Result<(), Divergence> {
        if self.model.exists(nm) {
            Err(self.div(i, Some(op), format!(
                "'{nm}': open failed with {e}, model says the file exists"
            )))
        } else if e != FsError::NotFound {
            Err(self.div(i, Some(op), format!(
                "'{nm}': open of a missing file failed with {e}, expected NotFound"
            )))
        } else {
            Ok(())
        }
    }

    fn sync(&mut self, i: usize, op: &McOp) -> Result<(), Divergence> {
        let r = self.fs().sync();
        match self.outcome(r) {
            // An interrupted sync promises nothing: the floor stays put.
            Outcome::Cut => self.crash_remount(i, Some(op)),
            Outcome::Err(e) => Err(self.div(i, Some(op), format!(
                "sync failed with {e}, model expects success"
            ))),
            Outcome::Ok(()) => {
                self.model.commit_sync();
                self.live_compare(i, Some(op))
            }
        }
    }

    /// Compare the full live namespace through the mounted file system.
    fn live_compare(&mut self, i: usize, op: Option<&McOp>) -> Result<(), Divergence> {
        for idx in 0..NAME_POOL {
            let nm = name(idx);
            let contents = self.read_whole(&nm);
            match (contents, self.model.live().get(&nm)) {
                (Ok(Some(got)), Some(want)) => {
                    if &got != want {
                        return Err(Divergence {
                            step: Some(i),
                            op: op.copied(),
                            what: format!(
                                "live state: '{nm}' has {} bytes, model has {}{}",
                                got.len(),
                                want.len(),
                                first_mismatch(&got, want)
                            ),
                        });
                    }
                }
                (Ok(Some(got)), None) => {
                    return Err(Divergence {
                        step: Some(i),
                        op: op.copied(),
                        what: format!(
                            "live state: '{nm}' exists with {} bytes, model has no such file",
                            got.len()
                        ),
                    })
                }
                (Ok(None), Some(want)) => {
                    return Err(Divergence {
                        step: Some(i),
                        op: op.copied(),
                        what: format!(
                            "live state: '{nm}' is missing, model has it with {} bytes",
                            want.len()
                        ),
                    })
                }
                (Ok(None), None) => {}
                (Err(d), _) => return Err(d),
            }
        }
        Ok(())
    }

    /// Read a file's full contents through the FS; `Ok(None)` = absent.
    fn read_whole(&mut self, nm: &str) -> Result<Option<Vec<u8>>, Divergence> {
        let fail = |what: String| Divergence { step: None, op: None, what };
        let h = match self.fs().open(nm) {
            Ok(h) => h,
            Err(FsError::NotFound) => return Ok(None),
            Err(e) => return Err(fail(format!("'{nm}': open for state scan failed: {e}"))),
        };
        let size = self
            .fs()
            .file_size(h)
            .map_err(|e| fail(format!("'{nm}': file_size failed: {e}")))?;
        let mut buf = vec![0u8; size as usize];
        let got = self
            .fs()
            .read(h, 0, &mut buf)
            .map_err(|e| fail(format!("'{nm}': full read failed: {e}")))?;
        if got as u64 != size {
            return Err(fail(format!(
                "'{nm}': short read during state scan ({got} of {size} bytes)"
            )));
        }
        Ok(Some(buf))
    }

    /// Power loss (simulated or seeded) + remount through recovery +
    /// audits + durability reconciliation.
    fn crash_remount(&mut self, step: usize, op: Option<&McOp>) -> Result<(), Divergence> {
        self.stats.crashes += 1;
        let st = stack::teardown(self.cfg, self.fs.take().expect("stack mounted"));
        self.stats.cut_fired |= st.cut_fired;
        // The seeded cut lives in the first incarnation only: after any
        // crash the rebuilt fault layer cannot cut again, so an episode sees
        // at most one cut and recovery always runs on a working device. A
        // planted corruption (self-test) never kills the device and IS
        // re-armed, or a single lying write would be healed by the cache's
        // good copy on the next flush and the self-test would be vacuous.
        let plan = match self.planted {
            PlantedBug::SilentCorruption { op, seed } => {
                disksim::FaultPlan::corrupt_write(op, seed)
            }
            PlantedBug::None => disksim::FaultPlan::none(),
        };
        let (mut fs, _report) = stack::remount(self.cfg, st.disk, plan)
            .map_err(|e| self.div(step, op, format!("remount after crash failed: {e}")))?;
        let complaints = stack::post_recovery_audit(&mut fs);
        if !complaints.is_empty() {
            return Err(self.div(step, op, format!(
                "post-recovery audit: {}",
                complaints.join("; ")
            )));
        }
        self.fs = Some(fs);
        let mut actual = BTreeMap::new();
        for idx in 0..NAME_POOL {
            let nm = name(idx);
            if let Some(bytes) = self.read_whole(&nm).map_err(|mut d| {
                d.step = Some(step);
                d.op = op.copied();
                d
            })? {
                actual.insert(nm, bytes);
            }
        }
        self.model
            .crash_adopt(&actual)
            .map_err(|msg| self.div(step, op, msg))
    }

    /// Final barrier: sync everything, verify live state, then one last
    /// crash + remount + durable comparison.
    fn finale(&mut self, len: usize) -> Result<(), Divergence> {
        // The seeded cut may still be pending and can fire on this sync's
        // writes; after the resulting remount the fault layer is benign,
        // so the second attempt always completes.
        for _ in 0..2 {
            let r = self.fs().sync();
            match self.outcome(r) {
                Outcome::Cut => {
                    self.crash_remount(len, None)?;
                    continue;
                }
                Outcome::Err(e) => {
                    return Err(Divergence {
                        step: None,
                        op: None,
                        what: format!("final sync failed with {e}"),
                    })
                }
                Outcome::Ok(()) => {
                    self.model.commit_sync();
                    break;
                }
            }
        }
        self.live_compare(len, None)?;
        self.crash_remount(len, None)?;
        self.live_compare(len, None)
    }
}

/// Locate the first differing byte of two buffers for failure text.
fn first_mismatch(got: &[u8], want: &[u8]) -> String {
    match got.iter().zip(want.iter()).position(|(a, b)| a != b) {
        Some(i) => format!(" (first difference at byte {i}: {:#04x} vs {:#04x})", got[i], want[i]),
        None => String::new(),
    }
}
