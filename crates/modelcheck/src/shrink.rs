//! Greedy trace shrinking and self-contained reproducer reports.
//!
//! On a divergence the original trace is minimized: every op is tried for
//! removal (repeatedly, to a fixpoint), then the seeded cut is dropped if
//! the failure reproduces without it. Ops are self-contained — payloads
//! come from per-op tags, appends from the model's size at execution — so
//! removing one op never changes the meaning of the others. *Any*
//! divergence counts as continued failure: shrinking is allowed to walk
//! from the original symptom to a simpler one of the same episode.

use std::fmt;

use crate::diff::{run_trace, run_trace_recorded, Divergence, PlantedBug};
use crate::gen::TraceSpec;
use crate::stack::StackConfig;

/// Ceiling on shrink re-executions, so pathological episodes still return
/// promptly with a partially shrunk trace.
const MAX_RUNS: u32 = 2000;

/// Event-ring capacity of the failure flight recorder: the last N disk
/// commands of the minimized episode, span-annotated. Shrunk traces are
/// short, so this comfortably covers the interesting tail.
const FLIGHT_EVENTS: usize = 256;

/// Everything needed to replay a failure from scratch.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The stack configuration the divergence occurred on.
    pub cfg: StackConfig,
    /// The episode seed (regenerates the *original* trace; the shrunk
    /// trace below is what minimal replay uses).
    pub seed: u64,
    /// The minimized trace.
    pub trace: TraceSpec,
    /// The divergence the minimized trace produces.
    pub failure: Divergence,
    /// Episode re-executions the shrinker spent.
    pub runs: u32,
    /// Span-annotated JSONL flight-recorder dump of one replay of the
    /// minimized trace: span lines (keyed `"parent"`) then the last
    /// [`FLIGHT_EVENTS`] disk events (keyed `"at"`, each stamped with the
    /// span open when the command was issued).
    pub flight: String,
}

impl fmt::Display for Reproducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "modelcheck divergence on stack `{}`", self.cfg)?;
        writeln!(
            f,
            "  seed: {:#018x}  (replay: VLFS_SEED={:#x} cargo test -p modelcheck)",
            self.seed, self.seed
        )?;
        writeln!(f, "  failure: {}", self.failure)?;
        writeln!(
            f,
            "  shrunk trace ({} ops, {} shrink runs):",
            self.trace.ops.len(),
            self.runs
        )?;
        write!(f, "{}", self.trace)?;
        if !self.flight.is_empty() {
            let spans = self.flight.lines().filter(|l| l.contains("\"parent\":")).count();
            let events = self.flight.lines().count() - spans;
            writeln!(
                f,
                "  flight recorder ({spans} span(s), last {events} disk event(s)):"
            )?;
            for line in self.flight.lines() {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

/// Minimize a failing trace. `trace` must already fail (the caller
/// observed `run_trace(cfg, trace, planted).is_err()`).
pub fn shrink(
    cfg: StackConfig,
    seed: u64,
    trace: &TraceSpec,
    planted: &PlantedBug,
    original: Divergence,
) -> Reproducer {
    let mut best = trace.clone();
    let mut failure = original;
    let mut runs = 0u32;

    let try_candidate = |cand: &TraceSpec, runs: &mut u32| -> Option<Divergence> {
        *runs += 1;
        run_trace(cfg, cand, planted).err()
    };

    // Drop-op passes to a fixpoint: each pass walks back-to-front so index
    // shifts never skip a candidate within the pass.
    let mut changed = true;
    while changed && runs < MAX_RUNS {
        changed = false;
        let mut i = best.ops.len();
        while i > 0 && runs < MAX_RUNS {
            i -= 1;
            let mut cand = best.clone();
            cand.ops.remove(i);
            if let Some(f) = try_candidate(&cand, &mut runs) {
                best = cand;
                failure = f;
                changed = true;
            }
        }
    }

    // A cut that is no longer needed obscures the reproducer: drop it if
    // the shrunk trace fails without it.
    if best.cut.is_some() && runs < MAX_RUNS {
        let mut cand = best.clone();
        cand.cut = None;
        if let Some(f) = try_candidate(&cand, &mut runs) {
            best = cand;
            failure = f;
        }
    }

    // One last replay of the minimized trace with a flight recorder on the
    // raw device: the report then shows the span-annotated disk history
    // (which FS op or background pass issued each command) leading to the
    // failure. The replay is deterministic, so the dump is too.
    let recorder = disksim::FlightRecorder::with_capacity(FLIGHT_EVENTS);
    let _ = run_trace_recorded(cfg, &best, planted, Some(&recorder));
    let flight = recorder.dump();

    Reproducer { cfg, seed, trace: best, failure, runs, flight }
}
