//! Seeded, splittable randomness for replayable episodes.
//!
//! The model checker deliberately does not use the workspace `rand` shim:
//! every episode must be reconstructible from a single `u64` printed in a
//! failure report, across shim upgrades. A splitmix64 core gives us that —
//! it is tiny, fast, well distributed for test-case generation, and the
//! `split` operation derives independent streams so the op generator and
//! the fault planner cannot perturb each other's draws when one of them
//! changes.

/// One splitmix64 step: advance `state` and return the next value.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A splittable deterministic generator.
#[derive(Debug, Clone)]
pub struct McRng {
    state: u64,
}

impl McRng {
    /// Seeded generator; the same seed always yields the same stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `0..n` (`n > 0`). Modulo bias is irrelevant at
    /// test-generation quality.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Derive an independent stream. Consumes one draw from `self`, so
    /// sibling splits with distinct `stream` tags are decorrelated.
    pub fn split(&mut self, stream: u64) -> McRng {
        McRng {
            state: self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }
}

/// Deterministic payload bytes for a write: byte `i` depends only on
/// `(tag, offset + i)`, so the reference model and the executor produce
/// identical data from the compact `(tag, offset, len)` stored in the op,
/// and two writes with different tags never collide byte-for-byte.
pub fn fill(tag: u64, offset: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut i = 0usize;
    while i < len {
        let pos = offset + i as u64;
        let mut s = tag ^ (pos / 8).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let word = splitmix64(&mut s).to_le_bytes();
        let phase = (pos % 8) as usize;
        let take = (8 - phase).min(len - i);
        out.extend_from_slice(&word[phase..phase + take]);
        i += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_split_independent() {
        let mut a = McRng::new(42);
        let mut b = McRng::new(42);
        let s1: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(s1, s2);

        let mut r = McRng::new(7);
        let mut x = r.split(1);
        let mut y = McRng::new(7).split(2);
        assert_ne!(x.next_u64(), y.next_u64(), "streams with distinct tags differ");
    }

    #[test]
    fn fill_is_position_stable() {
        // Chunking must not matter: fill(tag, 0, 64) restricted to [8, 24)
        // equals fill(tag, 8, 16).
        let whole = fill(99, 0, 64);
        let part = fill(99, 8, 16);
        assert_eq!(&whole[8..24], &part[..]);
    }

    #[test]
    fn fill_distinguishes_tags() {
        assert_ne!(fill(1, 0, 32), fill(2, 0, 32));
    }
}
