//! The four device stacks of the paper's Figure 5, with a fault layer
//! uniformly spliced directly above the raw device:
//!
//! * `UfsRegular` — `Ufs → FaultDisk → RegularDisk`
//! * `UfsVld`     — `Ufs → FaultDisk → Vld`
//! * `LfsRegular` — `Ufs → LogDisk → FaultDisk → RegularDisk`
//! * `LfsVld`     — `Ufs → LogDisk → FaultDisk → Vld`
//!
//! Placing the fault layer at the same depth in every stack means a seeded
//! power cut is always expressed in raw-device write ops, and teardown
//! (simulated power loss: volatile layers evaporate, only the media's
//! sectors survive) and remount (the stack's real recovery path) follow one
//! uniform recipe.

use std::fmt;
use std::sync::OnceLock;

use disksim::{
    downcast_device, probe_device, Disk, DiskSpec, FaultDisk, FaultPlan, RegularDisk, SimClock,
};
use fscore::{FsError, FsResult, HostModel};
use lfs::{LldConfig, LogDisk};
use ufs::{FsckError, Ufs, UfsConfig};
use vlog_core::recovery::RecoveryReport;
use vlog_core::vld::{Vld, VldConfig};

/// Logical block size all stacks run at.
pub const BLOCK: usize = 4096;

/// One of the four checked configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackConfig {
    /// Update-in-place file system on an update-in-place disk.
    UfsRegular,
    /// Update-in-place file system on the virtual-log disk.
    UfsVld,
    /// Log-structured logical disk on an update-in-place disk.
    LfsRegular,
    /// Log-structured logical disk on the virtual-log disk.
    LfsVld,
}

/// Sweep order for all four configurations.
pub const ALL_CONFIGS: [StackConfig; 4] = [
    StackConfig::UfsRegular,
    StackConfig::UfsVld,
    StackConfig::LfsRegular,
    StackConfig::LfsVld,
];

impl StackConfig {
    /// Is a log-structured logical disk part of the stack?
    pub fn is_lfs(self) -> bool {
        matches!(self, StackConfig::LfsRegular | StackConfig::LfsVld)
    }

    /// Is the raw device a VLD?
    pub fn on_vld(self) -> bool {
        matches!(self, StackConfig::UfsVld | StackConfig::LfsVld)
    }

    fn index(self) -> usize {
        match self {
            StackConfig::UfsRegular => 0,
            StackConfig::UfsVld => 1,
            StackConfig::LfsRegular => 2,
            StackConfig::LfsVld => 3,
        }
    }
}

impl fmt::Display for StackConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StackConfig::UfsRegular => "ufs-regular",
            StackConfig::UfsVld => "ufs-vld",
            StackConfig::LfsRegular => "lfs-regular",
            StackConfig::LfsVld => "lfs-vld",
        };
        f.write_str(s)
    }
}

fn spec() -> DiskSpec {
    DiskSpec::hp97560_sim()
}

fn vld_cfg() -> VldConfig {
    VldConfig::default()
}

fn ufs_cfg(lfs: bool) -> UfsConfig {
    UfsConfig {
        // Small inode table keeps format cheap; read-ahead off for
        // cross-stack uniformity (the paper disables it on the LLD).
        inode_count: 64,
        cache_bytes: 1 << 20,
        readahead_blocks: 0,
        // The LFS file layer propagates deletes to the log and drains the
        // cache in bulk, as in the paper's LFS configuration.
        trim_on_delete: lfs,
        flush_on_full: lfs,
        ..UfsConfig::default()
    }
}

/// Build a freshly formatted stack with `plan` armed in its fault layer.
pub fn build(cfg: StackConfig, plan: FaultPlan) -> FsResult<Ufs> {
    build_recorded(cfg, plan, None)
}

/// [`build`] with an optional flight recorder: its event ring and span
/// table are attached to the raw device before the stack is formatted.
/// Both live on the mechanical [`Disk`], which survives teardown, so one
/// recorder covers format, workload, crash and the recovery that follows.
pub fn build_recorded(
    cfg: StackConfig,
    plan: FaultPlan,
    rec: Option<&disksim::FlightRecorder>,
) -> FsResult<Ufs> {
    let clock = SimClock::new();
    let host = HostModel::instant();
    let raw: Box<dyn disksim::BlockDevice> = if cfg.on_vld() {
        let mut vld = Vld::format(spec(), clock, vld_cfg());
        if let Some(r) = rec {
            vld.set_observability(Some(r.tracer.clone()), disksim::Metrics::default());
            vld.set_spans(r.spans.clone());
        }
        Box::new(vld)
    } else {
        let mut rd = RegularDisk::new(spec(), clock, BLOCK);
        if let Some(r) = rec {
            rd.disk_mut().set_tracer(Some(r.tracer.clone()));
            rd.disk_mut().set_spans(r.spans.clone());
        }
        Box::new(rd)
    };
    let faulted = Box::new(FaultDisk::new(raw, plan));
    let dev: Box<dyn disksim::BlockDevice> = if cfg.is_lfs() {
        Box::new(LogDisk::format(faulted, LldConfig::default())?)
    } else {
        faulted
    };
    let mut fs = Ufs::format(dev, host, ufs_cfg(cfg.is_lfs()))?;
    // mkfs ends with a flush: a crash before the first operation must find
    // a mountable file system even on stacks that buffer writes (the LLD's
    // partial segment is volatile until the first sync).
    fscore::FileSystem::sync(&mut fs)?;
    Ok(fs)
}

/// Device write ops a clean format of `cfg` performs — the deterministic
/// offset seeded cuts are expressed relative to. Measured once per config.
pub fn format_writes(cfg: StackConfig) -> u64 {
    static CACHE: [OnceLock<u64>; 4] =
        [OnceLock::new(), OnceLock::new(), OnceLock::new(), OnceLock::new()];
    *CACHE[cfg.index()].get_or_init(|| {
        let fs = build(cfg, FaultPlan::none()).expect("clean format");
        probe_device::<FaultDisk>(fs.device())
            .expect("fault layer present in every stack")
            .write_ops()
    })
}

/// What survives a simulated power loss.
pub struct CrashState {
    /// The mechanical disk's sectors — the only non-volatile state.
    pub disk: Disk,
    /// Write ops the fault layer acknowledged before the lights went out.
    pub write_ops: u64,
    /// Did the armed power cut fire in this incarnation?
    pub cut_fired: bool,
}

/// Dismantle the stack without any shutdown courtesy: caches, buffered
/// segments and the VLD's in-memory map evaporate; only the media survives.
pub fn teardown(cfg: StackConfig, fs: Ufs) -> CrashState {
    let dev = fs.into_device();
    let dev = if cfg.is_lfs() {
        let lld: LogDisk = downcast_device(dev);
        lld.crash()
    } else {
        dev
    };
    let faulted: FaultDisk = downcast_device(dev);
    let write_ops = faulted.write_ops();
    let cut_fired = faulted.is_powered_off();
    let inner = faulted.into_inner();
    let disk = if cfg.on_vld() {
        let vld: Vld = downcast_device(inner);
        vld.crash()
    } else {
        let raw: RegularDisk = downcast_device(inner);
        raw.into_disk()
    };
    CrashState { disk, write_ops, cut_fired }
}

/// Bring the media back up through the stack's real recovery path, with a
/// (usually empty) fault plan armed in the fresh fault layer.
pub fn remount(
    cfg: StackConfig,
    disk: Disk,
    plan: FaultPlan,
) -> FsResult<(Ufs, Option<RecoveryReport>)> {
    let host = HostModel::instant();
    // Spans left open by the crash (an interrupted FsOp, a mid-flight
    // compaction) are closed here so the recovery spans opened below attach
    // at the root rather than under a dead foreground op. No-op when no
    // flight recorder is attached.
    disk.spans().close_all(disk.clock().now());
    let (raw, report): (Box<dyn disksim::BlockDevice>, Option<RecoveryReport>) = if cfg.on_vld() {
        let (vld, rep) =
            Vld::recover(disk, spec().command_overhead_ns, vld_cfg()).map_err(FsError::Disk)?;
        (Box::new(vld), Some(rep))
    } else {
        (Box::new(RegularDisk::from_disk(disk, BLOCK)), None)
    };
    let faulted = Box::new(FaultDisk::new(raw, plan));
    let dev: Box<dyn disksim::BlockDevice> = if cfg.is_lfs() {
        Box::new(LogDisk::mount(faulted, LldConfig::default())?)
    } else {
        faulted
    };
    let fs = Ufs::mount(dev, host)?;
    Ok((fs, report))
}

/// Structural audits over a freshly recovered stack: the virtual log's
/// internal consistency check (when a VLD is present, probed in place via
/// [`disksim::probe_device`]) and `fsck` restricted to the severe classes a
/// crash must never produce. Leaked blocks and orphan inodes are expected
/// crash debris and not flagged here.
pub fn post_recovery_audit(fs: &mut Ufs) -> Vec<String> {
    let mut complaints = Vec::new();
    if let Some(vld) = probe_device::<Vld>(fs.device()) {
        complaints.extend(
            vld.vlog()
                .check_consistency()
                .into_iter()
                .map(|m| format!("vld audit: {m}")),
        );
    }
    match ufs::fsck(fs.device_mut()) {
        Ok(rep) => complaints.extend(
            rep.errors
                .iter()
                .filter(|e| severe(e))
                .map(|e| format!("fsck: {e:?}")),
        ),
        Err(e) => complaints.push(format!("fsck did not run: {e}")),
    }
    complaints
}

fn severe(e: &FsckError) -> bool {
    matches!(
        e,
        FsckError::PointerOutOfRange { .. }
            | FsckError::DoubleReference { .. }
            | FsckError::DanglingDirent { .. }
            | FsckError::SizeBeyondPointers { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscore::FileSystem;

    /// Every config builds, survives teardown, and remounts cleanly; the
    /// in-place VLD probe finds the virtual log exactly on VLD stacks.
    #[test]
    fn round_trip_and_probe_all_configs() {
        for cfg in ALL_CONFIGS {
            let mut fs = build(cfg, FaultPlan::none()).expect("format");
            let f = fs.create("probe").expect("create");
            fs.write(f, 0, b"hello").expect("write");
            fs.sync().expect("sync");
            assert_eq!(
                probe_device::<Vld>(fs.device()).is_some(),
                cfg.on_vld(),
                "{cfg}: VLD probe"
            );
            assert!(post_recovery_audit(&mut fs).is_empty(), "{cfg}: clean audit");
            let st = teardown(cfg, fs);
            assert!(st.write_ops > 0, "{cfg}: no writes counted");
            assert!(!st.cut_fired);
            let (mut fs, _) = remount(cfg, st.disk, FaultPlan::none()).expect("remount");
            let f = fs.open("probe").expect("open after remount");
            let mut buf = [0u8; 5];
            assert_eq!(fs.read(f, 0, &mut buf).expect("read"), 5);
            assert_eq!(&buf, b"hello");
        }
    }

    /// Format write counts are deterministic (the cut-offset scheme relies
    /// on this) and differ across stacks.
    #[test]
    fn format_write_counts_are_stable() {
        for cfg in ALL_CONFIGS {
            let a = format_writes(cfg);
            let fs = build(cfg, FaultPlan::none()).expect("format");
            let b = probe_device::<FaultDisk>(fs.device()).unwrap().write_ops();
            assert_eq!(a, b, "{cfg}: format writes drifted");
            assert!(a > 0, "{cfg}: format wrote nothing?");
        }
    }
}
