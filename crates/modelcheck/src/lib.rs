#![warn(missing_docs)]
//! # modelcheck — differential model checking for the VLFS stacks
//!
//! A pure in-memory reference file system ([`model::RefModel`]) is driven
//! in lockstep with the real stacks — UFS and LFS, each over a regular
//! disk and over the virtual-log disk — through seeded workload traces
//! ([`gen::generate`]). Every step's result is compared; every `sync`
//! advances a durability floor; every crash (explicit, or a seeded power
//! cut in the uniformly spliced fault layer) is followed by the stack's
//! real recovery path, structural audits (virtual-log consistency probed
//! in place, `fsck` severe classes), and a byte-exact durability check.
//!
//! On divergence the failing trace is minimized ([`shrink::shrink`]) and a
//! self-contained [`shrink::Reproducer`] — stack, seed, shrunk op list —
//! is produced.
//!
//! ## Seeding
//!
//! `VLFS_SEED` is the one environment entry point for reproducibility: it
//! seeds the workload generator *and* (through the generated episode) the
//! fault plan armed in the `FaultDisk`, and it is echoed in every failure
//! report. `VLFS_MC_EPISODES` opts into the long-run soak test; the smoke
//! sweep's width is `VLFS_MC_SMOKE_SEEDS` (CI pins 64).
//!
//! ```text
//! VLFS_SEED=0xdeadbeef cargo test -p modelcheck        # replay a report
//! VLFS_MC_EPISODES=500 cargo test -p modelcheck --release -- long_run
//! ```

pub mod diff;
pub mod gen;
pub mod model;
pub mod rng;
pub mod shrink;
pub mod stack;

pub use diff::{run_trace, run_trace_recorded, Divergence, PlantedBug, RunStats};
pub use gen::{generate, McOp, TraceSpec};
pub use model::RefModel;
pub use shrink::{shrink, Reproducer};
pub use stack::{StackConfig, ALL_CONFIGS};

/// The `VLFS_SEED` environment variable, decimal or `0x`-hex. The single
/// documented entry point for reseeding the generator and the fault layer.
pub fn env_seed() -> Option<u64> {
    let v = std::env::var("VLFS_SEED").ok()?;
    let v = v.trim();
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

/// Derive episode seed `i` of stack `cfg` from a base seed, so sweeps
/// decorrelate across both axes while staying replayable from the base.
pub fn episode_seed(base: u64, cfg: StackConfig, i: u64) -> u64 {
    let mut s = base ^ (cfg as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ i.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    rng::splitmix64(&mut s)
}

/// Generate, run, and on divergence shrink one episode: the main entry
/// point the test suites use. `len` is the trace length in ops.
pub fn check_seed(
    cfg: StackConfig,
    seed: u64,
    len: usize,
) -> Result<RunStats, Box<Reproducer>> {
    let trace = gen::generate(seed, len);
    match diff::run_trace(cfg, &trace, &PlantedBug::None) {
        Ok(stats) => Ok(stats),
        Err(d) => Err(Box::new(shrink::shrink(cfg, seed, &trace, &PlantedBug::None, d))),
    }
}

/// One episode of a sweep and its outcome, in sweep order.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Which stack the episode drove.
    pub cfg: StackConfig,
    /// Episode index within the stack's seed range.
    pub index: u64,
    /// The derived episode seed ([`episode_seed`]).
    pub seed: u64,
    /// Clean stats, or a shrunk seed-replayable reproducer.
    pub result: Result<RunStats, Box<Reproducer>>,
}

/// Fan a seeded sweep — every stack in [`ALL_CONFIGS`] × `seeds` episodes
/// of `len` ops each — over the shared worker pool ([`disksim::par`]).
///
/// Each episode builds its own clock, disk and file system and is seeded
/// by `(base, cfg, index)` alone, so episodes are independent; results
/// come back in `(cfg, index)` order regardless of the pool width, which
/// keeps failure sets, report text and shrunk reproducers byte-identical
/// between a sequential and a parallel sweep.
pub fn sweep_all_stacks(base: u64, seeds: u64, len: usize) -> Vec<SweepOutcome> {
    sweep_all_stacks_in(disksim::par::threads(), base, seeds, len)
}

/// [`sweep_all_stacks`] at an explicit pool width, for tests comparing a
/// 1-wide and an N-wide run in one process (the global knob is set-once).
pub fn sweep_all_stacks_in(width: usize, base: u64, seeds: u64, len: usize) -> Vec<SweepOutcome> {
    let episodes: Vec<(StackConfig, u64)> = ALL_CONFIGS
        .into_iter()
        .flat_map(|cfg| (0..seeds).map(move |i| (cfg, i)))
        .collect();
    disksim::par::pmap_in(width, episodes, move |(cfg, index)| {
        let seed = episode_seed(base, cfg, index);
        SweepOutcome {
            cfg,
            index,
            seed,
            result: check_seed(cfg, seed, len),
        }
    })
}
