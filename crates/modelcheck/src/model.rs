//! The reference model: a flat map of name → bytes, plus the durability
//! oracle that says what must survive a crash.
//!
//! The model is deliberately trivial — no blocks, no cache, no log — so a
//! divergence always indicts the real stack (or the harness), never the
//! oracle. Its error results mirror the `FileSystem` contract exactly,
//! including the order of error checks in `rename`, so the differential
//! executor can compare `FsResult`s verbatim.
//!
//! # Durability rules
//!
//! The stacks only promise durability at `sync` boundaries (UFS metadata is
//! stronger, but the model checks the *common* contract all four stacks
//! share):
//!
//! * a name untouched since the last completed `sync` and present in the
//!   sync snapshot must survive a crash byte-for-byte;
//! * a name untouched since the last completed `sync` and absent from the
//!   snapshot must stay absent;
//! * anything touched since the snapshot is *uncertain*: after recovery the
//!   model adopts whatever the file system actually has for it — and from
//!   then on holds the stack to that adopted state, because recovery itself
//!   is a durability barrier (everything it reconstructs is on the media).

use std::collections::{BTreeMap, BTreeSet};

use fscore::{FsError, FsResult};

/// In-memory reference state plus the durability snapshot.
#[derive(Debug, Clone, Default)]
pub struct RefModel {
    /// Live state: what a crash-free file system must show right now.
    files: BTreeMap<String, Vec<u8>>,
    /// State at the last completed `sync` — the durability floor.
    durable: BTreeMap<String, Vec<u8>>,
    /// Names touched (created, written, deleted, renamed) since that sync.
    dirty: BTreeSet<String>,
}

impl RefModel {
    /// Fresh model for a freshly formatted volume.
    pub fn new() -> Self {
        Self::default()
    }

    /// Does the file exist in live state?
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Live size of a file.
    pub fn size(&self, name: &str) -> Option<u64> {
        self.files.get(name).map(|f| f.len() as u64)
    }

    /// Live contents, for full-state comparisons.
    pub fn live(&self) -> &BTreeMap<String, Vec<u8>> {
        &self.files
    }

    /// Mirror of `FileSystem::create`.
    pub fn create(&mut self, name: &str) -> FsResult<()> {
        if self.files.contains_key(name) {
            return Err(FsError::Exists);
        }
        self.files.insert(name.to_string(), Vec::new());
        self.dirty.insert(name.to_string());
        Ok(())
    }

    /// Mirror of `FileSystem::write` (on an open handle): extends with a
    /// zero-filled hole when `offset` is past the end.
    pub fn write(&mut self, name: &str, offset: u64, data: &[u8]) -> FsResult<()> {
        let f = self.files.get_mut(name).ok_or(FsError::NotFound)?;
        let end = offset as usize + data.len();
        if f.len() < end {
            f.resize(end, 0);
        }
        f[offset as usize..end].copy_from_slice(data);
        self.dirty.insert(name.to_string());
        Ok(())
    }

    /// Mirror of `FileSystem::read`: the bytes a read of `len` at `offset`
    /// must return (short at end of file, empty past it).
    pub fn read(&self, name: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let f = self.files.get(name).ok_or(FsError::NotFound)?;
        let start = (offset as usize).min(f.len());
        let end = (offset as usize).saturating_add(len).min(f.len());
        Ok(f[start..end].to_vec())
    }

    /// Mirror of `FileSystem::delete`.
    pub fn delete(&mut self, name: &str) -> FsResult<()> {
        if self.files.remove(name).is_none() {
            return Err(FsError::NotFound);
        }
        self.dirty.insert(name.to_string());
        Ok(())
    }

    /// Mirror of `FileSystem::rename`, with the same error-check order as
    /// the UFS implementation: missing source, self-rename no-op, taken
    /// destination.
    pub fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        if !self.files.contains_key(from) {
            return Err(FsError::NotFound);
        }
        if from == to {
            return Ok(());
        }
        if self.files.contains_key(to) {
            return Err(FsError::Exists);
        }
        let bytes = self.files.remove(from).expect("presence checked");
        self.files.insert(to.to_string(), bytes);
        self.dirty.insert(from.to_string());
        self.dirty.insert(to.to_string());
        Ok(())
    }

    /// A `sync` completed: live state becomes the durability floor.
    pub fn commit_sync(&mut self) {
        self.durable = self.files.clone();
        self.dirty.clear();
    }

    /// Mark a name uncertain — used when a power cut interrupts an
    /// operation targeting it, so its on-media state is unknowable.
    pub fn mark_dirty(&mut self, name: &str) {
        self.dirty.insert(name.to_string());
    }

    /// Reconcile with the file system's actual state after a crash and
    /// recovery. `actual` maps every present name to its full contents;
    /// absent names are simply missing from the map.
    ///
    /// Clean names are checked against the durability floor; dirty names
    /// are adopted as found. On success the post-recovery state becomes
    /// both the live state and the new floor. On failure returns a
    /// human-readable description of the violated guarantee.
    pub fn crash_adopt(&mut self, actual: &BTreeMap<String, Vec<u8>>) -> Result<(), String> {
        let mut names: BTreeSet<&String> = actual.keys().collect();
        names.extend(self.durable.keys());
        names.extend(self.files.keys());
        names.extend(self.dirty.iter());
        let mut adopted: Vec<(String, Option<Vec<u8>>)> = Vec::new();
        for n in names {
            if self.dirty.contains(n) {
                adopted.push((n.clone(), actual.get(n).cloned()));
                continue;
            }
            match (self.durable.get(n), actual.get(n)) {
                (Some(want), Some(got)) => {
                    if want != got {
                        return Err(format!(
                            "durability violated: '{n}' was synced with {} bytes but \
                             recovered with {} bytes{}",
                            want.len(),
                            got.len(),
                            first_difference(want, got)
                        ));
                    }
                }
                (Some(want), None) => {
                    return Err(format!(
                        "durability violated: '{n}' ({} bytes) was synced, untouched \
                         since, and lost across the crash",
                        want.len()
                    ));
                }
                (None, Some(got)) => {
                    return Err(format!(
                        "durability violated: '{n}' was absent at the last sync, \
                         untouched since, yet recovered with {} bytes",
                        got.len()
                    ));
                }
                (None, None) => {}
            }
        }
        for (n, state) in adopted {
            match state {
                Some(bytes) => {
                    self.files.insert(n, bytes);
                }
                None => {
                    self.files.remove(&n);
                }
            }
        }
        self.durable = self.files.clone();
        self.dirty.clear();
        Ok(())
    }
}

/// Locate the first differing byte for a readable report.
fn first_difference(a: &[u8], b: &[u8]) -> String {
    match a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        Some(i) => format!(" (first difference at byte {i}: {:#04x} vs {:#04x})", a[i], b[i]),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_mirrors_fs_semantics() {
        let mut m = RefModel::new();
        assert_eq!(m.create("a"), Ok(()));
        assert_eq!(m.create("a"), Err(FsError::Exists));
        assert_eq!(m.write("a", 4, b"xy"), Ok(()));
        assert_eq!(m.read("a", 0, 10).unwrap(), vec![0, 0, 0, 0, b'x', b'y']);
        assert_eq!(m.read("a", 6, 4).unwrap(), Vec::<u8>::new());
        assert_eq!(m.rename("a", "a"), Ok(()));
        assert_eq!(m.rename("missing", "b"), Err(FsError::NotFound));
        assert_eq!(m.create("b"), Ok(()));
        assert_eq!(m.rename("a", "b"), Err(FsError::Exists));
        assert_eq!(m.delete("b"), Ok(()));
        assert_eq!(m.rename("a", "b"), Ok(()));
        assert!(!m.exists("a"));
        assert_eq!(m.size("b"), Some(6));
        assert_eq!(m.delete("a"), Err(FsError::NotFound));
    }

    #[test]
    fn durability_oracle_accepts_only_legal_crash_states() {
        let mut m = RefModel::new();
        m.create("keep").unwrap();
        m.write("keep", 0, b"data").unwrap();
        m.commit_sync();
        m.create("maybe").unwrap();

        // Legal: synced file intact, dirty file either way.
        let mut ok = BTreeMap::new();
        ok.insert("keep".to_string(), b"data".to_vec());
        assert!(m.clone().crash_adopt(&ok).is_ok());
        let mut ok2 = ok.clone();
        ok2.insert("maybe".to_string(), Vec::new());
        assert!(m.clone().crash_adopt(&ok2).is_ok());

        // Illegal: the synced file lost, altered, or a clean name
        // resurrected.
        assert!(m.clone().crash_adopt(&BTreeMap::new()).is_err());
        let mut bad = ok.clone();
        bad.insert("keep".to_string(), b"datA".to_vec());
        assert!(m.clone().crash_adopt(&bad).is_err());
        m.commit_sync(); // "maybe" now durable too, everything clean
        m.delete("maybe").unwrap();
        m.commit_sync(); // clean absence
        let mut res = ok.clone();
        res.insert("maybe".to_string(), Vec::new());
        assert!(m.clone().crash_adopt(&res).is_err(), "resurrection rejected");
    }

    #[test]
    fn adoption_becomes_the_new_floor() {
        let mut m = RefModel::new();
        m.create("f").unwrap();
        m.write("f", 0, b"lost").unwrap();
        // Crash before any sync: the file never made it.
        assert!(m.crash_adopt(&BTreeMap::new()).is_ok());
        assert!(!m.exists("f"));
        // A second crash must now hold the stack to that adopted absence…
        assert!(m.clone().crash_adopt(&BTreeMap::new()).is_ok());
        // …and a resurrection is a violation.
        let mut back = BTreeMap::new();
        back.insert("f".to_string(), b"lost".to_vec());
        assert!(m.crash_adopt(&back).is_err());
    }
}
