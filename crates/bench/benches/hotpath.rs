//! Hot-path micro-benchmarks for the flat media store and the two-level
//! translation table: sequential and strided multi-track reads/writes
//! through the disk's flat track store, and logical→physical lookups
//! through the virtual log's piece-paged map — the two inner loops every
//! simulated figure, model-check episode and crash sweep turns on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use disksim::{Disk, DiskSpec, SimClock, SECTOR_BYTES};
use vlog_core::{AllocConfig, VirtualLog, BLOCK_BYTES};

fn disk() -> Disk {
    let mut spec = DiskSpec::hp97560_sim();
    spec.command_overhead_ns = 0;
    Disk::new(spec, SimClock::new())
}

/// Raw sector traffic through the flat track store: a long sequential
/// stream (multi-track runs) and a strided pattern (one run per command,
/// different track each time).
fn bench_track_store(c: &mut Criterion) {
    let spt = 72usize; // HP 97560 sectors per track
    c.bench_function("disk/write_seq_4tracks", |b| {
        let buf = vec![0xA5u8; 4 * spt * SECTOR_BYTES];
        b.iter_batched(
            disk,
            |mut d| d.write_sectors(0, &buf).unwrap(),
            BatchSize::SmallInput,
        );
    });
    c.bench_function("disk/read_seq_4tracks", |b| {
        let mut d = disk();
        let buf = vec![0xA5u8; 4 * spt * SECTOR_BYTES];
        d.write_sectors(0, &buf).unwrap();
        let mut out = vec![0u8; buf.len()];
        b.iter(|| d.read_sectors(0, &mut out).unwrap());
    });
    c.bench_function("disk/read_strided_64cmds", |b| {
        let mut d = disk();
        let block = vec![0x5Au8; 8 * SECTOR_BYTES];
        for i in 0..64u64 {
            d.write_sectors(i * 1009 * 8 % 48_000, &block).unwrap();
        }
        let mut out = vec![0u8; block.len()];
        b.iter(|| {
            for i in 0..64u64 {
                d.read_sectors(i * 1009 * 8 % 48_000, &mut out).unwrap();
            }
        });
    });
}

/// Logical→physical translation through the piece-paged map: hit a warm
/// working set, then a sparse sweep that mostly lands on unmaterialised
/// pages (the shared all-unmapped page's fast path).
fn bench_translate(c: &mut Criterion) {
    let mut v = VirtualLog::format(disk(), AllocConfig::default());
    let data = vec![7u8; BLOCK_BYTES];
    for lb in 0..512u64 {
        v.write(lb, &data).unwrap();
    }
    let n = v.num_blocks();
    c.bench_function("vlog/translate_hot512", |b| {
        b.iter(|| {
            let mut live = 0u64;
            for lb in 0..512u64 {
                live += u64::from(v.translate(lb).is_some());
            }
            live
        });
    });
    c.bench_function("vlog/translate_sparse_sweep", |b| {
        b.iter(|| {
            let mut live = 0u64;
            for lb in (0..n).step_by(97) {
                live += u64::from(v.translate(lb).is_some());
            }
            live
        });
    });
}

criterion_group!(benches, bench_track_store, bench_translate);
criterion_main!(benches);
