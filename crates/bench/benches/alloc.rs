//! Allocator fast-path micro-benchmarks: `find_block` / `find_sector` /
//! `FreeMap::allocate` at 10 / 50 / 90 % utilization, plus the retained
//! naive `reference::greedy` oracle at the same fill levels so the
//! speedup from the hierarchical index and cost pruning is measurable
//! side by side — and the three allocation modes (best-first indexed,
//! pruned scan, reference oracle) head-to-head on aged, highly
//! fragmented disks at 25 / 50 / 75 / 90 % utilization.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use disksim::{Disk, DiskSpec, SimClock};
use vlog_core::alloc::reference;
use vlog_core::{AllocConfig, AllocMode, EagerAllocator, FreeMap, BLOCK_SECTORS};

/// Deterministic xorshift-style fill to the requested utilization,
/// the same pattern the equivalence property test uses.
fn filled_map(spec: &DiskSpec, util: f64) -> FreeMap {
    let g = &spec.geometry;
    let mut free = FreeMap::new(g);
    let mut x = 7u64;
    while free.utilization() < util {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let cyl = (x >> 33) as u32 % g.cylinders();
        let track = (x >> 21) as u32 % g.tracks_per_cylinder();
        let spt = free.sectors_per_track(free.track_index(cyl, track));
        let slot = (x >> 8) as u32 % (spt / BLOCK_SECTORS);
        let _ = free.allocate(cyl, track, slot * BLOCK_SECTORS, BLOCK_SECTORS);
    }
    free
}

fn setup(util: f64) -> (Disk, FreeMap) {
    let mut spec = DiskSpec::st19101_sim();
    spec.command_overhead_ns = 0;
    let free = filled_map(&spec, util);
    (Disk::new(spec, SimClock::new()), free)
}

fn bench_find(c: &mut Criterion) {
    for pct in [10u32, 50, 90] {
        let (disk, free) = setup(pct as f64 / 100.0);
        let mut alloc = EagerAllocator::new(AllocConfig {
            threshold_fill: false,
            ..AllocConfig::default()
        });
        c.bench_function(&format!("alloc_find_block_{pct}pct"), |b| {
            b.iter(|| alloc.find_block(&disk, &free).expect("space exists"))
        });
        c.bench_function(&format!("alloc_find_sector_{pct}pct"), |b| {
            b.iter(|| alloc.find_sector(&disk, &free).expect("space exists"))
        });
        c.bench_function(&format!("alloc_reference_greedy_block_{pct}pct"), |b| {
            b.iter(|| {
                reference::greedy(&disk, &free, None, BLOCK_SECTORS, false)
                    .expect("space exists")
            })
        });
    }
}

/// An aged, highly fragmented map: overfill past the target utilization,
/// then free random blocks back down to it. Unlike a fresh fill, the
/// resulting free space is scattered holes — the shape eager writing
/// faces after long service, and the worst case for a candidate scan.
fn aged_map(spec: &DiskSpec, util: f64) -> FreeMap {
    let g = &spec.geometry;
    let mut free = FreeMap::new(g);
    let mut used: Vec<(u32, u32, u32)> = Vec::new();
    let mut x = 0xA6EDu64;
    let over = (util + 0.08).min(0.98);
    while free.utilization() < over {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let cyl = (x >> 33) as u32 % g.cylinders();
        let track = (x >> 21) as u32 % g.tracks_per_cylinder();
        let spt = free.sectors_per_track(free.track_index(cyl, track));
        let sector = ((x >> 8) as u32 % (spt / BLOCK_SECTORS)) * BLOCK_SECTORS;
        if free.allocate(cyl, track, sector, BLOCK_SECTORS).is_ok() {
            used.push((cyl, track, sector));
        }
    }
    while free.utilization() > util && !used.is_empty() {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let i = (x >> 16) as usize % used.len();
        let (cyl, track, sector) = used.swap_remove(i);
        free.release(cyl, track, sector, BLOCK_SECTORS)
            .expect("allocated above");
    }
    free
}

/// The three `VLFS_ALLOC` modes side by side on aged disks: the indexed
/// best-first path must beat the pruned scan, which must beat the naive
/// oracle, at every fill level.
fn bench_modes_aged(c: &mut Criterion) {
    for pct in [25u32, 50, 75, 90] {
        let mut spec = DiskSpec::st19101_sim();
        spec.command_overhead_ns = 0;
        let free = aged_map(&spec, pct as f64 / 100.0);
        let disk = Disk::new(spec, SimClock::new());
        for (label, mode) in [
            ("fast", AllocMode::Fast),
            ("pruned", AllocMode::Pruned),
            ("reference", AllocMode::Reference),
        ] {
            let mut alloc = EagerAllocator::with_mode(
                AllocConfig {
                    threshold_fill: false,
                    ..AllocConfig::default()
                },
                mode,
            );
            c.bench_function(&format!("alloc_aged_{label}_{pct}pct"), |b| {
                b.iter(|| alloc.find_block(&disk, &free).expect("space exists"))
            });
        }
    }
}

fn bench_freemap_allocate(c: &mut Criterion) {
    for pct in [10u32, 50, 90] {
        let (disk, free) = setup(pct as f64 / 100.0);
        let mut alloc = EagerAllocator::new(AllocConfig {
            threshold_fill: false,
            ..AllocConfig::default()
        });
        // Bench the bookkeeping itself: take the block the allocator
        // would pick, mark it used, then undo — the map returns to the
        // same fill level every iteration.
        let cand = alloc.find_block(&disk, &free).expect("space exists");
        c.bench_function(&format!("freemap_allocate_release_{pct}pct"), |b| {
            b.iter_batched(
                || free.clone(),
                |mut f| {
                    f.allocate(cand.cyl, cand.track, cand.sector, BLOCK_SECTORS)
                        .expect("allocate");
                    f.release(cand.cyl, cand.track, cand.sector, BLOCK_SECTORS)
                        .expect("release");
                    f
                },
                BatchSize::LargeInput,
            )
        });
    }
}

criterion_group!(benches, bench_find, bench_modes_aged, bench_freemap_allocate);
criterion_main!(benches);
