//! Allocator fast-path micro-benchmarks: `find_block` / `find_sector` /
//! `FreeMap::allocate` at 10 / 50 / 90 % utilization, plus the retained
//! naive `reference::greedy` oracle at the same fill levels so the
//! speedup from the hierarchical index and cost pruning is measurable
//! side by side.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use disksim::{Disk, DiskSpec, SimClock};
use vlog_core::alloc::reference;
use vlog_core::{AllocConfig, EagerAllocator, FreeMap, BLOCK_SECTORS};

/// Deterministic xorshift-style fill to the requested utilization,
/// the same pattern the equivalence property test uses.
fn filled_map(spec: &DiskSpec, util: f64) -> FreeMap {
    let g = &spec.geometry;
    let mut free = FreeMap::new(g);
    let mut x = 7u64;
    while free.utilization() < util {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let cyl = (x >> 33) as u32 % g.cylinders();
        let track = (x >> 21) as u32 % g.tracks_per_cylinder();
        let spt = free.sectors_per_track(free.track_index(cyl, track));
        let slot = (x >> 8) as u32 % (spt / BLOCK_SECTORS);
        let _ = free.allocate(cyl, track, slot * BLOCK_SECTORS, BLOCK_SECTORS);
    }
    free
}

fn setup(util: f64) -> (Disk, FreeMap) {
    let mut spec = DiskSpec::st19101_sim();
    spec.command_overhead_ns = 0;
    let free = filled_map(&spec, util);
    (Disk::new(spec, SimClock::new()), free)
}

fn bench_find(c: &mut Criterion) {
    for pct in [10u32, 50, 90] {
        let (disk, free) = setup(pct as f64 / 100.0);
        let mut alloc = EagerAllocator::new(AllocConfig {
            threshold_fill: false,
            ..AllocConfig::default()
        });
        c.bench_function(&format!("alloc_find_block_{pct}pct"), |b| {
            b.iter(|| alloc.find_block(&disk, &free).expect("space exists"))
        });
        c.bench_function(&format!("alloc_find_sector_{pct}pct"), |b| {
            b.iter(|| alloc.find_sector(&disk, &free).expect("space exists"))
        });
        c.bench_function(&format!("alloc_reference_greedy_block_{pct}pct"), |b| {
            b.iter(|| {
                reference::greedy(&disk, &free, None, BLOCK_SECTORS, false)
                    .expect("space exists")
            })
        });
    }
}

fn bench_freemap_allocate(c: &mut Criterion) {
    for pct in [10u32, 50, 90] {
        let (disk, free) = setup(pct as f64 / 100.0);
        let mut alloc = EagerAllocator::new(AllocConfig {
            threshold_fill: false,
            ..AllocConfig::default()
        });
        // Bench the bookkeeping itself: take the block the allocator
        // would pick, mark it used, then undo — the map returns to the
        // same fill level every iteration.
        let cand = alloc.find_block(&disk, &free).expect("space exists");
        c.bench_function(&format!("freemap_allocate_release_{pct}pct"), |b| {
            b.iter_batched(
                || free.clone(),
                |mut f| {
                    f.allocate(cand.cyl, cand.track, cand.sector, BLOCK_SECTORS)
                        .expect("allocate");
                    f.release(cand.cyl, cand.track, cand.sector, BLOCK_SECTORS)
                        .expect("release");
                    f
                },
                BatchSize::LargeInput,
            )
        });
    }
}

criterion_group!(benches, bench_find, bench_freemap_allocate);
criterion_main!(benches);
