//! Snapshot-engine micro-benchmarks: what a figure cell pays to *fork* an
//! aged system versus *rebuilding* it from scratch, plus the two costs the
//! fork amortises over — taking the flattened snapshot in the first place
//! and servicing copy-on-write faults as the fork diverges.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fscore::{FileSystem, HostModel};
use vlfs_bench::setup::{build_aged, AgedSpec, DevKind, DiskKind, FsKind};
use vlfs_bench::workload::BLOCK;

/// A small but representative aged state: log-structured stack at 30 %
/// utilisation on the Seagate slice (hundreds of live tracks, a populated
/// buffer cache and piece table).
fn spec() -> AgedSpec {
    AgedSpec::new(
        FsKind::Lfs,
        DevKind::Regular,
        DiskKind::Seagate,
        HostModel::sparcstation_10(),
        0.3,
    )
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    group.sample_size(20);

    // The rebuild oracle: what every cell paid before forking existed.
    group.bench_function("rebuild_aged_lfs_0.3", |b| {
        b.iter(|| build_aged(&spec()).unwrap());
    });

    // Taking the snapshot: flatten the media into one base image and
    // capture FS/device metadata. Paid once per distinct spec.
    let (fs, f, fb) = build_aged(&spec()).unwrap();
    group.bench_function("take_snapshot", |b| {
        b.iter(|| fs.snapshot().unwrap());
    });

    // Forking: what every cell pays instead of a rebuild. O(metadata) —
    // no track data is copied.
    let snap = fs.snapshot().unwrap();
    group.bench_function("fork_restore", |b| {
        b.iter(|| snap.restore());
    });

    // A fork that immediately dirties 32 distinct blocks: measures the
    // copy-on-write faults (track materialisation from the base image
    // through the buffer pool) plus the simulated writes themselves.
    let buf = vec![0xC3u8; BLOCK];
    group.bench_function("fork_write_32_blocks", |b| {
        b.iter_batched(
            || snap.restore(),
            |mut fork| {
                for i in 0..32u64 {
                    let off = (i * 193 % fb) * BLOCK as u64;
                    fork.write(f, off, &buf).unwrap();
                }
                fork.sync().unwrap();
                fork
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
