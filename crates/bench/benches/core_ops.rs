//! Criterion micro-benchmarks of the core mechanisms (wall-clock cost of
//! the implementation itself; the *simulated* latencies are reported by the
//! figure binaries).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use disksim::{BlockDevice, Disk, DiskSpec, SimClock};
use vlog_core::{AllocConfig, EagerAllocator, FreeMap, MapFlags, MapSector, Vld, VldConfig};

fn bench_checksum(c: &mut Criterion) {
    let buf = vec![0xA5u8; 4096];
    c.bench_function("crc32_4k", |b| {
        b.iter(|| vlog_core::checksum::crc32(std::hint::black_box(&buf)))
    });
}

fn bench_mapsector_codec(c: &mut Criterion) {
    let m = MapSector {
        seq: 123,
        piece: 7,
        flags: MapFlags::EMPTY,
        prev: Some((4096, 122)),
        bypass: Some((2048, 100)),
        txn: None,
        entries: vec![5; vlog_core::PIECE_ENTRIES],
    };
    let img = m.encode().expect("encode");
    c.bench_function("mapsector_encode", |b| {
        b.iter(|| m.encode().expect("encode"))
    });
    c.bench_function("mapsector_decode", |b| {
        b.iter(|| MapSector::decode(std::hint::black_box(&img)).expect("decode"))
    });
}

fn bench_eager_alloc(c: &mut Criterion) {
    // A half-full Seagate slice: realistic allocator working set.
    let mut spec = DiskSpec::st19101_sim();
    spec.command_overhead_ns = 0;
    let disk = Disk::new(spec.clone(), SimClock::new());
    let mut free = FreeMap::new(&spec.geometry);
    let mut x = 7u64;
    while free.utilization() < 0.5 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let cyl = (x >> 33) as u32 % 11;
        let track = (x >> 21) as u32 % 16;
        let slot = (x >> 8) as u32 % 32;
        let _ = free.allocate(cyl, track, slot * 8, 8);
    }
    let mut greedy = EagerAllocator::new(AllocConfig {
        threshold_fill: false,
        ..AllocConfig::default()
    });
    c.bench_function("eager_find_block_50pct", |b| {
        b.iter(|| greedy.find_block(&disk, &free).expect("space exists"))
    });
    c.bench_function("eager_find_sector_50pct", |b| {
        b.iter(|| greedy.find_sector(&disk, &free).expect("space exists"))
    });
}

fn bench_vld_write(c: &mut Criterion) {
    let block = vec![0x42u8; 4096];
    c.bench_function("vld_sync_write_4k", |b| {
        b.iter_batched(
            || {
                Vld::format(
                    DiskSpec::st19101_sim(),
                    SimClock::new(),
                    VldConfig::default(),
                )
            },
            |mut vld| {
                for lb in 0..64u64 {
                    vld.write_block(lb * 17 % 1024, &block).expect("in range");
                }
                vld
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_recovery(c: &mut Criterion) {
    let block = vec![0x42u8; 4096];
    let o = DiskSpec::st19101_sim().command_overhead_ns;
    c.bench_function("vld_recover_tail_500_blocks", |b| {
        b.iter_batched(
            || {
                let mut vld = Vld::format(
                    DiskSpec::st19101_sim(),
                    SimClock::new(),
                    VldConfig::default(),
                );
                for lb in 0..500u64 {
                    vld.write_block(lb, &block).expect("in range");
                }
                vld.shutdown().expect("park");
                vld.crash()
            },
            |disk| Vld::recover(disk, o, VldConfig::default()).expect("recover"),
            BatchSize::LargeInput,
        )
    });
}

fn bench_disk_mechanics(c: &mut Criterion) {
    let mut disk = Disk::new(DiskSpec::st19101_sim(), SimClock::new());
    let buf = vec![1u8; 4096];
    c.bench_function("disk_write_8_sectors", |b| {
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 8) % 40_000;
            disk.write_sectors(lba, &buf).expect("in range")
        })
    });
    c.bench_function("disk_position_cost", |b| {
        b.iter(|| disk.position_cost(5, 3, 100).expect("valid"))
    });
}

criterion_group!(
    benches,
    bench_checksum,
    bench_mapsector_codec,
    bench_eager_alloc,
    bench_vld_write,
    bench_recovery,
    bench_disk_mechanics
);
criterion_main!(benches);
