//! Criterion wrappers around reduced versions of each paper exhibit, so
//! `cargo bench` exercises every figure's harness end to end and tracks
//! regressions in simulation throughput. The full-scale tables are printed
//! by the `fig*`/`table*` binaries (`cargo run --release -p vlfs-bench
//! --bin all_figures`).

use criterion::{criterion_group, criterion_main, Criterion};
use fscore::HostModel;
use vlfs_bench::*;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(table1::run));
    g.bench_function("fig1_small", |b| {
        b.iter(|| fig1::series(disksim::DiskSpec::st19101_sim(), 40, 1))
    });
    g.bench_function("fig2_small", |b| {
        b.iter(|| fig2::series(disksim::DiskSpec::st19101_sim(), 10))
    });
    g.bench_function("fig6_small", |b| {
        b.iter(|| {
            fig6::measure(
                setup::FsKind::Ufs,
                setup::DevKind::Vld,
                setup::DiskKind::Seagate,
                60,
                HostModel::instant(),
            )
            .expect("fig6")
        })
    });
    g.bench_function("fig7_small", |b| {
        b.iter(|| {
            fig7::measure(
                setup::FsKind::Ufs,
                setup::DevKind::Vld,
                setup::DiskKind::Seagate,
                2,
                HostModel::instant(),
            )
            .expect("fig7")
        })
    });
    g.bench_function("fig8_point", |b| {
        b.iter(|| {
            fig8::measure_point(
                fig8::System::UfsVld,
                setup::DiskKind::Seagate,
                0.5,
                100,
                HostModel::instant(),
            )
            .expect("fig8")
        })
    });
    g.bench_function("fig9_point", |b| {
        b.iter(|| {
            fig9::measure(
                setup::DevKind::Vld,
                setup::DiskKind::Seagate,
                HostModel::sparcstation_10(),
                60,
            )
            .expect("fig9")
        })
    });
    g.bench_function("fig10_point", |b| {
        b.iter(|| fig10::series(504, &[0.5], 600, HostModel::instant()))
    });
    g.bench_function("fig11_point", |b| {
        b.iter(|| fig11::series(512, &[0.2], 400, HostModel::instant()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
