//! Deterministic fan-out of independent benchmark points across threads.
//!
//! Every figure/table point in this crate is a self-contained simulation:
//! it builds its own [`disksim::SimClock`], disk and file system, seeds its
//! own RNG explicitly, and returns a value. Nothing is shared, so points
//! can run on any thread in any order — only the *assembly* of results into
//! a table must follow the sequential order. [`pmap`] provides exactly
//! that contract: results come back in input order regardless of which
//! worker computed them or when, which keeps `all_figures` output
//! byte-identical to a sequential run.
//!
//! The pool is scoped (`std::thread::scope`) and built per call — the
//! workspace builds offline with std only, and points are hundreds of
//! milliseconds each, so pool construction cost is noise. Workers pull
//! tasks from a shared atomic cursor (work stealing by index), so uneven
//! point costs — e.g. Figure 10's long-idle points — balance automatically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;

/// Number of worker threads `pmap` uses.
///
/// Resolution order: `set_threads` (the driver's `--threads` flag), the
/// `VLFS_BENCH_THREADS` environment variable, then the machine's available
/// parallelism. A value of 1 disables threading entirely (pure sequential
/// execution on the calling thread).
pub fn threads() -> usize {
    if let Some(&n) = CONFIGURED.get() {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("VLFS_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

static CONFIGURED: OnceLock<usize> = OnceLock::new();

/// Pin the worker count for the rest of the process (first call wins).
pub fn set_threads(n: usize) {
    let _ = CONFIGURED.set(n.max(1));
}

/// Map `f` over `items` on a scoped worker pool, returning results in
/// input order. Falls back to a plain sequential map when the pool is one
/// thread wide or there is at most one item.
pub fn pmap<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let outputs: Vec<Mutex<Option<T>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("each slot is taken exactly once");
                let out = f(item);
                *outputs[i].lock().expect("output slot poisoned") = Some(out);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker panicked would have propagated via scope")
                .expect("every slot is filled before scope exits")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Make late items cheap and early items expensive so completion
        // order differs from input order.
        let out = pmap((0..64u64).collect(), |i| {
            let spins = (64 - i) * 1000;
            let mut acc = i;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, std::hint::black_box(acc) & 1) // keep the spin from being optimised out
        });
        let order: Vec<u64> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq: Vec<u64> = (0..40u64).map(|i| i * i + 1).collect();
        let par = pmap((0..40u64).collect(), |i| i * i + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u64> = pmap(Vec::<u64>::new(), |i| i);
        assert!(empty.is_empty());
        assert_eq!(pmap(vec![7u64], |i| i + 1), vec![8]);
    }
}
