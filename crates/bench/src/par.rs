//! Deterministic fan-out of independent benchmark points across threads.
//!
//! The pool itself now lives in [`disksim::par`] so the model checker and
//! the crash-point sweeps share it (and its `VLFS_THREADS` knob) without
//! depending on this crate; the figure modules keep using it through this
//! re-export. See `disksim::par` for the ordering and determinism
//! contract.

pub use disksim::par::{pmap, pmap_in, set_threads, threads};

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure modules' contract: input-order results, identical to a
    /// sequential map. (The pool's own tests live in `disksim::par`.)
    #[test]
    fn reexported_pool_keeps_input_order() {
        let seq: Vec<u64> = (0..16u64).map(|i| i * 3 + 1).collect();
        assert_eq!(pmap((0..16u64).collect(), |i| i * 3 + 1), seq);
        assert_eq!(pmap_in(4, (0..16u64).collect(), |i| i * 3 + 1), seq);
    }
}
