//! Figure 11: UFS-on-VLD latency as a function of available idle time, for
//! several burst sizes, at 80 % disk utilisation.
//!
//! The same burst/pause benchmark as Figure 10, but the idle time feeds the
//! VLD's track-granularity compactor instead of the LFS cleaner — so the
//! performance "improves along a continuum of relatively small idle
//! intervals" (fractions of a second rather than seconds).

use crate::fig10::burst_idle_bench;
use crate::format_table;
use crate::setup::{aged_system, AgedSpec, DevKind, DiskKind, FsKind};
use crate::workload::BLOCK;
use fscore::HostModel;

/// The paper's burst sizes for this figure (KB).
pub const BURSTS_KB: [u64; 6] = [128, 256, 512, 1024, 2048, 4096];

/// The aged state every cell starts from: synchronous UFS on the VLD at
/// 80 % utilisation, warmed by one update burst. Built once, forked per
/// cell.
fn spec(host: HostModel, total_blocks: u64) -> AgedSpec {
    AgedSpec {
        sync_writes: true,
        warmup_blocks: 1000.min(total_blocks),
        ..AgedSpec::new(FsKind::Ufs, DevKind::Vld, DiskKind::Seagate, host, 0.8)
    }
}

/// Measure one series (burst size fixed, idle varied).
pub fn series(
    burst_kb: u64,
    idles_s: &[f64],
    total_blocks: u64,
    host: HostModel,
) -> Vec<(f64, f64)> {
    idles_s
        .iter()
        .map(|&idle| {
            let (mut fs, f, file_blocks) =
                aged_system(&spec(host, total_blocks)).expect("setup");
            let ms = burst_idle_bench(
                &mut fs,
                f,
                file_blocks,
                burst_kb * 1024 / BLOCK as u64,
                (idle * 1e9) as u64,
                total_blocks,
                0xF21 ^ burst_kb,
            )
            .expect("bench");
            (idle, ms)
        })
        .collect()
}

/// Regenerate Figure 11.
pub fn run(total_blocks: u64) -> String {
    let host = HostModel::sparcstation_10();
    let idles = [0.0, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6];
    // As in Figure 10: each (burst, idle) cell is self-contained.
    let points: Vec<(u64, f64)> = BURSTS_KB
        .iter()
        .flat_map(|&b| idles.iter().map(move |&idle| (b, idle)))
        .collect();
    let cells = crate::par::pmap(points, |(b, idle)| {
        series(b, &[idle], total_blocks, host)[0].1
    });
    let rows: Vec<Vec<String>> = idles
        .iter()
        .enumerate()
        .map(|(i, idle)| {
            let mut row = vec![format!("{idle:.2}")];
            for bi in 0..BURSTS_KB.len() {
                row.push(format!("{:.3}", cells[bi * idles.len() + i]));
            }
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("idle (s)".to_string())
        .chain(BURSTS_KB.iter().map(|b| format!("{b}K")))
        .collect();
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    format_table(
        "Figure 11: UFS-on-VLD latency per 4 KB block (ms) vs idle interval",
        &hdr,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_idle_intervals_already_help_the_vld() {
        let host = HostModel::instant();
        let pts = series(512, &[0.0, 0.45], 2500, host);
        let (busy, idle) = (pts[0].1, pts[1].1);
        assert!(
            idle <= busy,
            "0.45 s idle ({idle} ms) should not be worse than none ({busy} ms)"
        );
    }

    #[test]
    fn vld_latency_is_predictable() {
        // "The VLD performance is also more predictable": across burst
        // sizes at a fixed idle interval, the spread stays small.
        let host = HostModel::instant();
        let a = series(128, &[0.2], 1500, host)[0].1;
        let b = series(2048, &[0.2], 1500, host)[0].1;
        let ratio = if a > b { a / b } else { b / a };
        assert!(ratio < 3.0, "burst-size sensitivity too high: {a} vs {b}");
    }
}
