//! Table 2: the speedup of virtual logging over update-in-place widens as
//! disks and hosts improve. Same workload as Figure 9 (random 4 KB sync
//! updates at 80 % utilisation), three platform generations.

use crate::fig9::{measure, platforms};
use crate::format_table;
use crate::setup::DevKind;

/// Speedups per platform: (name, UFS/regular ms, UFS/VLD ms, speedup).
pub fn speedups(updates: u64) -> Vec<(&'static str, f64, f64, f64)> {
    let points: Vec<_> = platforms()
        .into_iter()
        .flat_map(|(name, disk, host)| {
            [DevKind::Regular, DevKind::Vld]
                .into_iter()
                .map(move |dev| (name, disk, host, dev))
        })
        .collect();
    let totals = crate::par::pmap(points, |(name, disk, host, dev)| {
        measure(dev, disk, host, updates)
            .unwrap_or_else(|e| panic!("{name} {}: {e}", dev.label()))
            .total_ms()
    });
    platforms()
        .into_iter()
        .enumerate()
        .map(|(i, (name, _, _))| {
            let (reg, vld) = (totals[2 * i], totals[2 * i + 1]);
            (name, reg, vld, reg / vld)
        })
        .collect()
}

/// Regenerate Table 2.
pub fn run(updates: u64) -> String {
    let rows: Vec<Vec<String>> = speedups(updates)
        .into_iter()
        .map(|(name, reg, vld, s)| {
            vec![
                name.to_string(),
                format!("{reg:.2}"),
                format!("{vld:.2}"),
                format!("{s:.1}x"),
            ]
        })
        .collect();
    format_table(
        "Table 2: update-in-place vs virtual-log latency (ms) at 80% utilisation",
        &["platform", "UFS/Regular", "UFS/VLD", "speedup"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_widens_with_technology() {
        let s = speedups(150);
        let hp_sparc = s[0].3;
        let st_sparc = s[1].3;
        let st_ultra = s[2].3;
        assert!(hp_sparc > 1.5, "old platform speedup {hp_sparc}");
        assert!(st_sparc > hp_sparc, "newer disk must widen the gap");
        assert!(st_ultra > st_sparc, "newer host must widen it further");
        // The paper reports 2.6x / 5.1x / 9.9x; shapes must be in the same
        // regime. The simulated VLD latency floors at ~0.8 ms on the
        // Seagate (command overhead + transfer dominate), so the Ultra
        // host's CPU advantage widens the gap less than the paper's 9.9x —
        // measured ~4.2-4.5x across workload sizes; bound it accordingly.
        assert!((1.3..6.0).contains(&hp_sparc), "{hp_sparc}");
        assert!((2.5..11.0).contains(&st_sparc), "{st_sparc}");
        assert!((4.0..20.0).contains(&st_ultra), "{st_ultra}");
    }
}
