//! # vlfs-bench — the benchmark harness
//!
//! One module (and one binary) per table and figure of the paper's
//! evaluation (§5). Each `run()` returns the table text it prints, so the
//! `all_figures` binary can regenerate `EXPERIMENTS.md` content in one go.
//!
//! | Paper exhibit | Module | Binary |
//! |---|---|---|
//! | Table 1 (disk parameters) | [`table1`] | `table1` |
//! | Figure 1 (locate vs utilisation) | [`fig1`] | `fig1` |
//! | Figure 2 (track-switch threshold) | [`fig2`] | `fig2` |
//! | Figure 6 (small files) | [`fig6`] | `fig6` |
//! | Figure 7 (large file) | [`fig7`] | `fig7` |
//! | Figure 8 (disk utilisation) | [`fig8`] | `fig8` |
//! | Table 2 (technology speedups) | [`table2`] | `table2` |
//! | Figure 9 (latency breakdown) | [`fig9`] | `fig9` |
//! | Figure 10 (LFS vs idle time) | [`fig10`] | `fig10` |
//! | Figure 11 (VLD vs idle time) | [`fig11`] | `fig11` |

pub mod ablations;
pub mod appendix;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod obs;
pub mod par;
pub mod setup;
pub mod timing;
pub mod table1;
pub mod table2;
pub mod vlfs_preview;
pub mod workload;

/// Format a table of (x, series...) rows with a header, 12-char columns.
pub fn format_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    out.push_str(
        &header
            .iter()
            .map(|h| format!("{h:>14}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    out.push('\n');
    out.push_str(
        &header
            .iter()
            .map(|_| "-".repeat(14))
            .collect::<Vec<_>>()
            .join(" "),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|c| format!("{c:>14}"))
                .collect::<Vec<_>>()
                .join(" "),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_formatting() {
        let t = super::format_table("Demo", &["x", "y"], &[vec!["1".into(), "2.5".into()]]);
        assert!(t.contains("## Demo"));
        assert!(t.contains("2.5"));
    }
}
