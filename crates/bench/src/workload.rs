//! Workload generators and measurement helpers shared by the figures.

use disksim::SimClock;
use fscore::{FileId, FileSystem, FsResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 4 KB — the file block size every benchmark uses.
pub const BLOCK: usize = 4096;

/// Deterministic RNG for a named experiment.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Time a closure in simulated nanoseconds.
pub fn timed<F: FnOnce() -> FsResult<()>>(clock: &SimClock, f: F) -> FsResult<u64> {
    let t0 = clock.now();
    f()?;
    Ok(clock.now() - t0)
}

/// Create a file and fill it sequentially to `bytes`, then sync.
pub fn make_file(fs: &mut dyn FileSystem, name: &str, bytes: u64) -> FsResult<FileId> {
    let f = fs.create(name)?;
    let chunk = vec![0x42u8; 64 * BLOCK];
    let mut off = 0u64;
    while off < bytes {
        let n = (bytes - off).min(chunk.len() as u64);
        fs.write(f, off, &chunk[..n as usize])?;
        off += n;
    }
    fs.sync()?;
    Ok(f)
}

/// Perform `count` random 4 KB block updates uniformly over a file of
/// `file_blocks` blocks; returns total simulated nanoseconds spent.
pub fn random_updates(
    fs: &mut dyn FileSystem,
    f: FileId,
    file_blocks: u64,
    count: u64,
    rng: &mut StdRng,
) -> FsResult<u64> {
    let clock = fs.clock();
    let buf = vec![0x99u8; BLOCK];
    let t0 = clock.now();
    for _ in 0..count {
        let b = rng.gen_range(0..file_blocks);
        fs.write(f, b * BLOCK as u64, &buf)?;
    }
    Ok(clock.now() - t0)
}

/// Mean latency per 4 KB random synchronous update in milliseconds, after a
/// warm-up, at the file system's current state.
pub fn steady_state_update_ms(
    fs: &mut dyn FileSystem,
    f: FileId,
    file_blocks: u64,
    warmup: u64,
    measured: u64,
    seed: u64,
) -> FsResult<f64> {
    let mut r = rng(seed);
    random_updates(fs, f, file_blocks, warmup, &mut r)?;
    let ns = random_updates(fs, f, file_blocks, measured, &mut r)?;
    Ok(ns as f64 / measured as f64 / 1e6)
}

/// Bandwidth in MB/s for moving `bytes` in `ns` simulated nanoseconds.
pub fn mb_per_s(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return f64::INFINITY;
    }
    bytes as f64 / (1 << 20) as f64 / (ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{make_system, DevKind, DiskKind, FsKind};
    use fscore::HostModel;

    #[test]
    fn make_file_and_update() {
        let mut fs = make_system(
            FsKind::Ufs,
            DevKind::Regular,
            DiskKind::Seagate,
            HostModel::instant(),
        )
        .unwrap();
        let f = make_file(&mut fs, "w", 1 << 20).unwrap();
        assert_eq!(fs.file_size(f).unwrap(), 1 << 20);
        fs.set_sync_writes(true);
        let mut r = rng(1);
        let ns = random_updates(&mut fs, f, 256, 50, &mut r).unwrap();
        assert!(ns > 0, "synchronous updates must cost simulated time");
        assert!(mb_per_s(1 << 20, ns) > 0.0);
    }

    #[test]
    fn bandwidth_math() {
        assert!((mb_per_s(1 << 20, 1_000_000_000) - 1.0).abs() < 1e-9);
        assert!(mb_per_s(1, 0).is_infinite());
    }
}
