//! Figure 2: average latency to locate free sectors for all writes into an
//! initially empty track, as a function of the track-switch threshold —
//! model (formula 13) against simulation.
//!
//! The threshold is the percentage of free sectors reserved per track
//! before a switch occurs; a high threshold means frequent switches.

use crate::format_table;
use disksim::{Disk, DiskSpec, SimClock};
use vlog_models::compactor;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Threshold percentage (x-axis): free sectors reserved per track.
    pub threshold_pct: f64,
    /// Model prediction, ms.
    pub model_ms: f64,
    /// Simulated mean, ms.
    pub sim_ms: f64,
}

/// Simulate filling empty tracks to the threshold with nearest-free-sector
/// writes, averaging the locate latency (rotation) plus the amortised
/// switch cost.
///
/// Writes arrive at random rotational phases (a random inter-arrival delay
/// under one revolution), matching the model's assumption that "writes
/// arrive randomly"; back-to-back arrivals would trivially consume sectors
/// contiguously and show none of the crowded-track penalty the model (and
/// its ε correction) describes.
fn simulate_point(spec: &DiskSpec, m: u64, tracks_sampled: u32) -> f64 {
    use rand::Rng;
    let mut rng = crate::workload::rng(0xF02 ^ m);
    let mut spec = spec.clone();
    spec.command_overhead_ns = 0;
    let clock = SimClock::new();
    let mut disk = Disk::new(spec.clone(), clock.clone());
    let g = spec.geometry.clone();
    let spt = g.sectors_per_track(0).expect("cyl 0") as u64;
    let buf = vec![0u8; disksim::SECTOR_BYTES];
    let mut total_ns = 0u64;
    let mut writes = 0u64;
    // Walk tracks in order; each starts empty (fresh region of the disk).
    for track_no in 0..tracks_sampled {
        let cyl = track_no / g.tracks_per_cylinder();
        let track = track_no % g.tracks_per_cylinder();
        if cyl >= g.cylinders() {
            break;
        }
        let mut free: Vec<bool> = vec![true; spt as usize];
        let mut free_count = spt;
        // Switch cost charged when moving onto this track.
        total_ns += spec
            .mech
            .reposition_ns(disk.head().cyl, disk.head().track, cyl, track);
        disk.seek_to(cyl, track).expect("valid track");
        while free_count > m {
            // Nearest free sector in rotational order from arrival.
            let arrival = disk.arrival_sector(cyl, track).expect("valid track");
            let sector = (0..spt)
                .map(|i| (arrival as u64 + i) % spt)
                .find(|&s| free[s as usize])
                .expect("free_count > m >= 0");
            let cost = disk
                .position_cost(cyl, track, sector as u32)
                .expect("valid sector");
            total_ns += cost.locate_ns();
            let lba = g
                .phys_to_lba(disksim::PhysAddr::new(cyl, track, sector as u32))
                .expect("valid");
            disk.write_sectors(lba, &buf).expect("in range");
            free[sector as usize] = false;
            free_count -= 1;
            writes += 1;
            // Random arrival phase for the next write.
            clock.advance(rng.gen_range(0..spec.mech.revolution_ns()));
        }
    }
    disksim::ns_to_ms(total_ns) / writes as f64
}

/// Measure one disk across thresholds.
pub fn series(spec: DiskSpec, tracks_sampled: u32) -> Vec<Point> {
    let spt = spec.geometry.sectors_per_track(0).expect("cyl 0") as u64;
    let sector_ns = spec.mech.sector_ns(spt as u32);
    let pcts: Vec<u64> = (5..=90)
        .step_by(5)
        .filter(|&pct| compactor::threshold_to_m(spt, pct as f64) < spt)
        .collect();
    crate::par::pmap(pcts, |pct| {
        let m = compactor::threshold_to_m(spt, pct as f64);
        let model_ms =
            compactor::avg_latency_model_ns(spt, m, spec.mech.head_switch_ns, sector_ns) / 1e6;
        let sim_ms = simulate_point(&spec, m, tracks_sampled);
        Point {
            threshold_pct: pct as f64,
            model_ms,
            sim_ms,
        }
    })
}

/// Regenerate Figure 2.
pub fn run(tracks_sampled: u32) -> String {
    let hp = series(DiskSpec::hp97560_sim(), tracks_sampled);
    let st = series(DiskSpec::st19101_sim(), tracks_sampled);
    let rows: Vec<Vec<String>> = hp
        .iter()
        .zip(&st)
        .map(|(h, s)| {
            vec![
                format!("{:.0}", h.threshold_pct),
                format!("{:.3}", h.model_ms),
                format!("{:.3}", h.sim_ms),
                format!("{:.4}", s.model_ms),
                format!("{:.4}", s.sim_ms),
            ]
        })
        .collect();
    format_table(
        "Figure 2: locate latency (ms) vs track-switch threshold (%)",
        &["thresh %", "HP model", "HP sim", "ST model", "ST sim"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_shows_interior_optimum() {
        let pts = series(DiskSpec::hp97560_sim(), 40);
        let best = pts
            .iter()
            .min_by(|a, b| a.sim_ms.partial_cmp(&b.sim_ms).expect("finite"))
            .expect("points");
        let first = pts.first().expect("points");
        let last = pts.last().expect("points");
        // The optimum is cheaper than both extremes (the paper's U-shape).
        assert!(best.sim_ms <= first.sim_ms);
        assert!(best.sim_ms < last.sim_ms);
    }

    #[test]
    fn model_and_simulation_agree_reasonably() {
        // The model counts whole sectors *skipped*; the simulation measures
        // real rotational time, which additionally includes reaching the
        // next sector boundary from a random phase (about 0.5–1 sector).
        // Compare with that offset allowed.
        for spec in [DiskSpec::hp97560_sim(), DiskSpec::st19101_sim()] {
            let spt = spec.geometry.sectors_per_track(0).unwrap();
            let sector_ms = disksim::ns_to_ms(spec.mech.sector_ns(spt));
            let pts = series(spec, 30);
            for p in pts
                .iter()
                .filter(|p| (20.0..=80.0).contains(&p.threshold_pct))
            {
                let diff_sectors = (p.sim_ms - p.model_ms) / sector_ms;
                assert!(
                    (-0.5..1.8).contains(&diff_sectors),
                    "threshold {}%: sim {} model {} ({} sectors apart)",
                    p.threshold_pct,
                    p.sim_ms,
                    p.model_ms,
                    diff_sectors
                );
            }
        }
    }
}
