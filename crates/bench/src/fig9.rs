//! Figure 9 (and the machinery behind Table 2): the latency breakdown of
//! random synchronous 4 KB updates at 80 % disk utilisation, decomposed
//! into SCSI overhead, locate (seek + head switch + rotation), transfer,
//! and "other" (host processing), across three platform generations.
//!
//! Per the paper's footnote, the VLD is measured immediately after a
//! compactor run.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::format_table;
use crate::setup::{aged_system, AgedSpec, DevKind, DiskKind, FsKind};
use crate::workload::{random_updates, rng};
use fscore::{FileSystem, FsResult, HostModel};

/// Mean per-update latency components, in milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct Breakdown {
    /// SCSI/controller command overhead.
    pub overhead_ms: f64,
    /// Seek + head switch + rotation.
    pub locate_ms: f64,
    /// Media transfer.
    pub transfer_ms: f64,
    /// Host processing ("other").
    pub other_ms: f64,
}

impl Breakdown {
    /// Total latency per update.
    pub fn total_ms(&self) -> f64 {
        self.overhead_ms + self.locate_ms + self.transfer_ms + self.other_ms
    }
}

/// Process-wide memo for [`measure`]: Table 2 and Figure 9 issue the same
/// six measurements, so whichever section runs second replays recorded
/// results instead of re-simulating them. A hit credits the recorded
/// simulated-event count back to the global counter (the same discipline as
/// the aged-system snapshot cache), so per-section event totals match a
/// from-scratch run exactly. Gated on the snapshot switch: with
/// `VLFS_SNAPSHOT=0` every call measures from scratch.
type MeasureKey = (DevKind, DiskKind, HostModel, u64);
fn memo() -> &'static Mutex<HashMap<MeasureKey, (Breakdown, u64)>> {
    static MEMO: OnceLock<Mutex<HashMap<MeasureKey, (Breakdown, u64)>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Measure the breakdown for UFS on the given device at ~80 % utilisation.
pub fn measure(dev: DevKind, disk: DiskKind, host: HostModel, updates: u64) -> FsResult<Breakdown> {
    let use_memo = crate::setup::snapshots_enabled();
    let key = (dev, disk, host, updates);
    if use_memo {
        if let Some(&(b, events)) = memo().lock().expect("measure memo lock").get(&key) {
            disksim::clock::add_events(events);
            return Ok(b);
        }
    }
    let (b, events) = measure_fresh(dev, disk, host, updates)?;
    if use_memo {
        memo()
            .lock()
            .expect("measure memo lock")
            .insert(key, (b, events));
    }
    Ok(b)
}

/// The actual measurement; returns the breakdown plus the simulated events
/// the measured system consumed (for event crediting on memo hits).
fn measure_fresh(
    dev: DevKind,
    disk: DiskKind,
    host: HostModel,
    updates: u64,
) -> FsResult<(Breakdown, u64)> {
    // Footnote 1 of the paper: the VLD is measured "immediately after
    // running a compactor" — so provision an empty-track pool large enough
    // to cover the measured window.
    let spec = AgedSpec {
        sync_writes: true,
        vld_target_empty_tracks: match dev {
            DevKind::Regular => None,
            DevKind::Vld => Some(40),
        },
        ..AgedSpec::new(FsKind::Ufs, dev, disk, host, 0.8)
    };
    let (mut fs, f, file_blocks) = aged_system(&spec)?;
    let mut r = rng(0xF19);
    // Warm up, then replenish the compactor's pool so every measured chunk
    // runs right after a compaction pass, as in the paper. Idle grants are
    // not part of the measured time.
    fs.idle(20_000_000_000);
    random_updates(&mut fs, f, file_blocks, updates / 4, &mut r)?;
    let clock = fs.clock();
    let mut elapsed = 0u64;
    let mut dev_busy = disksim::ServiceTime::ZERO;
    let mut done = 0u64;
    while done < updates {
        // Replenish the pool; neither the idle time nor the compactor's
        // own device activity belongs to the measured updates.
        fs.idle(30_000_000_000);
        let chunk = 50.min(updates - done);
        let s0 = fs.device().disk_stats();
        let t0 = clock.now();
        random_updates(&mut fs, f, file_blocks, chunk, &mut r)?;
        elapsed += clock.now() - t0;
        let s1 = fs.device().disk_stats();
        dev_busy += disksim::ServiceTime {
            overhead_ns: s1.busy.overhead_ns - s0.busy.overhead_ns,
            seek_ns: s1.busy.seek_ns - s0.busy.seek_ns,
            head_switch_ns: s1.busy.head_switch_ns - s0.busy.head_switch_ns,
            rotation_ns: s1.busy.rotation_ns - s0.busy.rotation_ns,
            transfer_ns: s1.busy.transfer_ns - s0.busy.transfer_ns,
        };
        done += chunk;
    }
    let n = updates as f64;
    // The VLD charges its host-visible command overhead outside the raw
    // disk, so derive overhead as "per command o" times commands issued by
    // the host — which equals elapsed-minus-device-minus-host bookkeeping.
    // Simpler and exact: device components from stats; host = remainder,
    // split into the spec overhead per update and the rest.
    let spec_overhead_ns = match dev {
        DevKind::Regular => 0, // already inside dev_busy.overhead_ns
        DevKind::Vld => disk.spec().command_overhead_ns,
    };
    let overhead_ms = (dev_busy.overhead_ns as f64 / n + spec_overhead_ns as f64) / 1e6;
    let locate_ms = dev_busy.locate_ns() as f64 / n / 1e6;
    let transfer_ms = dev_busy.transfer_ns as f64 / n / 1e6;
    let other_ms = (elapsed as f64 / n) / 1e6 - overhead_ms - locate_ms - transfer_ms;
    Ok((
        Breakdown {
            overhead_ms,
            locate_ms,
            transfer_ms,
            other_ms: other_ms.max(0.0),
        },
        clock.local_events(),
    ))
}

/// The three platform generations of Table 2 / Figure 9.
pub fn platforms() -> Vec<(&'static str, DiskKind, HostModel)> {
    vec![
        ("HP + SPARC", DiskKind::Hp, HostModel::sparcstation_10()),
        (
            "Seagate + SPARC",
            DiskKind::Seagate,
            HostModel::sparcstation_10(),
        ),
        (
            "Seagate + Ultra",
            DiskKind::Seagate,
            HostModel::ultrasparc_170(),
        ),
    ]
}

/// Regenerate Figure 9.
pub fn run(updates: u64) -> String {
    let points: Vec<(&'static str, DiskKind, HostModel, DevKind)> = platforms()
        .into_iter()
        .flat_map(|(name, disk, host)| {
            [DevKind::Regular, DevKind::Vld]
                .into_iter()
                .map(move |dev| (name, disk, host, dev))
        })
        .collect();
    let rows = crate::par::pmap(points, |(name, disk, host, dev)| {
        let b = measure(dev, disk, host, updates)
            .unwrap_or_else(|e| panic!("{name}/{}: {e}", dev.label()));
        let total = b.total_ms();
        let pct = |x: f64| format!("{:.0}%", x / total * 100.0);
        vec![
            format!("{name} {}", dev.label()),
            format!("{total:.2}"),
            pct(b.overhead_ms),
            pct(b.transfer_ms),
            pct(b.locate_ms),
            pct(b.other_ms),
        ]
    });
    format_table(
        "Figure 9: latency breakdown of 4 KB sync updates at 80% utilisation",
        &[
            "platform", "total ms", "SCSI", "transfer", "locate", "other",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_in_place_is_mechanically_dominated_on_hp() {
        let b = measure(
            DevKind::Regular,
            DiskKind::Hp,
            HostModel::sparcstation_10(),
            150,
        )
        .unwrap();
        assert!(
            b.locate_ms > b.total_ms() * 0.4,
            "locate {} of total {}",
            b.locate_ms,
            b.total_ms()
        );
    }

    #[test]
    fn vld_slashes_locate_time() {
        let host = HostModel::sparcstation_10();
        let reg = measure(DevKind::Regular, DiskKind::Seagate, host, 150).unwrap();
        let vld = measure(DevKind::Vld, DiskKind::Seagate, host, 150).unwrap();
        assert!(
            vld.locate_ms * 4.0 < reg.locate_ms,
            "VLD locate {} vs regular {}",
            vld.locate_ms,
            reg.locate_ms
        );
        // Overheads and transfer are comparable across the two devices.
        assert!((vld.transfer_ms - reg.transfer_ms).abs() < 0.5);
    }
}
