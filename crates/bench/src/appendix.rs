//! Appendix A.1: the block-size extension of the single-track model —
//! formula (9) — validated by simulation.
//!
//! "Suppose the file system logical block size is B and the disk physical
//! block size is b (b ≤ B), then the average amount of time (expressed in
//! the numbers of sectors skipped) needed to locate all the free sectors
//! for a logical block is (1−p)n/(b+pn) · B ... the latency is lowest when
//! the physical block size matches the logical block size." This is the
//! analysis behind the VLD's 4 KB physical block choice (§4.2).

use crate::format_table;
use crate::workload::rng;
use rand::Rng;

/// Simulate locating a logical block of `logical` sectors as `logical/b`
/// physical blocks of `b` sectors on a track of `n` sectors whose free
/// space is managed at `b`-sector granularity (the formula's premise: the
/// disk "allocates and frees" physical blocks). Each occupied block passed
/// over costs `b` skipped sectors; returns the mean skipped sectors per
/// logical-block placement.
fn simulate(n: u64, p: f64, b: u64, logical: u64, trials: u32, seed: u64) -> f64 {
    let mut r = rng(seed);
    let slots = n / b;
    let mut total = 0u64;
    let mut counted = 0u32;
    for _ in 0..trials {
        let mut slot_free: Vec<bool> = (0..slots).map(|_| r.gen_bool(p)).collect();
        let need_total = logical / b;
        if (slot_free.iter().filter(|&&f| f).count() as u64) < need_total {
            continue; // not enough space this trial (rare at p >= 0.2)
        }
        let mut slot = r.gen_range(0..slots) as usize;
        let mut need = need_total;
        let mut skipped = 0u64;
        while need > 0 {
            if slot_free[slot] {
                slot_free[slot] = false; // taken: transfer, not a skip
                need -= 1;
            } else {
                skipped += b;
            }
            slot = (slot + 1) % slots as usize;
        }
        total += skipped;
        counted += 1;
    }
    total as f64 / counted.max(1) as f64
}

/// Formula (9) in sectors skipped.
fn model(n: u64, p: f64, b: u64, logical: u64) -> f64 {
    vlfs_models_expected(n, p, b, logical)
}

fn vlfs_models_expected(n: u64, p: f64, b: u64, logical: u64) -> f64 {
    // The free-space fraction seen at block granularity is p^b; formula (9)
    // as printed uses the sector-granularity p with the b in the
    // denominator capturing the alignment effect.
    vlog_models::single_track::expected_skips_blocks(n, p, b, logical)
}

use vlog_models;

/// Regenerate the Appendix A.1 comparison: skipped sectors to place one
/// 8-sector (4 KB) logical block, by physical block size.
pub fn run(trials: u32) -> String {
    let n = 256u64; // ST19101 track
    let logical = 8u64;
    let points: Vec<(f64, u64)> = [0.2f64, 0.4, 0.6, 0.8]
        .iter()
        .flat_map(|&p| [1u64, 2, 4, 8].iter().map(move |&b| (p, b)))
        .collect();
    let rows = crate::par::pmap(points, |(p, b)| {
        let m = model(n, p, b, logical);
        let s = simulate(n, p, b, logical, trials, 0xA1 ^ b ^ (p * 100.0) as u64);
        vec![
            format!("{:.0}%", p * 100.0),
            b.to_string(),
            format!("{m:.2}"),
            format!("{s:.2}"),
        ]
    });
    format_table(
        "Appendix A.1: sectors skipped placing a 4 KB logical block (model vs sim)",
        &["free %", "phys b", "model (9)", "sim"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_block_size_minimises_skips_in_simulation() {
        // The appendix's conclusion: b = B is the cheapest configuration.
        // The per-point advantage is a few percent, so compare the sum
        // across utilisations with a healthy sample size.
        let (mut sum1, mut sum8) = (0.0, 0.0);
        for &p in &[0.2f64, 0.4, 0.6, 0.8] {
            sum1 += simulate(256, p, 1, 8, 4000, 1);
            sum8 += simulate(256, p, 8, 8, 4000, 2);
        }
        assert!(
            sum8 < sum1,
            "aligned 4K blocks ({sum8}) should beat sector-granular ({sum1})"
        );
    }

    #[test]
    fn model_tracks_simulation_for_matched_blocks() {
        // For b=B the formula and the simulation agree well (the b<B cases
        // differ more because the formula idealises the retry process).
        for &p in &[0.3f64, 0.5, 0.7] {
            let m = model(256, p, 8, 8);
            let s = simulate(256, p, 8, 8, 600, 3);
            let ratio = s / m;
            assert!((0.4..2.5).contains(&ratio), "p={p}: sim {s} model {m}");
        }
    }
}
