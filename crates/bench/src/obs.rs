//! The observability exhibit: a traced random-update workload.
//!
//! Runs the Figure 9 workload (random synchronous 4 KB updates at 80 %
//! utilisation) on UFS/Regular and UFS/VLD with the event tracer and the
//! metrics registry attached, then exports:
//!
//! * a JSONL trace (one line per disk operation, with the full service-time
//!   decomposition and a scope label naming the workload phase), and
//! * a metrics JSON document containing each stack's registry snapshot plus
//!   a `trace_check` block recording the disk's cumulative busy time next
//!   to the trace's component sums — the two must agree exactly.
//!
//! The exhibit writes only to files and returns a report string (printed to
//! stderr by `all_figures`), so benchmark stdout stays byte-identical
//! whether or not tracing is enabled.

use std::fmt::Write as _;

use crate::setup::{DevKind, DiskKind};
use crate::workload::{make_file, random_updates, rng, BLOCK};
use disksim::{Metrics, ServiceTime, SimClock, Spans, Tracer};
use fscore::{FileSystem, FsResult, HostModel};

/// Ring capacity for exhibit traces: large enough that a quick run never
/// drops an event (drops would break the busy-sum invariant check).
const RING: usize = 1 << 20;

/// Everything captured from one traced stack run.
pub struct StackObs {
    /// Stack label ("ufs-regular" / "ufs-vld"); also the scope prefix.
    pub label: &'static str,
    /// The trace ring, complete (no drops) for exhibit-sized runs.
    pub tracer: Tracer,
    /// The stack's metrics registry.
    pub metrics: Metrics,
    /// The causal-span table shared with the disk at the bottom of the stack.
    pub spans: Spans,
    /// Disk busy breakdown accumulated while the tracer was attached.
    pub busy_delta: ServiceTime,
    /// Simulated end time of the run (the stack's own virtual clock).
    pub end_ns: u64,
    /// Total device reads + writes issued by the run.
    pub disk_ops: u64,
    /// Measured updates performed.
    pub updates: u64,
}

impl StackObs {
    /// Busy nanoseconds accumulated while traced (sum of all components).
    pub fn busy_ns(&self) -> u64 {
        let b = self.busy_delta;
        b.overhead_ns + b.seek_ns + b.head_switch_ns + b.rotation_ns + b.transfer_ns
    }

    /// Total nanoseconds across every traced event's components.
    pub fn trace_sum_ns(&self) -> u64 {
        let (o, s, h, r, x) = self.tracer.component_sums();
        o + s + h + r + x
    }

    /// Total span-attributed disk time plus the explicit unattributed
    /// remainder — must equal [`StackObs::busy_ns`] exactly.
    pub fn attr_ns(&self) -> u64 {
        self.spans.total_ns() + self.spans.unattributed_ns()
    }

    /// Cleaning tax in parts per million: background (compaction/recovery
    /// subtree) disk time over foreground disk time.
    pub fn cleaning_tax_ppm(&self) -> u64 {
        self.spans
            .background_ns()
            .saturating_mul(1_000_000)
            .checked_div(self.spans.foreground_ns())
            .unwrap_or(0)
    }
}

fn busy_minus(a: ServiceTime, b: ServiceTime) -> ServiceTime {
    ServiceTime {
        overhead_ns: a.overhead_ns - b.overhead_ns,
        seek_ns: a.seek_ns - b.seek_ns,
        head_switch_ns: a.head_switch_ns - b.head_switch_ns,
        rotation_ns: a.rotation_ns - b.rotation_ns,
        transfer_ns: a.transfer_ns - b.transfer_ns,
    }
}

/// Run the traced Figure 9 workload on one stack.
pub fn trace_stack(dev: DevKind, updates: u64) -> FsResult<StackObs> {
    stack_run(dev, updates, true)
}

/// Shared body of [`trace_stack`]: the workload is identical either way;
/// `observed` only controls whether the tracer/metrics/spans are attached
/// to the device (the overhead test compares the two runs to prove
/// observability does not perturb the simulation).
fn stack_run(dev: DevKind, updates: u64, observed: bool) -> FsResult<StackObs> {
    let label = match dev {
        DevKind::Regular => "ufs-regular",
        DevKind::Vld => "ufs-vld",
    };
    let tracer = Tracer::with_capacity(RING);
    let metrics = if observed {
        Metrics::enabled()
    } else {
        Metrics::default()
    };
    let spans = if observed {
        Spans::enabled()
    } else {
        Spans::disabled()
    };
    let host = HostModel::sparcstation_10();
    let disk = DiskKind::Hp;
    let (mut fs, busy0) = match dev {
        DevKind::Regular => {
            let mut rd = disksim::RegularDisk::new(disk.spec(), SimClock::new(), BLOCK);
            if observed {
                rd.disk_mut().set_tracer(Some(tracer.clone()));
                rd.disk_mut().set_metrics(metrics.clone());
                rd.disk_mut().set_spans(spans.clone());
            }
            let busy0 = rd.disk().stats().busy;
            (
                ufs::Ufs::format(Box::new(rd), host, ufs::UfsConfig::default())?,
                busy0,
            )
        }
        DevKind::Vld => {
            // As in Figure 9: the VLD is measured right after a compactor
            // run, so provision an empty-track pool covering the window.
            let mut cfg = vlog_core::VldConfig::default();
            cfg.compactor.target_empty_tracks = 40;
            let mut vld = vlog_core::Vld::format(disk.spec(), SimClock::new(), cfg);
            if observed {
                vld.set_observability(Some(tracer.clone()), metrics.clone());
                vld.set_spans(spans.clone());
            }
            let busy0 = disksim::BlockDevice::disk_stats(&vld).busy;
            (
                ufs::Ufs::format(Box::new(vld), host, ufs::UfsConfig::default())?,
                busy0,
            )
        }
    };
    if observed {
        fs.set_metrics(metrics.clone());
    }

    let scope = |phase: &str| format!("{label}/{phase}");
    tracer.set_scope(&scope("setup"));
    let usable = fs.free_blocks();
    let file_blocks = (usable as f64 * 0.8) as u64;
    let f = make_file(&mut fs, "target", file_blocks * BLOCK as u64)?;
    fs.set_sync_writes(true);
    let mut r = rng(0xF19);
    fs.idle(20_000_000_000);
    random_updates(&mut fs, f, file_blocks, updates / 4, &mut r)?;
    let mut done = 0u64;
    while done < updates {
        // Idle grants replenish the compactor pool; their disk activity is
        // traced under its own scope so vlstat can separate it out.
        tracer.set_scope(&scope("idle"));
        fs.idle(30_000_000_000);
        tracer.set_scope(&scope("measured"));
        let chunk = 50.min(updates - done);
        random_updates(&mut fs, f, file_blocks, chunk, &mut r)?;
        done += chunk;
    }
    let stats = fs.device().disk_stats();
    let busy_delta = busy_minus(stats.busy, busy0);
    if spans.is_enabled() && metrics.is_enabled() {
        // Cleaning tax (paper Table 2 / Figure 8 territory): the ratio of
        // background (compaction/recovery subtree) to foreground disk time.
        let bg = spans.background_ns();
        let fg = spans.foreground_ns();
        let ppm = bg.saturating_mul(1_000_000).checked_div(fg).unwrap_or(0);
        metrics.gauge(disksim::span::CLEANING_TAX_PPM, ppm as i64);
        metrics.gauge("span.background_ns", bg as i64);
        metrics.gauge("span.foreground_ns", fg as i64);
    }
    Ok(StackObs {
        label,
        tracer,
        metrics,
        spans,
        busy_delta,
        end_ns: fs.clock().now(),
        disk_ops: stats.reads + stats.writes,
        updates,
    })
}

/// Per-scope component sums over a trace, for the report's decomposition.
fn scope_sums(obs: &StackObs, phase: &str) -> (u64, ServiceTime) {
    let want = format!("{}/{phase}", obs.label);
    let mut n = 0u64;
    let mut t = ServiceTime::ZERO;
    for ev in obs.tracer.events() {
        if obs.tracer.label(ev.scope) == want {
            n += 1;
            t += ServiceTime {
                overhead_ns: ev.overhead_ns,
                seek_ns: ev.seek_ns,
                head_switch_ns: ev.head_switch_ns,
                rotation_ns: ev.rotation_ns,
                transfer_ns: ev.transfer_ns,
            };
        }
    }
    (n, t)
}

/// Run both stacks, write the requested artifacts, and return the report.
///
/// `trace_path` receives the concatenated JSONL trace of both stacks;
/// `metrics_path` receives a JSON document with each stack's metrics and
/// the `trace_check` invariant block. The report string is intended for
/// stderr; nothing is printed to stdout.
pub fn run(updates: u64, trace_path: Option<&str>, metrics_path: Option<&str>) -> String {
    let stacks: Vec<StackObs> = [DevKind::Regular, DevKind::Vld]
        .into_iter()
        .map(|dev| trace_stack(dev, updates).unwrap_or_else(|e| panic!("obs/{dev:?}: {e}")))
        .collect();

    if let Some(path) = trace_path {
        let mut dump = String::new();
        for s in &stacks {
            // Span lines (keyed by "parent") precede the stack's event lines
            // (keyed by "at"); `vlstat` tells them apart by key, and detects
            // stack boundaries by span ids restarting from 1.
            dump.push_str(&s.spans.dump_jsonl());
            dump.push_str(&s.tracer.dump_jsonl());
        }
        if let Err(e) = std::fs::write(path, dump) {
            eprintln!("# failed to write {path}: {e}");
        }
    }
    if let Some(path) = metrics_path {
        let mut doc = String::from("{\n");
        for s in &stacks {
            let _ = writeln!(doc, "\"{}\": {},", s.label, s.metrics.to_json().trim_end());
        }
        doc.push_str("\"trace_check\": {\n");
        let checks: Vec<String> = stacks
            .iter()
            .map(|s| {
                format!(
                    "\"{}\": {{\"attr_ns\": {}, \"busy_ns\": {}, \"cleaning_tax_ppm\": {}, \"dropped\": {}, \"events\": {}, \"span_dropped\": {}, \"spans\": {}, \"trace_sum_ns\": {}, \"unattributed_ns\": {}}}",
                    s.label,
                    s.attr_ns(),
                    s.busy_ns(),
                    s.cleaning_tax_ppm(),
                    s.tracer.dropped(),
                    s.tracer.len(),
                    s.spans.dropped(),
                    s.spans.len(),
                    s.trace_sum_ns(),
                    s.spans.unattributed_ns(),
                )
            })
            .collect();
        doc.push_str(&checks.join(",\n"));
        doc.push_str("\n}\n}\n");
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("# failed to write {path}: {e}");
        }
    }

    let mut rep = String::from("# observability exhibit (random 4 KB sync updates, HP97560)\n");
    for s in &stacks {
        let ok = s.busy_ns() == s.trace_sum_ns()
            && s.attr_ns() == s.busy_ns()
            && s.tracer.dropped() == 0
            && s.spans.dropped() == 0;
        let _ = writeln!(
            rep,
            "#   {:<12} {:>7} events, {:>6} spans, busy {} ns, trace sum {} ns, attributed {} ns, cleaning tax {} ppm — {}",
            s.label,
            s.tracer.len(),
            s.spans.len(),
            s.busy_ns(),
            s.trace_sum_ns(),
            s.attr_ns(),
            s.cleaning_tax_ppm(),
            if ok { "exact match" } else { "MISMATCH" },
        );
        let (n, t) = scope_sums(s, "measured");
        if n > 0 {
            let ms = |x: u64| x as f64 / n as f64 / 1e6;
            let _ = writeln!(
                rep,
                "#     measured ops/update: SCSI {:.3} ms, seek {:.3} ms, switch {:.3} ms, rotation {:.3} ms, transfer {:.3} ms",
                ms(t.overhead_ns),
                ms(t.seek_ns),
                ms(t.head_switch_ns),
                ms(t.rotation_ns),
                ms(t.transfer_ns),
            );
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole invariant: with nothing dropped, the trace's component
    /// sums reproduce the disk's cumulative busy breakdown exactly — for
    /// both the regular disk and the VLD (whose cache-hit reads and bare
    /// seeks must also be traced for the sums to close).
    #[test]
    fn trace_components_sum_to_disk_busy() {
        for dev in [DevKind::Regular, DevKind::Vld] {
            let obs = trace_stack(dev, 60).unwrap();
            assert_eq!(obs.tracer.dropped(), 0, "{dev:?}: ring too small");
            assert!(!obs.tracer.is_empty(), "{dev:?}: no events traced");
            let (o, s, h, r, x) = obs.tracer.component_sums();
            let b = obs.busy_delta;
            assert_eq!(o, b.overhead_ns, "{dev:?}: overhead");
            assert_eq!(s, b.seek_ns, "{dev:?}: seek");
            assert_eq!(h, b.head_switch_ns, "{dev:?}: head switch");
            assert_eq!(r, b.rotation_ns, "{dev:?}: rotation");
            assert_eq!(x, b.transfer_ns, "{dev:?}: transfer");
        }
    }

    /// The simulation is deterministic, so two identical runs must produce
    /// byte-identical JSONL traces and identical metrics JSON.
    #[test]
    fn traces_are_deterministic() {
        let a = trace_stack(DevKind::Vld, 40).unwrap();
        let b = trace_stack(DevKind::Vld, 40).unwrap();
        assert_eq!(a.tracer.dump_jsonl(), b.tracer.dump_jsonl());
        assert_eq!(a.spans.dump_jsonl(), b.spans.dump_jsonl());
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    }

    /// Span-annotated output is identical whether the per-stack runs execute
    /// on a 1-wide or a 4-wide worker pool (`VLFS_THREADS` widths): the span
    /// table, trace and metrics are all per-stack state stamped from the
    /// stack's own virtual clock, so pool scheduling cannot leak in.
    #[test]
    fn span_traces_identical_across_pool_widths() {
        let dumps = |width: usize| -> Vec<(String, String, String)> {
            disksim::par::pmap_in(width, vec![DevKind::Regular, DevKind::Vld], |dev| {
                let o = trace_stack(dev, 40).unwrap();
                (o.spans.dump_jsonl(), o.tracer.dump_jsonl(), o.metrics.to_json())
            })
        };
        assert_eq!(dumps(1), dumps(4));
    }

    /// The span forest closes over the busy-sum invariant:
    ///
    /// * every span's own attributed disk time plus its descendants' is
    ///   bounded by its wall time (disk busy cannot exceed the causal
    ///   window it is attributed to),
    /// * attributed + unattributed disk time equals the disk's cumulative
    ///   busy delta exactly, and
    /// * the per-kind metrics counters partition the same total.
    #[test]
    fn span_tree_attribution_partitions_busy_sum() {
        for dev in [DevKind::Regular, DevKind::Vld] {
            let obs = trace_stack(dev, 60).unwrap();
            assert_eq!(obs.spans.dropped(), 0, "{dev:?}: span table overflow");
            let recs = obs.spans.records();
            assert!(!recs.is_empty(), "{dev:?}: no spans recorded");
            // Ids are sequential from 1 and a parent always precedes its
            // children, so one reverse pass accumulates subtree sums.
            let mut subtree = vec![0u64; recs.len() + 1];
            for r in recs.iter().rev() {
                subtree[r.id as usize] += r.disk_ns;
                if r.parent != 0 {
                    let s = subtree[r.id as usize];
                    subtree[r.parent as usize] += s;
                }
            }
            for r in &recs {
                assert!(r.closed, "{dev:?}: span {} ({}) left open", r.id, r.label);
                assert!(
                    subtree[r.id as usize] <= r.wall_ns(),
                    "{dev:?}: span {} ({}) attributed {} ns > wall {} ns",
                    r.id,
                    r.label,
                    subtree[r.id as usize],
                    r.wall_ns()
                );
            }
            assert_eq!(obs.attr_ns(), obs.busy_ns(), "{dev:?}: attribution total");
            let mut counter_sum =
                obs.metrics.counter_value(disksim::span::UNATTRIBUTED_DISK_NS);
            for kind in disksim::span::ALL_KINDS {
                counter_sum += obs.metrics.counter_value(kind.disk_ns_counter());
            }
            assert_eq!(counter_sum, obs.busy_ns(), "{dev:?}: per-kind counters");
            if dev == DevKind::Vld {
                assert!(
                    obs.spans.background_ns() > 0,
                    "VLD run saw no compaction/recovery time"
                );
                assert!(
                    obs.metrics.gauge_value(disksim::span::CLEANING_TAX_PPM).is_some(),
                    "cleaning-tax gauge missing"
                );
            }
        }
    }

    /// Observability must not perturb the simulation: the same workload with
    /// nothing attached reaches the same virtual end time with the same disk
    /// command count and busy breakdown, and records nothing. (The process-
    /// wide sim-event counter is shared across concurrently running tests,
    /// so this asserts the per-stack equivalents; the CI bench-smoke job
    /// checks the global counter on a single-threaded run.)
    #[test]
    fn disabled_observability_is_inert() {
        for dev in [DevKind::Regular, DevKind::Vld] {
            let on = stack_run(dev, 40, true).unwrap();
            let off = stack_run(dev, 40, false).unwrap();
            assert_eq!(on.end_ns, off.end_ns, "{dev:?}: end time");
            assert_eq!(on.disk_ops, off.disk_ops, "{dev:?}: command count");
            assert_eq!(on.busy_ns(), off.busy_ns(), "{dev:?}: busy time");
            assert!(off.tracer.is_empty(), "{dev:?}: untraced run has events");
            assert!(off.spans.is_empty(), "{dev:?}: untraced run has spans");
            assert!(!off.spans.is_enabled() && !off.metrics.is_enabled());
        }
    }

    /// The metrics registry actually fills: the VLD run must touch the
    /// vlog, allocator, compactor, disk and UFS cache families.
    #[test]
    fn vld_metrics_cover_all_families() {
        let obs = trace_stack(DevKind::Vld, 60).unwrap();
        let snap = obs.metrics.snapshot();
        for key in ["disk.writes", "alloc.fast_path", "vlog.map_writes"] {
            assert!(
                obs.metrics.counter_value(key) > 0,
                "counter {key} not recorded: {:?}",
                snap.counters.keys().collect::<Vec<_>>()
            );
        }
        assert!(snap.gauges.contains_key("ufs.cache_hits"), "ufs gauges");
        assert!(snap.gauges.contains_key("vlog.depth"), "vlog gauges");
        assert!(
            obs.metrics.histogram("disk.seek_cyls").is_some(),
            "seek-distance histogram"
        );
    }
}
