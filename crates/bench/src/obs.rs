//! The observability exhibit: a traced random-update workload.
//!
//! Runs the Figure 9 workload (random synchronous 4 KB updates at 80 %
//! utilisation) on UFS/Regular and UFS/VLD with the event tracer and the
//! metrics registry attached, then exports:
//!
//! * a JSONL trace (one line per disk operation, with the full service-time
//!   decomposition and a scope label naming the workload phase), and
//! * a metrics JSON document containing each stack's registry snapshot plus
//!   a `trace_check` block recording the disk's cumulative busy time next
//!   to the trace's component sums — the two must agree exactly.
//!
//! The exhibit writes only to files and returns a report string (printed to
//! stderr by `all_figures`), so benchmark stdout stays byte-identical
//! whether or not tracing is enabled.

use std::fmt::Write as _;

use crate::setup::{DevKind, DiskKind};
use crate::workload::{make_file, random_updates, rng, BLOCK};
use disksim::{Metrics, ServiceTime, SimClock, Tracer};
use fscore::{FileSystem, FsResult, HostModel};

/// Ring capacity for exhibit traces: large enough that a quick run never
/// drops an event (drops would break the busy-sum invariant check).
const RING: usize = 1 << 20;

/// Everything captured from one traced stack run.
pub struct StackObs {
    /// Stack label ("ufs-regular" / "ufs-vld"); also the scope prefix.
    pub label: &'static str,
    /// The trace ring, complete (no drops) for exhibit-sized runs.
    pub tracer: Tracer,
    /// The stack's metrics registry.
    pub metrics: Metrics,
    /// Disk busy breakdown accumulated while the tracer was attached.
    pub busy_delta: ServiceTime,
    /// Measured updates performed.
    pub updates: u64,
}

impl StackObs {
    /// Busy nanoseconds accumulated while traced (sum of all components).
    pub fn busy_ns(&self) -> u64 {
        let b = self.busy_delta;
        b.overhead_ns + b.seek_ns + b.head_switch_ns + b.rotation_ns + b.transfer_ns
    }

    /// Total nanoseconds across every traced event's components.
    pub fn trace_sum_ns(&self) -> u64 {
        let (o, s, h, r, x) = self.tracer.component_sums();
        o + s + h + r + x
    }
}

fn busy_minus(a: ServiceTime, b: ServiceTime) -> ServiceTime {
    ServiceTime {
        overhead_ns: a.overhead_ns - b.overhead_ns,
        seek_ns: a.seek_ns - b.seek_ns,
        head_switch_ns: a.head_switch_ns - b.head_switch_ns,
        rotation_ns: a.rotation_ns - b.rotation_ns,
        transfer_ns: a.transfer_ns - b.transfer_ns,
    }
}

/// Run the traced Figure 9 workload on one stack.
pub fn trace_stack(dev: DevKind, updates: u64) -> FsResult<StackObs> {
    let label = match dev {
        DevKind::Regular => "ufs-regular",
        DevKind::Vld => "ufs-vld",
    };
    let tracer = Tracer::with_capacity(RING);
    let metrics = Metrics::enabled();
    let host = HostModel::sparcstation_10();
    let disk = DiskKind::Hp;
    let (mut fs, busy0) = match dev {
        DevKind::Regular => {
            let mut rd = disksim::RegularDisk::new(disk.spec(), SimClock::new(), BLOCK);
            rd.disk_mut().set_tracer(Some(tracer.clone()));
            rd.disk_mut().set_metrics(metrics.clone());
            let busy0 = rd.disk().stats().busy;
            (
                ufs::Ufs::format(Box::new(rd), host, ufs::UfsConfig::default())?,
                busy0,
            )
        }
        DevKind::Vld => {
            // As in Figure 9: the VLD is measured right after a compactor
            // run, so provision an empty-track pool covering the window.
            let mut cfg = vlog_core::VldConfig::default();
            cfg.compactor.target_empty_tracks = 40;
            let mut vld = vlog_core::Vld::format(disk.spec(), SimClock::new(), cfg);
            vld.set_observability(Some(tracer.clone()), metrics.clone());
            let busy0 = disksim::BlockDevice::disk_stats(&vld).busy;
            (
                ufs::Ufs::format(Box::new(vld), host, ufs::UfsConfig::default())?,
                busy0,
            )
        }
    };
    fs.set_metrics(metrics.clone());

    let scope = |phase: &str| format!("{label}/{phase}");
    tracer.set_scope(&scope("setup"));
    let usable = fs.free_blocks();
    let file_blocks = (usable as f64 * 0.8) as u64;
    let f = make_file(&mut fs, "target", file_blocks * BLOCK as u64)?;
    fs.set_sync_writes(true);
    let mut r = rng(0xF19);
    fs.idle(20_000_000_000);
    random_updates(&mut fs, f, file_blocks, updates / 4, &mut r)?;
    let mut done = 0u64;
    while done < updates {
        // Idle grants replenish the compactor pool; their disk activity is
        // traced under its own scope so vlstat can separate it out.
        tracer.set_scope(&scope("idle"));
        fs.idle(30_000_000_000);
        tracer.set_scope(&scope("measured"));
        let chunk = 50.min(updates - done);
        random_updates(&mut fs, f, file_blocks, chunk, &mut r)?;
        done += chunk;
    }
    let busy_delta = busy_minus(fs.device().disk_stats().busy, busy0);
    Ok(StackObs {
        label,
        tracer,
        metrics,
        busy_delta,
        updates,
    })
}

/// Per-scope component sums over a trace, for the report's decomposition.
fn scope_sums(obs: &StackObs, phase: &str) -> (u64, ServiceTime) {
    let want = format!("{}/{phase}", obs.label);
    let mut n = 0u64;
    let mut t = ServiceTime::ZERO;
    for ev in obs.tracer.events() {
        if obs.tracer.label(ev.scope) == want {
            n += 1;
            t += ServiceTime {
                overhead_ns: ev.overhead_ns,
                seek_ns: ev.seek_ns,
                head_switch_ns: ev.head_switch_ns,
                rotation_ns: ev.rotation_ns,
                transfer_ns: ev.transfer_ns,
            };
        }
    }
    (n, t)
}

/// Run both stacks, write the requested artifacts, and return the report.
///
/// `trace_path` receives the concatenated JSONL trace of both stacks;
/// `metrics_path` receives a JSON document with each stack's metrics and
/// the `trace_check` invariant block. The report string is intended for
/// stderr; nothing is printed to stdout.
pub fn run(updates: u64, trace_path: Option<&str>, metrics_path: Option<&str>) -> String {
    let stacks: Vec<StackObs> = [DevKind::Regular, DevKind::Vld]
        .into_iter()
        .map(|dev| trace_stack(dev, updates).unwrap_or_else(|e| panic!("obs/{dev:?}: {e}")))
        .collect();

    if let Some(path) = trace_path {
        let mut dump = String::new();
        for s in &stacks {
            dump.push_str(&s.tracer.dump_jsonl());
        }
        if let Err(e) = std::fs::write(path, dump) {
            eprintln!("# failed to write {path}: {e}");
        }
    }
    if let Some(path) = metrics_path {
        let mut doc = String::from("{\n");
        for s in &stacks {
            let _ = writeln!(doc, "\"{}\": {},", s.label, s.metrics.to_json().trim_end());
        }
        doc.push_str("\"trace_check\": {\n");
        let checks: Vec<String> = stacks
            .iter()
            .map(|s| {
                format!(
                    "\"{}\": {{\"busy_ns\": {}, \"trace_sum_ns\": {}, \"events\": {}, \"dropped\": {}}}",
                    s.label,
                    s.busy_ns(),
                    s.trace_sum_ns(),
                    s.tracer.len(),
                    s.tracer.dropped(),
                )
            })
            .collect();
        doc.push_str(&checks.join(",\n"));
        doc.push_str("\n}\n}\n");
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("# failed to write {path}: {e}");
        }
    }

    let mut rep = String::from("# observability exhibit (random 4 KB sync updates, HP97560)\n");
    for s in &stacks {
        let ok = s.busy_ns() == s.trace_sum_ns() && s.tracer.dropped() == 0;
        let _ = writeln!(
            rep,
            "#   {:<12} {:>7} events, busy {} ns, trace sum {} ns — {}",
            s.label,
            s.tracer.len(),
            s.busy_ns(),
            s.trace_sum_ns(),
            if ok { "exact match" } else { "MISMATCH" },
        );
        let (n, t) = scope_sums(s, "measured");
        if n > 0 {
            let ms = |x: u64| x as f64 / n as f64 / 1e6;
            let _ = writeln!(
                rep,
                "#     measured ops/update: SCSI {:.3} ms, seek {:.3} ms, switch {:.3} ms, rotation {:.3} ms, transfer {:.3} ms",
                ms(t.overhead_ns),
                ms(t.seek_ns),
                ms(t.head_switch_ns),
                ms(t.rotation_ns),
                ms(t.transfer_ns),
            );
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole invariant: with nothing dropped, the trace's component
    /// sums reproduce the disk's cumulative busy breakdown exactly — for
    /// both the regular disk and the VLD (whose cache-hit reads and bare
    /// seeks must also be traced for the sums to close).
    #[test]
    fn trace_components_sum_to_disk_busy() {
        for dev in [DevKind::Regular, DevKind::Vld] {
            let obs = trace_stack(dev, 60).unwrap();
            assert_eq!(obs.tracer.dropped(), 0, "{dev:?}: ring too small");
            assert!(!obs.tracer.is_empty(), "{dev:?}: no events traced");
            let (o, s, h, r, x) = obs.tracer.component_sums();
            let b = obs.busy_delta;
            assert_eq!(o, b.overhead_ns, "{dev:?}: overhead");
            assert_eq!(s, b.seek_ns, "{dev:?}: seek");
            assert_eq!(h, b.head_switch_ns, "{dev:?}: head switch");
            assert_eq!(r, b.rotation_ns, "{dev:?}: rotation");
            assert_eq!(x, b.transfer_ns, "{dev:?}: transfer");
        }
    }

    /// The simulation is deterministic, so two identical runs must produce
    /// byte-identical JSONL traces and identical metrics JSON.
    #[test]
    fn traces_are_deterministic() {
        let a = trace_stack(DevKind::Vld, 40).unwrap();
        let b = trace_stack(DevKind::Vld, 40).unwrap();
        assert_eq!(a.tracer.dump_jsonl(), b.tracer.dump_jsonl());
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    }

    /// The metrics registry actually fills: the VLD run must touch the
    /// vlog, allocator, compactor, disk and UFS cache families.
    #[test]
    fn vld_metrics_cover_all_families() {
        let obs = trace_stack(DevKind::Vld, 60).unwrap();
        let snap = obs.metrics.snapshot();
        for key in ["disk.writes", "alloc.fast_path", "vlog.map_writes"] {
            assert!(
                obs.metrics.counter_value(key) > 0,
                "counter {key} not recorded: {:?}",
                snap.counters.keys().collect::<Vec<_>>()
            );
        }
        assert!(snap.gauges.contains_key("ufs.cache_hits"), "ufs gauges");
        assert!(snap.gauges.contains_key("vlog.depth"), "vlog gauges");
        assert!(
            obs.metrics.histogram("disk.seek_cyls").is_some(),
            "seek-distance histogram"
        );
    }
}
