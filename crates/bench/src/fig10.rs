//! Figure 10: LFS (with NVRAM buffer) latency as a function of available
//! idle time, for several burst sizes, at 80 % disk utilisation.
//!
//! The benchmark performs a burst of random 4 KB updates, pauses for the
//! idle interval (during which the cleaner may run), and repeats. Reported
//! latency is non-idle time per block. Because the cleaner moves
//! segment-sized data, LFS "can only benefit from relatively long idle
//! intervals".

use crate::format_table;
use crate::setup::{aged_system, AgedSpec, DevKind, DiskKind, FsKind};
use crate::workload::{rng, BLOCK};
use fscore::{FileId, FileSystem, FsResult, HostModel};
use rand::Rng;

/// The paper's burst sizes (KB). 504/1008/… are multiples of the 508 KB
/// of data a 127-slot segment holds.
pub const BURSTS_KB: [u64; 6] = [128, 256, 504, 1008, 2016, 4032];

/// Run the burst/idle cycle benchmark on an existing file; returns mean
/// non-idle milliseconds per 4 KB block.
pub fn burst_idle_bench(
    fs: &mut dyn FileSystem,
    f: FileId,
    file_blocks: u64,
    burst_blocks: u64,
    idle_ns: u64,
    total_blocks: u64,
    seed: u64,
) -> FsResult<f64> {
    let clock = fs.clock();
    let mut r = rng(seed);
    let buf = vec![0x5Du8; BLOCK];
    let mut written = 0u64;
    let mut idle_granted = 0u64;
    let t0 = clock.now();
    while written < total_blocks {
        let n = burst_blocks.min(total_blocks - written);
        for _ in 0..n {
            let b = r.gen_range(0..file_blocks);
            fs.write(f, b * BLOCK as u64, &buf)?;
        }
        written += n;
        if idle_ns > 0 {
            fs.idle(idle_ns);
            idle_granted += idle_ns;
        }
    }
    let busy = clock.now() - t0 - idle_granted;
    Ok(busy as f64 / written as f64 / 1e6)
}

/// The aged state every cell starts from: LFS at 80 % utilisation, warmed
/// by one NVRAM-cycling burst. Built once, forked per cell.
fn spec(host: HostModel, total_blocks: u64) -> AgedSpec {
    AgedSpec {
        // Warm up: cycle the NVRAM once.
        warmup_blocks: 2000.min(total_blocks),
        ..AgedSpec::new(FsKind::Lfs, DevKind::Regular, DiskKind::Seagate, host, 0.8)
    }
}

/// Measure one series (burst size fixed, idle varied).
pub fn series(
    burst_kb: u64,
    idles_s: &[f64],
    total_blocks: u64,
    host: HostModel,
) -> Vec<(f64, f64)> {
    idles_s
        .iter()
        .map(|&idle| {
            let (mut fs, f, file_blocks) =
                aged_system(&spec(host, total_blocks)).expect("setup");
            let ms = burst_idle_bench(
                &mut fs,
                f,
                file_blocks,
                burst_kb * 1024 / BLOCK as u64,
                (idle * 1e9) as u64,
                total_blocks,
                0xF20 ^ burst_kb,
            )
            .expect("bench");
            (idle, ms)
        })
        .collect()
}

/// Regenerate Figure 10.
pub fn run(total_blocks: u64) -> String {
    let host = HostModel::sparcstation_10();
    let idles = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 7.0];
    // Every (burst, idle) cell is an independent simulation (fresh system,
    // fixed seeds), so fan the whole grid out at once.
    let points: Vec<(u64, f64)> = BURSTS_KB
        .iter()
        .flat_map(|&b| idles.iter().map(move |&idle| (b, idle)))
        .collect();
    let cells = crate::par::pmap(points, |(b, idle)| {
        series(b, &[idle], total_blocks, host)[0].1
    });
    let rows: Vec<Vec<String>> = idles
        .iter()
        .enumerate()
        .map(|(i, idle)| {
            let mut row = vec![format!("{idle:.2}")];
            for bi in 0..BURSTS_KB.len() {
                row.push(format!("{:.2}", cells[bi * idles.len() + i]));
            }
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("idle (s)".to_string())
        .chain(BURSTS_KB.iter().map(|b| format!("{b}K")))
        .collect();
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    format_table(
        "Figure 10: LFS+NVRAM latency per 4 KB block (ms) vs idle interval",
        &hdr,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_time_helps_lfs() {
        let host = HostModel::instant();
        let pts = series(504, &[0.0, 4.0], 3000, host);
        let (busy, idle) = (pts[0].1, pts[1].1);
        assert!(
            idle < busy,
            "4 s idle ({idle} ms) must beat zero idle ({busy} ms)"
        );
    }
}
