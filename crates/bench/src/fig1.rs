//! Figure 1: time to locate the first free sector vs disk utilisation —
//! analytical model (formula 2) against an eager-writing simulation, on
//! both disks.
//!
//! The simulation follows the paper's setup: free space is randomly
//! distributed at each utilisation, and the eager writer "is not restricted
//! to the current cylinder and always seeks to the nearest sector" (greedy,
//! bidirectional). Utilisation is held steady by freeing one random used
//! sector per write.

use crate::format_table;
use disksim::{Disk, SimClock};
use rand::Rng;
use vlog_core::{AllocConfig, EagerAllocator, FreeMap};
use vlog_models::{convert, cylinder};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Free-space percentage (x-axis).
    pub free_pct: f64,
    /// Model prediction, ms.
    pub model_ms: f64,
    /// Simulated mean locate time, ms.
    pub sim_ms: f64,
}

/// Measure one disk across utilisations. `writes` sets the per-point
/// sample count.
pub fn series(spec: disksim::DiskSpec, writes: u32, seed: u64) -> Vec<Point> {
    let switch_sectors = convert::head_switch_sectors(&spec);
    let tracks = spec.geometry.tracks_per_cylinder();
    let pcts: Vec<u64> = (5..=95).step_by(5).collect();
    crate::par::pmap(pcts, |free_pct| {
        let p = free_pct as f64 / 100.0;
        let model_sectors = cylinder::expected_latency(p, switch_sectors, tracks);
        let model_ms = convert::sectors_to_ms(&spec, model_sectors);
        let sim_ms = simulate_point(&spec, p, writes, seed ^ free_pct);
        Point {
            free_pct: free_pct as f64,
            model_ms,
            sim_ms,
        }
    })
}

/// Simulated mean locate latency at free fraction `p`.
fn simulate_point(spec: &disksim::DiskSpec, p: f64, writes: u32, seed: u64) -> f64 {
    let mut spec = spec.clone();
    spec.command_overhead_ns = 0; // we measure pure positioning
    let clock = SimClock::new();
    let mut disk = Disk::new(spec.clone(), clock.clone());
    let g = spec.geometry.clone();
    let mut free = FreeMap::new(&g);
    let mut rng = crate::workload::rng(seed);

    // Randomly occupy (1-p) of all sectors. Rejection-sample against a flat
    // LBA bitmap (same accept/reject decisions — and so the same RNG stream
    // and the same occupancy — as testing `FreeMap::is_free` on a map that
    // starts all-free), then apply the whole occupancy in one bulk pass:
    // per-sector `allocate` calls rebuild the utilization index ~`total`
    // times and used to dominate this figure's wall time.
    let total = g.total_sectors();
    let occupy = ((1.0 - p) * total as f64) as u64;
    let mut used: Vec<u64> = Vec::with_capacity(occupy as usize);
    let mut used_bits = vec![0u64; (total as usize).div_ceil(64)];
    while (used.len() as u64) < occupy {
        let lba = rng.gen_range(0..total);
        let (q, m) = (lba as usize / 64, 1u64 << (lba % 64));
        if used_bits[q] & m == 0 {
            used_bits[q] |= m;
            used.push(lba);
        }
    }
    free.allocate_bulk(&used_bits);

    // Greedy two-way eager writer; keep utilisation constant by freeing a
    // random used sector per write.
    let mut alloc = EagerAllocator::new(AllocConfig {
        one_way_sweep: false,
        threshold_fill: false,
        block_sectors: 1,
        ..AllocConfig::default()
    });
    let mut total_ns = 0u64;
    let buf = vec![0u8; disksim::SECTOR_BYTES];
    for _ in 0..writes {
        let cand = alloc
            .find_sector(&disk, &free)
            .expect("free space exists at p > 0");
        total_ns += cand.cost.locate_ns();
        let lba = g
            .phys_to_lba(disksim::PhysAddr::new(cand.cyl, cand.track, cand.sector))
            .expect("candidate is valid");
        disk.write_sectors(lba, &buf).expect("write in range");
        free.allocate(cand.cyl, cand.track, cand.sector, 1)
            .expect("valid");
        used.push(lba);
        // Free one random used sector to hold p steady.
        let victim = used.swap_remove(rng.gen_range(0..used.len()));
        let ph = g.lba_to_phys(victim).expect("in range");
        free.release(ph.cyl, ph.track, ph.sector, 1).expect("valid");
    }
    disksim::ns_to_ms(total_ns) / writes as f64
}

/// Regenerate Figure 1.
pub fn run(writes: u32) -> String {
    let hp = series(disksim::DiskSpec::hp97560_sim(), writes, 0xF161);
    let st = series(disksim::DiskSpec::st19101_sim(), writes, 0xF162);
    let rows: Vec<Vec<String>> = hp
        .iter()
        .zip(&st)
        .map(|(h, s)| {
            vec![
                format!("{:.0}", h.free_pct),
                format!("{:.3}", h.model_ms),
                format!("{:.3}", h.sim_ms),
                format!("{:.4}", s.model_ms),
                format!("{:.4}", s.sim_ms),
            ]
        })
        .collect();
    format_table(
        "Figure 1: time to locate first free sector (ms) vs free space (%)",
        &["free %", "HP model", "HP sim", "ST model", "ST sim"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_validates_simulation_on_hp() {
        // The paper's Figure 1 point: model and simulation agree in shape.
        let pts = series(disksim::DiskSpec::hp97560_sim(), 120, 42);
        // Latency decreases with free space in both curves.
        assert!(pts.first().expect("points").sim_ms > pts.last().expect("points").sim_ms);
        assert!(pts.first().expect("points").model_ms > pts.last().expect("points").model_ms);
        // At moderate utilisations the two agree within a factor of two.
        for p in pts.iter().filter(|p| (20.0..=80.0).contains(&p.free_pct)) {
            let ratio = p.sim_ms / p.model_ms;
            assert!(
                (0.4..2.5).contains(&ratio),
                "free {}%: sim {} vs model {}",
                p.free_pct,
                p.sim_ms,
                p.model_ms
            );
        }
    }

    #[test]
    fn seagate_is_roughly_order_of_magnitude_faster() {
        let hp = series(disksim::DiskSpec::hp97560_sim(), 80, 1);
        let st = series(disksim::DiskSpec::st19101_sim(), 80, 1);
        // Compare at 50% free.
        let h = hp.iter().find(|p| p.free_pct == 50.0).expect("point");
        let s = st.iter().find(|p| p.free_pct == 50.0).expect("point");
        assert!(
            s.sim_ms * 4.0 < h.sim_ms,
            "ST {} ms vs HP {} ms",
            s.sim_ms,
            h.sim_ms
        );
    }
}
