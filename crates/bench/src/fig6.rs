//! Figure 6: small-file performance — create, read, and delete 1500 1 KB
//! files on the four system combinations, normalised to UFS on the regular
//! disk.
//!
//! As in the paper: UFS metadata (and the 1 KB data, via sync mode) is
//! synchronous; LFS buffers everything and flushes segments. Caches are
//! flushed between phases. Run on empty disks.

use crate::format_table;
use crate::setup::{combo_label, make_system, DevKind, DiskKind, FsKind};
use crate::workload::timed;
use fscore::{FileSystem, FsResult, HostModel};

/// Per-phase simulated times for one system, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct SmallFileResult {
    /// Create phase.
    pub create_ns: u64,
    /// Read-back phase (after cache flush).
    pub read_ns: u64,
    /// Delete phase.
    pub delete_ns: u64,
}

/// Run the small-file benchmark on one system.
pub fn measure(
    fs_kind: FsKind,
    dev: DevKind,
    disk: DiskKind,
    files: u32,
    host: HostModel,
) -> FsResult<SmallFileResult> {
    let mut fs = make_system(fs_kind, dev, disk, host)?;
    if fs_kind == FsKind::Ufs {
        fs.set_sync_writes(true); // "Under UFS, updates are synchronous."
    }
    let clock = fs.clock();
    let data = vec![0xCDu8; 1024];
    let create_ns = timed(&clock, || {
        for i in 0..files {
            let f = fs.create(&format!("f{i:05}"))?;
            fs.write(f, 0, &data)?;
        }
        fs.sync()
    })?;
    fs.drop_caches();
    let mut out = vec![0u8; 1024];
    let read_ns = timed(&clock, || {
        for i in 0..files {
            let f = fs.open(&format!("f{i:05}"))?;
            fs.read(f, 0, &mut out)?;
        }
        Ok(())
    })?;
    let delete_ns = timed(&clock, || {
        for i in 0..files {
            fs.delete(&format!("f{i:05}"))?;
        }
        fs.sync()
    })?;
    Ok(SmallFileResult {
        create_ns,
        read_ns,
        delete_ns,
    })
}

/// Regenerate Figure 6: per-phase performance of all four systems,
/// normalised to UFS/regular (higher is better).
pub fn run(files: u32) -> String {
    let host = HostModel::sparcstation_10();
    let combos = [
        (FsKind::Ufs, DevKind::Regular),
        (FsKind::Ufs, DevKind::Vld),
        (FsKind::Lfs, DevKind::Regular),
        (FsKind::Lfs, DevKind::Vld),
    ];
    let results: Vec<(String, SmallFileResult)> = crate::par::pmap(combos.to_vec(), |(f, d)| {
        (
            combo_label(f, d),
            measure(f, d, DiskKind::Seagate, files, host)
                .unwrap_or_else(|e| panic!("{}: {e}", combo_label(f, d))),
        )
    });
    let base = results[0].1;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, r)| {
            vec![
                label.clone(),
                format!("{:.2}", base.create_ns as f64 / r.create_ns as f64),
                format!("{:.2}", base.read_ns as f64 / r.read_ns as f64),
                format!("{:.2}", base.delete_ns as f64 / r.delete_ns as f64),
                format!("{:.2}s", r.create_ns as f64 / 1e9),
                format!("{:.2}s", r.read_ns as f64 / 1e9),
                format!("{:.2}s", r.delete_ns as f64 / 1e9),
            ]
        })
        .collect();
    format_table(
        &format!(
            "Figure 6: small-file performance ({files} x 1 KB files), normalised to UFS/Regular"
        ),
        &[
            "system",
            "create",
            "read",
            "delete",
            "create(s)",
            "read(s)",
            "delete(s)",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vld_speeds_up_ufs_creates_and_deletes() {
        let host = HostModel::instant();
        let reg = measure(FsKind::Ufs, DevKind::Regular, DiskKind::Seagate, 150, host).unwrap();
        let vld = measure(FsKind::Ufs, DevKind::Vld, DiskKind::Seagate, 150, host).unwrap();
        assert!(
            vld.create_ns * 2 < reg.create_ns,
            "create: VLD {} vs regular {}",
            vld.create_ns,
            reg.create_ns
        );
        assert!(
            vld.delete_ns * 2 < reg.delete_ns,
            "delete: VLD {} vs regular {}",
            vld.delete_ns,
            reg.delete_ns
        );
        // Reads may be slightly worse on the VLD, but not catastrophically.
        assert!(vld.read_ns < reg.read_ns * 3);
    }

    #[test]
    fn lfs_create_is_fast_on_both_devices() {
        let host = HostModel::instant();
        let ufs = measure(FsKind::Ufs, DevKind::Regular, DiskKind::Seagate, 150, host).unwrap();
        let lfs = measure(FsKind::Lfs, DevKind::Regular, DiskKind::Seagate, 150, host).unwrap();
        assert!(
            lfs.create_ns < ufs.create_ns,
            "buffered LFS creates must win"
        );
    }
}
