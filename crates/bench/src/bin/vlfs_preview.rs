//! Measure the paper's §3.3 VLFS speculation against its proxies.
fn main() {
    let updates = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    print!("{}", vlfs_bench::vlfs_preview::run(updates));
}
