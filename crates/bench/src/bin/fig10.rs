//! Regenerate the paper's Figure 10.
fn main() {
    let blocks = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6000);
    print!("{}", vlfs_bench::fig10::run(blocks));
}
