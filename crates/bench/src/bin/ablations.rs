//! Run every design-choice ablation and print the tables.
fn main() {
    print!("{}", vlfs_bench::ablations::run_all());
}
