//! Regenerate the paper's Figure 11.
fn main() {
    let blocks = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    print!("{}", vlfs_bench::fig11::run(blocks));
}
