//! Regenerate the paper's Figure 2.
fn main() {
    let tracks = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    print!("{}", vlfs_bench::fig2::run(tracks));
}
