//! `vlstat` — analyse the artifacts produced by `all_figures`.
//!
//! Three modes:
//!
//! * `vlstat TRACE.jsonl` — the original per-scope latency decomposition
//!   of a JSONL disk trace (span lines are skipped),
//! * `vlstat attr TRACE.jsonl [METRICS.json]` — the causal-span view:
//!   an aggregated span tree with per-path disk-time attribution, a
//!   per-kind rollup, the cleaning-tax ratio, and (when a metrics file is
//!   given) p50/p99 service-time quantiles from the disk histograms,
//! * `vlstat diff OLD.json NEW.json [--threshold PCT]` — compare two
//!   metrics JSON documents; counter changes beyond the threshold are
//!   regressions (nonzero exit), gauge/histogram/timing drift is advisory.
//!
//! All inputs are the fixed ASCII JSON emitted by the tracer and metrics
//! registry, so the parsers are a few string scans — no JSON library
//! required (the workspace builds offline).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Extract the numeric value of `"key":` from a trace line.
fn num(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let Some(i) = line.find(&pat) else { return 0 };
    line[i + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// Extract the string value of `"key":"..."` from a trace line.
fn strval<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":\"");
    let Some(i) = line.find(&pat) else { return "" };
    let rest = &line[i + pat.len()..];
    &rest[..rest.find('"').unwrap_or(0)]
}

/// A span line carries a `"parent":` key; event lines carry `"at":`.
fn is_span_line(line: &str) -> bool {
    line.contains("\"parent\":")
}

// ===================================================================
// legacy mode: per-scope latency decomposition of the event trace
// ===================================================================

/// Seek-distance buckets, in cylinders.
const SEEK_BUCKETS: [(&str, u64, u64); 5] = [
    ("0", 0, 0),
    ("1-3", 1, 3),
    ("4-15", 4, 15),
    ("16-63", 16, 63),
    ("64+", 64, u64::MAX),
];

#[derive(Default)]
struct Acc {
    ops: u64,
    reads: u64,
    writes: u64,
    seeks: u64,
    faults: u64,
    overhead_ns: u64,
    seek_ns: u64,
    head_switch_ns: u64,
    rotation_ns: u64,
    transfer_ns: u64,
    seek_dist: [u64; SEEK_BUCKETS.len()],
}

impl Acc {
    fn busy_ns(&self) -> u64 {
        self.overhead_ns + self.seek_ns + self.head_switch_ns + self.rotation_ns + self.transfer_ns
    }
}

fn legacy_report(path: &str, text: &str) -> String {
    let mut scopes: BTreeMap<String, Acc> = BTreeMap::new();
    let mut total = 0u64;
    for line in text
        .lines()
        .filter(|l| !l.trim().is_empty() && !is_span_line(l))
    {
        total += 1;
        let acc = scopes.entry(strval(line, "scope").to_string()).or_default();
        acc.ops += 1;
        match strval(line, "kind") {
            "read" => acc.reads += 1,
            "write" => acc.writes += 1,
            "seek" => acc.seeks += 1,
            "fault" => acc.faults += 1,
            _ => {}
        }
        acc.overhead_ns += num(line, "overhead_ns");
        acc.seek_ns += num(line, "seek_ns");
        acc.head_switch_ns += num(line, "head_switch_ns");
        acc.rotation_ns += num(line, "rotation_ns");
        acc.transfer_ns += num(line, "transfer_ns");
        let d = num(line, "seek_cyls");
        for (i, &(_, lo, hi)) in SEEK_BUCKETS.iter().enumerate() {
            if d >= lo && d <= hi {
                acc.seek_dist[i] += 1;
                break;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "vlstat: {total} events from {path}\n");

    let _ = writeln!(out, "## per-scope latency decomposition");
    let _ = writeln!(
        out,
        "{:<24} {:>8} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "scope", "ops", "mean ms", "SCSI", "seek", "switch", "rot", "xfer"
    );
    for (scope, a) in &scopes {
        let busy = a.busy_ns();
        let pct = |x: u64| {
            if busy == 0 {
                "-".to_string()
            } else {
                format!("{:.0}%", x as f64 / busy as f64 * 100.0)
            }
        };
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>10.3} {:>7} {:>7} {:>7} {:>7} {:>7}",
            if scope.is_empty() { "(none)" } else { scope },
            a.ops,
            busy as f64 / a.ops.max(1) as f64 / 1e6,
            pct(a.overhead_ns),
            pct(a.seek_ns),
            pct(a.head_switch_ns),
            pct(a.rotation_ns),
            pct(a.transfer_ns),
        );
    }

    let _ = writeln!(out, "\n## op mix (reads / writes / seeks / faults)");
    for (scope, a) in &scopes {
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>8} {:>8} {:>8}",
            if scope.is_empty() { "(none)" } else { scope },
            a.reads,
            a.writes,
            a.seeks,
            a.faults,
        );
    }

    let _ = writeln!(out, "\n## seek distance distribution (cylinders)");
    let _ = write!(out, "{:<24}", "scope");
    for &(name, _, _) in &SEEK_BUCKETS {
        let _ = write!(out, " {name:>8}");
    }
    out.push('\n');
    for (scope, a) in &scopes {
        let _ = write!(
            out,
            "{:<24}",
            if scope.is_empty() { "(none)" } else { scope }
        );
        for &c in &a.seek_dist {
            let _ = write!(out, " {c:>8}");
        }
        out.push('\n');
    }
    out
}

// ===================================================================
// attr mode: causal-span tree, per-kind rollup, cleaning tax
// ===================================================================

/// One parsed span line.
#[derive(Clone)]
struct Span {
    id: u64,
    parent: u64,
    kind: String,
    label: String,
    open_ns: u64,
    close_ns: Option<u64>,
    disk_ns: u64,
    disk_cmds: u64,
}

/// Split the concatenated span dump into per-stack forests: span ids are
/// sequential from 1 within one table, so an id at or below its
/// predecessor marks the start of the next stack's dump.
fn parse_forests(text: &str) -> Vec<Vec<Span>> {
    let mut forests: Vec<Vec<Span>> = Vec::new();
    let mut prev_id = u64::MAX;
    for line in text
        .lines()
        .filter(|l| !l.trim().is_empty() && is_span_line(l))
    {
        let close = if line.contains("\"close_ns\":null") {
            None
        } else {
            Some(num(line, "close_ns"))
        };
        let s = Span {
            id: num(line, "span"),
            parent: num(line, "parent"),
            kind: strval(line, "kind").to_string(),
            label: strval(line, "label").to_string(),
            open_ns: num(line, "open_ns"),
            close_ns: close,
            disk_ns: num(line, "disk_ns"),
            disk_cmds: num(line, "disk_cmds"),
        };
        if s.id <= prev_id || forests.is_empty() {
            forests.push(Vec::new());
        }
        prev_id = s.id;
        forests.last_mut().expect("just pushed").push(s);
    }
    forests
}

#[derive(Default)]
struct PathAgg {
    count: u64,
    disk_ns: u64,
    subtree_ns: u64,
    wall_ns: u64,
    cmds: u64,
}

fn attr_report(trace_path: &str, text: &str, metrics: Option<(&str, &str)>) -> String {
    let forests = parse_forests(text);
    let mut out = String::new();
    if forests.is_empty() {
        let _ = writeln!(
            out,
            "vlstat attr: no span lines in {trace_path} (was the trace written with spans enabled?)"
        );
        return out;
    }
    for (fi, spans) in forests.iter().enumerate() {
        let _ = writeln!(out, "## stack {fi}: {} spans", spans.len());

        // Compute each span's label path, subtree disk time and inherited
        // background flag (ids are open-ordered, so parent < child).
        let mut subtree: BTreeMap<u64, u64> = BTreeMap::new();
        for s in spans.iter().rev() {
            let own = subtree.get(&s.id).copied().unwrap_or(0) + s.disk_ns;
            subtree.insert(s.id, own);
            if s.parent != 0 {
                *subtree.entry(s.parent).or_insert(0) += own;
            }
        }
        let mut path_of: BTreeMap<u64, String> = BTreeMap::new();
        let mut background: BTreeMap<u64, bool> = BTreeMap::new();
        let mut bg_ns = 0u64;
        let mut fg_ns = 0u64;
        let mut total_ns = 0u64;
        let mut paths: BTreeMap<String, PathAgg> = BTreeMap::new();
        let mut kinds: BTreeMap<String, PathAgg> = BTreeMap::new();
        for s in spans {
            let parent_path = if s.parent == 0 {
                String::new()
            } else {
                path_of.get(&s.parent).cloned().unwrap_or_default()
            };
            let path = if parent_path.is_empty() {
                s.label.clone()
            } else {
                format!("{parent_path}/{}", s.label)
            };
            let inherited = s.parent != 0 && background.get(&s.parent).copied().unwrap_or(false);
            let bg = inherited || s.kind == "compaction" || s.kind == "recovery";
            background.insert(s.id, bg);
            total_ns += s.disk_ns;
            if bg {
                bg_ns += s.disk_ns;
            } else {
                fg_ns += s.disk_ns;
            }
            let wall = s.close_ns.unwrap_or(s.open_ns) - s.open_ns;
            let agg = paths.entry(path.clone()).or_default();
            agg.count += 1;
            agg.disk_ns += s.disk_ns;
            agg.subtree_ns += subtree.get(&s.id).copied().unwrap_or(0);
            agg.wall_ns += wall;
            agg.cmds += s.disk_cmds;
            let k = kinds.entry(s.kind.clone()).or_default();
            k.count += 1;
            k.disk_ns += s.disk_ns;
            k.cmds += s.disk_cmds;
            path_of.insert(s.id, path);
        }

        let _ = writeln!(
            out,
            "{:<44} {:>7} {:>12} {:>12} {:>12} {:>8}",
            "span path", "count", "own ms", "subtree ms", "wall ms", "cmds"
        );
        for (path, a) in &paths {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            let name = format!("{}{leaf}", "  ".repeat(depth));
            let _ = writeln!(
                out,
                "{name:<44} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>8}",
                a.count,
                a.disk_ns as f64 / 1e6,
                a.subtree_ns as f64 / 1e6,
                a.wall_ns as f64 / 1e6,
                a.cmds,
            );
        }

        let _ = writeln!(out, "\n### per-kind attribution");
        for (kind, a) in &kinds {
            let share = if total_ns == 0 {
                0.0
            } else {
                a.disk_ns as f64 / total_ns as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{kind:<14} {:>7} spans {:>12.3} ms disk ({share:>5.1} %) {:>8} cmds",
                a.count,
                a.disk_ns as f64 / 1e6,
                a.cmds,
            );
        }
        let tax = if fg_ns == 0 {
            0.0
        } else {
            bg_ns as f64 / fg_ns as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "cleaning tax: {tax:.2} % (background {bg_ns} ns / foreground {fg_ns} ns)\n"
        );
    }

    if let Some((mpath, mtext)) = metrics {
        let flat = flatten_metrics(mtext);
        let _ = writeln!(out, "## service-time quantiles from {mpath} (ns)");
        let mut shown = false;
        for hist in ["disk.read_ns", "disk.write_ns", "disk.seek_ns"] {
            for (key, v) in &flat {
                if let Some(stack) = key.strip_suffix(&format!("/hist.{hist}.p50")) {
                    let p99 = flat
                        .get(&format!("{stack}/hist.{hist}.p99"))
                        .copied()
                        .unwrap_or(0.0);
                    let _ = writeln!(
                        out,
                        "{stack:<14} {hist:<16} p50 {:>12} p99 {:>12}",
                        *v as u64, p99 as u64
                    );
                    shown = true;
                }
            }
        }
        if !shown {
            let _ = writeln!(out, "(no disk histograms found)");
        }
    }
    out
}

// ===================================================================
// diff mode: metrics regression gate
// ===================================================================

/// Flatten a metrics JSON document (as written by `all_figures
/// --metrics-json`) into `section/key -> value`. Handles both the
/// one-key-per-line registry dumps and the single-line objects of the
/// `trace_check` block.
fn flatten_metrics(text: &str) -> BTreeMap<String, f64> {
    let mut flat = BTreeMap::new();
    let mut sections: Vec<String> = Vec::new();
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" {
            continue;
        }
        if line == "}" {
            sections.pop();
            continue;
        }
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some(q) = rest.find('"') else { continue };
        let key = &rest[..q];
        let val = rest[q + 1..].trim_start_matches(':').trim();
        if val == "{" {
            sections.push(key.to_string());
            continue;
        }
        let prefix = if sections.is_empty() {
            key.to_string()
        } else {
            format!("{}/{key}", sections.join("/"))
        };
        if let Some(inner) = val.strip_prefix('{') {
            // Single-line object: parse every "k": n pair inside it.
            let inner = inner.trim_end_matches('}');
            for pair in inner.split(',') {
                let pair = pair.trim();
                let Some(p) = pair.strip_prefix('"') else {
                    continue;
                };
                let Some(q2) = p.find('"') else { continue };
                let k2 = &p[..q2];
                if let Ok(v) = p[q2 + 1..].trim_start_matches(':').trim().parse::<f64>() {
                    flat.insert(format!("{prefix}/{k2}"), v);
                }
            }
        } else if let Ok(v) = val.parse::<f64>() {
            flat.insert(prefix, v);
        }
    }
    flat
}

/// Gated keys fail the diff; everything else (histograms, gauges and the
/// timing-dependent trace-check numbers) is advisory drift.
fn is_gated(key: &str) -> bool {
    key.contains("/counters.")
}

/// Compare two flattened metrics maps. Returns (report, regression count).
fn diff_metrics(
    a: &BTreeMap<String, f64>,
    b: &BTreeMap<String, f64>,
    threshold_pct: f64,
) -> (String, usize) {
    let mut out = String::new();
    let mut regressions = 0usize;
    let mut advisories = 0usize;
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for key in keys {
        let gated = is_gated(key);
        match (a.get(key), b.get(key)) {
            (Some(&x), Some(&y)) => {
                if x == y {
                    continue;
                }
                let rel = if x == 0.0 {
                    f64::INFINITY
                } else {
                    ((y - x) / x).abs() * 100.0
                };
                let fail = gated && rel > threshold_pct;
                if fail {
                    regressions += 1;
                } else {
                    advisories += 1;
                }
                let _ = writeln!(
                    out,
                    "{} {key}: {x} -> {y} ({:+.2} %)",
                    if fail { "FAIL" } else { "  ~ " },
                    if x == 0.0 { f64::INFINITY } else { (y - x) / x * 100.0 },
                );
            }
            (Some(&x), None) => {
                if gated {
                    regressions += 1;
                } else {
                    advisories += 1;
                }
                let _ = writeln!(
                    out,
                    "{} {key}: {x} -> (missing)",
                    if gated { "FAIL" } else { "  ~ " }
                );
            }
            (None, Some(&y)) => {
                if gated {
                    regressions += 1;
                } else {
                    advisories += 1;
                }
                let _ = writeln!(
                    out,
                    "{} {key}: (missing) -> {y}",
                    if gated { "FAIL" } else { "  ~ " }
                );
            }
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }
    let _ = writeln!(
        out,
        "vlstat diff: {regressions} regression(s), {advisories} advisory drift(s), threshold {threshold_pct} %"
    );
    (out, regressions)
}

// ===================================================================

fn read_or_die(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("vlstat: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: vlstat TRACE.jsonl\n       vlstat attr TRACE.jsonl [METRICS.json]\n       vlstat diff OLD.json NEW.json [--threshold PCT]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("attr") => {
            let Some(trace) = args.get(2) else { usage() };
            let text = read_or_die(trace);
            let mtext = args.get(3).map(|p| (p.as_str(), read_or_die(p)));
            let metrics = mtext.as_ref().map(|(p, t)| (*p, t.as_str()));
            print!("{}", attr_report(trace, &text, metrics));
        }
        Some("diff") => {
            let (Some(old), Some(new)) = (args.get(2), args.get(3)) else {
                usage()
            };
            let mut threshold = 0.0f64;
            let mut i = 4;
            while i < args.len() {
                if args[i] == "--threshold" {
                    threshold = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                    i += 2;
                } else {
                    usage();
                }
            }
            let a = flatten_metrics(&read_or_die(old));
            let b = flatten_metrics(&read_or_die(new));
            if a.is_empty() {
                eprintln!("vlstat diff: {old} contains no metrics");
                std::process::exit(2);
            }
            let (report, regressions) = diff_metrics(&a, &b, threshold);
            print!("{report}");
            if regressions > 0 {
                std::process::exit(1);
            }
        }
        Some(path) => {
            let text = read_or_die(path);
            print!("{}", legacy_report(path, &text));
        }
        None => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPAN_DUMP: &str = concat!(
        "{\"span\":1,\"parent\":0,\"kind\":\"fs_op\",\"label\":\"ufs.write\",\"open_ns\":0,\"close_ns\":100,\"disk_ns\":30,\"disk_cmds\":1}\n",
        "{\"span\":2,\"parent\":1,\"kind\":\"log_append\",\"label\":\"vlog.map_append\",\"open_ns\":10,\"close_ns\":50,\"disk_ns\":20,\"disk_cmds\":1}\n",
        "{\"span\":3,\"parent\":0,\"kind\":\"compaction\",\"label\":\"vld.compact\",\"open_ns\":100,\"close_ns\":300,\"disk_ns\":40,\"disk_cmds\":2}\n",
        "{\"span\":4,\"parent\":3,\"kind\":\"log_append\",\"label\":\"vlog.map_append\",\"open_ns\":120,\"close_ns\":180,\"disk_ns\":25,\"disk_cmds\":1}\n",
        "{\"span\":1,\"parent\":0,\"kind\":\"fs_op\",\"label\":\"ufs.read\",\"open_ns\":0,\"close_ns\":40,\"disk_ns\":15,\"disk_cmds\":1}\n",
    );

    #[test]
    fn forests_split_on_id_restart() {
        let forests = parse_forests(SPAN_DUMP);
        assert_eq!(forests.len(), 2);
        assert_eq!(forests[0].len(), 4);
        assert_eq!(forests[1].len(), 1);
    }

    #[test]
    fn attr_report_computes_cleaning_tax_with_inheritance() {
        let rep = attr_report("t.jsonl", SPAN_DUMP, None);
        // Background = compaction (40) + its map-append child (25);
        // foreground = 30 + 20. Tax = 65/50 = 130 %.
        assert!(rep.contains("cleaning tax: 130.00 %"), "{rep}");
        // Second stack is all foreground.
        assert!(rep.contains("cleaning tax: 0.00 %"), "{rep}");
        // The child path is indented under its parent.
        assert!(rep.contains("  vlog.map_append"), "{rep}");
    }

    #[test]
    fn legacy_report_skips_span_lines() {
        let mixed = format!(
            "{SPAN_DUMP}{}\n",
            "{\"at\":5,\"scope\":\"s/x\",\"kind\":\"write\",\"span\":1,\"lba\":0,\"sectors\":8,\"overhead_ns\":7,\"seek_ns\":0,\"head_switch_ns\":0,\"rotation_ns\":0,\"transfer_ns\":3,\"seek_cyls\":0,\"queue\":0}"
        );
        let rep = legacy_report("t.jsonl", &mixed);
        assert!(rep.contains("1 events"), "{rep}");
        assert!(rep.contains("s/x"), "{rep}");
    }

    #[test]
    fn flatten_handles_sections_and_inline_objects() {
        let doc = concat!(
            "{\n",
            "\"ufs-vld\": {\n",
            "\"counters.disk.writes\": 10,\n",
            "\"gauges.vlog.depth\": -2,\n",
            "\"hist.disk.write_ns.p50\": 4096\n",
            "},\n",
            "\"trace_check\": {\n",
            "\"ufs-vld\": {\"attr_ns\": 77, \"busy_ns\": 77},\n",
            "}\n",
            "}\n"
        );
        let flat = flatten_metrics(doc);
        assert_eq!(flat.get("ufs-vld/counters.disk.writes"), Some(&10.0));
        assert_eq!(flat.get("ufs-vld/gauges.vlog.depth"), Some(&-2.0));
        assert_eq!(flat.get("ufs-vld/hist.disk.write_ns.p50"), Some(&4096.0));
        assert_eq!(flat.get("trace_check/ufs-vld/attr_ns"), Some(&77.0));
    }

    #[test]
    fn diff_gates_counters_but_not_histograms() {
        let mut a = BTreeMap::new();
        let mut b = BTreeMap::new();
        a.insert("s/counters.disk.writes".to_string(), 100.0);
        b.insert("s/counters.disk.writes".to_string(), 103.0);
        a.insert("s/hist.disk.write_ns.p99".to_string(), 5000.0);
        b.insert("s/hist.disk.write_ns.p99".to_string(), 9000.0);

        let (rep, regressions) = diff_metrics(&a, &b, 0.0);
        assert_eq!(regressions, 1, "{rep}");
        assert!(rep.contains("FAIL s/counters.disk.writes"), "{rep}");
        assert!(rep.contains("  ~  s/hist.disk.write_ns.p99"), "{rep}");

        // Within a 5 % threshold the counter change passes.
        let (_, regressions) = diff_metrics(&a, &b, 5.0);
        assert_eq!(regressions, 0);

        // A gated key disappearing is always a regression.
        b.remove("s/counters.disk.writes");
        let (rep, regressions) = diff_metrics(&a, &b, 50.0);
        assert_eq!(regressions, 1, "{rep}");
    }
}
