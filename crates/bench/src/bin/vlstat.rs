//! `vlstat` — analyse a JSONL trace produced by `all_figures --trace`.
//!
//! Usage: `vlstat TRACE.jsonl`
//!
//! Prints, per scope label found in the trace:
//!
//! * a Table 2-style per-operation latency decomposition (SCSI overhead,
//!   seek, head switch, rotation, transfer — mean ms and share of busy
//!   time), and
//! * a seek-distance distribution in cylinders.
//!
//! The trace format is the fixed ASCII JSONL emitted by the tracer, so the
//! parser is a few string scans — no JSON library required (the workspace
//! builds offline).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Extract the numeric value of `"key":` from a trace line.
fn num(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let Some(i) = line.find(&pat) else { return 0 };
    line[i + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// Extract the string value of `"key":"..."` from a trace line.
fn strval<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":\"");
    let Some(i) = line.find(&pat) else { return "" };
    let rest = &line[i + pat.len()..];
    &rest[..rest.find('"').unwrap_or(0)]
}

/// Seek-distance buckets, in cylinders.
const SEEK_BUCKETS: [(&str, u64, u64); 5] = [
    ("0", 0, 0),
    ("1-3", 1, 3),
    ("4-15", 4, 15),
    ("16-63", 16, 63),
    ("64+", 64, u64::MAX),
];

#[derive(Default)]
struct Acc {
    ops: u64,
    reads: u64,
    writes: u64,
    seeks: u64,
    faults: u64,
    overhead_ns: u64,
    seek_ns: u64,
    head_switch_ns: u64,
    rotation_ns: u64,
    transfer_ns: u64,
    seek_dist: [u64; SEEK_BUCKETS.len()],
}

impl Acc {
    fn busy_ns(&self) -> u64 {
        self.overhead_ns + self.seek_ns + self.head_switch_ns + self.rotation_ns + self.transfer_ns
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: vlstat TRACE.jsonl");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("vlstat: {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut scopes: BTreeMap<String, Acc> = BTreeMap::new();
    let mut total = 0u64;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        total += 1;
        let acc = scopes.entry(strval(line, "scope").to_string()).or_default();
        acc.ops += 1;
        match strval(line, "kind") {
            "read" => acc.reads += 1,
            "write" => acc.writes += 1,
            "seek" => acc.seeks += 1,
            "fault" => acc.faults += 1,
            _ => {}
        }
        acc.overhead_ns += num(line, "overhead_ns");
        acc.seek_ns += num(line, "seek_ns");
        acc.head_switch_ns += num(line, "head_switch_ns");
        acc.rotation_ns += num(line, "rotation_ns");
        acc.transfer_ns += num(line, "transfer_ns");
        let d = num(line, "seek_cyls");
        for (i, &(_, lo, hi)) in SEEK_BUCKETS.iter().enumerate() {
            if d >= lo && d <= hi {
                acc.seek_dist[i] += 1;
                break;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "vlstat: {total} events from {path}\n");

    let _ = writeln!(out, "## per-scope latency decomposition");
    let _ = writeln!(
        out,
        "{:<24} {:>8} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "scope", "ops", "mean ms", "SCSI", "seek", "switch", "rot", "xfer"
    );
    for (scope, a) in &scopes {
        let busy = a.busy_ns();
        let pct = |x: u64| {
            if busy == 0 {
                "-".to_string()
            } else {
                format!("{:.0}%", x as f64 / busy as f64 * 100.0)
            }
        };
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>10.3} {:>7} {:>7} {:>7} {:>7} {:>7}",
            if scope.is_empty() { "(none)" } else { scope },
            a.ops,
            busy as f64 / a.ops.max(1) as f64 / 1e6,
            pct(a.overhead_ns),
            pct(a.seek_ns),
            pct(a.head_switch_ns),
            pct(a.rotation_ns),
            pct(a.transfer_ns),
        );
    }

    let _ = writeln!(out, "\n## op mix (reads / writes / seeks / faults)");
    for (scope, a) in &scopes {
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>8} {:>8} {:>8}",
            if scope.is_empty() { "(none)" } else { scope },
            a.reads,
            a.writes,
            a.seeks,
            a.faults,
        );
    }

    let _ = writeln!(out, "\n## seek distance distribution (cylinders)");
    let _ = write!(out, "{:<24}", "scope");
    for &(name, _, _) in &SEEK_BUCKETS {
        let _ = write!(out, " {name:>8}");
    }
    out.push('\n');
    for (scope, a) in &scopes {
        let _ = write!(
            out,
            "{:<24}",
            if scope.is_empty() { "(none)" } else { scope }
        );
        for &c in &a.seek_dist {
            let _ = write!(out, " {c:>8}");
        }
        out.push('\n');
    }

    print!("{out}");
}
