//! Regenerate the paper's Figure 7.
fn main() {
    let mb = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    print!("{}", vlfs_bench::fig7::run(mb));
}
