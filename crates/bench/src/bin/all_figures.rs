//! Regenerate every table and figure in one run (used to refresh
//! EXPERIMENTS.md). Pass `--quick` for a fast smoke pass.
//!
//! Sections run in their fixed order on the main thread; within each
//! section the figure modules fan their independent simulation points
//! across a scoped thread pool (`vlfs_bench::par`), so stdout is
//! byte-identical to a fully sequential run. `--threads N` (or the
//! `VLFS_BENCH_THREADS` env var) pins the pool width; `--timing-json PATH`
//! writes the per-section wall-clock / simulated-event record that
//! `BENCH_all_figures.json` archives. The human-readable timing report
//! goes to stderr so it never perturbs the figure text.
//!
//! `--trace PATH` and `--metrics-json PATH` additionally run the traced
//! observability exhibit (see `vlfs_bench::obs`), exporting a JSONL event
//! trace (analysed by the `vlstat` binary) and a metrics document; figure
//! stdout is unaffected.

use vlfs_bench::{par, timing};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    if let Some(n) = flag_value("--threads").and_then(|v| v.parse::<usize>().ok()) {
        par::set_threads(n);
    }
    let timing_json = flag_value("--timing-json");
    let trace_path = flag_value("--trace");
    let metrics_path = flag_value("--metrics-json");

    let (w1, t2, files, mb, u8_, u9, b10, b11) = if quick {
        (120, 40, 200, 4, 400, 200, 1200, 800)
    } else {
        (400, 120, 1500, 10, 2000, 1000, 6000, 4000)
    };
    let mode = if quick { "quick" } else { "full" };
    let mut rec = timing::Recorder::new(mode, par::threads());

    macro_rules! section {
        ($name:literal, $body:expr) => {
            println!("{}", rec.time($name, || $body));
        };
    }
    section!("table1", vlfs_bench::table1::run());
    section!("fig1", vlfs_bench::fig1::run(w1));
    section!("fig2", vlfs_bench::fig2::run(t2));
    section!("fig6", vlfs_bench::fig6::run(files));
    section!("fig7", vlfs_bench::fig7::run(mb));
    section!("fig8", vlfs_bench::fig8::run(u8_));
    section!("table2", vlfs_bench::table2::run(u9));
    section!("fig9", vlfs_bench::fig9::run(u9));
    section!("fig10", vlfs_bench::fig10::run(b10));
    section!("fig11", vlfs_bench::fig11::run(b11));
    section!("appendix", vlfs_bench::appendix::run(if quick { 200 } else { 800 }));
    section!(
        "vlfs_preview",
        vlfs_bench::vlfs_preview::run(if quick { 150 } else { 600 })
    );

    // The observability exhibit runs only when an export path was given.
    // It writes the trace / metrics files and reports on stderr, so stdout
    // stays byte-identical whether or not tracing is enabled.
    if trace_path.is_some() || metrics_path.is_some() {
        let report = rec.time("obs", || {
            vlfs_bench::obs::run(
                if quick { 240 } else { 800 },
                trace_path.as_deref(),
                metrics_path.as_deref(),
            )
        });
        eprint!("{report}");
    }

    eprint!("{}", rec.report());
    if let Some(path) = timing_json {
        if let Err(e) = std::fs::write(&path, rec.to_json() + "\n") {
            eprintln!("# failed to write {path}: {e}");
        }
    }
}
