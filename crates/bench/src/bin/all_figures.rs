//! Regenerate every table and figure in one run (used to refresh
//! EXPERIMENTS.md). Pass `--quick` for a fast smoke pass.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (w1, t2, files, mb, u8_, u9, b10, b11) = if quick {
        (120, 40, 200, 4, 400, 200, 1200, 800)
    } else {
        (400, 120, 1500, 10, 2000, 1000, 6000, 4000)
    };
    println!("{}", vlfs_bench::table1::run());
    println!("{}", vlfs_bench::fig1::run(w1));
    println!("{}", vlfs_bench::fig2::run(t2));
    println!("{}", vlfs_bench::fig6::run(files));
    println!("{}", vlfs_bench::fig7::run(mb));
    println!("{}", vlfs_bench::fig8::run(u8_));
    println!("{}", vlfs_bench::table2::run(u9));
    println!("{}", vlfs_bench::fig9::run(u9));
    println!("{}", vlfs_bench::fig10::run(b10));
    println!("{}", vlfs_bench::fig11::run(b11));
    println!(
        "{}",
        vlfs_bench::appendix::run(if quick { 200 } else { 800 })
    );
    println!(
        "{}",
        vlfs_bench::vlfs_preview::run(if quick { 150 } else { 600 })
    );
}
