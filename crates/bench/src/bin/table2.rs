//! Regenerate the paper's Table 2.
fn main() {
    let updates = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    print!("{}", vlfs_bench::table2::run(updates));
}
