//! Regenerate the paper's Table 1.
fn main() {
    print!("{}", vlfs_bench::table1::run());
}
