//! Regenerate the Appendix A.1 block-size analysis.
fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);
    print!("{}", vlfs_bench::appendix::run(trials));
}
