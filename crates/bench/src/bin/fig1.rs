//! Regenerate the paper's Figure 1.
fn main() {
    let writes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    print!("{}", vlfs_bench::fig1::run(writes));
}
