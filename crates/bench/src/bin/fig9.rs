//! Regenerate the paper's Figure 9.
fn main() {
    let updates = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    print!("{}", vlfs_bench::fig9::run(updates));
}
