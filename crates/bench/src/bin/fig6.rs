//! Regenerate the paper's Figure 6.
fn main() {
    let files = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500);
    print!("{}", vlfs_bench::fig6::run(files));
}
