//! Regenerate the paper's Figure 8.
fn main() {
    let updates = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    print!("{}", vlfs_bench::fig8::run(updates));
}
