//! Ablations of the VLD's design choices (DESIGN.md §"Key design
//! decisions"). Each returns a small table; the `ablations` binary prints
//! them all.

use crate::format_table;
use crate::workload::{rng, BLOCK};
use disksim::{BlockDevice, CachePolicy, DiskSpec, SimClock};
use rand::Rng;
use vlog_core::{CompactorConfig, VictimPolicy, Vld, VldConfig};

fn filled_vld(cfg: VldConfig, frac: f64, seed: u64) -> (Vld, u64) {
    let mut vld = Vld::format(DiskSpec::st19101_sim(), SimClock::new(), cfg);
    let n = (vld.num_blocks() as f64 * frac) as u64;
    let buf = vec![0x55u8; BLOCK];
    for lb in 0..n {
        vld.write_block(lb, &buf).expect("fits");
    }
    // Punch holes so the landscape is realistic.
    let mut r = rng(seed);
    for _ in 0..n / 4 {
        let lb = r.gen_range(0..n);
        vld.write_block(lb, &buf).expect("fits");
    }
    (vld, n)
}

fn mean_update_ms(vld: &mut Vld, span: u64, updates: u64, seed: u64) -> f64 {
    let mut r = rng(seed);
    let buf = vec![0x66u8; BLOCK];
    let mut total = 0u64;
    for _ in 0..updates {
        let lb = r.gen_range(0..span);
        total += vld.write_block(lb, &buf).expect("fits").total_ns();
    }
    total as f64 / updates as f64 / 1e6
}

/// Ablation: one-directional cylinder sweep vs bidirectional greedy, at a
/// high utilisation where the head can get trapped.
pub fn sweep_direction(updates: u64) -> String {
    let mut rows = Vec::new();
    for (label, one_way) in [("one-way sweep", true), ("two-way greedy", false)] {
        let mut cfg = VldConfig::default();
        cfg.alloc.one_way_sweep = one_way;

        let (mut vld, n) = filled_vld(cfg, 0.85, 1);
        let ms = mean_update_ms(&mut vld, n, updates, 2);
        rows.push(vec![label.to_string(), format!("{ms:.3}")]);
    }
    format_table(
        "Ablation: cylinder sweep direction (85% full, random sync updates)",
        &["policy", "ms/update"],
        &rows,
    )
}

/// Ablation: threshold-fill (empty-track pool) vs pure greedy allocation,
/// with idle compaction available.
pub fn fill_policy(updates: u64) -> String {
    let mut rows = Vec::new();
    for (label, threshold_fill) in [("threshold fill", true), ("pure greedy", false)] {
        let mut cfg = VldConfig::default();
        cfg.alloc.threshold_fill = threshold_fill;
        let (mut vld, n) = filled_vld(cfg, 0.8, 3);
        vld.idle(20_000_000_000);
        let ms = mean_update_ms(&mut vld, n, updates, 4);
        rows.push(vec![label.to_string(), format!("{ms:.3}")]);
    }
    format_table(
        "Ablation: allocation policy after compaction (80% full)",
        &["policy", "ms/update"],
        &rows,
    )
}

/// Ablation: track-fill threshold sweep, end-to-end (the model behind
/// Figure 2 picks 75%; measure the real system).
pub fn fill_threshold(updates: u64) -> String {
    let mut rows = Vec::new();
    for pct in [25u32, 50, 75, 90] {
        let mut cfg = VldConfig::default();
        cfg.alloc.threshold = pct as f64 / 100.0;
        let (mut vld, n) = filled_vld(cfg, 0.7, 5);
        vld.idle(20_000_000_000);
        let ms = mean_update_ms(&mut vld, n, updates, 6);
        rows.push(vec![format!("{pct}%"), format!("{ms:.3}")]);
    }
    format_table(
        "Ablation: track-fill threshold (70% full, after compaction)",
        &["threshold", "ms/update"],
        &rows,
    )
}

/// Ablation: the aggressive whole-track read-ahead (§4.2's fix) vs the
/// stock conservative policy, on a sequential cold read of eager-written
/// data.
pub fn readahead_policy(file_blocks: u64) -> String {
    let mut rows = Vec::new();
    for (label, aggressive) in [("aggressive track", true), ("conservative", false)] {
        let cfg = VldConfig {
            aggressive_readahead: aggressive,
            ..VldConfig::default()
        };
        let clock = SimClock::new();
        let mut vld = Vld::format(DiskSpec::st19101_sim(), clock.clone(), cfg);
        // Write the file sequentially but with random think time between
        // writes: eager writing then scatters consecutive logical blocks
        // around each track, so physical addresses are non-monotonic within
        // a track — exactly the case §4.2 says defeats the stock read-ahead
        // algorithm.
        let buf = vec![0x42u8; BLOCK];
        let mut r = rng(7);
        let rev = vld.vlog().disk().spec().mech.revolution_ns();
        for lb in 0..file_blocks {
            clock.advance(r.gen_range(0..rev));
            vld.write_block(lb, &buf).expect("fits");
        }
        if !aggressive {
            // ensure policy really is conservative on the inner disk
            assert_eq!(vld.vlog().disk().cache_policy(), CachePolicy::Conservative);
        }
        let clock = vld.clock();
        let t0 = clock.now();
        let mut out = vec![0u8; BLOCK];
        for lb in 0..file_blocks {
            vld.read_block(lb, &mut out).expect("fits");
        }
        let secs = (clock.now() - t0) as f64 / 1e9;
        let mb = file_blocks as f64 * BLOCK as f64 / 1e6;
        rows.push(vec![label.to_string(), format!("{:.2}", mb / secs)]);
    }
    format_table(
        "Ablation: VLD read-ahead policy (sequential read of eager-written data, MB/s)",
        &["policy", "MB/s"],
        &rows,
    )
}

/// Ablation: compactor victim selection (paper: random; alternative:
/// least-utilised first), by empty tracks generated per second of idle.
pub fn victim_policy() -> String {
    let mut rows = Vec::new();
    for (label, policy) in [
        ("random (paper)", VictimPolicy::Random),
        ("least-utilised", VictimPolicy::LeastUtilized),
    ] {
        let cfg = VldConfig {
            compactor: CompactorConfig {
                policy,
                target_empty_tracks: u32::MAX,
                seed: 11,
            },
            ..VldConfig::default()
        };
        let (mut vld, _) = filled_vld(cfg, 0.6, 9);
        let before = vld.vlog().free_map().empty_tracks();
        let budget = 3_000_000_000u64; // 3 s of idle
        vld.idle(budget);
        let after = vld.vlog().free_map().empty_tracks();
        let moved = vld.compactor().stats().blocks_moved;
        rows.push(vec![
            label.to_string(),
            format!("{}", after.saturating_sub(before)),
            format!("{moved}"),
        ]);
    }
    format_table(
        "Ablation: compactor victim policy (3 s idle at 60% full)",
        &["policy", "tracks emptied", "blocks moved"],
        &rows,
    )
}

/// Ablation: recovery cost by boot path and checkpoint freshness.
pub fn recovery_paths(blocks: u64) -> String {
    let o = DiskSpec::st19101_sim().command_overhead_ns;
    let cfg = VldConfig::default();
    let build = || {
        let mut vld = Vld::format(DiskSpec::st19101_sim(), SimClock::new(), cfg);
        let buf = vec![1u8; BLOCK];
        for lb in 0..blocks {
            vld.write_block(lb, &buf).expect("fits");
        }
        vld
    };
    let mut rows = Vec::new();
    // Tail + fresh checkpoint.
    let mut vld = build();
    vld.idle(1_000_000_000); // checkpoint during idle
    vld.shutdown().expect("park");
    let (_, r) = Vld::recover(vld.crash(), o, cfg).expect("recover");
    rows.push(vec![
        "tail + fresh ckpt".into(),
        format!("{:.1}", r.service.total_ms()),
        r.sectors_traversed.to_string(),
        r.scanned_sectors.to_string(),
    ]);
    // Tail, stale checkpoint (larger window).
    let mut vld = build();
    vld.shutdown().expect("park");
    let (_, r) = Vld::recover(vld.crash(), o, cfg).expect("recover");
    rows.push(vec![
        "tail + stale ckpt".into(),
        format!("{:.1}", r.service.total_ms()),
        r.sectors_traversed.to_string(),
        r.scanned_sectors.to_string(),
    ]);
    // Scan fallback.
    let vld = build();
    let (_, r) = Vld::recover(vld.crash(), o, cfg).expect("recover");
    rows.push(vec![
        "scan fallback".into(),
        format!("{:.1}", r.service.total_ms()),
        r.sectors_traversed.to_string(),
        r.scanned_sectors.to_string(),
    ]);
    format_table(
        &format!("Ablation: recovery paths after {blocks} block writes"),
        &["boot path", "ms", "entries walked", "sectors scanned"],
        &rows,
    )
}

/// Run every ablation.
pub fn run_all() -> String {
    let mut out = String::new();
    out.push_str(&sweep_direction(300));
    out.push('\n');
    out.push_str(&fill_policy(300));
    out.push('\n');
    out.push_str(&fill_threshold(300));
    out.push('\n');
    out.push_str(&readahead_policy(512));
    out.push('\n');
    out.push_str(&victim_policy());
    out.push('\n');
    out.push_str(&recovery_paths(1500));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn readahead_ablation_shows_the_fix_matters() {
        let t = super::readahead_policy(256);
        // Parse the two MB/s numbers: aggressive must beat conservative.
        let nums: Vec<f64> = t
            .lines()
            .filter_map(|l| l.split_whitespace().last()?.parse().ok())
            .collect();
        assert!(nums.len() >= 2);
        assert!(
            nums[0] > nums[1],
            "aggressive ({}) must beat conservative ({})",
            nums[0],
            nums[1]
        );
    }

    #[test]
    fn recovery_tail_beats_scan() {
        let t = super::recovery_paths(300);
        let ms: Vec<f64> = t
            .lines()
            .skip(3)
            .filter_map(|l| {
                let cols: Vec<&str> = l.split_whitespace().collect();
                cols.iter().rev().nth(2)?.parse().ok()
            })
            .collect();
        assert!(ms.len() >= 3, "{t}");
        assert!(ms[0] < ms[2], "tail boot must beat scanning: {ms:?}");
    }
}
