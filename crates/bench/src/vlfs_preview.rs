//! Beyond the paper: measuring the §3.3 VLFS design the authors only
//! speculated about.
//!
//! §5.1: "we speculate that by integrating LFS with the virtual log, the
//! VLFS (which we have not implemented) should approximate the performance
//! of UFS on the VLD when we must write synchronously, while retaining the
//! benefits of LFS when asynchronous buffering is acceptable."
//!
//! The `vlog-core::VlfsLayer` implements that design (inode-map-only
//! virtual log; data and inodes eager-written with addresses held in the
//! file structures). This harness puts the speculation to the test:
//! random synchronous 4 KB updates on
//!
//! 1. UFS on the VLD (the paper's measured proxy),
//! 2. the VLFS layer directly (the speculated design),
//! 3. LFS with synchronous flushes (the case the paper says hurts).

use crate::format_table;
use crate::setup::{make_system, DevKind, DiskKind, FsKind};
use crate::workload::{make_file, rng, BLOCK};
use disksim::{Disk, SimClock};
use fscore::{FileSystem, HostModel};
use rand::Rng;
use vlog_core::{AllocConfig, VlfsLayer, INODE_DIRECT};

/// Mean random-sync-update latency on UFS-over-VLD at `frac` of capacity.
fn ufs_on_vld_ms(frac: f64, updates: u64, host: HostModel) -> f64 {
    let mut fs = make_system(FsKind::Ufs, DevKind::Vld, DiskKind::Seagate, host).expect("format");
    let usable = fs.free_blocks();
    let file_blocks = (usable as f64 * frac) as u64;
    let f = make_file(&mut fs, "t", file_blocks * BLOCK as u64).expect("fill");
    fs.set_sync_writes(true);
    let clock = fs.clock();
    let mut r = rng(0x77);
    let buf = vec![9u8; BLOCK];
    // Warm up.
    for _ in 0..updates / 2 {
        let b = r.gen_range(0..file_blocks);
        fs.write(f, b * BLOCK as u64, &buf).expect("update");
    }
    let t0 = clock.now();
    for _ in 0..updates {
        let b = r.gen_range(0..file_blocks);
        fs.write(f, b * BLOCK as u64, &buf).expect("update");
    }
    (clock.now() - t0) as f64 / updates as f64 / 1e6
}

/// The same workload on the VLFS layer: every update is data + inode +
/// inode-map, all eager, one commit.
fn vlfs_ms(frac: f64, updates: u64, host: HostModel) -> f64 {
    let spec = DiskKind::Seagate.spec();
    let host_overhead = spec.command_overhead_ns;
    let mut internal = spec;
    internal.command_overhead_ns = 0;
    let clock = SimClock::new();
    let mut v = VlfsLayer::format(
        Disk::new(internal, clock.clone()),
        AllocConfig::default(),
        64,
    );
    // One big file (like the paper's benchmark): fill to `frac` of the
    // log's capacity across several inodes (each holds INODE_DIRECT blocks).
    let capacity = v.log().num_blocks() / 2; // data blocks share with inodes
    let total_blocks = (capacity as f64 * frac) as u64;
    let per_file = INODE_DIRECT as u64;
    let files = total_blocks.div_ceil(per_file).max(1);
    let buf = vec![4u8; BLOCK];
    for ino in 0..files {
        v.create(ino).expect("inode free");
        let blocks = per_file.min(total_blocks - ino * per_file);
        for fb in 0..blocks {
            v.write_block(ino, fb, &buf).expect("fill");
        }
    }
    let mut r = rng(0x78);
    let charge = |clock: &SimClock| {
        clock.advance(host_overhead); // one host command per update
        host.charge(clock, 1);
    };
    for _ in 0..updates / 2 {
        let b = r.gen_range(0..total_blocks);
        charge(&clock);
        v.write_block(b / per_file, b % per_file, &buf)
            .expect("update");
    }
    let t0 = clock.now();
    for _ in 0..updates {
        let b = r.gen_range(0..total_blocks);
        charge(&clock);
        v.write_block(b / per_file, b % per_file, &buf)
            .expect("update");
    }
    (clock.now() - t0) as f64 / updates as f64 / 1e6
}

/// LFS with `sync` after every update — the paper's "frequent fsync" pain
/// case.
fn lfs_sync_ms(frac: f64, updates: u64, host: HostModel) -> f64 {
    let mut fs =
        make_system(FsKind::Lfs, DevKind::Regular, DiskKind::Seagate, host).expect("format");
    let usable = fs.free_blocks();
    let file_blocks = (usable as f64 * frac) as u64;
    let f = make_file(&mut fs, "t", file_blocks * BLOCK as u64).expect("fill");
    let clock = fs.clock();
    let mut r = rng(0x79);
    let buf = vec![9u8; BLOCK];
    for _ in 0..updates / 4 {
        let b = r.gen_range(0..file_blocks);
        fs.write(f, b * BLOCK as u64, &buf).expect("update");
        fs.sync().expect("sync");
    }
    let t0 = clock.now();
    for _ in 0..updates {
        let b = r.gen_range(0..file_blocks);
        fs.write(f, b * BLOCK as u64, &buf).expect("update");
        fs.sync().expect("sync");
    }
    (clock.now() - t0) as f64 / updates as f64 / 1e6
}

/// Run the comparison at a few utilisations.
pub fn run(updates: u64) -> String {
    let host = HostModel::sparcstation_10();
    let fracs = [0.3f64, 0.6];
    let points: Vec<(f64, u8)> = fracs
        .iter()
        .flat_map(|&frac| (0u8..3).map(move |sys| (frac, sys)))
        .collect();
    let cells = crate::par::pmap(points, |(frac, sys)| match sys {
        0 => ufs_on_vld_ms(frac, updates, host),
        1 => vlfs_ms(frac, updates, host),
        _ => lfs_sync_ms(frac, updates / 2, host),
    });
    let rows: Vec<Vec<String>> = fracs
        .iter()
        .zip(cells.chunks(3))
        .map(|(frac, ms)| {
            std::iter::once(format!("{:.0}%", frac * 100.0))
                .chain(ms.iter().map(|v| format!("{v:.2}")))
                .collect()
        })
        .collect();
    format_table(
        "VLFS (§3.3, implemented) vs the paper's proxies: random sync 4 KB updates (ms)",
        &["file frac", "UFS on VLD", "VLFS layer", "LFS + fsync"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_speculation_holds() {
        // "VLFS should approximate the performance of UFS on the VLD when
        // we must write synchronously" — and beat per-write-fsync LFS.
        let host = HostModel::instant();
        let ufs = ufs_on_vld_ms(0.4, 250, host);
        let vlfs = vlfs_ms(0.4, 250, host);
        let lfs = lfs_sync_ms(0.4, 120, host);
        assert!(
            vlfs < ufs * 2.5 && ufs < vlfs * 2.5,
            "VLFS {vlfs} ms should approximate UFS-on-VLD {ufs} ms"
        );
        assert!(
            vlfs < lfs,
            "VLFS {vlfs} ms should beat fsync-per-write LFS {lfs} ms"
        );
    }
}
