//! Figure 8: latency of random small synchronous updates vs disk
//! utilisation, with no idle time.
//!
//! Three systems, as in the paper: UFS on the regular disk (synchronous
//! update-in-place), UFS on the VLD (synchronous eager writing), and LFS on
//! the regular disk with its buffer cache treated as NVRAM (writes buffered
//! until the cache fills, then flushed — invoking the cleaner when free
//! segments run out). Utilisation is varied by the size of the single file
//! being updated and reported `df`-style.

use crate::format_table;
use crate::setup::{aged_system, AgedSpec, DevKind, DiskKind, FsKind};
use crate::workload::steady_state_update_ms;
use fscore::{FileSystem, FsResult, HostModel};

/// One measured point for one system.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// df-style utilisation after creating the file, in percent.
    pub util_pct: f64,
    /// Mean latency per 4 KB update, ms.
    pub latency_ms: f64,
}

/// System selector for this figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// UFS on the regular disk, synchronous writes.
    UfsRegular,
    /// UFS on the VLD, synchronous writes.
    UfsVld,
    /// LFS (NVRAM buffer) on the regular disk.
    LfsNvram,
}

impl System {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            System::UfsRegular => "UFS/Regular",
            System::UfsVld => "UFS/VLD",
            System::LfsNvram => "LFS+NVRAM",
        }
    }
}

/// Measure one point: file of `frac` of usable capacity, steady-state
/// random updates.
pub fn measure_point(
    system: System,
    disk: DiskKind,
    frac: f64,
    updates: u64,
    host: HostModel,
) -> FsResult<Point> {
    let (fs_kind, dev) = match system {
        System::UfsRegular => (FsKind::Ufs, DevKind::Regular),
        System::UfsVld => (FsKind::Ufs, DevKind::Vld),
        System::LfsNvram => (FsKind::Lfs, DevKind::Regular),
    };
    // No built-in warm-up: this figure's warm-up shares the measurement RNG
    // stream, so it stays on the measured side of the snapshot.
    let spec = AgedSpec {
        sync_writes: matches!(system, System::UfsRegular | System::UfsVld),
        ..AgedSpec::new(fs_kind, dev, disk, host, frac)
    };
    let (mut fs, f, file_blocks) = aged_system(&spec)?;
    let util_pct = fs.utilization() * 100.0;
    // LFS amortises its flush/clean cycles over ~1.5k-update periods, so it
    // needs several cycles of measurement to reach steady state; updates
    // there are mostly buffer hits and cost little real time to simulate.
    let updates = if system == System::LfsNvram {
        updates * 4
    } else {
        updates
    };
    let warmup = updates / 2;
    let latency_ms = steady_state_update_ms(
        &mut fs,
        f,
        file_blocks,
        warmup,
        updates,
        0xF18 + frac as u64,
    )?;
    Ok(Point {
        util_pct,
        latency_ms,
    })
}

/// Regenerate Figure 8.
pub fn run(updates: u64) -> String {
    let host = HostModel::sparcstation_10();
    let fracs = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let systems = [System::UfsRegular, System::UfsVld, System::LfsNvram];
    let points: Vec<(f64, System)> = fracs
        .iter()
        .flat_map(|&frac| systems.iter().map(move |&sys| (frac, sys)))
        .collect();
    let cells = crate::par::pmap(points, |(frac, sys)| {
        match measure_point(sys, DiskKind::Seagate, frac, updates, host) {
            Ok(p) => format!("{:.0}%:{:.2}", p.util_pct, p.latency_ms),
            Err(e) => format!("err:{e}"),
        }
    });
    let rows: Vec<Vec<String>> = fracs
        .iter()
        .zip(cells.chunks(systems.len()))
        .map(|(frac, row_cells)| {
            std::iter::once(format!("{:.0}%", frac * 100.0))
                .chain(row_cells.iter().cloned())
                .collect()
        })
        .collect();
    format_table(
        "Figure 8: random 4 KB sync-update latency (util%:ms) vs file size",
        &["file frac", "UFS/Regular", "UFS/VLD", "LFS+NVRAM"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vld_beats_update_in_place_by_a_lot() {
        let host = HostModel::instant();
        let reg = measure_point(System::UfsRegular, DiskKind::Seagate, 0.5, 400, host).unwrap();
        let vld = measure_point(System::UfsVld, DiskKind::Seagate, 0.5, 400, host).unwrap();
        assert!(
            vld.latency_ms * 3.0 < reg.latency_ms,
            "VLD {} ms vs regular {} ms",
            vld.latency_ms,
            reg.latency_ms
        );
    }

    #[test]
    fn lfs_is_fast_while_file_fits_in_nvram() {
        let host = HostModel::instant();
        // ~4 MB file < 6.1 MB NVRAM: almost every update is a buffer hit.
        let small = measure_point(System::LfsNvram, DiskKind::Seagate, 0.2, 2500, host).unwrap();
        // ~16 MB file >> NVRAM at high utilisation: cleaner dominates.
        let big = measure_point(System::LfsNvram, DiskKind::Seagate, 0.85, 2500, host).unwrap();
        assert!(big.latency_ms > 0.0, "big file must spill to disk");
        assert!(
            small.latency_ms * 4.0 < big.latency_ms,
            "small {} ms vs big {} ms",
            small.latency_ms,
            big.latency_ms
        );
    }

    #[test]
    fn vld_latency_rises_gently_with_utilization() {
        let host = HostModel::instant();
        let low = measure_point(System::UfsVld, DiskKind::Seagate, 0.2, 400, host).unwrap();
        let high = measure_point(System::UfsVld, DiskKind::Seagate, 0.85, 400, host).unwrap();
        assert!(
            high.latency_ms >= low.latency_ms * 0.8,
            "no catastrophic noise"
        );
        assert!(
            high.latency_ms < low.latency_ms + 3.0,
            "rise should be modest: {} -> {} ms",
            low.latency_ms,
            high.latency_ms
        );
    }
}
