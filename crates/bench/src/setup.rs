//! Construction of the paper's system combinations (its Figure 5): a file
//! system (UFS or LFS) over a device (regular disk or VLD) on a simulated
//! drive (HP97560 or Seagate ST19101), timed against a host model.

use disksim::{BlockDevice, DiskSpec, RegularDisk, SimClock};
use fscore::{FsResult, HostModel};
use lfs::{lfs_filesystem, LfsConfig};
use ufs::{Ufs, UfsConfig};
use vlog_core::{Vld, VldConfig};

/// Which simulated drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskKind {
    /// The 1990 HP97560 (36-cylinder simulated slice).
    Hp,
    /// The 1998 Seagate ST19101 (11-cylinder simulated slice).
    Seagate,
}

impl DiskKind {
    /// The drive's spec (paper-sized simulation slice).
    pub fn spec(self) -> DiskSpec {
        match self {
            DiskKind::Hp => DiskSpec::hp97560_sim(),
            DiskKind::Seagate => DiskSpec::st19101_sim(),
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            DiskKind::Hp => "HP97560",
            DiskKind::Seagate => "ST19101",
        }
    }
}

/// Which block device exports the drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevKind {
    /// Update-in-place (logical block = fixed physical location).
    Regular,
    /// The Virtual Log Disk (eager writing + virtual log).
    Vld,
}

impl DevKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            DevKind::Regular => "Regular",
            DevKind::Vld => "VLD",
        }
    }
}

/// Which file system runs on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsKind {
    /// Update-in-place UFS (synchronous metadata).
    Ufs,
    /// Log-structured stack (file layer over the LLD).
    Lfs,
}

impl FsKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            FsKind::Ufs => "UFS",
            FsKind::Lfs => "LFS",
        }
    }
}

/// Build a raw block device of the given kind on a fresh clock.
pub fn make_device(dev: DevKind, disk: DiskKind) -> Box<dyn BlockDevice> {
    let clock = SimClock::new();
    match dev {
        DevKind::Regular => Box::new(RegularDisk::new(disk.spec(), clock, 4096)),
        DevKind::Vld => Box::new(Vld::format(disk.spec(), clock, VldConfig::default())),
    }
}

/// Build one of the paper's four system combinations.
pub fn make_system(fs: FsKind, dev: DevKind, disk: DiskKind, host: HostModel) -> FsResult<Ufs> {
    let device = make_device(dev, disk);
    match fs {
        FsKind::Ufs => Ufs::format(device, host, UfsConfig::default()),
        FsKind::Lfs => lfs_filesystem(device, host, LfsConfig::default()),
    }
}

/// A configuration label like "UFS on VLD".
pub fn combo_label(fs: FsKind, dev: DevKind) -> String {
    format!("{} on {}", fs.label(), dev.label())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscore::FileSystem;

    #[test]
    fn all_four_combinations_construct_and_work() {
        for fs_kind in [FsKind::Ufs, FsKind::Lfs] {
            for dev_kind in [DevKind::Regular, DevKind::Vld] {
                let mut fs =
                    make_system(fs_kind, dev_kind, DiskKind::Seagate, HostModel::instant())
                        .unwrap_or_else(|e| {
                            panic!("{}: {e}", combo_label(fs_kind, dev_kind));
                        });
                let f = fs.create("probe").unwrap();
                fs.write(f, 0, &vec![7u8; 8192]).unwrap();
                fs.sync().unwrap();
                fs.drop_caches();
                let mut out = vec![0u8; 8192];
                assert_eq!(fs.read(f, 0, &mut out).unwrap(), 8192);
                assert!(
                    out.iter().all(|&b| b == 7),
                    "{}",
                    combo_label(fs_kind, dev_kind)
                );
            }
        }
    }

    #[test]
    fn hp_systems_construct() {
        let mut fs = make_system(
            FsKind::Ufs,
            DevKind::Vld,
            DiskKind::Hp,
            HostModel::sparcstation_10(),
        )
        .unwrap();
        let f = fs.create("x").unwrap();
        fs.write(f, 0, b"data").unwrap();
        assert!(fs.clock().now() > 0);
    }
}
