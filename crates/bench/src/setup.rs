//! Construction of the paper's system combinations (its Figure 5): a file
//! system (UFS or LFS) over a device (regular disk or VLD) on a simulated
//! drive (HP97560 or Seagate ST19101), timed against a host model — plus
//! the *aged-system cache*: every figure cell that starts from "system with
//! an aged file at some utilisation" describes that state as an
//! [`AgedSpec`], and [`aged_system`] builds each distinct state once,
//! snapshots it ([`ufs::UfsSnapshot`]), and hands every cell an independent
//! copy-on-write fork instead of re-running the setup workload per cell.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use disksim::{BlockDevice, DiskSpec, RegularDisk, SimClock};
use fscore::{FileId, FileSystem, FsResult, HostModel};
use lfs::{lfs_filesystem, LfsConfig};
use ufs::{Ufs, UfsConfig, UfsSnapshot};
use vlog_core::{Vld, VldConfig};

use crate::workload::{make_file, BLOCK};

/// Which simulated drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskKind {
    /// The 1990 HP97560 (36-cylinder simulated slice).
    Hp,
    /// The 1998 Seagate ST19101 (11-cylinder simulated slice).
    Seagate,
}

impl DiskKind {
    /// The drive's spec (paper-sized simulation slice).
    pub fn spec(self) -> DiskSpec {
        match self {
            DiskKind::Hp => DiskSpec::hp97560_sim(),
            DiskKind::Seagate => DiskSpec::st19101_sim(),
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            DiskKind::Hp => "HP97560",
            DiskKind::Seagate => "ST19101",
        }
    }
}

/// Which block device exports the drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DevKind {
    /// Update-in-place (logical block = fixed physical location).
    Regular,
    /// The Virtual Log Disk (eager writing + virtual log).
    Vld,
}

impl DevKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            DevKind::Regular => "Regular",
            DevKind::Vld => "VLD",
        }
    }
}

/// Which file system runs on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsKind {
    /// Update-in-place UFS (synchronous metadata).
    Ufs,
    /// Log-structured stack (file layer over the LLD).
    Lfs,
}

impl FsKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            FsKind::Ufs => "UFS",
            FsKind::Lfs => "LFS",
        }
    }
}

/// Build a raw block device of the given kind on a fresh clock.
pub fn make_device(dev: DevKind, disk: DiskKind) -> Box<dyn BlockDevice> {
    let clock = SimClock::new();
    match dev {
        DevKind::Regular => Box::new(RegularDisk::new(disk.spec(), clock, 4096)),
        DevKind::Vld => Box::new(Vld::format(disk.spec(), clock, VldConfig::default())),
    }
}

/// Build one of the paper's four system combinations.
pub fn make_system(fs: FsKind, dev: DevKind, disk: DiskKind, host: HostModel) -> FsResult<Ufs> {
    let device = make_device(dev, disk);
    match fs {
        FsKind::Ufs => Ufs::format(device, host, UfsConfig::default()),
        FsKind::Lfs => lfs_filesystem(device, host, LfsConfig::default()),
    }
}

/// A configuration label like "UFS on VLD".
pub fn combo_label(fs: FsKind, dev: DevKind) -> String {
    format!("{} on {}", fs.label(), dev.label())
}

/// A complete description of the aged state a figure cell starts from: the
/// system combination, the single target file's size as a fraction of
/// usable capacity, whether writes are synchronous, and any deterministic
/// warm-up applied before measurement begins. Two cells with equal specs
/// start from byte-identical states, which is what lets [`aged_system`]
/// build the state once and fork it per cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgedSpec {
    /// File system on top.
    pub fs: FsKind,
    /// Block device in the middle.
    pub dev: DevKind,
    /// Simulated drive at the bottom.
    pub disk: DiskKind,
    /// Host CPU cost model.
    pub host: HostModel,
    /// Target-file size as a fraction of usable capacity.
    pub file_frac: f64,
    /// Flip [`FileSystem::set_sync_writes`] before any warm-up.
    pub sync_writes: bool,
    /// Random 4 KB updates (seed 7) applied after file creation; 0 skips
    /// the warm-up (figures whose warm-up shares the measurement RNG
    /// stream keep it on the measured side of the snapshot).
    pub warmup_blocks: u64,
    /// Override the VLD compactor's empty-track pool target (Figure 9's
    /// measured-after-compaction footnote). Ignored on a regular disk.
    pub vld_target_empty_tracks: Option<u32>,
}

impl AgedSpec {
    /// The common shape: default device configs, no warm-up.
    pub fn new(fs: FsKind, dev: DevKind, disk: DiskKind, host: HostModel, file_frac: f64) -> Self {
        Self {
            fs,
            dev,
            disk,
            host,
            file_frac,
            sync_writes: false,
            warmup_blocks: 0,
            vld_target_empty_tracks: None,
        }
    }

    /// Content key for the snapshot cache (the fraction keyed by its bits —
    /// specs compare equal exactly when they build equal states).
    fn key(&self) -> AgedKey {
        (
            self.fs,
            self.dev,
            self.disk,
            self.host,
            self.file_frac.to_bits(),
            self.sync_writes,
            self.warmup_blocks,
            self.vld_target_empty_tracks,
        )
    }
}

type AgedKey = (
    FsKind,
    DevKind,
    DiskKind,
    HostModel,
    u64,
    bool,
    u64,
    Option<u32>,
);

/// A cached aged build: the snapshot plus the handle and size of the
/// target file inside it (both identical in every fork by construction).
struct CachedAged {
    snap: UfsSnapshot,
    file: FileId,
    file_blocks: u64,
}

/// Per-key build cells: concurrent workers asking for the same key block on
/// one `OnceLock` while the first builds (the build is deterministic, so it
/// does not matter which worker wins). `None` records a state whose device
/// stack cannot snapshot — those keys fall back to rebuilding per cell.
struct CacheEntry {
    cell: Arc<OnceLock<Option<CachedAged>>>,
    last_use: u64,
}

/// The aged cache holds at most this many snapshots. A snapshot retains
/// the aged system's full media image and buffer cache (tens of MB), and
/// figures like Figure 8 mint a fresh single-use key per cell — an
/// unbounded cache would pin hundreds of MB of dead state for the rest of
/// the run, whose live heap chunks measurably slow every later build. The
/// cap only needs to cover the largest genuinely-shared working set
/// (Table 2 + Figure 9 reuse six keys across sections); eviction can never
/// change results, only cost a rebuild on a later miss.
const AGED_CACHE_CAP: usize = 8;

struct AgedCache {
    map: HashMap<AgedKey, CacheEntry>,
    tick: u64,
}

fn cache() -> &'static Mutex<AgedCache> {
    static CACHE: OnceLock<Mutex<AgedCache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(AgedCache {
            map: HashMap::new(),
            tick: 0,
        })
    })
}

/// Fetch (or insert) the build cell for `key`, bumping its LRU stamp and
/// evicting the stalest *initialised* entry if the cache is over
/// [`AGED_CACHE_CAP`]. In-flight cells (some worker is still building) are
/// never evicted; a worker already holding an evicted cell's `Arc` simply
/// finishes with it.
fn cache_cell(key: AgedKey) -> Arc<OnceLock<Option<CachedAged>>> {
    let mut c = cache().lock().expect("aged cache poisoned");
    c.tick += 1;
    let tick = c.tick;
    if !c.map.contains_key(&key) && c.map.len() >= AGED_CACHE_CAP {
        let evict = c
            .map
            .iter()
            .filter(|(_, e)| e.cell.get().is_some())
            .min_by_key(|(_, e)| e.last_use)
            .map(|(k, _)| *k);
        if let Some(k) = evict {
            c.map.remove(&k);
        }
    }
    let entry = c.map.entry(key).or_insert_with(|| CacheEntry {
        cell: Arc::default(),
        last_use: tick,
    });
    entry.last_use = tick;
    Arc::clone(&entry.cell)
}

/// Snapshot forking is on by default. `VLFS_SNAPSHOT=0` — or reference mode
/// (`VLFS_REFERENCE=1`), which selects every pre-optimisation oracle path —
/// rebuilds each cell from scratch instead; the CI identity gate diffs the
/// two modes byte-for-byte. Read once per process.
pub fn snapshots_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        !disksim::reference_mode()
            && std::env::var("VLFS_SNAPSHOT").map_or(true, |v| v != "0")
    })
}

/// Build the aged state described by `spec` from scratch, bypassing the
/// snapshot cache. This is the per-cell path when snapshots are disabled,
/// and the oracle the fork-identity tests compare against.
pub fn build_aged(spec: &AgedSpec) -> FsResult<(Ufs, FileId, u64)> {
    let mut fs = match (spec.dev, spec.vld_target_empty_tracks) {
        (DevKind::Vld, Some(target)) => {
            let mut cfg = VldConfig::default();
            cfg.compactor.target_empty_tracks = target;
            let vld = Vld::format(spec.disk.spec(), SimClock::new(), cfg);
            match spec.fs {
                FsKind::Ufs => Ufs::format(Box::new(vld), spec.host, UfsConfig::default())?,
                FsKind::Lfs => lfs_filesystem(Box::new(vld), spec.host, LfsConfig::default())?,
            }
        }
        _ => make_system(spec.fs, spec.dev, spec.disk, spec.host)?,
    };
    let usable = fs.free_blocks();
    let file_blocks = (usable as f64 * spec.file_frac) as u64;
    let f = make_file(&mut fs, "target", file_blocks * BLOCK as u64)?;
    if spec.sync_writes {
        fs.set_sync_writes(true);
    }
    if spec.warmup_blocks > 0 {
        let w = spec.warmup_blocks;
        crate::fig10::burst_idle_bench(&mut fs, f, file_blocks, w, 0, w, 7)?;
    }
    Ok((fs, f, file_blocks))
}

/// An independent system in the aged state described by `spec`, plus the
/// target file's handle and length in blocks.
///
/// The first request for a given spec builds the state and caches a
/// [`UfsSnapshot`]; every request (including the first) is then served by
/// forking the snapshot in O(metadata) — media tracks, map pages and cache
/// payloads stay shared copy-on-write until a fork writes them. Event
/// accounting is rebuild-equivalent: the cached build's simulation events
/// are subtracted once and re-credited by every fork, so per-figure event
/// totals match a mode where each cell rebuilds from scratch.
///
/// With snapshots disabled ([`snapshots_enabled`]) every call is a plain
/// from-scratch build — the oracle the CI identity gate compares against.
pub fn aged_system(spec: &AgedSpec) -> FsResult<(Ufs, FileId, u64)> {
    if !snapshots_enabled() {
        return build_aged(spec);
    }
    let cell = cache_cell(spec.key());
    let cached = cell.get_or_init(|| {
        let (fs, file, file_blocks) = build_aged(spec).ok()?;
        let snap = fs.snapshot()?;
        // The cached build's events are subtracted once here and re-credited
        // by every fork below, so event totals match rebuild-per-cell mode.
        disksim::clock::sub_events(snap.local_events());
        Some(CachedAged {
            snap,
            file,
            file_blocks,
        })
    });
    match cached {
        Some(c) => {
            disksim::clock::add_events(c.snap.local_events());
            Ok((c.snap.restore(), c.file, c.file_blocks))
        }
        // Build failed or the stack cannot snapshot: rebuild per cell (and
        // surface the per-cell error, if any).
        None => build_aged(spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscore::FileSystem;

    #[test]
    fn all_four_combinations_construct_and_work() {
        for fs_kind in [FsKind::Ufs, FsKind::Lfs] {
            for dev_kind in [DevKind::Regular, DevKind::Vld] {
                let mut fs =
                    make_system(fs_kind, dev_kind, DiskKind::Seagate, HostModel::instant())
                        .unwrap_or_else(|e| {
                            panic!("{}: {e}", combo_label(fs_kind, dev_kind));
                        });
                let f = fs.create("probe").unwrap();
                fs.write(f, 0, &vec![7u8; 8192]).unwrap();
                fs.sync().unwrap();
                fs.drop_caches();
                let mut out = vec![0u8; 8192];
                assert_eq!(fs.read(f, 0, &mut out).unwrap(), 8192);
                assert!(
                    out.iter().all(|&b| b == 7),
                    "{}",
                    combo_label(fs_kind, dev_kind)
                );
            }
        }
    }

    #[test]
    fn hp_systems_construct() {
        let mut fs = make_system(
            FsKind::Ufs,
            DevKind::Vld,
            DiskKind::Hp,
            HostModel::sparcstation_10(),
        )
        .unwrap();
        let f = fs.create("x").unwrap();
        fs.write(f, 0, b"data").unwrap();
        assert!(fs.clock().now() > 0);
    }
}
