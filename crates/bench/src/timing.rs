//! Self-timing for the benchmark harness.
//!
//! Every `all_figures` section is timed in wall-clock terms, and the
//! process-wide simulated-event counter ([`disksim::clock::events`]) is
//! sampled around each section, giving a simulated-events-per-second
//! throughput figure for the simulator itself. The report goes to stderr
//! (stdout carries the figures and must stay byte-identical across
//! sequential and parallel runs) and, on request, to a JSON file — the
//! repo's `BENCH_all_figures.json` perf-trajectory artifact.

use std::fmt::Write as _;
use std::time::Instant;

/// Timing for one named section of a benchmark run.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section name (e.g. "fig10").
    pub name: String,
    /// Wall-clock milliseconds spent in the section.
    pub wall_ms: f64,
    /// Simulated events (clock advances) executed during the section.
    pub sim_events: u64,
}

/// Accumulates per-section timings for one benchmark process.
#[derive(Debug)]
pub struct Recorder {
    /// Run mode label ("quick" / "full").
    pub mode: String,
    /// Worker threads the parallel harness was allowed.
    pub threads: usize,
    started: Instant,
    events_at_start: u64,
    sections: Vec<Section>,
}

impl Recorder {
    /// Start recording a run.
    pub fn new(mode: &str, threads: usize) -> Self {
        Self {
            mode: mode.to_string(),
            threads,
            started: Instant::now(),
            events_at_start: disksim::clock::events(),
            sections: Vec::new(),
        }
    }

    /// Run `f`, recording its wall time and simulated-event delta under
    /// `name`, and pass its output through.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let ev0 = disksim::clock::events();
        let t0 = Instant::now();
        let out = f();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.sections.push(Section {
            name: name.to_string(),
            wall_ms,
            sim_events: disksim::clock::events() - ev0,
        });
        out
    }

    /// Total wall-clock milliseconds since the recorder was created.
    pub fn total_wall_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Total simulated events since the recorder was created.
    pub fn total_events(&self) -> u64 {
        disksim::clock::events() - self.events_at_start
    }

    /// Recorded sections, in execution order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Human-readable report for stderr.
    pub fn report(&self) -> String {
        let mut s = String::new();
        let total_ms = self.total_wall_ms();
        let events = self.total_events();
        let _ = writeln!(
            s,
            "# timing ({} mode, {} thread{}):",
            self.mode,
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        );
        for sec in &self.sections {
            let _ = writeln!(
                s,
                "#   {:<14} {:>9.1} ms  {:>12} events",
                sec.name, sec.wall_ms, sec.sim_events
            );
        }
        let _ = writeln!(
            s,
            "#   {:<14} {:>9.1} ms  {:>12} events  ({:.2} M events/s)",
            "total",
            total_ms,
            events,
            events as f64 / (total_ms / 1e3) / 1e6
        );
        s
    }

    /// JSON object describing this run (no trailing newline). Hand-rolled:
    /// the workspace builds offline, so no serde — the schema is flat
    /// enough that escaping section names (always ASCII identifiers here)
    /// is not required.
    pub fn to_json(&self) -> String {
        let total_ms = self.total_wall_ms();
        let events = self.total_events();
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"mode\":\"{}\",\"threads\":{},\"wall_ms\":{:.1},\"sim_events\":{},\"events_per_sec\":{:.0},\"sections\":[",
            self.mode,
            self.threads,
            total_ms,
            events,
            events as f64 / (total_ms / 1e3)
        );
        for (i, sec) in self.sections.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"wall_ms\":{:.1},\"sim_events\":{}}}",
                sec.name, sec.wall_ms, sec.sim_events
            );
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_sections_and_passes_output_through() {
        let mut r = Recorder::new("quick", 2);
        let v = r.time("alpha", || {
            let c = disksim::SimClock::new();
            c.advance(10);
            c.advance(10);
            42u32
        });
        assert_eq!(v, 42);
        assert_eq!(r.sections().len(), 1);
        assert_eq!(r.sections()[0].name, "alpha");
        assert!(r.sections()[0].sim_events >= 2);
        assert!(r.total_wall_ms() >= r.sections()[0].wall_ms);
    }

    #[test]
    fn json_is_minimally_wellformed() {
        let mut r = Recorder::new("full", 8);
        r.time("fig1", || ());
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"mode\":\"full\""));
        assert!(j.contains("\"name\":\"fig1\""));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
    }
}
