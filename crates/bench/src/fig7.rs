//! Figure 7: large-file performance. Sequentially write a 10 MB file, read
//! it back sequentially, rewrite it randomly (asynchronously, plus
//! synchronously on the UFS runs), read it sequentially again, and read it
//! randomly. Bandwidth in MB/s per phase, on all four systems.

use crate::format_table;
use crate::setup::{combo_label, make_system, DevKind, DiskKind, FsKind};
use crate::workload::{mb_per_s, rng, timed, BLOCK};
use fscore::{FileSystem, FsResult, HostModel};
use rand::seq::SliceRandom;

/// Per-phase bandwidths (MB/s).
#[derive(Debug, Clone, Copy)]
pub struct LargeFileResult {
    /// Sequential write.
    pub seq_write: f64,
    /// Sequential (cold) read.
    pub seq_read: f64,
    /// Random overwrite, asynchronous.
    pub rand_write_async: f64,
    /// Random overwrite, synchronous (UFS only; 0 otherwise).
    pub rand_write_sync: f64,
    /// Sequential read after the random writes.
    pub seq_read_again: f64,
    /// Random read.
    pub rand_read: f64,
}

/// Run the benchmark on one system with a file of `mb` megabytes.
pub fn measure(
    fs_kind: FsKind,
    dev: DevKind,
    disk: DiskKind,
    mb: u64,
    host: HostModel,
) -> FsResult<LargeFileResult> {
    let mut fs = make_system(fs_kind, dev, disk, host)?;
    let clock = fs.clock();
    let bytes = mb << 20;
    let nblocks = bytes / BLOCK as u64;
    let f = fs.create("big")?;
    let chunk = vec![0x3Cu8; 64 * BLOCK];

    let seq_write_ns = timed(&clock, || {
        let mut off = 0u64;
        while off < bytes {
            fs.write(f, off, &chunk)?;
            off += chunk.len() as u64;
        }
        fs.sync()
    })?;
    fs.drop_caches();

    let mut out = vec![0u8; 64 * BLOCK];
    let seq_read_ns = timed(&clock, || {
        let mut off = 0u64;
        while off < bytes {
            fs.read(f, off, &mut out)?;
            off += out.len() as u64;
        }
        Ok(())
    })?;
    fs.drop_caches();

    // Random writes touch every block once, in random order (so exactly
    // `bytes` are written, as in the paper's "write 10 MB randomly").
    let mut order: Vec<u64> = (0..nblocks).collect();
    order.shuffle(&mut rng(0x716));
    let one = vec![0x77u8; BLOCK];
    let rand_write_async_ns = timed(&clock, || {
        for &b in &order {
            fs.write(f, b * BLOCK as u64, &one)?;
        }
        fs.sync()
    })?;
    fs.drop_caches();

    let rand_write_sync_ns = if fs_kind == FsKind::Ufs {
        fs.set_sync_writes(true);
        order.shuffle(&mut rng(0x717));
        let ns = timed(&clock, || {
            for &b in &order {
                fs.write(f, b * BLOCK as u64, &one)?;
            }
            Ok(())
        })?;
        fs.set_sync_writes(false);
        Some(ns)
    } else {
        None
    };
    fs.drop_caches();

    let seq_read_again_ns = timed(&clock, || {
        let mut off = 0u64;
        while off < bytes {
            fs.read(f, off, &mut out)?;
            off += out.len() as u64;
        }
        Ok(())
    })?;
    fs.drop_caches();

    order.shuffle(&mut rng(0x718));
    let mut one_out = vec![0u8; BLOCK];
    let rand_read_ns = timed(&clock, || {
        for &b in &order {
            fs.read(f, b * BLOCK as u64, &mut one_out)?;
        }
        Ok(())
    })?;

    Ok(LargeFileResult {
        seq_write: mb_per_s(bytes, seq_write_ns),
        seq_read: mb_per_s(bytes, seq_read_ns),
        rand_write_async: mb_per_s(bytes, rand_write_async_ns),
        rand_write_sync: rand_write_sync_ns
            .map(|ns| mb_per_s(bytes, ns))
            .unwrap_or(0.0),
        seq_read_again: mb_per_s(bytes, seq_read_again_ns),
        rand_read: mb_per_s(bytes, rand_read_ns),
    })
}

/// Regenerate Figure 7.
pub fn run(mb: u64) -> String {
    let host = HostModel::sparcstation_10();
    let combos = [
        (FsKind::Ufs, DevKind::Regular),
        (FsKind::Ufs, DevKind::Vld),
        (FsKind::Lfs, DevKind::Regular),
        (FsKind::Lfs, DevKind::Vld),
    ];
    let rows: Vec<Vec<String>> = crate::par::pmap(combos.to_vec(), |(fk, dk)| {
        {
            let r = measure(fk, dk, DiskKind::Seagate, mb, host)
                .unwrap_or_else(|e| panic!("{}: {e}", combo_label(fk, dk)));
            vec![
                combo_label(fk, dk),
                format!("{:.2}", r.seq_write),
                format!("{:.2}", r.seq_read),
                format!("{:.2}", r.rand_write_async),
                if r.rand_write_sync > 0.0 {
                    format!("{:.2}", r.rand_write_sync)
                } else {
                    "-".into()
                },
                format!("{:.2}", r.seq_read_again),
                format!("{:.2}", r.rand_read),
            ]
        }
    });
    format_table(
        &format!("Figure 7: large-file bandwidth (MB/s), {mb} MB file"),
        &[
            "system",
            "seq wr",
            "seq rd",
            "rnd wr(a)",
            "rnd wr(s)",
            "seq rd 2",
            "rnd rd",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(fs: FsKind, dev: DevKind) -> LargeFileResult {
        measure(fs, dev, DiskKind::Seagate, 4, HostModel::instant()).unwrap()
    }

    #[test]
    fn sync_random_writes_dominate_on_vld() {
        let reg = quick(FsKind::Ufs, DevKind::Regular);
        let vld = quick(FsKind::Ufs, DevKind::Vld);
        // The paper's headline: synchronous random writes are far faster on
        // the VLD.
        assert!(
            vld.rand_write_sync > 3.0 * reg.rand_write_sync,
            "VLD {} vs regular {}",
            vld.rand_write_sync,
            reg.rand_write_sync
        );
    }

    #[test]
    fn sequential_read_after_random_write_degrades_on_log_systems() {
        let vld = quick(FsKind::Ufs, DevKind::Vld);
        // Eager writing destroys spatial locality: re-read slower than the
        // original sequential read.
        assert!(
            vld.seq_read_again < vld.seq_read,
            "again {} vs first {}",
            vld.seq_read_again,
            vld.seq_read
        );
    }

    #[test]
    fn all_phases_produce_positive_bandwidth() {
        for (fk, dk) in [
            (FsKind::Ufs, DevKind::Regular),
            (FsKind::Lfs, DevKind::Regular),
            (FsKind::Lfs, DevKind::Vld),
        ] {
            let r = quick(fk, dk);
            assert!(r.seq_write > 0.0 && r.seq_read > 0.0);
            assert!(r.rand_write_async > 0.0 && r.seq_read_again > 0.0);
            assert!(r.rand_read > 0.0);
        }
    }
}
