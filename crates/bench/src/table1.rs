//! Table 1: parameters of the HP97560 and Seagate ST19101 disks.

use crate::format_table;
use disksim::{ns_to_ms, DiskSpec};

/// Regenerate Table 1 from the specs the simulator actually uses.
pub fn run() -> String {
    let hp = DiskSpec::hp97560_sim();
    let st = DiskSpec::st19101_sim();
    let row = |name: &str, f: &dyn Fn(&DiskSpec) -> String| vec![name.to_string(), f(&hp), f(&st)];
    let rows = vec![
        row("Sectors/Track (n)", &|d| {
            d.geometry.sectors_per_track(0).expect("cyl 0").to_string()
        }),
        row("Tracks/Cyl (t)", &|d| {
            d.geometry.tracks_per_cylinder().to_string()
        }),
        row("Head Switch (s)", &|d| {
            format!("{:.1} ms", ns_to_ms(d.mech.head_switch_ns))
        }),
        row("Minimum Seek", &|d| {
            format!("{:.1} ms", ns_to_ms(d.mech.seek_ns(1)))
        }),
        row("Rotation (RPM)", &|d| d.mech.rpm.to_string()),
        row("SCSI Overhead (o)", &|d| {
            format!("{:.1} ms", ns_to_ms(d.command_overhead_ns))
        }),
        row("Half Rotation", &|d| {
            format!("{:.1} ms", ns_to_ms(d.half_rotation_ns()))
        }),
        row("Sim. Cylinders", &|d| d.geometry.cylinders().to_string()),
        row("Sim. Capacity", &|d| {
            format!("{:.1} MB", d.geometry.capacity_bytes() as f64 / 1e6)
        }),
    ];
    format_table(
        "Table 1: disk parameters",
        &["Parameter", "HP97560", "ST19101"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_paper_values() {
        let t = super::run();
        for needle in ["72", "256", "19", "16", "4002", "10000", "2.3 ms", "0.1 ms"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }
}
