//! Fork-vs-rebuild identity properties for the aged-system snapshot cache.
//!
//! The snapshot engine's contract is that a fork of a cached aged build is
//! *indistinguishable* from a from-scratch rebuild of the same
//! [`AgedSpec`]: same measured latencies (bit-for-bit), same virtual clock,
//! same logical media contents, same disk statistics — across all four
//! FS/device stacks, under fault injection, and regardless of how many
//! workers fork concurrently. These tests pin that contract; the CI figure
//! gate (`VLFS_SNAPSHOT=0` diff) checks the same property end-to-end.

use disksim::fault::content_hash;
use disksim::{par, FaultDisk, FaultPlan, RegularDisk, SimClock};
use fscore::{FileId, FileSystem, HostModel};
use ufs::{Ufs, UfsConfig};
use vlfs_bench::setup::{aged_system, build_aged, AgedSpec, DevKind, DiskKind, FsKind};
use vlfs_bench::workload::{make_file, steady_state_update_ms, BLOCK};

/// A behavioural fingerprint of a system: everything a figure cell could
/// observe. Two systems in byte-identical states produce equal
/// fingerprints; any state divergence (cache contents, media bytes, layout
/// affecting seek times, clock skew) shows up in at least one field.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    /// Measured workload latency, exact bits.
    latency_bits: u64,
    /// Virtual clock after the workload.
    clock_ns: u64,
    /// FNV hash of the target file's full contents, read back cold.
    file_hash: u64,
    /// Device statistics after the workload.
    disk_stats: String,
}

/// Run the standard measured workload on `fs` and fingerprint the result.
fn fingerprint(mut fs: Ufs, f: FileId, file_blocks: u64, updates: u64) -> Fingerprint {
    let ms = steady_state_update_ms(&mut fs, f, file_blocks, updates, updates, 0xF18)
        .expect("measured workload");
    fs.drop_caches();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = vec![0u8; 16 * BLOCK];
    let mut off = 0u64;
    let total = file_blocks * BLOCK as u64;
    while off < total {
        let n = fs.read(f, off, &mut buf).expect("read back");
        assert!(n > 0, "short read at {off}");
        for &b in &buf[..n] {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        off += n as u64;
    }
    Fingerprint {
        latency_bits: ms.to_bits(),
        clock_ns: fs.clock().now(),
        file_hash: h,
        disk_stats: format!("{:?}", fs.device().disk_stats()),
    }
}

fn spec(fs: FsKind, dev: DevKind, disk: DiskKind) -> AgedSpec {
    AgedSpec {
        sync_writes: matches!(fs, FsKind::Ufs),
        ..AgedSpec::new(fs, dev, disk, HostModel::sparcstation_10(), 0.25)
    }
}

/// Fork and rebuild agree bit-for-bit on every stack of the paper's
/// Figure 5 matrix, on both simulated drives.
#[test]
fn fork_matches_rebuild_across_all_stacks() {
    for (fs, dev, disk) in [
        (FsKind::Ufs, DevKind::Regular, DiskKind::Seagate),
        (FsKind::Ufs, DevKind::Vld, DiskKind::Seagate),
        (FsKind::Lfs, DevKind::Regular, DiskKind::Seagate),
        (FsKind::Lfs, DevKind::Vld, DiskKind::Seagate),
        (FsKind::Ufs, DevKind::Vld, DiskKind::Hp),
        (FsKind::Lfs, DevKind::Regular, DiskKind::Hp),
    ] {
        let s = spec(fs, dev, disk);
        let (built, f, fb) = build_aged(&s).expect("build");
        let snap = built.snapshot().expect("stack must snapshot");
        let fork = fingerprint(snap.restore(), f, fb, 80);
        let (oracle, f2, fb2) = build_aged(&s).expect("rebuild");
        assert_eq!((f, fb), (f2, fb2), "{fs:?}/{dev:?}/{disk:?} setup handle");
        let rebuild = fingerprint(oracle, f2, fb2, 80);
        assert_eq!(fork, rebuild, "{fs:?}/{dev:?}/{disk:?} fork != rebuild");
    }
}

/// Build a UFS over a fault-injecting device; `plan` decides what fails.
fn faulty_system(plan: FaultPlan) -> (Ufs, FileId, u64) {
    let raw = RegularDisk::new(DiskKind::Seagate.spec(), SimClock::new(), 4096);
    let dev = FaultDisk::new(Box::new(raw), plan);
    let mut fs =
        Ufs::format(Box::new(dev), HostModel::sparcstation_10(), UfsConfig::default()).unwrap();
    let file_blocks = (fs.free_blocks() as f64 * 0.2) as u64;
    let f = make_file(&mut fs, "target", file_blocks * BLOCK as u64).unwrap();
    fs.set_sync_writes(true);
    (fs, f, file_blocks)
}

/// Fault injection state (the write-op cursor and pending plan) is part of
/// the snapshot: a fork hits the same transient error at the same op as a
/// rebuild, then both recover identically.
#[test]
fn fork_matches_rebuild_under_fault_disk() {
    // Pass 1: count the setup's write ops so the fault lands mid-measurement.
    let (fs, _, _) = faulty_system(FaultPlan::none());
    let setup_ops = disksim::probe_device::<FaultDisk>(fs.device())
        .expect("fault disk at top of stack")
        .write_ops();
    drop(fs);
    let plan = || FaultPlan::transient(setup_ops + 25);

    let run = |mut fs: Ufs, f: FileId, fb: u64| -> (Vec<String>, Fingerprint) {
        // Drive writes one block at a time so per-op Results are visible.
        let mut outcomes = Vec::new();
        let data = vec![0x5Au8; BLOCK];
        for i in 0..40u64 {
            let off = (i * 97 % fb) * BLOCK as u64;
            outcomes.push(match fs.write(f, off, &data) {
                Ok(()) => "ok".to_string(),
                Err(e) => format!("{e:?}"),
            });
        }
        (outcomes, fingerprint(fs, f, fb, 40))
    };

    let (built, f, fb) = faulty_system(plan());
    let snap = built.snapshot().expect("fault stack must snapshot");
    let (fork_outcomes, fork_fp) = run(snap.restore(), f, fb);
    let (oracle, f2, fb2) = faulty_system(plan());
    let (rebuild_outcomes, rebuild_fp) = run(oracle, f2, fb2);

    assert!(
        fork_outcomes.iter().any(|o| o != "ok"),
        "transient fault should fire during the measured writes"
    );
    assert_eq!(fork_outcomes, rebuild_outcomes, "fault timing diverged");
    assert_eq!(fork_fp, rebuild_fp, "post-fault state diverged");
}

/// Writes in one fork are invisible to the parent, to sibling forks, and
/// to forks taken later from the same snapshot.
#[test]
fn fork_mutation_is_isolated() {
    let s = spec(FsKind::Lfs, DevKind::Vld, DiskKind::Seagate);
    let (mut parent, f, fb) = build_aged(&s).expect("build");
    let snap = parent.snapshot().expect("snapshot");

    let read_hash = |fs: &mut Ufs| {
        fs.drop_caches();
        let mut buf = vec![0u8; (fb as usize) * BLOCK];
        let n = fs.read(f, 0, &mut buf).expect("read");
        content_hash(&buf[..n])
    };
    let mut sibling = snap.restore();
    let before = read_hash(&mut sibling);

    let mut mutant = snap.restore();
    let blot = vec![0xEEu8; 8 * BLOCK];
    for i in 0..16u64 {
        let off = (i * 131 % fb) * BLOCK as u64;
        mutant.write(f, off, &blot).expect("mutate fork");
    }
    mutant.sync().expect("sync fork");
    let mutated = read_hash(&mut mutant);
    assert_ne!(mutated, before, "mutation must be visible in the fork");

    assert_eq!(read_hash(&mut parent), before, "parent saw fork writes");
    assert_eq!(read_hash(&mut sibling), before, "sibling saw fork writes");
    let mut late = snap.restore();
    assert_eq!(read_hash(&mut late), before, "snapshot itself was mutated");
}

/// The cached path ([`aged_system`]) serves concurrent workers the same
/// state the rebuild oracle produces, at pool widths 1 and 4: every cell's
/// fingerprint matches, wherever the build races land.
#[test]
fn cached_forks_match_rebuilds_under_parallel_workers() {
    let s = spec(FsKind::Ufs, DevKind::Vld, DiskKind::Seagate);
    let cells: Vec<u64> = (0..6).collect();
    let oracle: Vec<Fingerprint> = cells
        .iter()
        .map(|_| {
            let (fs, f, fb) = build_aged(&s).expect("rebuild");
            fingerprint(fs, f, fb, 60)
        })
        .collect();
    for width in [1usize, 4] {
        let got = par::pmap_in(width, cells.clone(), |_| {
            let (fs, f, fb) = aged_system(&s).expect("cached fork");
            fingerprint(fs, f, fb, 60)
        });
        assert_eq!(got, oracle, "width {width}: cached fork diverged");
    }
}
