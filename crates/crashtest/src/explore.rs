//! The crash-point sweep: cut power after every (or a seeded sample of
//! every) acknowledged device write, remount through recovery, and check
//! the durability invariants.
//!
//! The sweep leans entirely on determinism: a reference run with no faults
//! armed counts the device writes `W` the workload performs and the write
//! ordinal `W_f` at which each `Sync` frontier completes. A faulted run of
//! the *same* workload performs the same writes in the same order, so
//! "crash point `k`" is well defined: arm a plan that acknowledges exactly
//! `k` writes and fails everything after. For each explored `k` the checks
//! are:
//!
//! * **Acknowledged writes are on the media.** Every write the fault layer
//!   acknowledged must read back (by content hash) from the surviving
//!   state — raw sectors for the regular-disk stacks, the recovered
//!   indirection map for the VLD.
//! * **Recovery succeeds** and, for the VLD, does **not** claim a firmware
//!   tail record (a power cut never leaves one).
//! * **`fsck` finds no structural damage.** All three stacks write
//!   metadata synchronously (UFS semantics), so a crash may leak blocks or
//!   orphan inodes — the classes `fsck` exists to mop up — but must never
//!   produce a dangling name, a doubly-referenced block, an out-of-range
//!   pointer, or a size beyond the mapped pointers.
//! * **Completed syncs are durable.** For every frontier at or before the
//!   cut, files untouched after that frontier read back byte-exact, and
//!   names deleted before it stay gone.
//! * **Recovery paths converge.** For the VLD: audit the recovered log's
//!   map/free-map/piece consistency, then shut down in an orderly fashion
//!   and recover again — the tail-record path must be taken and must
//!   produce the identical map the scan produced. For the LLD: remounting
//!   the same image twice must give the identical block map at every
//!   point, and at durability frontiers (where every on-media segment
//!   summary is whole) scribbling over both checkpoint slots and
//!   remounting must too — the summary-scan fallback rebuilds the same
//!   state the checkpoint held. The scan check is restricted to frontiers
//!   because it is only *guaranteed* there: a cut mid-way through the
//!   re-flush of a partial segment tears that segment's summary, and a
//!   scan without any checkpoint then legitimately loses the segment's
//!   previous generation, which only the checkpoint still maps.

use std::collections::BTreeSet;

use disksim::fault::content_hash;
use disksim::{downcast_device, FaultPlan};
use fscore::FileSystem;
use lfs::{LldConfig, LogDisk};
use ufs::FsckError;
use vlog_core::Vld;

use crate::stack::{
    build, build_recorded, remount, spec, teardown, vld_cfg, CrashState, StackKind, BLOCK,
};
use crate::workload::{apply, splitmix64, Workload};

/// Event-ring capacity of the failure flight recorder: the last N disk
/// commands (span-annotated) of a failing crash point's replay.
const FLIGHT_EVENTS: usize = 256;

/// How to sweep one stack.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The stack under test.
    pub kind: StackKind,
    /// The scripted workload.
    pub workload: Workload,
    /// `None` = every crash point; `Some((n, seed))` = `n` seeded sample
    /// points (endpoints always included).
    pub sample: Option<(usize, u64)>,
    /// Also run torn-write variants (a partially persisted final write) at
    /// each explored point. Skipped for the VLD stack, whose fault layer
    /// sits at the command boundary.
    pub torn: bool,
    /// Run the recovery-path convergence checks at each point.
    pub convergence: bool,
}

impl SweepConfig {
    /// Exhaustive sweep with every check enabled.
    pub fn exhaustive(kind: StackKind) -> Self {
        SweepConfig {
            kind,
            workload: Workload::small_mixed(),
            sample: None,
            torn: true,
            convergence: true,
        }
    }

    /// Seeded sampling sweep (for larger configurations).
    pub fn sampled(kind: StackKind, points: usize, seed: u64) -> Self {
        SweepConfig {
            sample: Some((points, seed)),
            ..Self::exhaustive(kind)
        }
    }
}

/// What a sweep measured and found.
#[derive(Debug)]
pub struct SweepReport {
    /// The stack swept.
    pub kind: StackKind,
    /// Device-write ordinal at which each `Sync` frontier completed.
    pub frontier_ops: Vec<u64>,
    /// Total device writes of the full workload.
    pub total_ops: u64,
    /// Crash points explored (torn variants count separately).
    pub points_run: usize,
    /// Invariant violations, empty on success.
    pub failures: Vec<String>,
}

impl SweepReport {
    /// Panic with every failure if any invariant was violated.
    pub fn assert_clean(&self) {
        assert!(
            self.failures.is_empty(),
            "{:?}: {} invariant violations:\n{}",
            self.kind,
            self.failures.len(),
            self.failures.join("\n")
        );
    }
}

/// Reference-run a prefix of the workload with no faults and count the
/// device writes it completes.
fn reference_ops(kind: StackKind, w: &Workload, prefix: usize) -> u64 {
    let mut fs = build(kind, FaultPlan::none()).expect("reference format failed");
    apply(&mut fs, &w.ops[..prefix]).expect("reference run failed");
    teardown(kind, fs).ops
}

/// Sweep crash points over one stack and check every invariant. Crash
/// points fan out over the shared worker pool (`disksim::par`, sized by
/// `VLFS_THREADS`): each point builds its own clock, disk and stack, so
/// points are independent, and failures are collected in point order —
/// the report is byte-identical to a sequential sweep.
pub fn run_sweep(cfg: &SweepConfig) -> SweepReport {
    run_sweep_in(disksim::par::threads(), cfg)
}

/// [`run_sweep`] at an explicit pool width, for tests comparing a 1-wide
/// and an N-wide sweep in one process (the global knob is set-once).
pub fn run_sweep_in(width: usize, cfg: &SweepConfig) -> SweepReport {
    let w = &cfg.workload;
    let frontiers = w.frontiers();
    assert!(
        frontiers.first() == Some(&1),
        "workloads must open with a Sync so the format has a frontier"
    );
    let frontier_ops: Vec<u64> = frontiers
        .iter()
        .map(|&p| reference_ops(cfg.kind, w, p))
        .collect();
    let total_ops = reference_ops(cfg.kind, w, w.ops.len());
    let mut failures = Vec::new();
    // Non-decreasing: a Sync with nothing dirty adds no device writes.
    for pair in frontier_ops.windows(2) {
        if pair[0] > pair[1] {
            failures.push(format!(
                "frontier write counts decreasing: {frontier_ops:?}"
            ));
        }
    }

    // The sweep starts at the first frontier: before the opening Sync the
    // buffered stacks legitimately have no recoverable file system yet
    // (mkfs without a sync is not crash-durable on a log-structured disk).
    let start = frontier_ops[0];
    let mut points = BTreeSet::new();
    match cfg.sample {
        None => points.extend(start..=total_ops),
        Some((n, seed)) => {
            points.insert(start);
            points.insert(total_ops);
            let span = total_ops - start + 1;
            let mut i = 0u64;
            while points.len() < n.min(span as usize) {
                points.insert(start + splitmix64(seed ^ i) % span);
                i += 1;
            }
        }
    }

    // Materialise the variant list in sequential order — each point, then
    // its torn variants — and fan it out; input-order collection keeps the
    // failure list identical at any pool width.
    let variants: Vec<(u64, Option<u32>)> = points
        .iter()
        .flat_map(|&k| {
            let torn = (cfg.torn && cfg.kind != StackKind::UfsVld && k < total_ops)
                .then_some([Some(1u32), Some(3u32)])
                .into_iter()
                .flatten();
            std::iter::once((k, None)).chain(torn.map(move |s| (k, s)))
        })
        .collect();
    let points_run = variants.len();
    for errs in disksim::par::pmap_in(width, variants, |(k, survivors)| {
        run_point(cfg, &frontiers, &frontier_ops, total_ops, k, survivors)
    }) {
        failures.extend(errs);
    }

    SweepReport {
        kind: cfg.kind,
        frontier_ops,
        total_ops,
        points_run,
        failures,
    }
}

/// Run the workload against a plan that acknowledges exactly `k` writes —
/// with `survivors` sectors of the `k+1`-th write torn onto the media —
/// then check the crash state. A failing point is replayed once with a
/// flight recorder so the failure list carries the span-annotated disk
/// history (workload, crash and recovery) that led to it.
fn run_point(
    cfg: &SweepConfig,
    frontiers: &[usize],
    frontier_ops: &[u64],
    total_ops: u64,
    k: u64,
    survivors: Option<u32>,
) -> Vec<String> {
    let mut errs = run_point_inner(cfg, frontiers, frontier_ops, total_ops, k, survivors);
    if !errs.is_empty() {
        let plan = point_plan(k, survivors);
        let dump = flight_dump(cfg, plan);
        let tag = point_tag(k, survivors);
        errs.push(format!(
            "{tag}: flight recorder ({} lines):\n{dump}",
            dump.lines().count()
        ));
    }
    errs
}

fn point_tag(k: u64, survivors: Option<u32>) -> String {
    match survivors {
        None => format!("k={k}"),
        Some(s) => format!("k={k}+torn{s}"),
    }
}

fn point_plan(k: u64, survivors: Option<u32>) -> FaultPlan {
    match survivors {
        None => FaultPlan::power_cut_after(k),
        Some(s) => FaultPlan::torn_power_cut(k + 1, s),
    }
}

/// Deterministically replay one crash point with a recorder on the raw
/// device and return the span-annotated JSONL dump, recovery included.
fn flight_dump(cfg: &SweepConfig, plan: FaultPlan) -> String {
    let rec = disksim::FlightRecorder::with_capacity(FLIGHT_EVENTS);
    let Ok(mut fs) = build_recorded(cfg.kind, plan, Some(&rec)) else {
        return rec.dump();
    };
    let _ = apply(&mut fs, &cfg.workload.ops);
    let st = teardown(cfg.kind, fs);
    let _ = remount(cfg.kind, st.disk);
    rec.dump()
}

fn run_point_inner(
    cfg: &SweepConfig,
    frontiers: &[usize],
    frontier_ops: &[u64],
    total_ops: u64,
    k: u64,
    survivors: Option<u32>,
) -> Vec<String> {
    let tag = point_tag(k, survivors);
    let plan = point_plan(k, survivors);
    let mut fs = match build(cfg.kind, plan) {
        Ok(fs) => fs,
        Err(e) => return vec![format!("{tag}: format failed under plan: {e}")],
    };
    let ran = apply(&mut fs, &cfg.workload.ops);
    let st = teardown(cfg.kind, fs);

    let mut errs = Vec::new();
    if k < total_ops {
        if st.log.power_cuts == 0 {
            // Write counts drifted from the reference run — determinism is
            // broken and every later conclusion would be unsound.
            return vec![format!(
                "{tag}: cut never fired ({} ops completed, expected cut at {})",
                st.ops,
                k + 1
            )];
        }
        if ran.is_ok() {
            errs.push(format!("{tag}: workload completed despite a power cut"));
        }
        if st.ops != k {
            errs.push(format!("{tag}: {} writes acknowledged, expected {k}", st.ops));
        }
    } else if let Err((i, e)) = ran {
        return vec![format!("{tag}: op {i} failed with no fault armed: {e}")];
    }
    errs.extend(check_point(cfg, frontiers, frontier_ops, &tag, st));
    errs
}

fn check_point(
    cfg: &SweepConfig,
    frontiers: &[usize],
    frontier_ops: &[u64],
    tag: &str,
    st: CrashState,
) -> Vec<String> {
    let mut errs = Vec::new();
    let k = st.ops;

    // 1. Acknowledged writes on raw media (the VLD variant reads through
    // the recovered map below, since its blocks live wherever the eager
    // allocator put them).
    if cfg.kind != StackKind::UfsVld {
        for (&blk, &h) in &st.acked {
            if st.log.torn_block == Some(blk) {
                continue; // superseded by an unacknowledged torn write
            }
            match st.media_hash(blk) {
                Some(mh) if mh == h => {}
                Some(_) => errs.push(format!(
                    "{tag}: acknowledged write to device block {blk} lost from media"
                )),
                None => errs.push(format!("{tag}: device block {blk} unreadable")),
            }
        }
    }

    // 2. Recovery must bring the stack back up.
    let CrashState { disk, acked, log, .. } = st;
    let mut rm = match remount(cfg.kind, disk) {
        Ok(rm) => rm,
        Err(e) => {
            errs.push(format!("{tag}: remount failed: {e}"));
            return errs;
        }
    };
    if let Some(rep) = &rm.vld_report {
        if log.power_cuts > 0 && rep.used_tail {
            errs.push(format!(
                "{tag}: recovery claims a firmware tail record after a power cut"
            ));
        }
    }

    // 1b. VLD acknowledged writes, through the recovered indirection map.
    if cfg.kind == StackKind::UfsVld {
        let dev = rm.fs.device_mut();
        let mut buf = vec![0u8; BLOCK];
        for (&blk, &h) in &acked {
            match dev.read_block(blk, &mut buf) {
                Ok(_) if content_hash(&buf) == h => {}
                Ok(_) => errs.push(format!(
                    "{tag}: acknowledged write to logical block {blk} lost after recovery"
                )),
                Err(e) => errs.push(format!(
                    "{tag}: logical block {blk} unreadable after recovery: {e}"
                )),
            }
        }
    }

    // 3. No structural damage.
    match ufs::fsck(rm.fs.device_mut()) {
        Ok(report) => {
            for e in &report.errors {
                if severe(e) {
                    errs.push(format!("{tag}: fsck: {e:?}"));
                }
            }
        }
        Err(e) => errs.push(format!("{tag}: fsck failed: {e}")),
    }

    // 4. Every completed frontier's promises hold.
    for (i, &wf) in frontier_ops.iter().enumerate() {
        if k < wf {
            continue;
        }
        let exp = cfg.workload.expectations(frontiers[i]);
        for (name, content) in &exp.present {
            match read_file(&mut rm.fs, name) {
                Ok(got) if got == *content => {}
                Ok(got) => errs.push(format!(
                    "{tag}: durable file {name} corrupt ({} bytes, expected {})",
                    got.len(),
                    content.len()
                )),
                Err(e) => errs.push(format!("{tag}: durable file {name} unreadable: {e}")),
            }
        }
        for name in &exp.absent {
            if rm.fs.open(name).is_ok() {
                errs.push(format!("{tag}: durably deleted file {name} still visible"));
            }
        }
    }

    // 5. Recovery paths converge. The full summary-scan check is sound
    // only in clean states: exactly at a frontier, with no torn write on
    // the media.
    if cfg.convergence {
        let clean_frontier = log.torn_block.is_none() && frontier_ops.contains(&k);
        match cfg.kind {
            StackKind::UfsRegular => {}
            StackKind::UfsVld => errs.extend(vld_convergence(tag, rm.fs)),
            StackKind::UfsLfs => errs.extend(lld_convergence(tag, rm.fs, clean_frontier)),
        }
    }
    errs
}

/// Audit the recovered virtual log, then take the *other* recovery path
/// (orderly shutdown → tail record) and demand the identical map.
fn vld_convergence(tag: &str, fs: ufs::Ufs) -> Vec<String> {
    let mut errs = Vec::new();
    let mut vld: Vld = downcast_device(fs.into_device());
    for msg in vld.vlog().check_consistency() {
        errs.push(format!("{tag}: vlog audit: {msg}"));
    }
    let n = vld.vlog().num_blocks();
    let map1: Vec<Option<u64>> = (0..n).map(|lb| vld.vlog().translate(lb)).collect();
    if let Err(e) = vld.shutdown() {
        errs.push(format!("{tag}: shutdown failed: {e}"));
        return errs;
    }
    match Vld::recover(vld.crash(), spec().command_overhead_ns, vld_cfg()) {
        Ok((v2, rep2)) => {
            if !rep2.used_tail {
                errs.push(format!(
                    "{tag}: tail-record path not taken after orderly shutdown"
                ));
            }
            let map2: Vec<Option<u64>> = (0..n).map(|lb| v2.vlog().translate(lb)).collect();
            if map1 != map2 {
                errs.push(format!(
                    "{tag}: tail-record and scan recovery disagree on the indirection map"
                ));
            }
            for msg in v2.vlog().check_consistency() {
                errs.push(format!("{tag}: vlog audit after second recovery: {msg}"));
            }
        }
        Err(e) => errs.push(format!("{tag}: recovery after orderly shutdown failed: {e}")),
    }
    errs
}

/// LLD convergence: remounting the same image again must be a no-op, and
/// in clean states the summary-scan fallback (both checkpoint slots
/// destroyed) must rebuild the same block map the checkpoint path held.
fn lld_convergence(tag: &str, fs: ufs::Ufs, full_scan: bool) -> Vec<String> {
    let mut errs = Vec::new();
    let lld: LogDisk = downcast_device(fs.into_device());
    let map1 = lld.map_snapshot();
    let (ck_start, ck_len) = lld.checkpoint_region();
    let l2 = match LogDisk::mount(lld.crash(), LldConfig::default()) {
        Ok(l2) => l2,
        Err(e) => {
            errs.push(format!("{tag}: second LLD mount failed: {e}"));
            return errs;
        }
    };
    if l2.map_snapshot() != map1 {
        errs.push(format!("{tag}: LLD recovery is not idempotent"));
    }
    if !full_scan {
        return errs;
    }
    let mut inner = l2.crash();
    let junk = vec![0xA5u8; BLOCK];
    for b in 0..ck_len {
        if let Err(e) = inner.write_block(ck_start + b, &junk) {
            errs.push(format!("{tag}: cannot overwrite checkpoint slot: {e}"));
            return errs;
        }
    }
    match LogDisk::mount(inner, LldConfig::default()) {
        Ok(l3) => {
            if l3.map_snapshot() != map1 {
                errs.push(format!(
                    "{tag}: checkpoint and summary-scan recovery disagree on the LLD map"
                ));
            }
        }
        Err(e) => errs.push(format!("{tag}: summary-scan mount failed: {e}")),
    }
    errs
}

/// The fsck classes a crash must never produce on a sync-metadata file
/// system. Leaks, orphans and stale bitmap bits are the expected debris of
/// delayed bitmap/inode-growth writes; these four mean structure was lost.
fn severe(e: &FsckError) -> bool {
    matches!(
        e,
        FsckError::PointerOutOfRange { .. }
            | FsckError::DoubleReference { .. }
            | FsckError::DanglingDirent { .. }
            | FsckError::SizeBeyondPointers { .. }
    )
}

fn read_file(fs: &mut ufs::Ufs, name: &str) -> Result<Vec<u8>, fscore::FsError> {
    let id = fs.open(name)?;
    let size = fs.file_size(id)? as usize;
    let mut buf = vec![0u8; size];
    let n = fs.read(id, 0, &mut buf)?;
    buf.truncate(n);
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap sampled sweep of each stack — the exhaustive sweeps live in
    /// the workspace-level integration tests.
    #[test]
    fn sampled_sweep_is_clean_on_every_stack() {
        for kind in crate::stack::ALL_STACKS {
            let mut cfg = SweepConfig::sampled(kind, 4, 0xc0ffee);
            cfg.torn = false;
            let rep = run_sweep(&cfg);
            assert!(rep.points_run >= 2, "{kind:?}: no points explored");
            rep.assert_clean();
        }
    }

    #[test]
    fn torn_variants_run_on_raw_stacks() {
        let cfg = SweepConfig::sampled(StackKind::UfsRegular, 3, 7);
        let rep = run_sweep(&cfg);
        // Each interior point adds two torn variants.
        assert!(rep.points_run > 3);
        rep.assert_clean();
    }

    /// The same sweep on a 1-wide and a 4-wide pool must produce the
    /// identical report: same points, same failure list, same order.
    #[test]
    fn sweep_report_identical_across_pool_widths() {
        for kind in crate::stack::ALL_STACKS {
            let cfg = SweepConfig::sampled(kind, 3, 0xD15C);
            let one = run_sweep_in(1, &cfg);
            let four = run_sweep_in(4, &cfg);
            assert_eq!(
                format!("{one:?}"),
                format!("{four:?}"),
                "{kind:?}: pool width changed the sweep report"
            );
        }
    }
}
