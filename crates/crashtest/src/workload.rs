//! Scripted file-system workloads and the oracle predicting what a crash
//! must preserve.
//!
//! A workload is a fixed list of [`Op`]s. Determinism of the simulator
//! means a workload maps to one exact sequence of device writes, so the
//! sweep driver can count writes on a reference run and then name crash
//! points by ordinal. The oracle side answers: *given that the crash
//! happened at or after a completed `Sync`, which files must read back
//! exactly, and which names must be gone?*

use std::collections::HashMap;

use fscore::{FileSystem, FsError};
use ufs::Ufs;

/// One step of a scripted workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Create an empty file.
    Create(&'static str),
    /// Write `len` bytes of [`file_data`] at `offset`, with data writes in
    /// synchronous or delayed mode.
    Write {
        /// Target file (must exist).
        file: &'static str,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        len: usize,
        /// `O_SYNC`-style data write if true.
        sync: bool,
    },
    /// Delete a file.
    Delete(&'static str),
    /// Flush everything dirty — a durability frontier.
    Sync,
}

impl Op {
    /// The file this op touches, if any.
    fn target(&self) -> Option<&'static str> {
        match self {
            Op::Create(n) | Op::Delete(n) => Some(n),
            Op::Write { file, .. } => Some(file),
            Op::Sync => None,
        }
    }
}

/// What the oracle asserts about a crash state at (or after) a frontier.
#[derive(Debug, Default)]
pub struct Expectations {
    /// Files whose exact content must be readable.
    pub present: Vec<(String, Vec<u8>)>,
    /// Names that must not resolve.
    pub absent: Vec<String>,
}

/// A fixed op script. Convention: the script starts with an [`Op::Sync`]
/// so the format itself has a durability frontier (on the log-structured
/// logical disk a bare format is still buffered), and every later frontier
/// is another explicit `Sync`.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The steps, applied in order.
    pub ops: Vec<Op>,
}

impl Workload {
    /// The standard small mixed workload: three files made durable across
    /// one `sync`, then volatile churn (a delayed-write file, an overwrite,
    /// a create-write-delete cycle) across a second `sync`, then trailing
    /// writes that never reach a frontier.
    pub fn small_mixed() -> Self {
        use Op::*;
        Workload {
            ops: vec![
                Sync, // frontier 0: format state durable
                Create("alpha"),
                Write { file: "alpha", offset: 0, len: 8192, sync: true },
                Create("beta"),
                Write { file: "beta", offset: 0, len: 4096, sync: false },
                Write { file: "beta", offset: 4096, len: 4096, sync: false },
                Create("gamma"),
                Write { file: "gamma", offset: 0, len: 2048, sync: true },
                Sync, // frontier 1: alpha, beta, gamma durable
                Create("delta"),
                Write { file: "delta", offset: 0, len: 12288, sync: false },
                Write { file: "gamma", offset: 2048, len: 4096, sync: true },
                Create("temp"),
                Write { file: "temp", offset: 0, len: 4096, sync: false },
                Delete("temp"),
                Sync, // frontier 2: delta/gamma durable, temp durably gone
                Create("late"),
                Write { file: "late", offset: 0, len: 4096, sync: false },
            ],
        }
    }

    /// A larger create/write/delete churn over a fixed name pool, for the
    /// sampled (non-exhaustive) sweeps: `rounds` rounds cycling through
    /// eight names, mixed sync/delayed writes, periodic frontiers, and
    /// name reuse (delete + recreate) once the pool wraps.
    pub fn churn(rounds: usize) -> Self {
        const NAMES: [&str; 8] =
            ["f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"];
        assert!(rounds >= 1);
        let mut ops = vec![Op::Sync];
        for r in 0..rounds {
            let n = NAMES[r % NAMES.len()];
            if r >= NAMES.len() {
                ops.push(Op::Delete(n));
            }
            ops.push(Op::Create(n));
            ops.push(Op::Write {
                file: n,
                offset: 0,
                len: 4096 * (1 + r % 3),
                sync: r % 2 == 0,
            });
            if r % 2 == 1 {
                ops.push(Op::Write { file: n, offset: 2048, len: 4096, sync: false });
            }
            if r % 3 == 2 {
                ops.push(Op::Sync);
            }
        }
        ops.push(Op::Sync);
        Workload { ops }
    }

    /// Prefix lengths ending immediately after each `Sync` — the durability
    /// frontiers, in order.
    pub fn frontiers(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| **op == Op::Sync)
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// What must hold in any crash state at or after the frontier ending
    /// at `prefix` ops.
    ///
    /// A file is asserted **present** (with exact content) if it exists
    /// after `ops[..prefix]` and no later op touches it: the completed
    /// `Sync` made it durable and nothing afterwards could legally change
    /// it. A name is asserted **absent** if it does not exist at the
    /// frontier and no later op creates it.
    pub fn expectations(&self, prefix: usize) -> Expectations {
        let mut files: HashMap<&str, Vec<u8>> = HashMap::new();
        let mut ever: Vec<&str> = Vec::new();
        for op in &self.ops[..prefix] {
            if let Some(n) = op.target() {
                if !ever.contains(&n) {
                    ever.push(n);
                }
            }
            match *op {
                Op::Create(n) => {
                    files.insert(n, Vec::new());
                }
                Op::Write { file, offset, len, .. } => {
                    let content = files.get_mut(file).expect("write to missing file");
                    let end = offset as usize + len;
                    if content.len() < end {
                        content.resize(end, 0);
                    }
                    content[offset as usize..end]
                        .copy_from_slice(&file_data(file, offset, len));
                }
                Op::Delete(n) => {
                    files.remove(n);
                }
                Op::Sync => {}
            }
        }
        let touched_later: Vec<&str> =
            self.ops[prefix..].iter().filter_map(|op| op.target()).collect();
        let created_later: Vec<&str> = self.ops[prefix..]
            .iter()
            .filter_map(|op| match op {
                Op::Create(n) => Some(*n),
                _ => None,
            })
            .collect();
        let mut exp = Expectations::default();
        for (&name, content) in &files {
            if !touched_later.contains(&name) {
                exp.present.push((name.to_string(), content.clone()));
            }
        }
        for &name in &ever {
            if !files.contains_key(name) && !created_later.contains(&name) {
                exp.absent.push(name.to_string());
            }
        }
        exp.present.sort();
        exp.absent.sort();
        exp
    }
}

/// Deterministic file content: a pure function of (name, byte offset), so
/// the oracle and the workload runner generate identical bytes without
/// sharing state.
pub fn file_data(name: &str, offset: u64, len: usize) -> Vec<u8> {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (0..len as u64)
        .map(|i| {
            let j = offset + i;
            (splitmix64(h ^ (j / 8)) >> ((j % 8) * 8)) as u8
        })
        .collect()
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Apply the ops in order, stopping at the first error (a power cut makes
/// every subsequent device call fail). Returns the index of the op that
/// failed and the error, or `Ok` if the whole script ran.
pub fn apply(fs: &mut Ufs, ops: &[Op]) -> Result<(), (usize, FsError)> {
    let mut handles: HashMap<&str, u64> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        let r = match *op {
            Op::Create(n) => fs.create(n).map(|id| {
                handles.insert(n, id);
            }),
            Op::Write { file, offset, len, sync } => {
                fs.set_sync_writes(sync);
                let id = handles[file];
                fs.write(id, offset, &file_data(file, offset, len))
            }
            Op::Delete(n) => {
                handles.remove(n);
                fs.delete(n)
            }
            Op::Sync => fs.sync(),
        };
        if let Err(e) = r {
            return Err((i, e));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontiers_found() {
        let w = Workload::small_mixed();
        let f = w.frontiers();
        assert_eq!(f.len(), 3);
        assert_eq!(f[0], 1);
        assert!(matches!(w.ops[f[1] - 1], Op::Sync));
        assert!(matches!(w.ops[f[2] - 1], Op::Sync));
    }

    #[test]
    fn oracle_predicts_frozen_files() {
        let w = Workload::small_mixed();
        let f = w.frontiers();

        // Frontier 0: no files yet, nothing assertable (everything is
        // created later).
        let e0 = w.expectations(f[0]);
        assert!(e0.present.is_empty());
        assert!(e0.absent.is_empty());

        // Frontier 1: alpha and beta are never touched again; gamma is
        // overwritten in phase 2 so it is not assertable here.
        let e1 = w.expectations(f[1]);
        let names: Vec<&str> = e1.present.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        assert_eq!(e1.present[0].1.len(), 8192);
        assert!(e1.absent.is_empty());

        // Frontier 2: gamma and delta join; temp must be durably gone.
        let e2 = w.expectations(f[2]);
        let names: Vec<&str> = e2.present.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "delta", "gamma"]);
        assert_eq!(e2.absent, ["temp"]);
        let gamma = &e2.present[3].1;
        assert_eq!(gamma.len(), 2048 + 4096);
        assert_eq!(&gamma[2048..], &file_data("gamma", 2048, 4096)[..]);
    }

    #[test]
    fn file_data_is_stable_and_offset_consistent() {
        // Two windows over the same range must agree byte-for-byte.
        let a = file_data("x", 0, 64);
        let b = file_data("x", 16, 48);
        assert_eq!(&a[16..], &b[..]);
        assert_ne!(file_data("x", 0, 16), file_data("y", 0, 16));
    }
}
