//! Building, crashing and remounting the paper's device stacks.
//!
//! The three stacks of Figure 5 that the harness explores, each with a
//! [`FaultDisk`] spliced in at the layer whose write stream defines the
//! crash points:
//!
//! * **UFS on a regular disk** — `Ufs → FaultDisk → RegularDisk`. Crash
//!   points are raw in-place sector writes.
//! * **UFS on the VLD** — `Ufs → FaultDisk → Vld`. The VLD services whole
//!   commands (an eager write plus its map commit) atomically inside the
//!   drive, so faults are injected at the command boundary; mid-command
//!   atomicity is exercised separately through the virtual log's own
//!   fault hooks.
//! * **LFS** — `Ufs → LogDisk → FaultDisk → RegularDisk`. The
//!   log-structured logical disk's segment and checkpoint writes hit the
//!   fault layer block by block, so a cut mid-flush leaves a genuinely
//!   torn segment on the media.
//!
//! `teardown` simulates the power failure: the stack is dismantled without
//! any shutdown courtesy, volatile state (caches, buffered segments, the
//! VLD's in-memory map) evaporates, and only the mechanical disk's sectors
//! survive. `remount` then drives the stack's actual recovery path over
//! those sectors.

use std::collections::HashMap;

use disksim::{
    downcast_device, Disk, DiskSpec, FaultDisk, FaultLog, FaultPlan, RegularDisk, SimClock,
};
use fscore::{FsError, FsResult, HostModel};
use lfs::{LldConfig, LogDisk};
use ufs::{Ufs, UfsConfig};
use vlog_core::recovery::RecoveryReport;
use vlog_core::vld::{Vld, VldConfig};

/// Logical block size every stack runs at.
pub const BLOCK: usize = 4096;
const SECTORS_PER_BLOCK: u64 = (BLOCK / disksim::SECTOR_BYTES) as u64;

/// Which of the paper's stacks to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackKind {
    /// UFS over an update-in-place disk.
    UfsRegular,
    /// UFS over the virtual-log disk.
    UfsVld,
    /// UFS file layer over the log-structured logical disk.
    UfsLfs,
}

/// All three stacks, sweep order.
pub const ALL_STACKS: [StackKind; 3] = [StackKind::UfsRegular, StackKind::UfsVld, StackKind::UfsLfs];

pub(crate) fn spec() -> DiskSpec {
    DiskSpec::hp97560_sim()
}

fn ufs_cfg() -> UfsConfig {
    UfsConfig {
        // Small inode table keeps format cheap so the sweep explores the
        // workload, not mkfs; read-ahead off for cross-stack uniformity
        // (the paper disables it on the LLD anyway).
        inode_count: 64,
        cache_bytes: 1 << 20,
        readahead_blocks: 0,
        ..UfsConfig::default()
    }
}

pub(crate) fn vld_cfg() -> VldConfig {
    VldConfig::default()
}

/// Build a freshly formatted stack with `plan` armed in its fault layer.
pub fn build(kind: StackKind, plan: FaultPlan) -> FsResult<Ufs> {
    build_recorded(kind, plan, None)
}

/// [`build`] with an optional flight recorder attached to the raw device.
/// Its ring and span table live on the mechanical [`Disk`], which survives
/// [`teardown`], so one recorder covers the workload, the crash and the
/// recovery a later [`remount`] performs.
pub fn build_recorded(
    kind: StackKind,
    plan: FaultPlan,
    rec: Option<&disksim::FlightRecorder>,
) -> FsResult<Ufs> {
    let clock = SimClock::new();
    let host = HostModel::instant();
    match kind {
        StackKind::UfsRegular | StackKind::UfsLfs => {
            let mut raw = RegularDisk::new(spec(), clock, BLOCK);
            if let Some(r) = rec {
                raw.disk_mut().set_tracer(Some(r.tracer.clone()));
                raw.disk_mut().set_spans(r.spans.clone());
            }
            let faulty = FaultDisk::new(Box::new(raw), plan);
            if kind == StackKind::UfsLfs {
                let lld = LogDisk::format(Box::new(faulty), LldConfig::default())?;
                Ufs::format(Box::new(lld), host, ufs_cfg())
            } else {
                Ufs::format(Box::new(faulty), host, ufs_cfg())
            }
        }
        StackKind::UfsVld => {
            let mut vld = Vld::format(spec(), clock, vld_cfg());
            if let Some(r) = rec {
                vld.set_observability(Some(r.tracer.clone()), disksim::Metrics::default());
                vld.set_spans(r.spans.clone());
            }
            let faulty = FaultDisk::new(Box::new(vld), plan);
            Ufs::format(Box::new(faulty), host, ufs_cfg())
        }
    }
}

/// What survives the power failure.
#[derive(Debug)]
pub struct CrashState {
    /// The mechanical disk's sectors — the only non-volatile state.
    pub disk: Disk,
    /// Write operations the fault layer completed (acknowledged).
    pub ops: u64,
    /// What the fault layer did (cuts, torn sectors, corruptions).
    pub log: FaultLog,
    /// Acknowledged writes: device block → content hash at ack time.
    pub acked: HashMap<u64, u64>,
}

impl CrashState {
    /// Peek an acknowledged block's current media content hash, bypassing
    /// all logical layers (for the raw-device durability check).
    pub fn media_hash(&self, block: u64) -> Option<u64> {
        let mut buf = vec![0u8; BLOCK];
        self.disk
            .peek_sectors(block * SECTORS_PER_BLOCK, &mut buf)
            .ok()?;
        Some(disksim::fault::content_hash(&buf))
    }
}

/// Simulate the power failure: dismantle the stack, discard every volatile
/// layer, keep only the media.
pub fn teardown(kind: StackKind, fs: Ufs) -> CrashState {
    let dev = fs.into_device();
    match kind {
        StackKind::UfsRegular => {
            let faulty: FaultDisk = downcast_device(dev);
            let (ops, log, acked, inner) = faulty.into_parts();
            let raw: RegularDisk = downcast_device(inner);
            CrashState { disk: raw.into_disk(), ops, log, acked }
        }
        StackKind::UfsVld => {
            let faulty: FaultDisk = downcast_device(dev);
            let (ops, log, acked, inner) = faulty.into_parts();
            let vld: Vld = downcast_device(inner);
            CrashState { disk: vld.crash(), ops, log, acked }
        }
        StackKind::UfsLfs => {
            let lld: LogDisk = downcast_device(dev);
            let faulty: FaultDisk = downcast_device(lld.crash());
            let (ops, log, acked, inner) = faulty.into_parts();
            let raw: RegularDisk = downcast_device(inner);
            CrashState { disk: raw.into_disk(), ops, log, acked }
        }
    }
}

/// A stack brought back up through its recovery path.
pub struct Remounted {
    /// The remounted file system (no fault layer this time).
    pub fs: Ufs,
    /// The VLD's recovery report, for the `UfsVld` stack.
    pub vld_report: Option<RecoveryReport>,
}

/// Remount a crash state through the stack's recovery path.
pub fn remount(kind: StackKind, disk: Disk) -> FsResult<Remounted> {
    let host = HostModel::instant();
    // Close any spans the crash interrupted so recovery spans attach at
    // the root (no-op unless a flight recorder is attached to the disk).
    disk.spans().close_all(disk.clock().now());
    match kind {
        StackKind::UfsRegular => {
            let raw = RegularDisk::from_disk(disk, BLOCK);
            let fs = Ufs::mount(Box::new(raw), host)?;
            Ok(Remounted { fs, vld_report: None })
        }
        StackKind::UfsVld => {
            let (vld, report) = Vld::recover(disk, spec().command_overhead_ns, vld_cfg())
                .map_err(FsError::Disk)?;
            let fs = Ufs::mount(Box::new(vld), host)?;
            Ok(Remounted { fs, vld_report: Some(report) })
        }
        StackKind::UfsLfs => {
            let raw = RegularDisk::from_disk(disk, BLOCK);
            let lld = LogDisk::mount(Box::new(raw), LldConfig::default())?;
            let fs = Ufs::mount(Box::new(lld), host)?;
            Ok(Remounted { fs, vld_report: None })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{apply, Workload};

    /// Every stack survives the full build → run → crash → remount cycle
    /// with no faults armed.
    #[test]
    fn clean_round_trip_all_stacks() {
        let w = Workload::small_mixed();
        for kind in ALL_STACKS {
            let mut fs = build(kind, FaultPlan::none()).expect("format");
            apply(&mut fs, &w.ops).expect("workload");
            let st = teardown(kind, fs);
            assert!(st.ops > 0, "{kind:?}: no device writes counted");
            assert_eq!(st.log.power_cuts, 0);
            let rm = remount(kind, st.disk).expect("remount");
            if let Some(rep) = &rm.vld_report {
                assert!(!rep.used_tail, "crash teardown must not leave a tail record");
            }
        }
    }

    /// A tracer attached to the fault layer sees every injected fault as an
    /// [`disksim::OpKind::Fault`] event with a zero service-time breakdown.
    #[test]
    fn injected_faults_surface_in_the_trace() {
        let clock = SimClock::new();
        let host = HostModel::instant();
        let raw = RegularDisk::new(spec(), clock, BLOCK);
        // Silent corruption: the op still succeeds, so the workload runs to
        // completion (the corrupted block stays shadowed by the cache).
        let mut faulty = FaultDisk::new(Box::new(raw), disksim::FaultPlan::corrupt_write(2, 42));
        let tracer = disksim::Tracer::with_capacity(1 << 16);
        faulty.set_tracer(Some(tracer.clone()));
        let mut fs = Ufs::format(Box::new(faulty), host, ufs_cfg()).expect("format");
        apply(&mut fs, &Workload::small_mixed().ops).expect("workload");
        let faults: Vec<_> = tracer
            .events()
            .into_iter()
            .filter(|e| e.kind == disksim::OpKind::Fault)
            .collect();
        assert_eq!(faults.len(), 1, "exactly the armed fault is traced");
        assert_eq!(
            faults[0].total_ns(),
            0,
            "fault events must not perturb busy-sum accounting"
        );
    }

    /// A flight recorder attached at build keeps recording across the
    /// crash: its span table and event ring live on the mechanical disk,
    /// so the dump taken after remount shows the recovery pass too, and
    /// every event is stamped with the span that caused it.
    #[test]
    fn flight_recorder_covers_crash_and_recovery() {
        for (kind, recovery_label) in [
            (StackKind::UfsRegular, "ufs.mount"),
            (StackKind::UfsVld, "vld.recover"),
            (StackKind::UfsLfs, "lld.mount"),
        ] {
            let rec = disksim::FlightRecorder::with_capacity(256);
            let mut fs = build_recorded(kind, FaultPlan::none(), Some(&rec)).expect("format");
            apply(&mut fs, &Workload::small_mixed().ops).expect("workload");
            let st = teardown(kind, fs);
            remount(kind, st.disk).expect("remount");
            let dump = rec.dump();
            assert!(
                dump.contains(&format!("\"label\":\"{recovery_label}\"")),
                "{kind:?}: no {recovery_label} span in dump"
            );
            assert!(
                dump.contains("\"label\":\"ufs.format\""),
                "{kind:?}: format span missing"
            );
            assert!(!rec.tracer.is_empty(), "{kind:?}: no events recorded");
            // Recording twice is deterministic.
            let rec2 = disksim::FlightRecorder::with_capacity(256);
            let mut fs = build_recorded(kind, FaultPlan::none(), Some(&rec2)).expect("format");
            apply(&mut fs, &Workload::small_mixed().ops).expect("workload");
            let st = teardown(kind, fs);
            remount(kind, st.disk).expect("remount");
            assert_eq!(dump, rec2.dump(), "{kind:?}: recorder dump nondeterministic");
        }
    }

    /// The device-write count is a pure function of (stack, workload):
    /// rerunning measures the same `W` — the property the whole crash-point
    /// naming scheme rests on.
    #[test]
    fn write_counts_are_deterministic() {
        let w = Workload::small_mixed();
        for kind in ALL_STACKS {
            let mut counts = Vec::new();
            for _ in 0..2 {
                let mut fs = build(kind, FaultPlan::none()).expect("format");
                apply(&mut fs, &w.ops).expect("workload");
                counts.push(teardown(kind, fs).ops);
            }
            assert_eq!(counts[0], counts[1], "{kind:?}: nondeterministic write count");
        }
    }
}
