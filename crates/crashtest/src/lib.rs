#![warn(missing_docs)]
//! # crashtest — deterministic crash-point exploration for the paper's stacks
//!
//! The paper's central durability claim (§3) is that the virtual log
//! eager-writes make *every acknowledged synchronous write* crash-durable,
//! and that recovery rebuilds an equivalent indirection map from any crash
//! state — whether the firmware tail record survived or the scan fallback
//! has to find the youngest log root. This crate turns that claim (and the
//! analogous ones for the update-in-place UFS and the log-structured
//! logical disk) into an executable check:
//!
//! 1. Run a scripted workload against a stack with a [`disksim::FaultDisk`]
//!    spliced in, with no faults armed, and count the device write
//!    operations `W` it performs. Everything in the simulator is
//!    deterministic, so a re-run performs the *same* `W` writes.
//! 2. For every crash point `k` (exhaustively for small configurations,
//!    seeded sampling for large ones), replay the workload with a plan that
//!    cuts power after the `k`-th acknowledged write, discarding all
//!    volatile state.
//! 3. Remount through the stack's recovery path and check invariants: no
//!    acknowledged write is lost, `fsck` reports no structural damage, files
//!    made durable by a completed `sync` read back exactly, the VLD's
//!    indirection map and free map agree with the on-disk pieces, and both
//!    recovery paths (tail record and scan fallback) converge on the same
//!    state.
//!
//! The modules split along those lines: [`workload`] scripts the file
//! system activity and predicts what must survive, [`stack`] builds,
//! crashes and remounts the three device stacks of the paper's Figure 5,
//! and [`explore`] sweeps the crash points and runs the invariant checks.

pub mod explore;
pub mod stack;
pub mod workload;

pub use explore::{run_sweep, SweepConfig, SweepReport};
pub use stack::{build, remount, teardown, CrashState, Remounted, StackKind, ALL_STACKS};
pub use workload::{apply, file_data, Expectations, Op, Workload};
