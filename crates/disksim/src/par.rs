//! Deterministic fan-out of independent simulation tasks across threads.
//!
//! Every unit of work fanned through [`pmap`] is a self-contained
//! simulation: it builds its own [`crate::SimClock`], disk and file
//! system, seeds its own RNG explicitly, and returns a value. Nothing is
//! shared, so tasks can run on any thread in any order — only the
//! *assembly* of results must follow the sequential order. [`pmap`]
//! provides exactly that contract: results come back in input order
//! regardless of which worker computed them or when, which keeps figure
//! tables, model-check failure reports and crash-sweep failure lists
//! byte-identical to a sequential run.
//!
//! The pool is scoped (`std::thread::scope`) and built per call — the
//! workspace builds offline with std only, and tasks are milliseconds to
//! seconds each, so pool construction cost is noise. Workers pull tasks
//! from a shared atomic cursor (work stealing by index), so uneven task
//! costs — e.g. Figure 10's long-idle points, or crash points deep into a
//! workload — balance automatically.
//!
//! This module started life in `vlfs-bench` driving only the figure
//! points; it lives in `disksim` so the model checker and the crash-point
//! sweeps (which must not depend on the bench crate) share one pool and
//! one knob.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;

/// Number of worker threads `pmap` uses.
///
/// Resolution order: [`set_threads`] (a driver's `--threads` flag), the
/// `VLFS_THREADS` environment variable, the older `VLFS_BENCH_THREADS`
/// spelling (kept so existing CI and scripts don't break), then the
/// machine's available parallelism. A value of 1 disables threading
/// entirely (pure sequential execution on the calling thread).
pub fn threads() -> usize {
    if let Some(&n) = CONFIGURED.get() {
        return n.max(1);
    }
    for var in ["VLFS_THREADS", "VLFS_BENCH_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

static CONFIGURED: OnceLock<usize> = OnceLock::new();

/// Pin the worker count for the rest of the process (first call wins).
pub fn set_threads(n: usize) {
    let _ = CONFIGURED.set(n.max(1));
}

/// Map `f` over `items` on a scoped worker pool of the process-wide width
/// ([`threads`]), returning results in input order.
pub fn pmap<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    pmap_in(threads(), items, f)
}

/// [`pmap`] with an explicit pool width, for tests that compare a 1-wide
/// and an N-wide run of the same sweep within one process (the process-
/// wide knob is a set-once `OnceLock`). Falls back to a plain sequential
/// map when the pool is one thread wide or there is at most one item.
pub fn pmap_in<I, T, F>(width: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let workers = width.min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let outputs: Vec<Mutex<Option<T>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("each slot is taken exactly once");
                let out = f(item);
                *outputs[i].lock().expect("output slot poisoned") = Some(out);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker panicked would have propagated via scope")
                .expect("every slot is filled before scope exits")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Make late items cheap and early items expensive so completion
        // order differs from input order.
        let out = pmap_in(4, (0..64u64).collect(), |i| {
            let spins = (64 - i) * 1000;
            let mut acc = i;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, std::hint::black_box(acc) & 1) // keep the spin from being optimised out
        });
        let order: Vec<u64> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq: Vec<u64> = (0..40u64).map(|i| i * i + 1).collect();
        for width in [1, 2, 4, 8] {
            let par = pmap_in(width, (0..40u64).collect(), |i| i * i + 1);
            assert_eq!(seq, par, "width {width}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u64> = pmap(Vec::<u64>::new(), |i| i);
        assert!(empty.is_empty());
        assert_eq!(pmap(vec![7u64], |i| i + 1), vec![8]);
    }
}
