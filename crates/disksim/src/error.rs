//! Error types shared by the simulator and the devices built on it.

use std::fmt;

/// Result alias used across the disk simulator.
pub type Result<T> = std::result::Result<T, DiskError>;

/// Errors reported by the simulated disk and block devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// A sector or block address beyond the end of the device.
    OutOfRange {
        /// The offending address (sector or block number, per context).
        addr: u64,
        /// The number of addressable units on the device.
        limit: u64,
    },
    /// A transfer buffer whose length does not match the request.
    BadBufferLength {
        /// Expected buffer length in bytes.
        expected: usize,
        /// Actual buffer length in bytes.
        actual: usize,
    },
    /// A request that would cross the end of the device.
    TruncatedTransfer,
    /// The device has no free space left to satisfy an allocating write.
    NoSpace,
    /// On-disk metadata failed validation (bad checksum or magic number).
    Corrupt(&'static str),
    /// The operation is not supported by this device.
    Unsupported(&'static str),
    /// The (simulated) drive lost power: the request did not happen and no
    /// further request will succeed until the device is "re-powered" by
    /// remounting its underlying media (see `fault::FaultDisk`).
    PowerFailure,
    /// A transient fault: this request failed with no side effects; an
    /// identical retry may succeed.
    Transient,
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::OutOfRange { addr, limit } => {
                write!(f, "address {addr} out of range (device has {limit} units)")
            }
            DiskError::BadBufferLength { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match request ({expected})"
                )
            }
            DiskError::TruncatedTransfer => write!(f, "request crosses end of device"),
            DiskError::NoSpace => write!(f, "no free space on device"),
            DiskError::Corrupt(what) => write!(f, "on-disk corruption detected: {what}"),
            DiskError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            DiskError::PowerFailure => write!(f, "device lost power"),
            DiskError::Transient => write!(f, "transient device fault (retry may succeed)"),
        }
    }
}

impl std::error::Error for DiskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DiskError::OutOfRange { addr: 10, limit: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('5'));
        let e = DiskError::BadBufferLength {
            expected: 512,
            actual: 4096,
        };
        assert!(e.to_string().contains("512"));
        assert!(DiskError::NoSpace.to_string().contains("free space"));
        assert!(DiskError::Corrupt("tail record")
            .to_string()
            .contains("tail record"));
    }
}
