//! Disk geometry: cylinders, tracks, sectors and address arithmetic.
//!
//! The paper's eager-writing analysis is phrased in terms of classic
//! cylinder/track/sector geometry (Table 1 gives sectors per track and
//! tracks per cylinder for both disks), so the simulator exposes that
//! geometry precisely. Multi-zone recording is supported — the paper notes
//! its Seagate model "simulates a single density zone while the actual disk
//! has multiple zones", so the default specs are single-zone, but zoned
//! layouts are available for sensitivity experiments.

use crate::error::{DiskError, Result};

/// A contiguous run of cylinders sharing one sectors-per-track density.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zone {
    /// First cylinder of the zone (inclusive).
    pub first_cyl: u32,
    /// Number of cylinders in the zone.
    pub cylinders: u32,
    /// Sectors recorded on each track of this zone.
    pub sectors_per_track: u32,
}

impl Zone {
    /// Number of sectors the zone holds given `tracks` heads per cylinder.
    pub fn sectors(&self, tracks: u32) -> u64 {
        self.cylinders as u64 * tracks as u64 * self.sectors_per_track as u64
    }
}

/// A physical disk address: cylinder, track (head) and sector-within-track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysAddr {
    /// Cylinder number, 0 at the outer edge.
    pub cyl: u32,
    /// Track within the cylinder, i.e. the head that reads it.
    pub track: u32,
    /// Sector within the track.
    pub sector: u32,
}

impl PhysAddr {
    /// Convenience constructor.
    pub const fn new(cyl: u32, track: u32, sector: u32) -> Self {
        Self { cyl, track, sector }
    }
}

/// Full geometry of a simulated disk.
///
/// Logical block addresses (LBAs) map onto the geometry in the conventional
/// order: sectors along a track, then tracks within a cylinder, then
/// cylinders outward-in — the same order in which sequential transfers are
/// cheapest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Geometry {
    tracks_per_cylinder: u32,
    zones: Vec<Zone>,
    /// Cumulative sector count at the start of each zone (same length as
    /// `zones`, plus a final total entry).
    zone_starts: Vec<u64>,
    total_sectors: u64,
    total_cylinders: u32,
}

impl Geometry {
    /// Build a single-zone geometry — the layout both paper disk models use.
    pub fn uniform(cylinders: u32, tracks_per_cylinder: u32, sectors_per_track: u32) -> Self {
        Self::zoned(
            tracks_per_cylinder,
            vec![Zone {
                first_cyl: 0,
                cylinders,
                sectors_per_track,
            }],
        )
    }

    /// Build a multi-zone geometry. Zones must be contiguous from cylinder 0.
    ///
    /// # Panics
    ///
    /// Panics if the zone list is empty, not contiguous, or any dimension is
    /// zero — these are programming errors in test/bench setup, not runtime
    /// conditions.
    pub fn zoned(tracks_per_cylinder: u32, zones: Vec<Zone>) -> Self {
        assert!(!zones.is_empty(), "geometry needs at least one zone");
        assert!(tracks_per_cylinder > 0, "geometry needs at least one track");
        let mut next_cyl = 0u32;
        let mut zone_starts = Vec::with_capacity(zones.len() + 1);
        let mut total = 0u64;
        for z in &zones {
            assert_eq!(z.first_cyl, next_cyl, "zones must be contiguous");
            assert!(
                z.cylinders > 0 && z.sectors_per_track > 0,
                "zone dimensions must be nonzero"
            );
            zone_starts.push(total);
            total += z.sectors(tracks_per_cylinder);
            next_cyl += z.cylinders;
        }
        zone_starts.push(total);
        Self {
            tracks_per_cylinder,
            zones,
            zone_starts,
            total_sectors: total,
            total_cylinders: next_cyl,
        }
    }

    /// Heads (tracks per cylinder).
    #[inline]
    pub fn tracks_per_cylinder(&self) -> u32 {
        self.tracks_per_cylinder
    }

    /// Total number of cylinders.
    #[inline]
    pub fn cylinders(&self) -> u32 {
        self.total_cylinders
    }

    /// Total addressable sectors.
    #[inline]
    pub fn total_sectors(&self) -> u64 {
        self.total_sectors
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_sectors * crate::SECTOR_BYTES as u64
    }

    /// The recording zones, outermost first.
    #[inline]
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Index of the zone containing `cyl`.
    fn zone_of_cyl(&self, cyl: u32) -> Result<usize> {
        if cyl >= self.total_cylinders {
            return Err(DiskError::OutOfRange {
                addr: cyl as u64,
                limit: self.total_cylinders as u64,
            });
        }
        // Zones are few (usually 1); linear scan is fine and branch-friendly.
        for (i, z) in self.zones.iter().enumerate() {
            if cyl < z.first_cyl + z.cylinders {
                return Ok(i);
            }
        }
        unreachable!("cylinder bounds already checked")
    }

    /// Sectors per track on cylinder `cyl`.
    pub fn sectors_per_track(&self, cyl: u32) -> Result<u32> {
        Ok(self.zones[self.zone_of_cyl(cyl)?].sectors_per_track)
    }

    /// Sectors in one full cylinder at `cyl`.
    pub fn sectors_per_cylinder(&self, cyl: u32) -> Result<u64> {
        Ok(self.sectors_per_track(cyl)? as u64 * self.tracks_per_cylinder as u64)
    }

    /// Translate an LBA to its physical location.
    pub fn lba_to_phys(&self, lba: u64) -> Result<PhysAddr> {
        if lba >= self.total_sectors {
            return Err(DiskError::OutOfRange {
                addr: lba,
                limit: self.total_sectors,
            });
        }
        let zi = match self.zone_starts.binary_search(&lba) {
            Ok(i) if i == self.zones.len() => i - 1,
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let z = &self.zones[zi];
        let in_zone = lba - self.zone_starts[zi];
        let per_cyl = z.sectors_per_track as u64 * self.tracks_per_cylinder as u64;
        let cyl = z.first_cyl + (in_zone / per_cyl) as u32;
        let in_cyl = in_zone % per_cyl;
        let track = (in_cyl / z.sectors_per_track as u64) as u32;
        let sector = (in_cyl % z.sectors_per_track as u64) as u32;
        Ok(PhysAddr { cyl, track, sector })
    }

    /// Translate a physical location back to its LBA.
    pub fn phys_to_lba(&self, p: PhysAddr) -> Result<u64> {
        let zi = self.zone_of_cyl(p.cyl)?;
        let z = &self.zones[zi];
        if p.track >= self.tracks_per_cylinder {
            return Err(DiskError::OutOfRange {
                addr: p.track as u64,
                limit: self.tracks_per_cylinder as u64,
            });
        }
        if p.sector >= z.sectors_per_track {
            return Err(DiskError::OutOfRange {
                addr: p.sector as u64,
                limit: z.sectors_per_track as u64,
            });
        }
        let per_cyl = z.sectors_per_track as u64 * self.tracks_per_cylinder as u64;
        Ok(self.zone_starts[zi]
            + (p.cyl - z.first_cyl) as u64 * per_cyl
            + p.track as u64 * z.sectors_per_track as u64
            + p.sector as u64)
    }

    /// First LBA of the given track — useful for whole-track operations such
    /// as the VLD compactor.
    pub fn track_start_lba(&self, cyl: u32, track: u32) -> Result<u64> {
        self.phys_to_lba(PhysAddr {
            cyl,
            track,
            sector: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Geometry {
        Geometry::uniform(4, 2, 8) // 4 cyls, 2 heads, 8 sectors => 64 sectors
    }

    #[test]
    fn uniform_totals() {
        let g = small();
        assert_eq!(g.total_sectors(), 64);
        assert_eq!(g.cylinders(), 4);
        assert_eq!(g.capacity_bytes(), 64 * 512);
        assert_eq!(g.sectors_per_track(3).unwrap(), 8);
        assert_eq!(g.sectors_per_cylinder(0).unwrap(), 16);
    }

    #[test]
    fn lba_roundtrip_uniform() {
        let g = small();
        for lba in 0..g.total_sectors() {
            let p = g.lba_to_phys(lba).unwrap();
            assert_eq!(g.phys_to_lba(p).unwrap(), lba);
        }
    }

    #[test]
    fn lba_order_is_track_then_head_then_cylinder() {
        let g = small();
        assert_eq!(g.lba_to_phys(0).unwrap(), PhysAddr::new(0, 0, 0));
        assert_eq!(g.lba_to_phys(7).unwrap(), PhysAddr::new(0, 0, 7));
        assert_eq!(g.lba_to_phys(8).unwrap(), PhysAddr::new(0, 1, 0));
        assert_eq!(g.lba_to_phys(16).unwrap(), PhysAddr::new(1, 0, 0));
    }

    #[test]
    fn out_of_range_rejected() {
        let g = small();
        assert!(matches!(
            g.lba_to_phys(64),
            Err(DiskError::OutOfRange { .. })
        ));
        assert!(g.phys_to_lba(PhysAddr::new(4, 0, 0)).is_err());
        assert!(g.phys_to_lba(PhysAddr::new(0, 2, 0)).is_err());
        assert!(g.phys_to_lba(PhysAddr::new(0, 0, 8)).is_err());
    }

    #[test]
    fn zoned_roundtrip() {
        let g = Geometry::zoned(
            2,
            vec![
                Zone {
                    first_cyl: 0,
                    cylinders: 2,
                    sectors_per_track: 16,
                },
                Zone {
                    first_cyl: 2,
                    cylinders: 3,
                    sectors_per_track: 8,
                },
            ],
        );
        assert_eq!(g.total_sectors(), 2 * 2 * 16 + 3 * 2 * 8);
        for lba in 0..g.total_sectors() {
            let p = g.lba_to_phys(lba).unwrap();
            assert_eq!(g.phys_to_lba(p).unwrap(), lba);
        }
        // First sector of the inner zone.
        let p = g.lba_to_phys(64).unwrap();
        assert_eq!(p, PhysAddr::new(2, 0, 0));
        assert_eq!(g.sectors_per_track(2).unwrap(), 8);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn zones_must_be_contiguous() {
        let _ = Geometry::zoned(
            1,
            vec![
                Zone {
                    first_cyl: 0,
                    cylinders: 2,
                    sectors_per_track: 4,
                },
                Zone {
                    first_cyl: 3,
                    cylinders: 1,
                    sectors_per_track: 4,
                },
            ],
        );
    }

    #[test]
    fn track_start_lba_matches_phys() {
        let g = small();
        assert_eq!(g.track_start_lba(1, 1).unwrap(), 24);
    }
}
