//! The mechanical timing model: seek curve, rotation and head switches.
//!
//! Seek time follows the two-piece curve popularised by Ruemmler & Wilkes'
//! HP97560 characterisation (and used by the Dartmouth simulator the paper
//! ported): a square-root region for short seeks where the arm is
//! accelerating, and a linear region for long seeks where it coasts:
//!
//! ```text
//! seek(d) = a + b * sqrt(d)   for 0 < d < threshold
//! seek(d) = c + e * d         for d >= threshold
//! ```
//!
//! Rotation is uniform: the platters never stop, so the rotational position
//! at absolute time `t` is `(t % rev) / rev` of a revolution.

use std::sync::Arc;

/// Piecewise seek-time curve plus fixed per-event costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechModel {
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Head (track) switch time in nanoseconds, including settle.
    pub head_switch_ns: u64,
    /// Square-root region constant term, milliseconds.
    pub seek_a_ms: f64,
    /// Square-root region coefficient, milliseconds per sqrt(cylinder).
    pub seek_b_ms: f64,
    /// Boundary (in cylinders) between the two seek regions.
    pub seek_threshold: u32,
    /// Linear region constant term, milliseconds.
    pub seek_c_ms: f64,
    /// Linear region slope, milliseconds per cylinder.
    pub seek_e_ms: f64,
}

impl MechModel {
    /// One full revolution, in nanoseconds.
    #[inline]
    pub fn revolution_ns(&self) -> u64 {
        // 60 s/min * 1e9 ns/s / rpm
        60_000_000_000 / self.rpm as u64
    }

    /// Time for one sector to pass under the head on a track holding
    /// `sectors_per_track` sectors.
    #[inline]
    pub fn sector_ns(&self, sectors_per_track: u32) -> u64 {
        self.revolution_ns() / sectors_per_track as u64
    }

    /// Media transfer time for `count` contiguous sectors on one track.
    #[inline]
    pub fn transfer_ns(&self, count: u32, sectors_per_track: u32) -> u64 {
        count as u64 * self.sector_ns(sectors_per_track)
    }

    /// Seek time for a cylinder distance of `d` cylinders. Zero distance is
    /// free; the minimum (single-cylinder) seek is `seek_ns(1)`.
    pub fn seek_ns(&self, d: u32) -> u64 {
        if d == 0 {
            return 0;
        }
        let ms = if d < self.seek_threshold {
            self.seek_a_ms + self.seek_b_ms * (d as f64).sqrt()
        } else {
            self.seek_c_ms + self.seek_e_ms * d as f64
        };
        crate::ms_to_ns(ms)
    }

    /// Positioning cost of moving from `(cyl, track)` to another track:
    /// the larger of the cylinder seek and the head switch, since the
    /// actuator and head-select settle overlap.
    pub fn reposition_ns(&self, from_cyl: u32, from_track: u32, to_cyl: u32, to_track: u32) -> u64 {
        let seek = self.seek_ns(from_cyl.abs_diff(to_cyl));
        let switch = if from_track != to_track || from_cyl != to_cyl {
            // Selecting a different head — and after any cylinder seek the
            // drive must settle on the (possibly same-numbered) head anyway;
            // model cross-cylinder settles as part of the seek curve.
            if from_cyl == to_cyl {
                self.head_switch_ns
            } else {
                0
            }
        } else {
            0
        };
        seek.max(switch)
    }

    /// Precompute the seek curve over every distance a disk of `cylinders`
    /// cylinders can ask for, replacing the per-call `sqrt` with a lookup.
    ///
    /// Tables are interned process-wide by (curve, cylinder count): every
    /// disk built from the same spec — pool workers, snapshot forks, the
    /// oracle rebuild path — shares one allocation instead of re-deriving
    /// the curve per system.
    pub fn seek_table(&self, cylinders: u32) -> SeekTable {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        type Key = (u32, u64, u64, u64, u32, u64, u64, u32);
        static TABLES: OnceLock<Mutex<HashMap<Key, Arc<[u64]>>>> = OnceLock::new();
        let key = (
            self.rpm,
            self.head_switch_ns,
            self.seek_a_ms.to_bits(),
            self.seek_b_ms.to_bits(),
            self.seek_threshold,
            self.seek_c_ms.to_bits(),
            self.seek_e_ms.to_bits(),
            cylinders,
        );
        let mut tables = TABLES
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("seek-table cache poisoned");
        let ns = tables
            .entry(key)
            .or_insert_with(|| (0..cylinders.max(1)).map(|d| self.seek_ns(d)).collect())
            .clone();
        SeekTable { ns }
    }

    /// Rotational offset (in sectors) of the head over a track with
    /// `sectors_per_track` sectors at absolute time `t_ns`: which sector
    /// boundary most recently passed under the head.
    #[inline]
    pub fn sector_under_head(&self, t_ns: u64, sectors_per_track: u32) -> u32 {
        let rev = self.revolution_ns();
        let in_rev = t_ns % rev;
        ((in_rev as u128 * sectors_per_track as u128) / rev as u128) as u32
    }

    /// Nanoseconds from absolute time `t_ns` until the *start* of sector
    /// `target` next passes under the head.
    pub fn rotational_wait_ns(&self, t_ns: u64, target: u32, sectors_per_track: u32) -> u64 {
        let rev = self.revolution_ns();
        let sector_ns = self.sector_ns(sectors_per_track);
        let target_start = target as u64 * sector_ns;
        let in_rev = t_ns % rev;
        if target_start >= in_rev {
            target_start - in_rev
        } else {
            rev - in_rev + target_start
        }
    }
}

/// Precomputed seek times for every cylinder distance on one disk.
///
/// `seek_ns` sits on the allocator's innermost loop (every candidate ranking
/// and every lower-bound prune evaluates it); the two-piece curve costs a
/// float `sqrt` per call, so the table turns that into an indexed load. The
/// values are produced by [`MechModel::seek_ns`] itself, so table and curve
/// agree bit-for-bit. The storage is shared (`Arc`): cloning a table — per
/// pool worker, per snapshot fork — copies a pointer, not the curve.
#[derive(Debug, Clone)]
pub struct SeekTable {
    ns: Arc<[u64]>,
}

impl SeekTable {
    /// Seek time for a cylinder distance of `d`. Distances beyond the
    /// precomputed range (never produced by a valid geometry) fall back to
    /// the largest tabulated distance's cost.
    #[inline]
    pub fn get(&self, d: u32) -> u64 {
        match self.ns.get(d as usize) {
            Some(&ns) => ns,
            None => *self.ns.last().expect("table is never empty"),
        }
    }

    /// Number of tabulated distances.
    pub fn len(&self) -> usize {
        self.ns.len()
    }

    /// Is the table empty? (Never true; kept for the `len` convention.)
    pub fn is_empty(&self) -> bool {
        self.ns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MechModel {
        MechModel {
            rpm: 6000, // 10 ms/rev for round numbers
            head_switch_ns: 1_000_000,
            seek_a_ms: 3.24,
            seek_b_ms: 0.4,
            seek_threshold: 383,
            seek_c_ms: 8.0,
            seek_e_ms: 0.008,
        }
    }

    #[test]
    fn revolution_time() {
        assert_eq!(model().revolution_ns(), 10_000_000);
        assert_eq!(model().sector_ns(100), 100_000);
    }

    #[test]
    fn seek_curve_pieces() {
        let m = model();
        assert_eq!(m.seek_ns(0), 0);
        // Short seek: 3.24 + 0.4*sqrt(1) = 3.64 ms.
        assert_eq!(m.seek_ns(1), crate::ms_to_ns(3.64));
        // At the threshold the linear region applies: 8.00 + 0.008*383.
        assert_eq!(m.seek_ns(383), crate::ms_to_ns(8.0 + 0.008 * 383.0));
        // Long seeks grow linearly.
        assert!(m.seek_ns(1000) > m.seek_ns(383));
    }

    #[test]
    fn seek_is_monotonic() {
        let m = model();
        let mut prev = 0;
        for d in 0..1500 {
            let s = m.seek_ns(d);
            assert!(s >= prev, "seek not monotonic at {d}");
            prev = s;
        }
    }

    #[test]
    fn seek_table_matches_curve() {
        let m = model();
        let table = m.seek_table(1500);
        for d in 0..1500 {
            assert_eq!(table.get(d), m.seek_ns(d), "table diverges at {d}");
        }
        // Out-of-range distances clamp to the longest tabulated seek.
        assert_eq!(table.get(5000), m.seek_ns(1499));
        assert_eq!(table.len(), 1500);
        assert!(!table.is_empty());
    }

    #[test]
    fn reposition_overlaps_seek_and_switch() {
        let m = model();
        // Same track: free.
        assert_eq!(m.reposition_ns(5, 2, 5, 2), 0);
        // Same cylinder, different head: head switch.
        assert_eq!(m.reposition_ns(5, 2, 5, 3), m.head_switch_ns);
        // Different cylinder: the seek dominates the switch.
        assert_eq!(m.reposition_ns(5, 2, 6, 3), m.seek_ns(1));
    }

    #[test]
    fn sector_under_head_wraps() {
        let m = model();
        assert_eq!(m.sector_under_head(0, 100), 0);
        assert_eq!(m.sector_under_head(150_000, 100), 1);
        assert_eq!(m.sector_under_head(10_000_000, 100), 0); // full rev
        assert_eq!(m.sector_under_head(10_100_000, 100), 1);
    }

    #[test]
    fn rotational_wait_reaches_target_start() {
        let m = model();
        // At t=0, head at sector 0's start; waiting for sector 3 takes 3 sector times.
        assert_eq!(m.rotational_wait_ns(0, 3, 100), 300_000);
        // Just past sector 3: nearly a full revolution.
        let t = 300_001;
        let w = m.rotational_wait_ns(t, 3, 100);
        assert_eq!(t + w, 10_300_000);
    }

    #[test]
    fn rotational_wait_is_less_than_one_rev() {
        let m = model();
        for t in (0..20_000_000).step_by(314_159) {
            for target in [0, 1, 50, 99] {
                assert!(m.rotational_wait_ns(t, target, 100) < m.revolution_ns());
            }
        }
    }
}
