//! Disk-image persistence: save and load the sector store.
//!
//! The simulator's state is otherwise in-memory only; images let tools and
//! tests move a "drive" between processes — e.g. crash a VLD in one run and
//! recover it in another, or keep fixture volumes on disk.
//!
//! Format (little-endian): magic `"VDSK"`, version, geometry dimensions
//! (validated against the spec on load), then the materialised tracks as
//! `(cyl, track, raw bytes)` triples. Untouched (all-zero) tracks are not
//! stored.

use std::io::{self, Read, Write};

use crate::clock::SimClock;
use crate::disk::Disk;
use crate::spec::DiskSpec;
use crate::SECTOR_BYTES;

const IMAGE_MAGIC: &[u8; 4] = b"VDSK";
const IMAGE_VERSION: u16 = 1;

impl Disk {
    /// Write the disk's contents as an image.
    pub fn save_image<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let g = &self.spec().geometry;
        w.write_all(IMAGE_MAGIC)?;
        w.write_all(&IMAGE_VERSION.to_le_bytes())?;
        w.write_all(&g.cylinders().to_le_bytes())?;
        w.write_all(&g.tracks_per_cylinder().to_le_bytes())?;
        let tracks = self.materialised_tracks();
        w.write_all(&(tracks.len() as u32).to_le_bytes())?;
        for (cyl, track) in tracks {
            let spt = g
                .sectors_per_track(cyl)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let mut buf = vec![0u8; spt as usize * SECTOR_BYTES];
            let start = g
                .track_start_lba(cyl, track)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            self.peek_sectors(start, &mut buf)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            w.write_all(&cyl.to_le_bytes())?;
            w.write_all(&track.to_le_bytes())?;
            w.write_all(&buf)?;
        }
        Ok(())
    }

    /// Load an image saved by [`Disk::save_image`] onto a fresh disk of the
    /// given spec. Fails if the image's geometry does not match.
    pub fn load_image<R: Read>(spec: DiskSpec, clock: SimClock, r: &mut R) -> io::Result<Disk> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != IMAGE_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a disk image",
            ));
        }
        let version = read_u16(r)?;
        if version != IMAGE_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unknown image version",
            ));
        }
        let cyls = read_u32(r)?;
        let tpc = read_u32(r)?;
        if cyls != spec.geometry.cylinders() || tpc != spec.geometry.tracks_per_cylinder() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "image geometry does not match the spec",
            ));
        }
        let mut disk = Disk::new(spec, clock);
        let n = read_u32(r)?;
        for _ in 0..n {
            let cyl = read_u32(r)?;
            let track = read_u32(r)?;
            let spt = disk
                .spec()
                .geometry
                .sectors_per_track(cyl)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let mut buf = vec![0u8; spt as usize * SECTOR_BYTES];
            r.read_exact(&mut buf)?;
            let start = disk
                .spec()
                .geometry
                .track_start_lba(cyl, track)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            disk.poke_sectors(start, &buf)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        }
        Ok(disk)
    }
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_round_trip() {
        let mut d = Disk::new(DiskSpec::st19101_sim(), SimClock::new());
        d.write_sectors(100, &vec![0xABu8; 8 * SECTOR_BYTES])
            .unwrap();
        d.write_sectors(9000, &vec![0xCDu8; SECTOR_BYTES]).unwrap();
        let mut img = Vec::new();
        d.save_image(&mut img).unwrap();
        let d2 = Disk::load_image(
            DiskSpec::st19101_sim(),
            SimClock::new(),
            &mut img.as_slice(),
        )
        .unwrap();
        for (lba, len, fill) in [(100u64, 8usize, 0xABu8), (9000, 1, 0xCD), (0, 4, 0)] {
            let mut buf = vec![0xFFu8; len * SECTOR_BYTES];
            d2.peek_sectors(lba, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == fill), "lba {lba}");
        }
    }

    #[test]
    fn sparse_tracks_stay_sparse() {
        let mut d = Disk::new(DiskSpec::st19101_sim(), SimClock::new());
        d.write_sectors(0, &vec![1u8; SECTOR_BYTES]).unwrap();
        let mut img = Vec::new();
        d.save_image(&mut img).unwrap();
        // One track of payload plus a small header — far less than the
        // 23 MB capacity.
        assert!(img.len() < 256 * SECTOR_BYTES + 64);
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let d = Disk::new(DiskSpec::st19101_sim(), SimClock::new());
        let mut img = Vec::new();
        d.save_image(&mut img).unwrap();
        let err = Disk::load_image(
            DiskSpec::hp97560_sim(),
            SimClock::new(),
            &mut img.as_slice(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn garbage_rejected() {
        let err = Disk::load_image(
            DiskSpec::st19101_sim(),
            SimClock::new(),
            &mut &b"not an image"[..],
        );
        assert!(err.is_err());
    }

    /// Round-trip property over seeded sparse workloads: random block
    /// writes and trims through the block layer, then save → load must
    /// reproduce the sector store byte-for-byte — same materialised
    /// tracks, same contents, untouched space still reads as zeros.
    #[test]
    fn property_round_trip_random_sparse_writes_and_trims() {
        use crate::device::{BlockDevice, RegularDisk};
        const BS: usize = 4096;
        for seed in 0..6u64 {
            let mut dev = RegularDisk::new(DiskSpec::st19101_sim(), SimClock::new(), BS);
            let span = dev.num_blocks();
            let mut touched = Vec::new();
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for _ in 0..300 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let blk = (x >> 16) % span;
                match x % 4 {
                    // Trim a previously written block (a no-op on an
                    // update-in-place disk, but part of the op mix: it must
                    // never perturb the image).
                    0 if !touched.is_empty() => {
                        let victim = touched[(x >> 32) as usize % touched.len()];
                        dev.trim(victim).unwrap();
                    }
                    _ => {
                        dev.write_block(blk, &vec![(x >> 24) as u8; BS]).unwrap();
                        touched.push(blk);
                    }
                }
            }
            let mut img = Vec::new();
            dev.disk().save_image(&mut img).unwrap();
            let copy = Disk::load_image(
                DiskSpec::st19101_sim(),
                SimClock::new(),
                &mut img.as_slice(),
            )
            .unwrap();
            // Sparseness is preserved exactly, and every materialised
            // track is byte-identical.
            assert_eq!(
                dev.disk().materialised_tracks(),
                copy.materialised_tracks(),
                "seed {seed}: materialised track set drifted"
            );
            let g = &copy.spec().geometry;
            for (cyl, track) in dev.disk().materialised_tracks() {
                let spt = g.sectors_per_track(cyl).unwrap() as usize;
                let start = g.track_start_lba(cyl, track).unwrap();
                let mut a = vec![0u8; spt * SECTOR_BYTES];
                let mut b = vec![0u8; spt * SECTOR_BYTES];
                dev.disk().peek_sectors(start, &mut a).unwrap();
                copy.peek_sectors(start, &mut b).unwrap();
                assert_eq!(a, b, "seed {seed}: track ({cyl},{track}) differs");
            }
            // A block the workload never wrote still reads as zeros.
            let untouched = (0..span)
                .find(|b| !touched.contains(b))
                .expect("workload cannot fill the disk");
            let mut z = vec![0xFFu8; BS];
            copy.peek_sectors(untouched * (BS / SECTOR_BYTES) as u64, &mut z)
                .unwrap();
            assert!(z.iter().all(|&b| b == 0), "seed {seed}: ghost data");
        }
    }

    #[test]
    fn heavy_workload_image_fidelity() {
        // Image fidelity under a scattered write-through workload (the
        // vlog-core integration tests exercise crash recovery on top).
        let mut d = Disk::new(DiskSpec::st19101_sim(), SimClock::new());
        for i in 0..2000u64 {
            d.write_sectors((i * 37) % 40000, &vec![i as u8; SECTOR_BYTES])
                .unwrap();
        }
        let mut img = Vec::new();
        d.save_image(&mut img).unwrap();
        let d2 = Disk::load_image(
            DiskSpec::st19101_sim(),
            SimClock::new(),
            &mut img.as_slice(),
        )
        .unwrap();
        for i in (0..2000u64).step_by(111) {
            let mut a = vec![0u8; SECTOR_BYTES];
            let mut b = vec![0u8; SECTOR_BYTES];
            d.peek_sectors((i * 37) % 40000, &mut a).unwrap();
            d2.peek_sectors((i * 37) % 40000, &mut b).unwrap();
            assert_eq!(a, b);
        }
    }
}
