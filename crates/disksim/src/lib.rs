#![warn(missing_docs)]
//! # disksim — a discrete-time disk mechanics simulator
//!
//! This crate re-implements the simulation substrate used by the OSDI '99
//! paper *Virtual Log Based File Systems for a Programmable Disk*: a
//! mechanically faithful model of a rotating disk (seek, rotation, head
//! switch, command overhead, media transfer) driven by a virtual clock.
//!
//! The paper ported the Dartmouth HP97560 simulator into the Solaris kernel
//! and re-parameterised it to approximate a Seagate ST19101 (Cheetah). Here
//! the same two parameter sets (paper Table 1) drive a from-scratch
//! discrete-time model:
//!
//! * [`SimClock`] — a shared virtual clock in nanoseconds. Platters spin
//!   continuously, so the rotational angle is a pure function of absolute
//!   time; advancing the clock *is* rotating the disk.
//! * [`Geometry`] — cylinders × tracks × sectors addressing with optional
//!   multi-zone layouts.
//! * [`MechModel`] — the seek-time curve, head-switch and rotation costs.
//! * [`Disk`] — the stateful device: it owns the sector store, the head
//!   position and a track read-ahead buffer, and reports a per-request
//!   [`ServiceTime`] breakdown (the paper's Figure 9 categories).
//! * [`BlockDevice`] — the logical-disk interface the file systems run on;
//!   [`RegularDisk`] is the classic update-in-place implementation.
//!
//! All times are simulated; nothing here sleeps.

pub mod cache;
pub mod clock;
pub mod device;
pub mod disk;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod image;
pub mod mech;
pub mod par;
pub mod refmode;
pub mod sched;
pub mod service;
pub mod spec;
pub mod trackbuf;

pub use cache::{CachePolicy, TrackCache};
pub use clock::SimClock;
pub use device::{downcast_device, probe_device, BlockDevice, DeviceSnapshot, RegularDisk};
pub use disk::{CylinderPricer, Disk, DiskSnapshot, DiskStats, HeadPosition, TrackPricer};
pub use error::{DiskError, Result};
pub use fault::{FaultDisk, FaultLog, FaultPlan, WriteFault};
pub use geometry::{Geometry, PhysAddr, Zone};
pub use mech::{MechModel, SeekTable};
pub use refmode::reference_mode;
pub use sched::SchedPolicy;
pub use service::ServiceTime;
pub use spec::DiskSpec;

// Observability types, re-exported so device consumers need not depend on
// `obs` directly.
pub use obs::span;
pub use obs::{FlightRecorder, Metrics, OpKind, SpanKind, SpanRecord, Spans, TraceEvent, Tracer};

/// Size of the smallest addressable unit, in bytes (both paper disks use
/// 512-byte sectors).
pub const SECTOR_BYTES: usize = 512;

/// Nanoseconds per millisecond, used throughout for parameter conversion.
pub const NS_PER_MS: u64 = 1_000_000;

/// Convert milliseconds (as used in the paper's tables) to nanoseconds.
#[inline]
pub fn ms_to_ns(ms: f64) -> u64 {
    (ms * NS_PER_MS as f64).round() as u64
}

/// Convert nanoseconds to milliseconds for reporting.
#[inline]
pub fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / NS_PER_MS as f64
}
