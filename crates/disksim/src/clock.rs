//! The shared virtual clock.
//!
//! Every timed component of the simulation (disk, file system, benchmark
//! harness) holds a handle to one [`SimClock`]. Time only moves when a
//! component explicitly advances it, which makes runs fully deterministic
//! and lets the harness measure "elapsed" time without ever sleeping —
//! the same trick the paper's kernel ramdisk played in its fast mode.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of clock advances.
///
/// Every timed simulation event — a disk access, an idle wait, a host
/// compute delay — moves some [`SimClock`] forward exactly once, so this
/// counter is a cheap, thread-safe proxy for "simulated events executed".
/// The benchmark harness reads it to report simulated-events-per-second
/// throughput alongside wall-clock time.
static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Total clock advances across all clocks ever created in this process.
pub fn events() -> u64 {
    EVENTS.load(Ordering::Relaxed)
}

/// Credit `n` events to the process-wide counter without moving any clock.
///
/// Used by snapshot forks: restoring a captured system skips re-executing
/// its setup workload, so the fork credits the events that workload *would*
/// have generated. Event accounting then reads the same whether a system
/// was rebuilt from scratch or forked from a snapshot.
pub fn add_events(n: u64) {
    EVENTS.fetch_add(n, Ordering::Relaxed);
}

/// Remove `n` events from the process-wide counter (the inverse of
/// [`add_events`]).
///
/// Used once per cached snapshot build: the build's own events are
/// subtracted and then re-credited by *every* fork restored from it
/// (including the builder's), so a section that builds once and forks k
/// times reports exactly the k×(build+measure) events a from-scratch
/// rebuild of every cell would.
pub fn sub_events(n: u64) {
    EVENTS.fetch_sub(n, Ordering::Relaxed);
}

/// A shared, monotonically increasing virtual clock in nanoseconds.
///
/// Cloning a `SimClock` yields another handle to the *same* clock; this is
/// how the disk, the virtual log, the file system and the benchmark driver
/// all observe a single notion of simulated time.
///
/// ```
/// use disksim::SimClock;
/// let clock = SimClock::new();
/// let disk_view = clock.clone();
/// clock.advance(1_000);
/// assert_eq!(disk_view.now(), 1_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_ns: Rc<Cell<u64>>,
    /// Advances made through *this* clock (all handles share the cell).
    /// Unlike the global [`events`] counter this is race-free per system,
    /// which is what snapshots capture and credit on fork.
    local_events: Rc<Cell<u64>>,
}

impl SimClock {
    /// Create a new clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recreate a clock captured by a snapshot: time and per-clock event
    /// count are restored as-is, and the restoration itself does **not**
    /// count as a simulation event.
    pub fn restore(now_ns: u64, local_events: u64) -> Self {
        Self {
            now_ns: Rc::new(Cell::new(now_ns)),
            local_events: Rc::new(Cell::new(local_events)),
        }
    }

    /// Current simulated time in nanoseconds since the start of the run.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now_ns.get()
    }

    /// Advances made through this clock (and its clones) so far.
    #[inline]
    pub fn local_events(&self) -> u64 {
        self.local_events.get()
    }

    /// Advance the clock by `delta_ns` nanoseconds and return the new time.
    #[inline]
    pub fn advance(&self, delta_ns: u64) -> u64 {
        EVENTS.fetch_add(1, Ordering::Relaxed);
        self.local_events.set(self.local_events.get() + 1);
        let t = self.now_ns.get() + delta_ns;
        self.now_ns.set(t);
        t
    }

    /// Move the clock forward to an absolute time.
    ///
    /// A no-op if `target_ns` is in the past; the clock never runs backwards.
    #[inline]
    pub fn advance_to(&self, target_ns: u64) {
        if target_ns > self.now_ns.get() {
            EVENTS.fetch_add(1, Ordering::Relaxed);
            self.local_events.set(self.local_events.get() + 1);
            self.now_ns.set(target_ns);
        }
    }

    /// Number of independent handles observing this clock (diagnostics only).
    pub fn handles(&self) -> usize {
        Rc::strong_count(&self.now_ns)
    }
}

/// A simple stopwatch over a [`SimClock`], used by the benchmark harness to
/// time phases of a workload in simulated time.
#[derive(Debug)]
pub struct Stopwatch {
    clock: SimClock,
    start_ns: u64,
}

impl Stopwatch {
    /// Start timing from the clock's current instant.
    pub fn start(clock: &SimClock) -> Self {
        Self {
            clock: clock.clone(),
            start_ns: clock.now(),
        }
    }

    /// Nanoseconds elapsed since this stopwatch was started.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now() - self.start_ns
    }

    /// Milliseconds elapsed since this stopwatch was started.
    pub fn elapsed_ms(&self) -> f64 {
        crate::ns_to_ms(self.elapsed_ns())
    }

    /// Restart the stopwatch at the current instant.
    pub fn reset(&mut self) {
        self.start_ns = self.clock.now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(10);
        c.advance(32);
        assert_eq!(c.now(), 42);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(100);
        assert_eq!(b.now(), 100);
        b.advance(1);
        assert_eq!(a.now(), 101);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::new();
        c.advance(500);
        c.advance_to(300);
        assert_eq!(c.now(), 500);
        c.advance_to(700);
        assert_eq!(c.now(), 700);
    }

    #[test]
    fn stopwatch_measures_elapsed() {
        let c = SimClock::new();
        c.advance(5);
        let mut w = Stopwatch::start(&c);
        c.advance(1_000_000);
        assert_eq!(w.elapsed_ns(), 1_000_000);
        assert!((w.elapsed_ms() - 1.0).abs() < 1e-9);
        w.reset();
        assert_eq!(w.elapsed_ns(), 0);
    }

    #[test]
    fn handle_count_tracks_clones() {
        let a = SimClock::new();
        assert_eq!(a.handles(), 1);
        let b = a.clone();
        assert_eq!(b.handles(), 2);
    }
}
