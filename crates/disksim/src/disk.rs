//! The stateful simulated disk.
//!
//! [`Disk`] combines a [`DiskSpec`] with a virtual clock, a sparse sector
//! store, the arm/head state and a track read-ahead buffer. Every timed
//! operation returns the [`ServiceTime`] it consumed and advances the shared
//! clock by exactly that amount.
//!
//! Rotational position is not stored: the platters spin continuously, so the
//! sector under the head is a pure function of the clock (plus per-track
//! skew). This makes timing exact across arbitrarily interleaved operations,
//! including the eager-writing previews the virtual log uses to choose the
//! cheapest free sector.

use std::sync::Arc;

use obs::{Metrics, OpKind, Spans, TraceEvent, Tracer};

use crate::cache::{CachePolicy, TrackCache};
use crate::clock::SimClock;
use crate::error::{DiskError, Result};
use crate::geometry::PhysAddr;
use crate::mech::SeekTable;
use crate::service::ServiceTime;
use crate::spec::DiskSpec;
use crate::trackbuf::TrackBuf;
use crate::SECTOR_BYTES;

/// Where the head is right now: the track it is on, and the sector slot
/// currently passing beneath it (in logical sector numbering, i.e. with the
/// track's skew already removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadPosition {
    /// Cylinder the arm is parked over.
    pub cyl: u32,
    /// Selected head (track within the cylinder).
    pub track: u32,
    /// Logical sector number currently under the head on that track.
    pub sector: u32,
}

/// Precomputed repositioning plan for pricing candidate sectors on one
/// track at one instant — built by [`Disk::track_pricer`] (or specialised
/// from a [`CylinderPricer`]), consumed by [`Disk::priced_cost`]. Every
/// division behind `sector_under_head` / `rotational_wait_ns` /
/// `sector_ns` is done once here; pricing a sector is then adds, compares
/// and one multiply. Stale as soon as the head moves or the clock
/// advances.
#[derive(Debug, Clone, Copy)]
pub struct TrackPricer {
    /// Sectors per track on the plan's cylinder.
    spt: u32,
    /// Tabulated seek component of the reposition.
    seek_ns: u64,
    /// Head-switch component (0 when the plan's track is the head's own).
    head_switch_ns: u64,
    /// One revolution, and the time one sector takes to pass the head.
    rev_ns: u64,
    sector_ns: u64,
    /// Angular position of the head within the revolution at arrival time.
    in_rev: u64,
    /// The track's angular skew, already reduced modulo `spt`.
    skew: u32,
    /// First logical sector whose start passes under the head after the
    /// reposition — the seed for a rotational-encounter-order scan.
    pub arrival: u32,
}

/// The cylinder-wide part of a repositioning plan: every track of one
/// cylinder shares the same seek, the same arrival instant and therefore
/// the same angular arithmetic — only the per-track skew differs. Built by
/// [`Disk::cylinder_pricer`], specialised per track with
/// [`Disk::track_pricer_from`]. The lone exception is the head's own track
/// on the head's own cylinder (no head switch): price it with
/// [`Disk::track_pricer`] directly.
#[derive(Debug, Clone, Copy)]
pub struct CylinderPricer {
    cyl: u32,
    spt: u32,
    seek_ns: u64,
    head_switch_ns: u64,
    rev_ns: u64,
    sector_ns: u64,
    in_rev: u64,
    /// Physical slot whose boundary arrives first (already advanced past
    /// the partially-gone sector).
    slot_plus1: u32,
}

/// Cumulative operation counters for a disk.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskStats {
    /// Number of read commands serviced.
    pub reads: u64,
    /// Number of write commands serviced.
    pub writes: u64,
    /// Sectors transferred by reads (including buffer hits).
    pub sectors_read: u64,
    /// Sectors transferred by writes.
    pub sectors_written: u64,
    /// Total simulated busy time, by component.
    pub busy: ServiceTime,
}

/// Sparse per-track sector store; tracks are materialised (zero-filled) on
/// first touch so full-size multi-gigabyte disks cost nothing until used.
///
/// Layout is a flat slot table indexed `cyl * tracks_per_cylinder + track`
/// (the tracks-per-cylinder count is uniform across the disk, only the
/// sectors per track vary by zone), so the per-access cost is one bounds-
/// checked index instead of a hash probe — this sits under every simulated
/// sector transfer. Unmaterialised tracks stay `None`, which preserves the
/// sparse-image semantics: a slot's buffer is allocated (zero-filled, at
/// that cylinder's zone size) only on first write.
///
/// A frozen disk image flattened into one contiguous allocation: every
/// materialised track's bytes packed back-to-back in `data`, located by a
/// per-slot offset table.
///
/// This is the media layer a [`DiskSnapshot`] retains and every fork reads
/// through until it writes. Packing matters as much as sharing: a cached
/// snapshot that instead kept ~200 live track-sized `Arc` buffers peppers
/// the allocator's arena with same-sized chunks, and a few dozen retained
/// snapshots degrade *every* later track-sized allocation in the process
/// (measured: ~100× on glibc). One multi-megabyte allocation per snapshot
/// leaves the arena clean.
#[derive(Debug)]
struct BaseImage {
    /// Per-slot `(start, len)` byte range into `data`; `None` means the
    /// track was never materialised (reads as zeros).
    offsets: Vec<Option<(u32, u32)>>,
    data: Vec<u8>,
}

impl BaseImage {
    fn track(&self, slot: usize) -> Option<&[u8]> {
        self.offsets[slot].map(|(off, len)| &self.data[off as usize..(off + len) as usize])
    }
}

/// Tracks are held behind `Arc` so a snapshot of the whole store is one
/// pointer clone per materialised track; a write to a track whose buffer is
/// shared with a snapshot copies that one track first (copy-on-write at
/// track granularity — the same discipline `fscore`'s buffer cache applies
/// per block). The buffers themselves are [`TrackBuf`]s, whose allocations
/// recycle through a process-wide pool so fork-heavy runs don't churn the
/// global allocator with track-sized chunks.
///
/// A store restored from a [`DiskSnapshot`] starts with an empty overlay
/// on top of the snapshot's flattened [`BaseImage`]: reads fall through to
/// the base, and the first write to a track materialises a private copy in
/// the overlay — so restoring costs O(slots) pointer-sized writes no
/// matter how much media the captured workload produced.
#[derive(Debug)]
struct TrackStore {
    tracks: Vec<Option<Arc<TrackBuf>>>,
    base: Option<Arc<BaseImage>>,
    tracks_per_cyl: u32,
}

impl TrackStore {
    fn new(geometry: &crate::Geometry) -> Self {
        let tracks_per_cyl = geometry.tracks_per_cylinder();
        let slots = geometry.cylinders() as usize * tracks_per_cyl as usize;
        Self {
            tracks: vec![None; slots],
            base: None,
            tracks_per_cyl,
        }
    }

    #[inline]
    fn slot(&self, cyl: u32, track: u32) -> usize {
        cyl as usize * self.tracks_per_cyl as usize + track as usize
    }

    fn track_mut(&mut self, cyl: u32, track: u32, spt: u32) -> &mut [u8] {
        let slot = self.slot(cyl, track);
        let base = &self.base;
        let arc = self.tracks[slot].get_or_insert_with(|| {
            // First write since the fork: materialise the track in the
            // overlay, seeded from the base image if it has data there.
            Arc::new(match base.as_ref().and_then(|b| b.track(slot)) {
                Some(src) => TrackBuf::copy_of(src),
                None => TrackBuf::zeroed(spt as usize * SECTOR_BYTES),
            })
        });
        // Shared with a snapshot (or a sibling fork): `make_mut` copies this
        // one track before the first mutation so the sharers keep their
        // bytes (`TrackBuf::clone` draws the copy from the buffer pool).
        &mut *Arc::make_mut(arc)
    }

    /// The track's current bytes, overlay first, then the base image.
    fn track_bytes(&self, slot: usize) -> Option<&[u8]> {
        match &self.tracks[slot] {
            Some(t) => Some(&t[..]),
            None => self.base.as_ref().and_then(|b| b.track(slot)),
        }
    }

    fn read(&self, cyl: u32, track: u32, sector: u32, buf: &mut [u8]) {
        match self.track_bytes(self.slot(cyl, track)) {
            Some(t) => {
                let off = sector as usize * SECTOR_BYTES;
                buf.copy_from_slice(&t[off..off + buf.len()]);
            }
            None => buf.fill(0),
        }
    }

    fn write(&mut self, cyl: u32, track: u32, sector: u32, spt: u32, buf: &[u8]) {
        let t = self.track_mut(cyl, track, spt);
        let off = sector as usize * SECTOR_BYTES;
        t[off..off + buf.len()].copy_from_slice(buf);
    }
}

/// One contiguous piece of a request that fits on a single track.
#[derive(Debug, Clone, Copy)]
struct Run {
    cyl: u32,
    track: u32,
    sector: u32,
    count: u32,
    spt: u32,
}

/// The simulated drive.
#[derive(Debug)]
pub struct Disk {
    spec: DiskSpec,
    clock: SimClock,
    store: TrackStore,
    cur_cyl: u32,
    cur_track: u32,
    cache: TrackCache,
    stats: DiskStats,
    /// Precomputed seek curve (one entry per cylinder distance).
    seek: SeekTable,
    /// Optional event tracer; `None` costs a single branch per op.
    tracer: Option<Tracer>,
    /// Metrics handle; disabled by default (no-op after one branch).
    metrics: Metrics,
    /// Causal-span handle; disabled by default (no-op after one branch).
    spans: Spans,
    /// Cached "any observability sink attached?" flag, recomputed whenever
    /// a tracer/metrics/spans handle is (de)attached. Command dispatch
    /// checks this single predictable bool instead of probing all three
    /// handles, so fully-disabled tracing costs one branch per operation.
    obs_enabled: bool,
}

impl Disk {
    /// Create a disk from a spec, attached to the given clock, with the
    /// stock (conservative) read-ahead policy.
    pub fn new(spec: DiskSpec, clock: SimClock) -> Self {
        let seek = spec.mech.seek_table(spec.geometry.cylinders());
        let store = TrackStore::new(&spec.geometry);
        Self {
            spec,
            clock,
            store,
            cur_cyl: 0,
            cur_track: 0,
            cache: TrackCache::new(CachePolicy::Conservative),
            stats: DiskStats::default(),
            seek,
            tracer: None,
            metrics: Metrics::disabled(),
            spans: Spans::disabled(),
            obs_enabled: false,
        }
    }

    /// Recompute the cached observability flag after a handle change.
    fn refresh_obs(&mut self) {
        self.obs_enabled =
            self.tracer.is_some() || self.metrics.is_enabled() || self.spans.is_enabled();
    }

    /// Attach (or detach, with `None`) an event tracer. Every timed
    /// operation that accumulates into [`DiskStats::busy`] emits exactly
    /// one [`TraceEvent`] carrying the same [`ServiceTime`] breakdown, so
    /// the component sums of a complete trace equal the busy totals.
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.tracer = tracer;
        self.refresh_obs();
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Attach a metrics handle (pass `Metrics::disabled()` to detach).
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
        self.refresh_obs();
    }

    /// Attach a causal-span handle (pass `Spans::disabled()` to detach).
    /// Every timed operation is attributed to the innermost span open on
    /// this handle at completion time; layers above share clones of the
    /// same handle so their spans are the attribution targets.
    pub fn set_spans(&mut self, spans: Spans) {
        self.spans = spans;
        self.refresh_obs();
    }

    /// The attached span handle (disabled handles are cheap to clone).
    pub fn spans(&self) -> &Spans {
        &self.spans
    }

    /// Record one completed operation to the span table, tracer and
    /// metrics. With every sink detached this is one predictable branch.
    #[inline]
    fn observe_op(&self, kind: OpKind, lba: u64, sectors: u32, loc: (u32, u32, u32), seek_cyls: u32, st: ServiceTime) {
        if !self.obs_enabled {
            return;
        }
        // Attribute the busy time to the innermost open span first, so the
        // trace event can be stamped with the owning span's id.
        let (span, span_kind) = self.spans.attribute(st.total_ns());
        if let Some(tr) = &self.tracer {
            tr.record(TraceEvent {
                at_ns: self.clock.now(),
                kind,
                scope: 0,
                span,
                lba,
                sectors,
                cyl: loc.0,
                track: loc.1,
                sector: loc.2,
                seek_cyls,
                overhead_ns: st.overhead_ns,
                seek_ns: st.seek_ns,
                head_switch_ns: st.head_switch_ns,
                rotation_ns: st.rotation_ns,
                transfer_ns: st.transfer_ns,
            });
        }
        if self.metrics.is_enabled() {
            match kind {
                OpKind::Read => {
                    self.metrics.inc("disk.reads");
                    self.metrics.observe("disk.read_ns", st.total_ns());
                }
                OpKind::Write => {
                    self.metrics.inc("disk.writes");
                    self.metrics.observe("disk.write_ns", st.total_ns());
                }
                OpKind::Seek | OpKind::Fault => {
                    self.metrics.inc("disk.seeks");
                    self.metrics.observe("disk.seek_ns", st.total_ns());
                }
            }
            self.metrics.observe("disk.seek_cyls", seek_cyls as u64);
            if self.spans.is_enabled() {
                // Per-kind attributed time: the counters partition the
                // disk's cumulative busy time exactly (unattributed time
                // gets its own key), so their sum equals the busy-sum.
                let (ns_key, cmd_key) = match span_kind {
                    Some(k) => (k.disk_ns_counter(), k.disk_cmds_counter()),
                    None => (
                        obs::span::UNATTRIBUTED_DISK_NS,
                        obs::span::UNATTRIBUTED_DISK_CMDS,
                    ),
                };
                self.metrics.add(ns_key, st.total_ns());
                self.metrics.inc(cmd_key);
            }
        }
    }

    /// Record the batched-run shape of one command: how many same-track
    /// contiguous runs it collapsed into a single clock event (each run's
    /// length in sectors is observed as the command is planned).
    #[inline]
    fn observe_run_count(&self, n_runs: u64) {
        if self.obs_enabled && self.metrics.is_enabled() {
            self.metrics.observe("disk.runs_per_cmd", n_runs);
        }
    }

    /// Tabulated seek time for a cylinder distance of `d` (identical to
    /// `spec().mech.seek_ns(d)`, without the per-call float work).
    #[inline]
    pub fn seek_ns(&self, d: u32) -> u64 {
        self.seek.get(d)
    }

    /// Lower bound on the positioning cost from the head's current location
    /// to *any* sector of (`cyl`, `track`): the seek / head-switch time
    /// alone, before rotation. Lets an allocator discard a whole track with
    /// one table lookup when an incumbent candidate is already cheaper.
    #[inline]
    pub fn reposition_lower_bound_ns(&self, cyl: u32, track: u32) -> u64 {
        let seek = self.seek.get(self.cur_cyl.abs_diff(cyl));
        let switch = if self.cur_cyl == cyl && self.cur_track != track {
            self.spec.mech.head_switch_ns
        } else {
            0
        };
        seek.max(switch)
    }

    /// The drive's specification.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// Handle to the shared clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// The current simulated instant — equivalent to `clock().now()` but
    /// without cloning the clock handle, for per-append hot paths.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.clock.now()
    }

    /// Advance the shared clock without cloning the handle.
    #[inline]
    pub fn advance_ns(&self, ns: u64) {
        self.clock.advance(ns);
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Read-ahead hit/miss counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Switch the read-ahead buffer policy (drops buffered data).
    pub fn set_cache_policy(&mut self, policy: CachePolicy) {
        self.cache.set_policy(policy);
    }

    /// The active read-ahead policy.
    pub fn cache_policy(&self) -> CachePolicy {
        self.cache.policy()
    }

    /// Where the head is at the current instant.
    pub fn head(&self) -> HeadPosition {
        let spt = self
            .spec
            .geometry
            .sectors_per_track(self.cur_cyl)
            .expect("head is always on a valid cylinder");
        let slot = self.spec.mech.sector_under_head(self.clock.now(), spt);
        // Remove the track's skew to express the position in logical sectors.
        let skew = self.skew(self.cur_cyl, self.cur_track) % spt;
        let sector = (slot + spt - skew) % spt;
        HeadPosition {
            cyl: self.cur_cyl,
            track: self.cur_track,
            sector,
        }
    }

    /// Angular skew (in sectors) applied to the given track.
    fn skew(&self, cyl: u32, track: u32) -> u32 {
        track
            .wrapping_mul(self.spec.track_skew)
            .wrapping_add(cyl.wrapping_mul(self.spec.cyl_skew))
    }

    /// The angular slot at which `sector` of (cyl, track) physically sits.
    fn angular_slot(&self, cyl: u32, track: u32, sector: u32, spt: u32) -> u32 {
        (sector + self.skew(cyl, track) % spt) % spt
    }

    /// Validate a sector-range request up front, so the per-track runs can
    /// then be produced one at a time ([`Self::run_at`]) without allocating
    /// a request-sized list — run planning sits under every simulated
    /// command, so it must not touch the heap.
    fn check_range(&self, lba: u64, count: u32) -> Result<()> {
        let total = self.spec.geometry.total_sectors();
        if lba >= total {
            return Err(DiskError::OutOfRange {
                addr: lba,
                limit: total,
            });
        }
        if lba + count as u64 > total {
            return Err(DiskError::TruncatedTransfer);
        }
        Ok(())
    }

    /// The per-track run starting at `next` with `left` sectors still to
    /// transfer (the run ends at the track boundary or the request end,
    /// whichever comes first). The range must have passed
    /// [`Self::check_range`].
    #[inline]
    fn run_at(&self, next: u64, left: u32) -> Result<Run> {
        let p = self.spec.geometry.lba_to_phys(next)?;
        let spt = self.spec.geometry.sectors_per_track(p.cyl)?;
        Ok(Run {
            cyl: p.cyl,
            track: p.track,
            sector: p.sector,
            count: left.min(spt - p.sector),
            spt,
        })
    }

    /// Mechanical cost of servicing `run` from the media, starting with the
    /// head over (`from_cyl`, `from_track`) at absolute time `t`.
    fn plan_run(&self, run: &Run, from_cyl: u32, from_track: u32, t: u64) -> ServiceTime {
        let mech = &self.spec.mech;
        let seek = self.seek.get(from_cyl.abs_diff(run.cyl));
        let switch = if from_cyl == run.cyl && from_track != run.track {
            mech.head_switch_ns
        } else {
            0
        };
        let reposition = seek.max(switch);
        let t_pos = t + reposition;
        let slot = self.angular_slot(run.cyl, run.track, run.sector, run.spt);
        let rotation = mech.rotational_wait_ns(t_pos, slot, run.spt);
        let transfer = mech.transfer_ns(run.count, run.spt);
        ServiceTime {
            overhead_ns: 0,
            seek_ns: seek,
            head_switch_ns: if seek >= switch { 0 } else { switch },
            rotation_ns: rotation,
            transfer_ns: transfer,
        }
    }

    /// The first logical sector whose *start* will pass under the head after
    /// repositioning from the current position (starting now) to
    /// (`cyl`, `track`). Scanning a track's free list from this sector in
    /// ascending rotational order visits candidates in order of increasing
    /// rotational delay — the seed an eager allocator wants.
    pub fn arrival_sector(&self, cyl: u32, track: u32) -> Result<u32> {
        let spt = self.spec.geometry.sectors_per_track(cyl)?;
        if track >= self.spec.geometry.tracks_per_cylinder() {
            return Err(DiskError::OutOfRange {
                addr: track as u64,
                limit: self.spec.geometry.tracks_per_cylinder() as u64,
            });
        }
        let mech = &self.spec.mech;
        let seek = self.seek.get(self.cur_cyl.abs_diff(cyl));
        let switch = if self.cur_cyl == cyl && self.cur_track != track {
            mech.head_switch_ns
        } else {
            0
        };
        let t_pos = self.clock.now() + seek.max(switch);
        // The sector currently passing is partially gone; the next boundary
        // to arrive is slot+1.
        let slot = (mech.sector_under_head(t_pos, spt) + 1) % spt;
        let skew = self.skew(cyl, track) % spt;
        Ok((slot + spt - skew) % spt)
    }

    /// The cylinder-wide repositioning plan shared by every track of `cyl`
    /// (reached with a head switch when `cyl` is the head's own cylinder):
    /// the seek lookup, the arrival instant and all the angular divisions,
    /// done once. Specialise per track with [`Self::track_pricer_from`].
    /// The plan is only valid while the head position and clock are
    /// unchanged — and it does *not* cover the head's own track (which is
    /// reached without a head switch); use [`Self::track_pricer`] there.
    #[inline]
    pub fn cylinder_pricer(&self, cyl: u32) -> Result<CylinderPricer> {
        let spt = self.spec.geometry.sectors_per_track(cyl)?;
        let mech = &self.spec.mech;
        let seek = self.seek.get(self.cur_cyl.abs_diff(cyl));
        let switch = if self.cur_cyl == cyl {
            mech.head_switch_ns
        } else {
            0
        };
        let t_pos = self.clock.now() + seek.max(switch);
        let rev_ns = mech.revolution_ns();
        let sector_ns = rev_ns / spt as u64;
        let in_rev = t_pos % rev_ns;
        // Same arrival rule as `arrival_sector`: the sector currently
        // passing is partially gone, so the next boundary is slot + 1.
        let slot_plus1 = ((in_rev as u128 * spt as u128 / rev_ns as u128) as u32 + 1) % spt;
        Ok(CylinderPricer {
            cyl,
            spt,
            seek_ns: seek,
            head_switch_ns: switch,
            rev_ns,
            sector_ns,
            in_rev,
            slot_plus1,
        })
    }

    /// Specialise a [`CylinderPricer`] to one of its tracks: only the
    /// track's skew is new work — the seek, arrival instant and angular
    /// divisions are reused from the cylinder plan.
    #[inline]
    pub fn track_pricer_from(&self, c: &CylinderPricer, track: u32) -> TrackPricer {
        let skew = self.skew(c.cyl, track) % c.spt;
        TrackPricer {
            spt: c.spt,
            seek_ns: c.seek_ns,
            head_switch_ns: c.head_switch_ns,
            rev_ns: c.rev_ns,
            sector_ns: c.sector_ns,
            in_rev: c.in_rev,
            skew,
            arrival: (c.slot_plus1 + c.spt - skew) % c.spt,
        }
    }

    /// One-shot repositioning plan for pricing candidates on a single track
    /// from the current instant: the seek/switch/arrival trigonometry that
    /// [`Self::arrival_sector`] and [`Self::position_cost`] would each
    /// redo, computed once. The caller scans the free map from
    /// [`TrackPricer::arrival`] and prices the hit with
    /// [`Self::priced_cost`]. The plan is only valid while the head
    /// position and clock are unchanged.
    #[inline]
    pub fn track_pricer(&self, cyl: u32, track: u32) -> Result<TrackPricer> {
        if track >= self.spec.geometry.tracks_per_cylinder() {
            return Err(DiskError::OutOfRange {
                addr: track as u64,
                limit: self.spec.geometry.tracks_per_cylinder() as u64,
            });
        }
        let mut c = self.cylinder_pricer(cyl)?;
        if self.cur_cyl == cyl && self.cur_track == track {
            // The head's own track: no head switch, so the arrival instant
            // (and hence the angular state) differs from the rest of the
            // cylinder; redo the cheap part of the plan without the switch.
            c.head_switch_ns = 0;
            let t_pos = self.clock.now() + c.seek_ns;
            c.in_rev = t_pos % c.rev_ns;
            c.slot_plus1 =
                ((c.in_rev as u128 * c.spt as u128 / c.rev_ns as u128) as u32 + 1) % c.spt;
        }
        Ok(self.track_pricer_from(&c, track))
    }

    /// Exact positioning cost of `sector` on the track a [`TrackPricer`]
    /// was built for — identical to [`Self::position_cost`] of the same
    /// sector, minus the repeated repositioning work (no divisions: the
    /// plan carries all the angular state). `sector` must lie on the
    /// pricer's track.
    #[inline]
    pub fn priced_cost(&self, p: &TrackPricer, sector: u32) -> ServiceTime {
        debug_assert!(sector < p.spt, "sector off the priced track");
        let slot = (sector + p.skew) % p.spt;
        let target_start = slot as u64 * p.sector_ns;
        let rotation = if target_start >= p.in_rev {
            target_start - p.in_rev
        } else {
            p.rev_ns - p.in_rev + target_start
        };
        ServiceTime {
            overhead_ns: 0,
            seek_ns: p.seek_ns,
            head_switch_ns: if p.seek_ns >= p.head_switch_ns {
                0
            } else {
                p.head_switch_ns
            },
            rotation_ns: rotation,
            transfer_ns: 0,
        }
    }

    /// Pure positioning cost (seek + head switch + rotation, no overhead or
    /// transfer) of moving the head from where it is *now* to the start of
    /// `sector` on (`cyl`, `track`). This is the quantity an eager-writing
    /// allocator minimises when ranking candidate free sectors.
    pub fn position_cost(&self, cyl: u32, track: u32, sector: u32) -> Result<ServiceTime> {
        let spt = self.spec.geometry.sectors_per_track(cyl)?;
        if track >= self.spec.geometry.tracks_per_cylinder() || sector >= spt {
            return Err(DiskError::OutOfRange {
                addr: sector as u64,
                limit: spt as u64,
            });
        }
        let run = Run {
            cyl,
            track,
            sector,
            count: 0,
            spt,
        };
        Ok(self.plan_run(&run, self.cur_cyl, self.cur_track, self.clock.now()))
    }

    /// Estimate, without moving anything, the full service time of an access
    /// to `count` sectors at `lba` issued right now. Used by eager-writing
    /// allocators to rank candidate locations.
    pub fn preview_access(&self, lba: u64, count: u32) -> Result<ServiceTime> {
        self.check_range(lba, count)?;
        let mut t = self.clock.now() + self.spec.command_overhead_ns;
        let mut total = ServiceTime {
            overhead_ns: self.spec.command_overhead_ns,
            ..ServiceTime::ZERO
        };
        let (mut c, mut h) = (self.cur_cyl, self.cur_track);
        let mut next = lba;
        let mut left = count;
        while left > 0 {
            let run = self.run_at(next, left)?;
            let st = self.plan_run(&run, c, h, t);
            t += st.total_ns();
            total += st;
            c = run.cyl;
            h = run.track;
            next += run.count as u64;
            left -= run.count;
        }
        Ok(total)
    }

    /// Read `count` sectors starting at `lba` into `buf`, advancing the
    /// clock by the returned service time.
    ///
    /// The whole command is planned against an absolute-time cursor (the
    /// same arithmetic as [`Self::preview_access`]) and charged to the
    /// clock as **one** event, however many track runs it spans. With
    /// `VLFS_REFERENCE=1` the pre-batching stepwise discipline (one clock
    /// event per run) is used instead; both produce identical times.
    pub fn read_sectors(&mut self, lba: u64, buf: &mut [u8]) -> Result<ServiceTime> {
        self.read_sectors_impl(lba, buf, crate::reference_mode())
    }

    /// The stepwise reference discipline, callable directly by equivalence
    /// tests regardless of the `VLFS_REFERENCE` environment switch.
    #[doc(hidden)]
    pub fn read_sectors_stepwise(&mut self, lba: u64, buf: &mut [u8]) -> Result<ServiceTime> {
        self.read_sectors_impl(lba, buf, true)
    }

    fn read_sectors_impl(&mut self, lba: u64, buf: &mut [u8], stepwise: bool) -> Result<ServiceTime> {
        let count = Self::sector_count(buf.len())?;
        if count == 0 {
            return Ok(ServiceTime::ZERO);
        }
        self.check_range(lba, count)?;
        let mut total = ServiceTime {
            overhead_ns: self.spec.command_overhead_ns,
            ..ServiceTime::ZERO
        };
        if stepwise {
            self.clock.advance(self.spec.command_overhead_ns);
        }
        // Absolute-time cursor: in batched mode the clock itself stands
        // still until the whole command is planned, so rotational phases
        // are computed against `t` rather than `clock.now()`.
        let mut t = self.clock.now() + if stepwise { 0 } else { self.spec.command_overhead_ns };
        let from_cyl = self.cur_cyl;
        let mut off = 0usize;
        let mut next = lba;
        let mut left = count;
        let mut first: Option<Run> = None;
        let mut n_runs = 0u64;
        while left > 0 {
            let run = self.run_at(next, left)?;
            first.get_or_insert(run);
            n_runs += 1;
            if self.obs_enabled && self.metrics.is_enabled() {
                self.metrics.observe("disk.run_len", run.count as u64);
            }
            let part = &mut buf[off..off + run.count as usize * SECTOR_BYTES];
            if self.cache.lookup(run.cyl, run.track, run.sector, run.count) {
                // Buffer hit: deliver at media rate with no positioning and
                // without moving the head.
                let st = ServiceTime {
                    transfer_ns: self.spec.mech.transfer_ns(run.count, run.spt),
                    ..ServiceTime::ZERO
                };
                if stepwise {
                    self.clock.advance(st.total_ns());
                }
                t += st.total_ns();
                total += st;
            } else {
                let st = self.plan_run(&run, self.cur_cyl, self.cur_track, t);
                if stepwise {
                    self.clock.advance(st.total_ns());
                }
                t += st.total_ns();
                total += st;
                self.cur_cyl = run.cyl;
                self.cur_track = run.track;
                self.cache
                    .on_media_read(run.cyl, run.track, run.sector, run.count, run.spt);
            }
            self.store.read(run.cyl, run.track, run.sector, part);
            off += part.len();
            next += run.count as u64;
            left -= run.count;
        }
        if !stepwise {
            self.clock.advance(total.total_ns());
        }
        debug_assert_eq!(t, self.clock.now());
        self.observe_run_count(n_runs);
        self.stats.reads += 1;
        self.stats.sectors_read += count as u64;
        self.stats.busy += total;
        let r0 = first.expect("count > 0 yields at least one run");
        self.observe_op(
            OpKind::Read,
            lba,
            count,
            (r0.cyl, r0.track, r0.sector),
            from_cyl.abs_diff(self.cur_cyl),
            total,
        );
        Ok(total)
    }

    /// Write `buf` (a whole number of sectors) starting at `lba`, advancing
    /// the clock by the returned service time. Writes always reach the
    /// media; there is no write-back cache.
    ///
    /// Like [`Self::read_sectors`], the whole command is one clock event in
    /// the batched default and one event per track run under
    /// `VLFS_REFERENCE=1`, with identical arithmetic either way.
    pub fn write_sectors(&mut self, lba: u64, buf: &[u8]) -> Result<ServiceTime> {
        self.write_sectors_impl(lba, buf, crate::reference_mode())
    }

    /// The stepwise reference discipline, callable directly by equivalence
    /// tests regardless of the `VLFS_REFERENCE` environment switch.
    #[doc(hidden)]
    pub fn write_sectors_stepwise(&mut self, lba: u64, buf: &[u8]) -> Result<ServiceTime> {
        self.write_sectors_impl(lba, buf, true)
    }

    fn write_sectors_impl(&mut self, lba: u64, buf: &[u8], stepwise: bool) -> Result<ServiceTime> {
        let count = Self::sector_count(buf.len())?;
        if count == 0 {
            return Ok(ServiceTime::ZERO);
        }
        self.check_range(lba, count)?;
        let mut total = ServiceTime {
            overhead_ns: self.spec.command_overhead_ns,
            ..ServiceTime::ZERO
        };
        if stepwise {
            self.clock.advance(self.spec.command_overhead_ns);
        }
        let mut t = self.clock.now() + if stepwise { 0 } else { self.spec.command_overhead_ns };
        let from_cyl = self.cur_cyl;
        let mut off = 0usize;
        let mut next = lba;
        let mut left = count;
        let mut first: Option<Run> = None;
        let mut n_runs = 0u64;
        while left > 0 {
            let run = self.run_at(next, left)?;
            first.get_or_insert(run);
            n_runs += 1;
            if self.obs_enabled && self.metrics.is_enabled() {
                self.metrics.observe("disk.run_len", run.count as u64);
            }
            let st = self.plan_run(&run, self.cur_cyl, self.cur_track, t);
            if stepwise {
                self.clock.advance(st.total_ns());
            }
            t += st.total_ns();
            total += st;
            self.cur_cyl = run.cyl;
            self.cur_track = run.track;
            self.cache.on_write(run.cyl, run.track);
            let part = &buf[off..off + run.count as usize * SECTOR_BYTES];
            self.store
                .write(run.cyl, run.track, run.sector, run.spt, part);
            off += part.len();
            next += run.count as u64;
            left -= run.count;
        }
        if !stepwise {
            self.clock.advance(total.total_ns());
        }
        debug_assert_eq!(t, self.clock.now());
        self.observe_run_count(n_runs);
        self.stats.writes += 1;
        self.stats.sectors_written += count as u64;
        self.stats.busy += total;
        let r0 = first.expect("count > 0 yields at least one run");
        self.observe_op(
            OpKind::Write,
            lba,
            count,
            (r0.cyl, r0.track, r0.sector),
            from_cyl.abs_diff(self.cur_cyl),
            total,
        );
        Ok(total)
    }

    /// Read sectors with no simulated cost — for tests and for integrity
    /// checks that model out-of-band verification.
    pub fn peek_sectors(&self, lba: u64, buf: &mut [u8]) -> Result<()> {
        let count = Self::sector_count(buf.len())?;
        self.check_range(lba, count)?;
        let mut off = 0usize;
        let mut next = lba;
        let mut left = count;
        while left > 0 {
            let run = self.run_at(next, left)?;
            let part = &mut buf[off..off + run.count as usize * SECTOR_BYTES];
            self.store.read(run.cyl, run.track, run.sector, part);
            off += part.len();
            next += run.count as u64;
            left -= run.count;
        }
        Ok(())
    }

    /// Write sectors with no simulated cost — for test setup (e.g. aging a
    /// disk image) without perturbing the clock.
    pub fn poke_sectors(&mut self, lba: u64, buf: &[u8]) -> Result<()> {
        let count = Self::sector_count(buf.len())?;
        self.check_range(lba, count)?;
        let mut off = 0usize;
        let mut next = lba;
        let mut left = count;
        while left > 0 {
            let run = self.run_at(next, left)?;
            let part = &buf[off..off + run.count as usize * SECTOR_BYTES];
            self.store
                .write(run.cyl, run.track, run.sector, run.spt, part);
            off += part.len();
            next += run.count as u64;
            left -= run.count;
        }
        Ok(())
    }

    /// Move the head to a given track without transferring data, paying the
    /// mechanical cost. Used by firmware-level operations (e.g. parking).
    pub fn seek_to(&mut self, cyl: u32, track: u32) -> Result<ServiceTime> {
        if cyl >= self.spec.geometry.cylinders() {
            return Err(DiskError::OutOfRange {
                addr: cyl as u64,
                limit: self.spec.geometry.cylinders() as u64,
            });
        }
        let mech = &self.spec.mech;
        let seek = self.seek.get(self.cur_cyl.abs_diff(cyl));
        let switch = if self.cur_cyl == cyl && self.cur_track != track {
            mech.head_switch_ns
        } else {
            0
        };
        let st = ServiceTime {
            seek_ns: seek,
            head_switch_ns: if seek >= switch { 0 } else { switch },
            ..ServiceTime::ZERO
        };
        let seek_cyls = self.cur_cyl.abs_diff(cyl);
        self.clock.advance(st.total_ns());
        self.cur_cyl = cyl;
        self.cur_track = track;
        self.stats.busy += st;
        self.observe_op(OpKind::Seek, 0, 0, (cyl, track, 0), seek_cyls, st);
        Ok(st)
    }

    /// The (cylinder, track) pairs whose data has been materialised in the
    /// sparse store, in deterministic order. Used by image serialisation.
    /// The flat slot table yields them already sorted.
    pub fn materialised_tracks(&self) -> Vec<(u32, u32)> {
        let tpc = self.store.tracks_per_cyl;
        (0..self.store.tracks.len())
            .filter(|&i| self.store.track_bytes(i).is_some())
            .map(|i| (i as u32 / tpc, i as u32 % tpc))
            .collect()
    }

    /// Translate a physical address to an LBA (convenience passthrough).
    pub fn phys_to_lba(&self, p: PhysAddr) -> Result<u64> {
        self.spec.geometry.phys_to_lba(p)
    }

    /// Freeze this disk's complete mutable state. The media image is
    /// flattened into a single contiguous [`BaseImage`] allocation — an
    /// O(media bytes) copy, paid once per captured state — which every
    /// fork then shares; restoring is O(slots) regardless of media size,
    /// and a fork's first write to a track copies just that track.
    /// Observability handles (tracer/metrics/spans) are *not* captured; a
    /// restored disk starts with them disabled.
    pub fn snapshot(&self) -> DiskSnapshot {
        let slots = self.store.tracks.len();
        let total: usize = (0..slots)
            .filter_map(|i| self.store.track_bytes(i))
            .map(<[u8]>::len)
            .sum();
        let mut offsets = vec![None; slots];
        let mut data = Vec::with_capacity(total);
        for (i, slot_offsets) in offsets.iter_mut().enumerate() {
            if let Some(bytes) = self.store.track_bytes(i) {
                *slot_offsets = Some((data.len() as u32, bytes.len() as u32));
                data.extend_from_slice(bytes);
            }
        }
        DiskSnapshot {
            spec: self.spec.clone(),
            now_ns: self.clock.now(),
            local_events: self.clock.local_events(),
            base: Arc::new(BaseImage { offsets, data }),
            tracks_per_cyl: self.store.tracks_per_cyl,
            cur_cyl: self.cur_cyl,
            cur_track: self.cur_track,
            cache: self.cache.clone(),
            stats: self.stats,
            seek: self.seek.clone(),
        }
    }

    fn sector_count(bytes: usize) -> Result<u32> {
        if !bytes.is_multiple_of(SECTOR_BYTES) {
            return Err(DiskError::BadBufferLength {
                expected: (bytes / SECTOR_BYTES + 1) * SECTOR_BYTES,
                actual: bytes,
            });
        }
        Ok((bytes / SECTOR_BYTES) as u32)
    }
}

/// A frozen copy of a [`Disk`]'s complete mutable state: media image
/// (one flattened [`BaseImage`] every fork shares), clock instant,
/// arm/head position, read-ahead buffer and statistics.
///
/// The snapshot is `Send + Sync` plain data — it can be built once on one
/// thread and restored concurrently from many pool workers — and restoring
/// it is O(slots), independent of how much workload produced the state: a
/// fork starts with an empty copy-on-write overlay over the shared base
/// image. `restore` does not touch the process-wide event counter; callers
/// that want rebuild-equivalent event accounting credit
/// [`crate::clock::add_events`] with the captured
/// [`DiskSnapshot::local_events`] themselves.
#[derive(Debug, Clone)]
pub struct DiskSnapshot {
    spec: DiskSpec,
    now_ns: u64,
    local_events: u64,
    base: Arc<BaseImage>,
    tracks_per_cyl: u32,
    cur_cyl: u32,
    cur_track: u32,
    cache: TrackCache,
    stats: DiskStats,
    seek: SeekTable,
}

impl DiskSnapshot {
    /// Reconstruct an independent, fully-functional disk from this
    /// snapshot. The new disk has its own clock (restored to the captured
    /// instant) and disabled observability handles.
    pub fn restore(&self) -> Disk {
        Disk {
            spec: self.spec.clone(),
            clock: SimClock::restore(self.now_ns, self.local_events),
            store: TrackStore {
                tracks: vec![None; self.base.offsets.len()],
                base: Some(Arc::clone(&self.base)),
                tracks_per_cyl: self.tracks_per_cyl,
            },
            cur_cyl: self.cur_cyl,
            cur_track: self.cur_track,
            cache: self.cache.clone(),
            stats: self.stats,
            seek: self.seek.clone(),
            tracer: None,
            metrics: Metrics::disabled(),
            spans: Spans::disabled(),
            obs_enabled: false,
        }
    }

    /// Clock advances the captured system had made through its own clock
    /// when the snapshot was taken (see [`crate::clock::add_events`]).
    pub fn local_events(&self) -> u64 {
        self.local_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        // 6000 RPM-style round numbers come from the HP spec; use the real
        // paper disk to keep parameters honest.
        Disk::new(DiskSpec::hp97560_sim(), SimClock::new())
    }

    #[test]
    fn data_round_trips() {
        let mut d = disk();
        let w = vec![0xabu8; 4 * SECTOR_BYTES];
        d.write_sectors(100, &w).unwrap();
        let mut r = vec![0u8; 4 * SECTOR_BYTES];
        d.read_sectors(100, &mut r).unwrap();
        assert_eq!(w, r);
    }

    #[test]
    fn unwritten_sectors_read_zero() {
        let mut d = disk();
        let mut r = vec![0xffu8; SECTOR_BYTES];
        d.read_sectors(0, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0));
    }

    #[test]
    fn service_time_advances_clock_exactly() {
        let mut d = disk();
        let t0 = d.clock().now();
        let st = d.write_sectors(7, &vec![1u8; 2 * SECTOR_BYTES]).unwrap();
        assert_eq!(d.clock().now() - t0, st.total_ns());
    }

    #[test]
    fn write_includes_overhead_and_transfer() {
        let mut d = disk();
        let st = d.write_sectors(0, &vec![1u8; SECTOR_BYTES]).unwrap();
        assert_eq!(st.overhead_ns, d.spec().command_overhead_ns);
        assert_eq!(st.transfer_ns, d.spec().mech.sector_ns(72));
        // Starting position is cylinder 0/track 0, so no seek; rotation only.
        assert_eq!(st.seek_ns, 0);
        assert!(st.rotation_ns < d.spec().mech.revolution_ns());
    }

    #[test]
    fn cross_track_write_pays_head_switch_once() {
        let mut d = disk();
        // Sectors 70..74 span track 0 (72 sectors) into track 1.
        let st = d.write_sectors(70, &vec![1u8; 4 * SECTOR_BYTES]).unwrap();
        assert_eq!(st.head_switch_ns, d.spec().mech.head_switch_ns);
        assert_eq!(st.seek_ns, 0);
        // With skew, the post-switch rotational wait is far less than a rev.
        assert!(st.rotation_ns < 2 * d.spec().mech.revolution_ns());
        assert_eq!(d.head().track, 1);
    }

    #[test]
    fn skew_makes_sequential_cross_track_cheap() {
        let mut d = disk();
        // Write a full track plus a little; the second track's rotational
        // wait after the switch should be small thanks to skew.
        let buf = vec![1u8; 80 * SECTOR_BYTES];
        let st = d.write_sectors(0, &buf).unwrap();
        let rev = d.spec().mech.revolution_ns();
        // 80 sectors of transfer ≈ 1.11 revs; anything under ~2.2 revs total
        // mechanical time means we did not blow a full revolution on the
        // track switch.
        assert!(
            st.locate_ns() + st.transfer_ns < (5 * rev) / 2,
            "sequential cross-track too slow: {:?}",
            st
        );
    }

    #[test]
    fn preview_matches_actual_write() {
        let mut d = disk();
        d.write_sectors(30, &vec![1u8; SECTOR_BYTES]).unwrap();
        let preview = d.preview_access(500, 8).unwrap();
        let actual = d.write_sectors(500, &vec![2u8; 8 * SECTOR_BYTES]).unwrap();
        assert_eq!(preview, actual);
    }

    #[test]
    fn preview_does_not_disturb_state() {
        let mut d = disk();
        d.write_sectors(30, &vec![1u8; SECTOR_BYTES]).unwrap();
        let before_clock = d.clock().now();
        let before_head = d.head();
        let _ = d.preview_access(1000, 8).unwrap();
        assert_eq!(d.clock().now(), before_clock);
        assert_eq!(d.head(), before_head);
    }

    #[test]
    fn sequential_reread_hits_buffer() {
        let mut d = disk();
        d.write_sectors(0, &vec![1u8; 16 * SECTOR_BYTES]).unwrap();
        let mut buf = vec![0u8; 8 * SECTOR_BYTES];
        let first = d.read_sectors(0, &mut buf).unwrap();
        let second = d.read_sectors(8, &mut buf).unwrap();
        // The second read is within the read-ahead: no positioning at all.
        assert!(first.locate_ns() > 0);
        assert_eq!(second.locate_ns(), 0);
        assert_eq!(second.overhead_ns, d.spec().command_overhead_ns);
    }

    #[test]
    fn conservative_buffer_misses_backwards_read() {
        let mut d = disk();
        d.write_sectors(0, &vec![1u8; 32 * SECTOR_BYTES]).unwrap();
        let mut buf = vec![0u8; 8 * SECTOR_BYTES];
        d.read_sectors(16, &mut buf).unwrap();
        let back = d.read_sectors(0, &mut buf).unwrap();
        assert!(
            back.locate_ns() > 0,
            "backwards read should miss the buffer"
        );
        // Aggressive policy keeps the whole track instead.
        d.set_cache_policy(CachePolicy::AggressiveTrack);
        d.read_sectors(16, &mut buf).unwrap();
        let back = d.read_sectors(0, &mut buf).unwrap();
        assert_eq!(back.locate_ns(), 0);
    }

    #[test]
    fn write_invalidates_read_buffer() {
        let mut d = disk();
        let mut buf = vec![0u8; 8 * SECTOR_BYTES];
        d.read_sectors(0, &mut buf).unwrap();
        d.write_sectors(2, &vec![9u8; SECTOR_BYTES]).unwrap();
        let again = d.read_sectors(0, &mut buf).unwrap();
        assert!(again.locate_ns() > 0);
        assert_eq!(buf[2 * SECTOR_BYTES], 9);
    }

    #[test]
    fn out_of_range_requests_fail() {
        let mut d = disk();
        let total = d.spec().geometry.total_sectors();
        let mut buf = vec![0u8; SECTOR_BYTES];
        assert!(d.read_sectors(total, &mut buf).is_err());
        assert!(d
            .write_sectors(total - 1, &vec![0u8; 2 * SECTOR_BYTES])
            .is_err());
        assert!(d.read_sectors(0, &mut [0u8; 100]).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut d = disk();
        d.write_sectors(0, &vec![1u8; 8 * SECTOR_BYTES]).unwrap();
        let mut buf = vec![0u8; 8 * SECTOR_BYTES];
        d.read_sectors(0, &mut buf).unwrap();
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.sectors_read, 8);
        assert_eq!(s.sectors_written, 8);
        assert!(s.busy.total_ns() > 0);
    }

    #[test]
    fn peek_poke_are_free_and_visible() {
        let mut d = disk();
        let t0 = d.clock().now();
        d.poke_sectors(40, &vec![7u8; SECTOR_BYTES]).unwrap();
        let mut buf = vec![0u8; SECTOR_BYTES];
        d.peek_sectors(40, &mut buf).unwrap();
        assert_eq!(d.clock().now(), t0);
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn seek_to_moves_head_and_charges_time() {
        let mut d = disk();
        let st = d.seek_to(10, 3).unwrap();
        assert_eq!(st.seek_ns, d.spec().mech.seek_ns(10));
        assert_eq!(d.head().cyl, 10);
        assert_eq!(d.head().track, 3);
        assert!(d.seek_to(99, 0).is_err());
    }

    #[test]
    fn arrival_sector_minimises_rotation() {
        let mut spec = DiskSpec::hp97560_sim();
        spec.command_overhead_ns = 0;
        let mut d = Disk::new(spec, SimClock::new());
        d.write_sectors(100, &vec![1u8; SECTOR_BYTES]).unwrap();
        // On the head's own track, the arrival sector must be the cheapest
        // rotational target of all 72 sectors.
        let h = d.head();
        let a = d.arrival_sector(h.cyl, h.track).unwrap();
        let cost_a = d.position_cost(h.cyl, h.track, a).unwrap().rotation_ns;
        for s in 0..72 {
            let c = d.position_cost(h.cyl, h.track, s).unwrap().rotation_ns;
            assert!(cost_a <= c, "sector {s} beats arrival {a}: {c} < {cost_a}");
        }
        // Also holds across a head switch within the cylinder.
        let a2 = d.arrival_sector(h.cyl, (h.track + 1) % 19).unwrap();
        let cost_a2 = d
            .position_cost(h.cyl, (h.track + 1) % 19, a2)
            .unwrap()
            .rotation_ns;
        for s in 0..72 {
            let c = d
                .position_cost(h.cyl, (h.track + 1) % 19, s)
                .unwrap()
                .rotation_ns;
            assert!(cost_a2 <= c);
        }
        assert!(d.arrival_sector(0, 99).is_err());
    }

    #[test]
    fn position_cost_agrees_with_preview() {
        // position_cost assumes the mechanism starts moving now; that matches
        // preview_access exactly when the command overhead is zero (as it is
        // on the VLD's internal disk, the main consumer of this API).
        let mut spec = DiskSpec::hp97560_sim();
        spec.command_overhead_ns = 0;
        let mut d = Disk::new(spec, SimClock::new());
        d.write_sectors(123, &vec![1u8; SECTOR_BYTES]).unwrap();
        let lba = 600u64;
        let p = d.spec().geometry.lba_to_phys(lba).unwrap();
        let pos = d.position_cost(p.cyl, p.track, p.sector).unwrap();
        let full = d.preview_access(lba, 8).unwrap();
        assert_eq!(pos.locate_ns(), full.locate_ns());
        assert!(d.position_cost(0, 99, 0).is_err());
        assert!(d.position_cost(0, 0, 99).is_err());
    }

    #[test]
    fn head_position_tracks_rotation() {
        let d = disk();
        let h0 = d.head();
        // Advance 3.5 sector times: truncation in sector_ns cannot push the
        // head position across a boundary either way.
        d.clock().advance(d.spec().mech.sector_ns(72) * 7 / 2);
        let h1 = d.head();
        assert_eq!((h0.sector + 3) % 72, h1.sector);
    }
}
