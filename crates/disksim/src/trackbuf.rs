//! Pooled track-sized buffers for the sparse media store.
//!
//! Track buffers are large (36 KB on the HP97560, 128 KB on the ST19101)
//! and, once snapshot forking is in play, extremely churny: every
//! copy-on-write fault in a fork copies one track, and the copy is freed
//! when the fork is dropped. Allocating each copy from the global
//! allocator works, but interleaving thousands of short-lived track-sized
//! chunks with the long-lived ones retained by cached snapshots fragments
//! the main heap arena — after a few dozen retained snapshots, *every*
//! subsequent track-sized allocation (fresh builds included) slows down by
//! an order of magnitude.
//!
//! [`TrackBuf`] sidesteps the allocator instead of fighting it: dropping a
//! buffer parks its allocation on a process-wide free list keyed by size,
//! and the next materialisation or copy-on-write fault of the same track
//! size reuses it. Steady-state forking then performs no track-sized
//! malloc/free at all, so the heap layout — and the cost of everything
//! else that allocates — stays independent of how many snapshots are alive.
//!
//! The pool caps each size class ([`POOL_CAP_PER_SIZE`]); beyond the cap,
//! drops fall through to the allocator as before. Buffer *contents* are
//! never reused: every constructor fully overwrites the buffer, so pooling
//! is invisible to simulation results.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, OnceLock};

/// Maximum parked buffers per size class. A full simulated disk is ~200
/// tracks, so this comfortably covers several concurrently-dropped forks
/// while bounding parked memory (2048 ST19101 tracks = 256 MB worst case,
/// reached only if that much was simultaneously live before).
const POOL_CAP_PER_SIZE: usize = 2048;

/// Free lists of parked allocations, keyed by buffer size.
type FreeLists = HashMap<usize, Vec<Box<[u8]>>>;

fn pool() -> &'static Mutex<FreeLists> {
    static POOL: OnceLock<Mutex<FreeLists>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashMap::new()))
}

fn pool_take(len: usize) -> Option<Box<[u8]>> {
    pool().lock().ok()?.get_mut(&len)?.pop()
}

fn pool_put(data: Box<[u8]>) {
    if data.is_empty() {
        return;
    }
    if let Ok(mut p) = pool().lock() {
        let slot = p.entry(data.len()).or_default();
        if slot.len() < POOL_CAP_PER_SIZE {
            slot.push(data);
        }
    }
}

/// A track-sized byte buffer whose allocation is recycled through a
/// process-wide pool (see the module docs). Dereferences to `[u8]`;
/// `Clone` produces an independent copy (this is what `Arc::make_mut`
/// invokes on a copy-on-write fault).
pub struct TrackBuf {
    data: Box<[u8]>,
}

impl TrackBuf {
    /// A zero-filled buffer of `len` bytes (first materialisation of a
    /// sparse track).
    pub fn zeroed(len: usize) -> Self {
        match pool_take(len) {
            Some(mut data) => {
                data.fill(0);
                Self { data }
            }
            None => Self {
                data: vec![0u8; len].into_boxed_slice(),
            },
        }
    }

    /// An independent copy of `src` (copy-on-write fault).
    pub fn copy_of(src: &[u8]) -> Self {
        match pool_take(src.len()) {
            Some(mut data) => {
                data.copy_from_slice(src);
                Self { data }
            }
            None => Self {
                data: Box::from(src),
            },
        }
    }
}

impl Clone for TrackBuf {
    fn clone(&self) -> Self {
        Self::copy_of(&self.data)
    }
}

impl Drop for TrackBuf {
    fn drop(&mut self) {
        pool_put(std::mem::take(&mut self.data));
    }
}

impl Deref for TrackBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for TrackBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl std::fmt::Debug for TrackBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TrackBuf({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_even_after_reuse() {
        {
            let mut b = TrackBuf::zeroed(4096);
            b.fill(0xAB);
        } // parked dirty
        let b = TrackBuf::zeroed(4096);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn copy_of_matches_source_after_reuse() {
        {
            let mut b = TrackBuf::zeroed(512);
            b.fill(0xCD);
        }
        let src: Vec<u8> = (0..512).map(|i| i as u8).collect();
        let b = TrackBuf::copy_of(&src);
        assert_eq!(&b[..], &src[..]);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = TrackBuf::zeroed(64);
        a[0] = 1;
        let mut b = a.clone();
        b[0] = 2;
        assert_eq!(a[0], 1);
        assert_eq!(b[0], 2);
    }
}
