//! Per-request service-time accounting.
//!
//! The paper's Figure 9 decomposes small-write latency into four parts:
//! SCSI command overhead, the time to *locate* the target sectors (seek +
//! head switch + rotation), the media *transfer* time, and "other" (host
//! processing). [`ServiceTime`] carries the device-side components for a
//! single request; the host components are added by the file-system layer.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Breakdown of the simulated time one disk request consumed.
///
/// All fields are in nanoseconds. `total()` is what the caller's clock was
/// advanced by.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceTime {
    /// Controller/SCSI command processing (the paper's *o*).
    pub overhead_ns: u64,
    /// Arm movement between cylinders.
    pub seek_ns: u64,
    /// Head-select/settle when switching tracks inside a cylinder.
    pub head_switch_ns: u64,
    /// Rotational delay waiting for the target sector.
    pub rotation_ns: u64,
    /// Media transfer (or buffer transfer on a cache hit).
    pub transfer_ns: u64,
}

impl ServiceTime {
    /// A zero-cost service time (e.g. a fully cache-absorbed request).
    pub const ZERO: ServiceTime = ServiceTime {
        overhead_ns: 0,
        seek_ns: 0,
        head_switch_ns: 0,
        rotation_ns: 0,
        transfer_ns: 0,
    };

    /// The paper's "locate sectors" component: seek + head switch + rotation.
    #[inline]
    pub fn locate_ns(&self) -> u64 {
        self.seek_ns + self.head_switch_ns + self.rotation_ns
    }

    /// Total simulated time consumed by the request.
    #[inline]
    pub fn total_ns(&self) -> u64 {
        self.overhead_ns + self.locate_ns() + self.transfer_ns
    }

    /// Total in milliseconds, for reporting.
    #[inline]
    pub fn total_ms(&self) -> f64 {
        crate::ns_to_ms(self.total_ns())
    }

    /// A pure positioning estimate: overhead + locate, no transfer.
    pub fn positioning(
        overhead_ns: u64,
        seek_ns: u64,
        head_switch_ns: u64,
        rotation_ns: u64,
    ) -> Self {
        ServiceTime {
            overhead_ns,
            seek_ns,
            head_switch_ns,
            rotation_ns,
            transfer_ns: 0,
        }
    }
}

impl Add for ServiceTime {
    type Output = ServiceTime;
    fn add(self, rhs: ServiceTime) -> ServiceTime {
        ServiceTime {
            overhead_ns: self.overhead_ns + rhs.overhead_ns,
            seek_ns: self.seek_ns + rhs.seek_ns,
            head_switch_ns: self.head_switch_ns + rhs.head_switch_ns,
            rotation_ns: self.rotation_ns + rhs.rotation_ns,
            transfer_ns: self.transfer_ns + rhs.transfer_ns,
        }
    }
}

impl AddAssign for ServiceTime {
    fn add_assign(&mut self, rhs: ServiceTime) {
        *self = *self + rhs;
    }
}

impl Sum for ServiceTime {
    fn sum<I: Iterator<Item = ServiceTime>>(iter: I) -> ServiceTime {
        iter.fold(ServiceTime::ZERO, |a, b| a + b)
    }
}

/// Running totals of many requests, used by benchmarks to report averages
/// and Figure 9-style breakdowns.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Sum of all component times.
    pub sum: ServiceTime,
    /// Number of requests accumulated.
    pub count: u64,
}

impl ServiceStats {
    /// Fold one request into the totals.
    pub fn record(&mut self, t: ServiceTime) {
        self.sum += t;
        self.count += 1;
    }

    /// Mean total latency per request in milliseconds (0 if empty).
    pub fn mean_total_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            crate::ns_to_ms(self.sum.total_ns()) / self.count as f64
        }
    }

    /// Mean of each component in milliseconds, in Figure 9 order:
    /// (overhead, locate, transfer).
    pub fn mean_components_ms(&self) -> (f64, f64, f64) {
        if self.count == 0 {
            return (0.0, 0.0, 0.0);
        }
        let n = self.count as f64;
        (
            crate::ns_to_ms(self.sum.overhead_ns) / n,
            crate::ns_to_ms(self.sum.locate_ns()) / n,
            crate::ns_to_ms(self.sum.transfer_ns) / n,
        )
    }

    /// Reset the accumulator.
    pub fn clear(&mut self) {
        *self = ServiceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceTime {
        ServiceTime {
            overhead_ns: 1,
            seek_ns: 2,
            head_switch_ns: 3,
            rotation_ns: 4,
            transfer_ns: 5,
        }
    }

    #[test]
    fn totals_add_up() {
        let t = sample();
        assert_eq!(t.locate_ns(), 9);
        assert_eq!(t.total_ns(), 15);
    }

    #[test]
    fn addition_is_componentwise() {
        let t = sample() + sample();
        assert_eq!(t.overhead_ns, 2);
        assert_eq!(t.transfer_ns, 10);
        assert_eq!(t.total_ns(), 30);
    }

    #[test]
    fn sum_over_iterator() {
        let s: ServiceTime = (0..4).map(|_| sample()).sum();
        assert_eq!(s.total_ns(), 60);
    }

    #[test]
    fn stats_mean() {
        let mut s = ServiceStats::default();
        assert_eq!(s.mean_total_ms(), 0.0);
        s.record(ServiceTime {
            overhead_ns: 1_000_000,
            ..ServiceTime::ZERO
        });
        s.record(ServiceTime {
            overhead_ns: 3_000_000,
            ..ServiceTime::ZERO
        });
        assert!((s.mean_total_ms() - 2.0).abs() < 1e-12);
        let (o, l, x) = s.mean_components_ms();
        assert!((o - 2.0).abs() < 1e-12);
        assert_eq!(l, 0.0);
        assert_eq!(x, 0.0);
        s.clear();
        assert_eq!(s.count, 0);
    }
}
